/**
 * @file
 * iSCSI protocol data units — the SCSI-like wire vocabulary of the
 * rival transport (DESIGN.md §11).
 *
 * Models the RFC 3720 surface the host-overhead comparison depends
 * on: a 48-byte Basic Header Segment per PDU, optional header and
 * data digests (CRC32C — the same util/crc32c the DSA integrity work
 * uses, §7.3), immediate data for writes (ImmediateData=Yes,
 * InitialR2T=No: the data segment rides in the command PDU, the best
 * case for TCP) and phase-collapsed reads (a single Data-In PDU
 * carrying payload and SCSI status, the S-bit optimization).
 *
 * Data segments are store-and-forward byte vectors: TCP has no RDMA
 * placement, so payloads exist as real buffers that get copied across
 * the user/kernel boundary at both ends — exactly the copies the
 * paper's VI path eliminates. In phantom-memory runs the vector is
 * absent (data == nullptr) and digests carry data_digest_valid ==
 * false; the wire taint bit is then the only damage signal, the same
 * convention dsa::payloadDigest uses.
 *
 * Damage model: a PDU reassembled from a tainted TCP message (see
 * net::TcpMessage) had bytes damaged in flight. When the PDU carries
 * real data the receiver flips a byte before the digest check — so
 * detection is by actual CRC comparison, not by trusting the taint
 * bit — and the sender must therefore never re-send the same data
 * vector (command retries rebuild the PDU from source memory).
 * Header-only PDUs damaged in flight fail the header-digest check
 * directly.
 */

#ifndef V3SIM_ISCSI_PDU_HH
#define V3SIM_ISCSI_PDU_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/crc32c.hh"

namespace v3sim::iscsi
{

/** Basic Header Segment size (RFC 3720 §10.2). */
constexpr uint32_t kBhsBytes = 48;

/** One digest word (HeaderDigest / DataDigest = CRC32C). */
constexpr uint32_t kDigestBytes = 4;

/** The PDU opcodes the model needs. */
enum class PduOp : uint8_t
{
    LoginRequest,
    LoginResponse,
    ScsiCommand,  ///< read or write CDB (writes carry immediate data)
    DataIn,       ///< read payload + collapsed SCSI status (S-bit)
    ScsiResponse, ///< write completion status
};

/** SCSI-level command outcome. */
enum class ScsiStatus : uint8_t
{
    Good,
    CheckCondition, ///< invalid LBA/range or device error
    DigestError,    ///< header/data digest mismatch — retryable
    IntegrityError, ///< verify-on-read found damaged platter data
    Busy,           ///< shed by the target's admission gate (SCSI
                    ///< TASK SET FULL); fail fast, do not retry
};

/**
 * One PDU. The struct is the modeled wire image: pduWireBytes()
 * derives the byte count TCP segments and the checksum/copy costs
 * are charged over.
 */
struct Pdu
{
    PduOp op = PduOp::ScsiCommand;
    /** Initiator task tag: matches responses to outstanding
     *  commands. Retries use a fresh tag (block I/O is idempotent,
     *  so the target keeps no per-task state). */
    uint64_t itt = 0;
    bool is_write = false;
    uint32_t volume = 0;
    uint64_t offset = 0;   ///< byte offset on the target volume
    uint64_t xfer_len = 0; ///< requested transfer length
    /** Issuing tenant id (open-loop multiplexing): the target's
     *  admission gate fair-queues commands by this id. */
    uint64_t tenant = 0;

    /** Data segment content; nullptr when the run is phantom (or the
     *  PDU has no data segment). Never re-sent after transmission —
     *  see the damage model in the file comment. */
    std::shared_ptr<std::vector<uint8_t>> data;
    /** Modeled data-segment length (set even in phantom runs). */
    uint64_t data_len = 0;

    ScsiStatus status = ScsiStatus::Good;

    uint32_t header_digest = 0;
    uint32_t data_digest = 0;
    /** False in phantom runs: no bytes to digest (taint covers it). */
    bool data_digest_valid = false;

    /** LoginResponse: capacity of the negotiated volume. */
    uint64_t volume_capacity = 0;
};

/** Modeled wire size: BHS + header digest + data + data digest. */
inline uint64_t
pduWireBytes(const Pdu &pdu)
{
    uint64_t bytes = kBhsBytes + kDigestBytes;
    if (pdu.data_len > 0)
        bytes += pdu.data_len + kDigestBytes;
    return bytes;
}

/** CRC32C over the header fields the BHS would carry. */
inline uint32_t
pduHeaderDigest(const Pdu &pdu)
{
    uint8_t bhs[kBhsBytes] = {};
    size_t at = 0;
    auto put = [&bhs, &at](const void *src, size_t len) {
        std::memcpy(bhs + at, src, len);
        at += len;
    };
    const uint8_t op = static_cast<uint8_t>(pdu.op);
    const uint8_t wr = pdu.is_write ? 1 : 0;
    const uint8_t st = static_cast<uint8_t>(pdu.status);
    put(&op, 1);
    put(&wr, 1);
    put(&st, 1);
    put(&pdu.itt, sizeof(pdu.itt));
    put(&pdu.volume, sizeof(pdu.volume));
    put(&pdu.offset, sizeof(pdu.offset));
    put(&pdu.xfer_len, sizeof(pdu.xfer_len));
    put(&pdu.tenant, sizeof(pdu.tenant));
    put(&pdu.data_len, sizeof(pdu.data_len));
    return util::crc32c(bhs, sizeof(bhs));
}

/** CRC32C over a data segment. */
inline uint32_t
pduDataDigest(const std::vector<uint8_t> &data)
{
    return util::crc32c(data.data(), data.size());
}

} // namespace v3sim::iscsi

#endif // V3SIM_ISCSI_PDU_HH
