#include "iscsi/initiator.hh"

#include <algorithm>
#include <utility>

namespace v3sim::iscsi
{

using osmodel::CpuCat;

Initiator::Initiator(osmodel::Node &host, net::Fabric &fabric,
                     InitiatorConfig config)
    : host_(host), config_(config),
      metric_prefix_(
          host.sim().metrics().uniquePrefix("iscsi.init")),
      tcp_(host.sim().queue(), fabric, host.sim().metrics(),
           metric_prefix_ + ".tcp", host.name() + ".iscsi",
           config_.tcp),
      driver_(host, tcp_, host.sim().metrics(), metric_prefix_,
              [this](std::shared_ptr<Pdu> pdu, bool tainted,
                     osmodel::CpuLease &lease) {
                  return onPdu(std::move(pdu), tainted, lease);
              }),
      slots_(host.sim().queue(), config_.max_outstanding),
      ios_(host.sim().metrics().counter(metric_prefix_ + ".ios")),
      digest_retries_(host.sim().metrics().counter(
          metric_prefix_ + ".digest_retries")),
      errors_(host.sim().metrics().counter(metric_prefix_ +
                                           ".errors")),
      busy_(host.sim().metrics().counter(metric_prefix_ + ".busy")),
      latency_(host.sim().metrics().sampler(metric_prefix_ +
                                            ".latency_ns")),
      latency_hist_(host.sim().metrics().histogram(
          metric_prefix_ + ".latency_hist_ns"))
{}

sim::Task<bool>
Initiator::connect(net::PortId target_port)
{
    co_await tcp_.connect(target_port);
    // Login negotiates the volume and learns its capacity. Setup
    // path, outside every measurement window: no CPU charges.
    auto pdu = std::make_shared<Pdu>();
    pdu->op = PduOp::LoginRequest;
    pdu->volume = config_.volume;
    pdu->header_digest = pduHeaderDigest(*pdu);
    net::TcpMessage message;
    message.bytes = pduWireBytes(*pdu);
    message.payload = std::move(pdu);
    tcp_.sendMessage(std::move(message));
    co_await login_done_.wait();
    co_return capacity_ > 0;
}

sim::Task<bool>
Initiator::read(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return io(false, offset, len, buffer, 0);
}

sim::Task<bool>
Initiator::write(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return io(true, offset, len, buffer, 0);
}

sim::Task<bool>
Initiator::read(uint64_t offset, uint64_t len, sim::Addr buffer,
                uint64_t tenant)
{
    return io(false, offset, len, buffer, tenant);
}

sim::Task<bool>
Initiator::write(uint64_t offset, uint64_t len, sim::Addr buffer,
                 uint64_t tenant)
{
    return io(true, offset, len, buffer, tenant);
}

sim::Task<bool>
Initiator::io(bool is_write, uint64_t offset, uint64_t len,
              sim::Addr buffer, uint64_t tenant)
{
    co_await slots_.acquire(buffer);
    const sim::Tick start = host_.sim().now();

    bool ok = false;
    ScsiStatus last = ScsiStatus::Good;
    for (uint32_t attempt = 0;
         attempt <= config_.max_digest_retries; ++attempt) {
        if (attempt > 0)
            digest_retries_.increment();
        const ScsiStatus status =
            co_await issueOnce(is_write, offset, len, buffer, tenant);
        last = status;
        if (status == ScsiStatus::Good) {
            ok = true;
            break;
        }
        // Only digest failures are retryable; CheckCondition,
        // IntegrityError and Busy are definitive verdicts from the
        // target (retrying a shed command would re-feed the
        // overload the gate is bleeding off).
        if (status != ScsiStatus::DigestError)
            break;
    }
    if (!ok) {
        if (last == ScsiStatus::Busy)
            busy_.increment();
        errors_.increment();
    }

    const double elapsed =
        static_cast<double>(host_.sim().now() - start);
    ios_.increment();
    latency_.add(elapsed);
    latency_hist_.add(elapsed);

    slots_.release();
    co_return ok;
}

sim::Task<ScsiStatus>
Initiator::issueOnce(bool is_write, uint64_t offset, uint64_t len,
                     sim::Addr buffer, uint64_t tenant)
{
    Pending pending;
    pending.is_write = is_write;
    pending.len = len;
    pending.buffer = buffer;
    const uint64_t itt = next_itt_++;
    pending_.emplace(itt, &pending);

    // Arbitration key: the user buffer address — unique per
    // concurrent submitter and pure content (DESIGN.md §8.3).
    osmodel::CpuLease lease = co_await host_.cpus().acquire(
        osmodel::CpuPool::kNormalPriority, buffer);
    // Issue-side syscall crossing into the kernel initiator.
    const sim::Tick sys = host_.costs().syscall;
    co_await lease.run(sys, CpuCat::Kernel);
    driver_.addSyscallNs(sys);
    // Down through the SCSI class/port/filter stack to the miniport.
    const sim::Tick stack = config_.scsi_stack;
    co_await lease.run(stack, CpuCat::Kernel);
    driver_.addProtoNs(stack);
    const sim::Tick build = config_.request_build;
    co_await lease.run(build, CpuCat::Other);
    driver_.addProtoNs(build);

    auto pdu = std::make_shared<Pdu>();
    pdu->op = PduOp::ScsiCommand;
    pdu->itt = itt;
    pdu->is_write = is_write;
    pdu->volume = config_.volume;
    pdu->offset = offset;
    pdu->xfer_len = len;
    pdu->tenant = tenant;
    if (is_write) {
        // Immediate data: a fresh copy of the user buffer every
        // attempt (the damage model mutates delivered vectors, so a
        // retry must never re-send the same one — see pdu.hh).
        pdu->data_len = len;
        sim::MemorySpace &mem = host_.memory();
        if (!mem.phantom()) {
            pdu->data =
                std::make_shared<std::vector<uint8_t>>(len);
            mem.read(buffer, pdu->data->data(), len);
            pdu->data_digest = pduDataDigest(*pdu->data);
            pdu->data_digest_valid = true;
        }
        const sim::Tick dig =
            perKbTicks(len, config_.digest_per_kb);
        co_await lease.run(dig, CpuCat::Other);
        driver_.addCrcNs(dig);
    }
    pdu->header_digest = pduHeaderDigest(*pdu);

    const uint64_t wire = pduWireBytes(*pdu);
    co_await driver_.chargeTx(lease, wire);
    net::TcpMessage message;
    message.bytes = wire;
    message.payload = std::move(pdu);
    // Same-tick send sequencing key: the user buffer — unique per
    // in-flight command on this stream (DESIGN.md §8.3).
    message.order_key = buffer;
    tcp_.sendMessage(std::move(message));
    host_.cpus().release();

    const ScsiStatus status = co_await pending.done.wait();
    pending_.erase(itt);
    co_return status;
}

sim::Task<>
Initiator::onPdu(std::shared_ptr<Pdu> pdu, bool tainted,
                 osmodel::CpuLease &lease)
{
    const sim::Tick parse = config_.response_parse;
    co_await lease.run(parse, CpuCat::Other);
    driver_.addProtoNs(parse);
    if (pdu->op != PduOp::LoginResponse) {
        // IRP completion routing back up the SCSI filter stack.
        const sim::Tick stack = config_.scsi_stack;
        co_await lease.run(stack, CpuCat::Kernel);
        driver_.addProtoNs(stack);
    }

    if (pdu->op == PduOp::LoginResponse) {
        capacity_ = pdu->volume_capacity;
        if (!login_done_.ready())
            login_done_.set();
        co_return;
    }

    // Apply in-flight damage, then verify the RFC 3720 digests (the
    // Internet checksum below already missed it — that is the point
    // of end-to-end digests).
    bool damaged;
    if (pdu->data && !pdu->data->empty()) {
        if (tainted)
            (*pdu->data)[0] ^= 0xFF;
        damaged = pdu->data_digest_valid &&
                  pduDataDigest(*pdu->data) != pdu->data_digest;
    } else {
        damaged = tainted;
    }
    if (pdu->data_len > 0) {
        const sim::Tick dig =
            perKbTicks(pdu->data_len, config_.digest_per_kb);
        co_await lease.run(dig, CpuCat::Other);
        driver_.addCrcNs(dig);
    }

    auto it = pending_.find(pdu->itt);
    if (it == pending_.end())
        co_return; // stale tag (late duplicate after a retry)
    Pending &cmd = *it->second;

    const ScsiStatus status =
        damaged ? ScsiStatus::DigestError : pdu->status;
    if (status == ScsiStatus::Good && !cmd.is_write && pdu->data &&
        !host_.memory().phantom()) {
        // Content effect of the kernel->user socket copy the driver
        // already charged for this PDU.
        host_.memory().write(
            cmd.buffer, pdu->data->data(),
            std::min<uint64_t>(cmd.len, pdu->data->size()));
    }
    // Wake the blocked application thread.
    const sim::Tick wake = host_.costs().context_switch;
    co_await lease.run(wake, CpuCat::Kernel);
    driver_.addSyscallNs(wake);
    cmd.done.set(status);
}

} // namespace v3sim::iscsi
