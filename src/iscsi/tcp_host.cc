#include "iscsi/tcp_host.hh"

#include <utility>

namespace v3sim::iscsi
{

TcpHostDriver::TcpHostDriver(osmodel::Node &node, net::TcpStream &tcp,
                             sim::MetricRegistry &metrics,
                             const std::string &metric_prefix,
                             Deliver deliver)
    : node_(node), tcp_(tcp), deliver_(std::move(deliver)),
      intr_ns_(metrics.counter(metric_prefix + ".cpu.intr_ns")),
      proto_ns_(metrics.counter(metric_prefix + ".cpu.proto_ns")),
      copy_ns_(metrics.counter(metric_prefix + ".cpu.copy_ns")),
      crc_ns_(metrics.counter(metric_prefix + ".cpu.crc_ns")),
      syscall_ns_(metrics.counter(metric_prefix + ".cpu.syscall_ns"))
{
    tcp_.setMessageHandler([this](net::TcpMessage message) {
        delivered_.push_back(Delivered{
            std::static_pointer_cast<Pdu>(message.payload),
            message.bytes, message.tainted});
    });
    tcp_.setRxNotify([this] { onRxNotify(); });
    tcp_.armRx();
}

sim::Task<>
TcpHostDriver::chargeTx(osmodel::CpuLease &lease, uint64_t msg_bytes)
{
    const osmodel::HostCosts &costs = node_.costs();
    const sim::Tick proto =
        costs.tcp_segment *
        static_cast<sim::Tick>(tcp_.segmentCount(msg_bytes));
    co_await lease.run(proto, osmodel::CpuCat::Kernel);
    proto_ns_.increment(ns(proto));
    const sim::Tick copy =
        perKbTicks(msg_bytes, costs.sock_copy_per_kb);
    co_await lease.run(copy, osmodel::CpuCat::Kernel);
    copy_ns_.increment(ns(copy));
    const sim::Tick crc =
        perKbTicks(msg_bytes, costs.inet_checksum_per_kb);
    co_await lease.run(crc, osmodel::CpuCat::Kernel);
    crc_ns_.increment(ns(crc));
}

void
TcpHostDriver::onRxNotify()
{
    intr_ns_.increment(ns(node_.costs().interrupt));
    // Arbitration key: the stream's own port — stable per driver
    // (DESIGN.md §8.3), so same-tick interrupts from several NICs
    // admit in port order, not arrival order.
    node_.interrupts().raise(
        [this](osmodel::CpuLease lease) {
            return drain(std::move(lease));
        },
        tcp_.port());
}

sim::Task<>
TcpHostDriver::drain(osmodel::CpuLease lease)
{
    const osmodel::HostCosts &costs = node_.costs();
    for (;;) {
        if (tcp_.rxPending()) {
            const net::TcpStream::Work work = tcp_.processOnePacket();
            const sim::Tick proto =
                costs.tcp_segment *
                static_cast<sim::Tick>(work.data_segs + work.ack_segs +
                                       work.acks_sent + work.segs_sent);
            if (proto > 0) {
                co_await lease.run(proto, osmodel::CpuCat::Kernel);
                proto_ns_.increment(ns(proto));
            }
            if (work.data_bytes > 0) {
                const sim::Tick crc = perKbTicks(
                    work.data_bytes, costs.inet_checksum_per_kb);
                co_await lease.run(crc, osmodel::CpuCat::Kernel);
                crc_ns_.increment(ns(crc));
            }
            continue;
        }
        // No packet in sight from this (normal-band) vantage point —
        // but whether one lands later on this same tick is a
        // tie-shuffled race, and the next decision (deliver a
        // reassembled PDU, or re-arm and leave) must not hinge on it:
        // the PDU copy charges CPU, so picking it before vs. after a
        // same-tick arrival shifts every later timestamp. Re-take the
        // decision from the tick's final band, where the full arrival
        // set is known (DESIGN.md §8.3).
        co_await node_.sim().queue().finalBand();
        if (tcp_.rxPending())
            continue;
        if (!delivered_.empty()) {
            Delivered d = std::move(delivered_.front());
            delivered_.pop_front();
            const sim::Tick copy =
                perKbTicks(d.bytes, costs.sock_copy_per_kb);
            co_await lease.run(copy, osmodel::CpuCat::Kernel);
            copy_ns_.increment(ns(copy));
            co_await deliver_(std::move(d.pdu), d.tainted, lease);
            continue;
        }
        break;
    }
    // Re-arm last: packets that arrived while we were draining were
    // consumed above; anything after this line raises a fresh
    // interrupt (one-shot coalescing, like a VI completion queue).
    tcp_.armRx();
}

} // namespace v3sim::iscsi
