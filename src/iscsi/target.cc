#include "iscsi/target.hh"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "disk/disk.hh"

namespace v3sim::iscsi
{

namespace
{

using osmodel::CpuCat;

constexpr uint64_t kSector = disk::DiskStore::kSectorSize;

} // namespace

Target::Target(sim::Simulation &sim, net::Fabric &fabric,
               TargetConfig config)
    : sim_(sim), config_(std::move(config)),
      node_(sim,
            osmodel::NodeConfig{config_.name, config_.cpus,
                                config_.host_costs,
                                config_.phantom_memory}),
      disks_(sim),
      metric_prefix_(sim.metrics().uniquePrefix("iscsi.tgt")),
      tcp_(sim.queue(), fabric, sim.metrics(),
           metric_prefix_ + ".tcp", config_.name + ".iscsi",
           config_.tcp),
      driver_(node_, tcp_, sim.metrics(), metric_prefix_,
              [this](std::shared_ptr<Pdu> pdu, bool tainted,
                     osmodel::CpuLease &lease) {
                  return onPdu(std::move(pdu), tainted, lease);
              }),
      reads_(sim.metrics().counter(metric_prefix_ + ".reads")),
      writes_(sim.metrics().counter(metric_prefix_ + ".writes")),
      digest_mismatches_(sim.metrics().counter(
          metric_prefix_ + ".integrity_digest_mismatches")),
      integrity_errors_(sim.metrics().counter(
          metric_prefix_ + ".integrity_verify_failures")),
      server_time_(
          sim.metrics().sampler(metric_prefix_ + ".server_time_ns")),
      admission_gate_(sim, metric_prefix_, config_.admission)
{
    if (config_.cache_bytes >= config_.block_size) {
        const uint64_t blocks =
            config_.cache_bytes / config_.block_size;
        if (config_.cache_policy == storage::CachePolicy::Mq) {
            cache_ = std::make_unique<storage::MqCache>(
                node_.memory(), config_.block_size, blocks,
                config_.mq);
        } else {
            cache_ = std::make_unique<storage::LruCache>(
                node_.memory(), config_.block_size, blocks);
        }
        cache_->registerMetrics(sim.metrics(),
                                metric_prefix_ + ".cache");
    }
}

void
Target::start()
{
    tcp_.listen();
}

sim::Task<>
Target::onPdu(std::shared_ptr<Pdu> pdu, bool tainted,
              osmodel::CpuLease &lease)
{
    // Dispatch only: the interrupted CPU hands the command to a
    // request-manager coroutine that competes for CPUs at normal
    // priority (the user-level target daemon).
    (void)lease;
    sim::spawn(handleCommand(std::move(pdu), tainted));
    co_return;
}

sim::Task<>
Target::handleCommand(std::shared_ptr<Pdu> cmd, bool tainted)
{
    const sim::Tick arrival = sim_.now();
    // Arbitration key: the initiator task tag — request content
    // (assigned by the sequential initiator), and unlike the byte
    // offset *unique* among in-flight commands on this session, as
    // DESIGN.md §8.3 requires. Two concurrent commands for the same
    // random offset would otherwise tie and fall back to park order.
    osmodel::CpuLease lease = co_await node_.cpus().acquire(
        osmodel::CpuPool::kNormalPriority, cmd->itt);
    // Wake the user-level daemon, then parse the PDU.
    const sim::Tick wake = node_.costs().context_switch;
    co_await lease.run(wake, CpuCat::Kernel);
    driver_.addSyscallNs(wake);
    co_await lease.run(config_.parse_cost, CpuCat::Other);
    driver_.addProtoNs(config_.parse_cost);

    if (cmd->op == PduOp::LoginRequest) {
        // Setup path: negotiate the volume, report its capacity.
        disk::Volume *volume = volumes_.volume(cmd->volume);
        auto reply = std::make_shared<Pdu>();
        reply->op = PduOp::LoginResponse;
        reply->itt = cmd->itt;
        reply->volume = cmd->volume;
        reply->volume_capacity = volume ? volume->capacity() : 0;
        reply->header_digest = pduHeaderDigest(*reply);
        net::TcpMessage message;
        message.bytes = pduWireBytes(*reply);
        message.order_key = cmd->itt;
        message.payload = std::move(reply);
        tcp_.sendMessage(std::move(message));
        node_.cpus().release();
        co_return;
    }

    // Apply in-flight damage and verify digests before anything
    // else: a damaged payload must never reach the cache or a disk
    // (the same staging-check rule as V3Server::doWrite).
    bool damaged;
    if (cmd->data && !cmd->data->empty()) {
        if (tainted)
            (*cmd->data)[0] ^= 0xFF;
        damaged = cmd->data_digest_valid &&
                  pduDataDigest(*cmd->data) != cmd->data_digest;
    } else {
        damaged = tainted;
    }
    if (cmd->data_len > 0) {
        const sim::Tick dig =
            perKbTicks(cmd->data_len, config_.digest_per_kb);
        co_await lease.run(dig, CpuCat::Other);
        driver_.addCrcNs(dig);
    }

    // Overload control (DESIGN.md §12): undamaged commands pass the
    // same admission gate V3Server runs, holding no CPU while
    // parked; a shed command is refused fast with Busy (SCSI TASK
    // SET FULL) and the initiator fails it without retrying. The
    // arbitration key is the initiator task tag: command content,
    // unique among in-flight commands on this session.
    bool gated = false;
    if (config_.admission.enabled && !damaged) {
        node_.cpus().release();
        const bool admitted = co_await admission_gate_.admit(
            cmd->tenant, cmd->xfer_len, cmd->itt);
        lease = co_await node_.cpus().acquire(
            osmodel::CpuPool::kNormalPriority, cmd->itt);
        if (!admitted) {
            co_await respond(lease, *cmd, ScsiStatus::Busy, nullptr,
                             0);
            node_.cpus().release();
            co_return;
        }
        gated = true;
    }

    ScsiStatus status;
    std::shared_ptr<std::vector<uint8_t>> data;
    disk::Volume *volume = volumes_.volume(cmd->volume);
    if (damaged) {
        digest_mismatches_.increment();
        status = ScsiStatus::DigestError;
    } else if (!volume || cmd->xfer_len == 0 ||
               cmd->offset + cmd->xfer_len > volume->capacity() ||
               (cmd->is_write && (cmd->offset % kSector != 0 ||
                                  cmd->xfer_len % kSector != 0))) {
        status = ScsiStatus::CheckCondition;
    } else if (cmd->is_write) {
        writes_.increment();
        status = co_await doWrite(lease, *cmd);
    } else {
        reads_.increment();
        status = co_await doRead(lease, *cmd, data);
    }

    if (status == ScsiStatus::Good && !cmd->is_write) {
        co_await respond(lease, *cmd, status, std::move(data),
                         cmd->xfer_len);
    } else {
        co_await respond(lease, *cmd, status, nullptr, 0);
    }
    server_time_.add(static_cast<double>(sim_.now() - arrival));
    node_.cpus().release();
    if (gated)
        admission_gate_.release();
}

sim::Task<ScsiStatus>
Target::doRead(osmodel::CpuLease &lease, const Pdu &cmd,
               std::shared_ptr<std::vector<uint8_t>> &data_out)
{
    disk::Volume *volume = volumes_.volume(cmd.volume);
    sim::MemorySpace &mem = node_.memory();
    const uint64_t bs = config_.block_size;
    const uint64_t first = cmd.offset / bs;
    const uint64_t last = (cmd.offset + cmd.xfer_len - 1) / bs;
    if (!mem.phantom()) {
        data_out =
            std::make_shared<std::vector<uint8_t>>(cmd.xfer_len);
    }

    for (uint64_t b = first; b <= last; ++b) {
        const storage::CacheKey key{cmd.volume, b};
        const uint64_t block_start = b * bs;
        const uint64_t piece_start =
            std::max(block_start, cmd.offset);
        const uint64_t piece_end =
            std::min(block_start + bs, cmd.offset + cmd.xfer_len);

        sim::Addr frame = sim::kNullAddr;
        bool pinned = false;
        sim::Addr tbuf = sim::kNullAddr;
        if (cache_) {
            co_await lease.run(config_.cache_op_cost, CpuCat::Other);
            if (auto hit = cache_->lookupAndPin(key)) {
                frame = *hit;
                pinned = true;
            }
        }
        if (frame == sim::kNullAddr) {
            // Miss (or caching off): fetch the whole block.
            std::optional<sim::Addr> inserted;
            if (cache_) {
                co_await lease.run(config_.cache_op_cost,
                                   CpuCat::Other);
                inserted = cache_->insertAndPin(key);
            }
            if (inserted) {
                frame = *inserted;
                pinned = true;
            } else {
                tbuf = mem.allocate(bs);
                frame = tbuf;
            }
            co_await lease.run(config_.disk_sched_cost,
                               CpuCat::Other);
            node_.cpus().release();
            const bool ok =
                co_await volume->read(block_start, bs, mem, frame);
            lease = co_await node_.cpus().acquire(
                osmodel::CpuPool::kNormalPriority, cmd.itt);

            // Verify-on-read: damaged platter data must never enter
            // the cache or reach the initiator (same rule as
            // V3Server::doRead).
            bool integrity_bad = false;
            if (ok && volume->corrupt(block_start, bs)) {
                integrity_errors_.increment();
                integrity_bad = true;
            }
            if (!ok || integrity_bad) {
                if (pinned) {
                    cache_->unpin(key);
                    cache_->invalidate(key);
                }
                if (tbuf != sim::kNullAddr)
                    mem.free(tbuf);
                co_return integrity_bad
                    ? ScsiStatus::IntegrityError
                    : ScsiStatus::CheckCondition;
            }
        }

        // Assemble the response data segment (store-and-forward: no
        // RDMA to place cache frames into remote buffers).
        const uint64_t piece = piece_end - piece_start;
        if (data_out) {
            mem.read(frame + (piece_start - block_start),
                     data_out->data() + (piece_start - cmd.offset),
                     piece);
        }
        co_await lease.run(perKbTicks(piece, config_.memcpy_per_kb),
                           CpuCat::Other);
        if (pinned)
            cache_->unpin(key);
        if (tbuf != sim::kNullAddr)
            mem.free(tbuf);
    }
    co_return ScsiStatus::Good;
}

sim::Task<ScsiStatus>
Target::doWrite(osmodel::CpuLease &lease, const Pdu &cmd)
{
    disk::Volume *volume = volumes_.volume(cmd.volume);
    sim::MemorySpace &mem = node_.memory();

    // Stage the PDU's data segment into node memory (digest already
    // verified by handleCommand).
    const sim::Addr staging = mem.allocate(cmd.xfer_len);
    if (cmd.data && !mem.phantom())
        mem.write(staging, cmd.data->data(), cmd.xfer_len);
    co_await lease.run(
        perKbTicks(cmd.xfer_len, config_.memcpy_per_kb),
        CpuCat::Other);

    // Update resident cache blocks so subsequent reads see the new
    // data (full blocks may be inserted; partial overlaps only
    // update blocks already resident — as V3Server::doWrite).
    if (cache_) {
        const uint64_t bs = config_.block_size;
        for (uint64_t b = cmd.offset / bs;
             b <= (cmd.offset + cmd.xfer_len - 1) / bs; ++b) {
            const storage::CacheKey key{cmd.volume, b};
            const uint64_t block_start = b * bs;
            const uint64_t piece_start =
                std::max(block_start, cmd.offset);
            const uint64_t piece_end = std::min(
                block_start + bs, cmd.offset + cmd.xfer_len);
            const bool full_block =
                piece_start == block_start &&
                piece_end - piece_start == bs;

            co_await lease.run(config_.cache_op_cost, CpuCat::Other);
            std::optional<sim::Addr> frame;
            if (full_block) {
                frame = cache_->insertAndPin(key);
            } else if (cache_->contains(key)) {
                frame = cache_->lookupAndPin(key);
            }
            if (frame) {
                sim::MemorySpace::copy(
                    mem, staging + (piece_start - cmd.offset), mem,
                    *frame + (piece_start - block_start),
                    piece_end - piece_start);
                co_await lease.run(
                    perKbTicks(piece_end - piece_start,
                               config_.memcpy_per_kb),
                    CpuCat::Other);
                cache_->unpin(key);
            }
        }
    }

    // Commit to disk before responding (durability, §5.2).
    co_await lease.run(config_.disk_sched_cost, CpuCat::Other);
    node_.cpus().release();
    const bool ok = co_await volume->write(cmd.offset, cmd.xfer_len,
                                           mem, staging);
    lease = co_await node_.cpus().acquire(
        osmodel::CpuPool::kNormalPriority, cmd.itt);
    mem.free(staging);
    co_return ok ? ScsiStatus::Good : ScsiStatus::CheckCondition;
}

sim::Task<>
Target::respond(osmodel::CpuLease &lease, const Pdu &cmd,
                ScsiStatus status,
                std::shared_ptr<std::vector<uint8_t>> data,
                uint64_t data_len)
{
    auto pdu = std::make_shared<Pdu>();
    pdu->op = (status == ScsiStatus::Good && !cmd.is_write)
                  ? PduOp::DataIn
                  : PduOp::ScsiResponse;
    pdu->itt = cmd.itt;
    pdu->is_write = cmd.is_write;
    pdu->volume = cmd.volume;
    pdu->offset = cmd.offset;
    pdu->xfer_len = cmd.xfer_len;
    pdu->status = status;
    pdu->data = std::move(data);
    pdu->data_len = data_len;
    if (pdu->data && !pdu->data->empty()) {
        pdu->data_digest = pduDataDigest(*pdu->data);
        pdu->data_digest_valid = true;
    }
    if (data_len > 0) {
        const sim::Tick dig =
            perKbTicks(data_len, config_.digest_per_kb);
        co_await lease.run(dig, CpuCat::Other);
        driver_.addCrcNs(dig);
    }
    pdu->header_digest = pduHeaderDigest(*pdu);

    co_await lease.run(config_.complete_cost, CpuCat::Other);
    const uint64_t wire = pduWireBytes(*pdu);
    co_await driver_.chargeTx(lease, wire);
    net::TcpMessage message;
    message.bytes = wire;
    // Same-tick send sequencing key: the initiator's transfer tag —
    // content of the reply, unique among in-flight commands on this
    // connection (DESIGN.md §8.3).
    message.order_key = cmd.itt;
    message.payload = std::move(pdu);
    tcp_.sendMessage(std::move(message));
}

} // namespace v3sim::iscsi
