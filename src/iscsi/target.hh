/**
 * @file
 * iSCSI target — a storage node serving SCSI commands over TCP
 * (DESIGN.md §11).
 *
 * Deliberately the same machine as a V3 node (2 CPUs, the same
 * disks, the same block cache with the same Multi-Queue policy, the
 * same verify-on-read and commit-before-complete rules) so the
 * VI-vs-iSCSI comparison isolates the *transport*: the only things
 * that differ from storage::V3Server are how requests arrive
 * (interrupt-driven TCP reassembly instead of polled VI receive
 * descriptors) and how data moves (store-and-forward PDU buffers
 * with socket copies instead of RDMA directly between cache frames
 * and client buffers).
 *
 * Data-path rules shared with V3 (DESIGN.md §7):
 *  - writes verify the data digest before the cache or disk see the
 *    payload, and commit to disk before the response (durability,
 *    §5.2);
 *  - reads verify blocks against the volume's latent-corruption
 *    oracle before caching or returning them — damaged platter data
 *    never enters the cache and never reaches an initiator as Good.
 *
 * Simplification vs V3: no miss-run coalescing — concurrent misses
 * on one block may each fetch it (deterministic, just wasteful),
 * which only softens the iSCSI side of the comparison under heavy
 * same-block contention.
 */

#ifndef V3SIM_ISCSI_TARGET_HH
#define V3SIM_ISCSI_TARGET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iscsi/pdu.hh"
#include "iscsi/tcp_host.hh"
#include "net/fabric.hh"
#include "net/tcp_stream.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/block_cache.hh"
#include "storage/disk_manager.hh"
#include "storage/mq_cache.hh"
#include "storage/v3_server.hh"
#include "storage/volume_manager.hh"

namespace v3sim::iscsi
{

/** Static configuration of one iSCSI target node. Defaults mirror
 *  storage::V3ServerConfig so backend comparisons are apples to
 *  apples. */
struct TargetConfig
{
    std::string name = "tgt";
    int cpus = 2;
    osmodel::HostCosts host_costs = osmodel::HostCosts::storageNode();

    uint64_t block_size = 8192;
    /** Cache capacity in bytes; 0 disables caching. */
    uint64_t cache_bytes = 256ull * 1024 * 1024;
    storage::CachePolicy cache_policy = storage::CachePolicy::Mq;
    storage::MqConfig mq;

    bool phantom_memory = false;

    net::TcpConfig tcp;

    /** @name Request-manager CPU costs (as V3ServerConfig) @{ */
    sim::Tick parse_cost = sim::usecs(5.0);
    sim::Tick cache_op_cost = sim::usecs(1.5);
    sim::Tick disk_sched_cost = sim::usecs(3.0);
    sim::Tick complete_cost = sim::usecs(4.0);
    sim::Tick memcpy_per_kb = sim::usecs(0.12);
    /** Software CRC32C per KB (see InitiatorConfig::digest_per_kb). */
    sim::Tick digest_per_kb = sim::usecs(0.08);
    /** @} */

    /** Overload control: the same admission gate V3Server embeds
     *  (DESIGN.md §12), so overload comparisons isolate the
     *  transport. Disabled by default. */
    storage::AdmissionConfig admission;
};

/** One iSCSI storage node (single session: one initiator). */
class Target
{
  public:
    Target(sim::Simulation &sim, net::Fabric &fabric,
           TargetConfig config);

    Target(const Target &) = delete;
    Target &operator=(const Target &) = delete;

    osmodel::Node &node() { return node_; }
    storage::DiskManager &diskManager() { return disks_; }
    storage::VolumeManager &volumeManager() { return volumes_; }
    storage::BlockCache *cache() { return cache_.get(); }
    const TargetConfig &config() const { return config_; }

    /** Begins listening. Call after volumes are assembled. */
    void start();

    /** The port initiators connect() to. */
    net::PortId port() const { return tcp_.port(); }

    /** @name Statistics @{ */
    uint64_t readCount() const { return reads_.value(); }
    uint64_t writeCount() const { return writes_.value(); }
    /** Commands rejected by the header/data digest check. */
    uint64_t digestMismatchCount() const
    {
        return digest_mismatches_.value();
    }
    /** Verify-on-read hits: blocks found damaged on disk. */
    uint64_t integrityErrorCount() const
    {
        return integrity_errors_.value();
    }
    /** Commands refused with ScsiStatus::Busy by the admission gate
     *  (config.admission; DESIGN.md §12). */
    uint64_t shedCount() const { return admission_gate_.shedCount(); }
    /** Commands that passed the gate. */
    uint64_t admittedCount() const
    {
        return admission_gate_.admittedCount();
    }
    /** Target-resident time per command: dispatch to response. */
    const sim::Sampler &serverTime() const
    {
        return server_time_.raw();
    }
    double cacheHitRatio() const
    {
        return cache_ ? cache_->hitRatio() : 0.0;
    }
    /** Per-layer CPU attribution of the target's kernel TCP path. */
    const TcpHostDriver &driver() const { return driver_; }
    /** @} */

  private:
    sim::Task<> onPdu(std::shared_ptr<Pdu> pdu, bool tainted,
                      osmodel::CpuLease &lease);
    sim::Task<> handleCommand(std::shared_ptr<Pdu> cmd, bool tainted);
    sim::Task<ScsiStatus> doRead(
        osmodel::CpuLease &lease, const Pdu &cmd,
        std::shared_ptr<std::vector<uint8_t>> &data_out);
    sim::Task<ScsiStatus> doWrite(osmodel::CpuLease &lease,
                                  const Pdu &cmd);
    sim::Task<> respond(osmodel::CpuLease &lease, const Pdu &cmd,
                        ScsiStatus status,
                        std::shared_ptr<std::vector<uint8_t>> data,
                        uint64_t data_len);

    sim::Simulation &sim_;
    TargetConfig config_;
    osmodel::Node node_;
    storage::DiskManager disks_;
    storage::VolumeManager volumes_;
    std::unique_ptr<storage::BlockCache> cache_;

    /// Registry path prefix ("iscsi.tgt", uniquified); must precede
    /// the metric references so it is initialised first.
    std::string metric_prefix_;

    net::TcpStream tcp_;
    TcpHostDriver driver_;

    sim::CounterHandle reads_;
    sim::CounterHandle writes_;
    sim::CounterHandle digest_mismatches_;
    sim::CounterHandle integrity_errors_;
    sim::SamplerHandle server_time_;

    /** Overload-control gate in front of the data path
     *  (config_.admission; DESIGN.md §12). */
    storage::AdmissionGate admission_gate_;
};

} // namespace v3sim::iscsi

#endif // V3SIM_ISCSI_TARGET_HH
