/**
 * @file
 * Host-cost glue between a net::TcpStream and an osmodel::Node — the
 * kernel network stack of the rival transport (DESIGN.md §11).
 *
 * net/ cannot depend on osmodel/, so the transport only *counts* its
 * work; this driver converts the counts into charged CPU time on the
 * node, attributed per layer so the VI-vs-iSCSI host-overhead gap is
 * decomposable. Both iSCSI endpoints (initiator and target) embed
 * one.
 *
 * Receive path: every packet arrival while the stream is armed
 * raises a real interrupt on the node (osmodel::InterruptController
 * charges the 5-10 us entry/exit the paper measures); the handler
 * drains the stream one packet at a time, charging per-segment
 * TCP/IP protocol work and the software Internet checksum over
 * received payload, then hands fully reassembled PDUs to the owner
 * after charging the kernel-to-user socket copy. One-shot arming
 * means back-to-back arrivals coalesce into one interrupt — iSCSI
 * gets the same batching courtesy the VI completion queues enjoy, so
 * the comparison is not rigged.
 *
 * Transmit path: the owner calls chargeTx() while holding a CPU
 * lease; it charges per-segment protocol work, the user-to-kernel
 * socket copy, and the checksum for the whole PDU at issue time.
 * (Segments the congestion window defers go out later at no further
 * charge — the total is identical, only the timing is shifted
 * earlier; the simplification is documented in DESIGN.md §11.)
 *
 * Per-layer nanosecond counters land in the registry under
 * `<prefix>.cpu.{intr,proto,copy,crc,syscall}_ns`; rival benches
 * read them back from the metrics snapshot to attribute the
 * host-overhead gap.
 */

#ifndef V3SIM_ISCSI_TCP_HOST_HH
#define V3SIM_ISCSI_TCP_HOST_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "iscsi/pdu.hh"
#include "net/tcp_stream.hh"
#include "osmodel/node.hh"
#include "sim/metrics.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace v3sim::iscsi
{

/** CPU ticks for @p bytes at a per-KB rate (ceiling, like the V3
 *  server's digestTicks). */
inline sim::Tick
perKbTicks(uint64_t bytes, sim::Tick per_kb)
{
    return static_cast<sim::Tick>((bytes + 1023) / 1024) * per_kb;
}

/** Charges a node's CPUs for the TCP work a stream counts. */
class TcpHostDriver
{
  public:
    /** PDU sink; runs on the interrupted CPU holding @p lease. */
    using Deliver = std::function<sim::Task<>(
        std::shared_ptr<Pdu> pdu, bool tainted,
        osmodel::CpuLease &lease)>;

    /**
     * Hooks @p tcp's receive side up to @p node's interrupt
     * controller and registers the per-layer counters under
     * @p metric_prefix (already uniquified by the owner).
     */
    TcpHostDriver(osmodel::Node &node, net::TcpStream &tcp,
                  sim::MetricRegistry &metrics,
                  const std::string &metric_prefix, Deliver deliver);

    TcpHostDriver(const TcpHostDriver &) = delete;
    TcpHostDriver &operator=(const TcpHostDriver &) = delete;

    /**
     * Charges the transmit-side kernel costs for one PDU of
     * @p msg_bytes (call before TcpStream::sendMessage, holding a
     * CPU lease).
     */
    sim::Task<> chargeTx(osmodel::CpuLease &lease, uint64_t msg_bytes);

    /** @name Layer attribution by the owner
     * The owner charges its own lease and records the time here so
     * every charged tick lands in exactly one layer counter.
     * @{ */
    void addProtoNs(sim::Tick d) { proto_ns_.increment(ns(d)); }
    void addCopyNs(sim::Tick d) { copy_ns_.increment(ns(d)); }
    void addCrcNs(sim::Tick d) { crc_ns_.increment(ns(d)); }
    void addSyscallNs(sim::Tick d) { syscall_ns_.increment(ns(d)); }
    /** @} */

    /** @name Per-layer totals (ns) @{ */
    uint64_t intrNs() const { return intr_ns_.value(); }
    uint64_t protoNs() const { return proto_ns_.value(); }
    uint64_t copyNs() const { return copy_ns_.value(); }
    uint64_t crcNs() const { return crc_ns_.value(); }
    uint64_t syscallNs() const { return syscall_ns_.value(); }
    /** @} */

  private:
    struct Delivered
    {
        std::shared_ptr<Pdu> pdu;
        uint64_t bytes = 0;
        bool tainted = false;
    };

    static uint64_t ns(sim::Tick d) { return static_cast<uint64_t>(d); }

    void onRxNotify();
    sim::Task<> drain(osmodel::CpuLease lease);

    osmodel::Node &node_;
    net::TcpStream &tcp_;
    Deliver deliver_;
    std::deque<Delivered> delivered_;

    sim::CounterHandle intr_ns_;
    sim::CounterHandle proto_ns_;
    sim::CounterHandle copy_ns_;
    sim::CounterHandle crc_ns_;
    sim::CounterHandle syscall_ns_;
};

} // namespace v3sim::iscsi

#endif // V3SIM_ISCSI_TCP_HOST_HH
