/**
 * @file
 * iSCSI initiator — the kernel software-initiator path on the
 * database host, as a dsa::BlockDevice (DESIGN.md §11).
 *
 * This is the commercial rival the paper's VI transport competes
 * with: every I/O goes through a syscall into the kernel, the iSCSI
 * driver builds a CDB-carrying PDU (writes attach immediate data
 * copied out of the user buffer), the TCP stack segments it, and
 * each response arrives by interrupt, gets checksummed, digested and
 * copied back up to user space before a context switch wakes the
 * issuing thread. Every one of those costs is charged on the host's
 * CPUs and attributed per layer (see iscsi/tcp_host.hh), so the
 * host-overhead gap to kDSA/wDSA/cDSA is measurable and
 * decomposable, not asserted.
 *
 * Reliability split: TCP below retransmits lost segments invisibly;
 * this layer handles what TCP cannot see — payload damage that
 * slipped past the Internet checksum is caught by the RFC 3720
 * digests and retried as a whole command with a fresh task tag (block
 * I/O is idempotent, so the target keeps no per-task retry state).
 * IntegrityError from the target (verify-on-read) and
 * CheckCondition fail the I/O without retry, mirroring
 * dsa::DsaClient semantics.
 */

#ifndef V3SIM_ISCSI_INITIATOR_HH
#define V3SIM_ISCSI_INITIATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "dsa/block_device.hh"
#include "iscsi/pdu.hh"
#include "iscsi/tcp_host.hh"
#include "net/fabric.hh"
#include "net/tcp_stream.hh"
#include "osmodel/node.hh"
#include "sim/metrics.hh"
#include "sim/resource.hh"
#include "sim/task.hh"

namespace v3sim::iscsi
{

/** Static initiator parameters. */
struct InitiatorConfig
{
    /** Target volume this session addresses. */
    uint32_t volume = 0;

    net::TcpConfig tcp;

    /** Outstanding-command limit (the session queue depth). */
    uint32_t max_outstanding = 64;

    /** Digest-failure retries before the I/O fails. */
    uint32_t max_digest_retries = 4;

    /** @name Driver CPU costs (charged on the host CPUs) @{ */
    /** One-way traversal of the SCSI class/port/filter-driver stack
     *  the iSCSI miniport sits under (IRP allocation, queueing and
     *  completion routing). Charged once going down at issue and
     *  once coming back up at completion — the same layering bill
     *  wDSA pays (DESIGN.md §11), which iSCSI pays *in addition to*
     *  the TCP path below it. */
    sim::Tick scsi_stack = sim::usecs(7.0);
    /** Building the command PDU (CDB + BHS + task bookkeeping). */
    sim::Tick request_build = sim::usecs(4.0);
    /** Parsing a response PDU and resolving its task tag. */
    sim::Tick response_parse = sim::usecs(4.0);
    /** Software CRC32C for the RFC 3720 digests, per KB. Higher than
     *  the V3 server's 0.04 us/KB: the initiator-side CRC runs on a
     *  general-purpose host without the table locality of the
     *  dedicated storage node loop. */
    sim::Tick digest_per_kb = sim::usecs(0.08);
    /** @} */
};

/** One iSCSI session from a host to a target. */
class Initiator : public dsa::BlockDevice
{
  public:
    /** Attaches a NIC port for @p host on @p fabric. Metrics land
     *  under a uniquified "iscsi.init" prefix. */
    Initiator(osmodel::Node &host, net::Fabric &fabric,
              InitiatorConfig config = {});

    Initiator(const Initiator &) = delete;
    Initiator &operator=(const Initiator &) = delete;

    /** TCP handshake plus iSCSI login; resolves true when the target
     *  reported a usable volume. Call before faults are armed. */
    sim::Task<bool> connect(net::PortId target_port);

    /** @name dsa::BlockDevice
     * The tenant-tagged overloads stamp the command PDU so the
     * target's admission gate can fair-queue by tenant (DESIGN.md
     * §12); the untagged ones send tenant 0. @{ */
    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::Addr buffer) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          sim::Addr buffer) override;
    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::Addr buffer, uint64_t tenant) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          sim::Addr buffer, uint64_t tenant) override;
    uint64_t capacity() const override { return capacity_; }
    /** @} */

    /** @name Statistics @{ */
    uint64_t ioCount() const { return ios_.value(); }
    /** Whole-command retries after a digest failure. */
    uint64_t digestRetryCount() const
    {
        return digest_retries_.value();
    }
    /** I/Os that ultimately failed (status or retries exhausted). */
    uint64_t errorCount() const { return errors_.value(); }
    /** I/Os the target's admission gate refused with Busy. Failed
     *  immediately, never retried (deliberate backpressure). */
    uint64_t busyCount() const { return busy_.value(); }
    /** End-to-end I/O latency (ns). */
    const sim::Sampler &latency() const { return latency_.raw(); }
    /** End-to-end I/O latency distribution (ns). */
    const sim::Histogram &latencyHistogram() const
    {
        return latency_hist_.raw();
    }
    /** Per-layer host-CPU attribution. */
    const TcpHostDriver &driver() const { return driver_; }
    net::TcpStream &tcp() { return tcp_; }
    /** @} */

  private:
    /** One outstanding command awaiting its response. */
    struct Pending
    {
        bool is_write = false;
        uint64_t len = 0;
        sim::Addr buffer = sim::kNullAddr;
        sim::Completion<ScsiStatus> done;
    };

    sim::Task<bool> io(bool is_write, uint64_t offset, uint64_t len,
                       sim::Addr buffer, uint64_t tenant);
    sim::Task<ScsiStatus> issueOnce(bool is_write, uint64_t offset,
                                    uint64_t len, sim::Addr buffer,
                                    uint64_t tenant);
    sim::Task<> onPdu(std::shared_ptr<Pdu> pdu, bool tainted,
                      osmodel::CpuLease &lease);

    osmodel::Node &host_;
    InitiatorConfig config_;

    /// Registry path prefix ("iscsi.init", uniquified); must precede
    /// the metric references so it is initialised first.
    std::string metric_prefix_;

    net::TcpStream tcp_;
    TcpHostDriver driver_;

    /** Outstanding commands by task tag (ordered: determinism). */
    std::map<uint64_t, Pending *> pending_;
    uint64_t next_itt_ = 1;
    /** Bounds outstanding commands at max_outstanding; keyed
     *  final-band grants keep saturated admission content-ordered
     *  (DESIGN.md §8.3). */
    sim::Semaphore slots_;

    sim::Completion<> login_done_;
    uint64_t capacity_ = 0;

    sim::CounterHandle ios_;
    sim::CounterHandle digest_retries_;
    sim::CounterHandle errors_;
    sim::CounterHandle busy_;
    sim::SamplerHandle latency_;
    sim::HistogramHandle latency_hist_;
};

} // namespace v3sim::iscsi

#endif // V3SIM_ISCSI_INITIATOR_HH
