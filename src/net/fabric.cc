#include "fabric.hh"

#include <cassert>
#include <utility>

#include "util/logging.hh"

namespace v3sim::net
{

Fabric::Fabric(sim::EventQueue &queue, FabricConfig config)
    : queue_(queue), config_(config)
{
    assert(config_.bandwidth_bps > 0);
}

PortId
Fabric::attach(Handler handler, std::string name)
{
    auto state = std::make_unique<PortState>();
    state->handler = std::move(handler);
    state->name = std::move(name);
    state->tx = std::make_unique<sim::ServerPool>(queue_, 1,
                                                  state->name + ".tx");
    ports_.push_back(std::move(state));
    return static_cast<PortId>(ports_.size() - 1);
}

const std::string &
Fabric::portName(PortId id) const
{
    static const std::string empty;
    if (id >= ports_.size())
        return empty;
    return ports_[id]->name;
}

void
Fabric::send(Packet packet, std::function<void()> on_wire)
{
    if (packet.src >= ports_.size() || packet.dst >= ports_.size()) {
        V3LOG(Warn, "fabric") << "dropping packet with invalid port";
        dropped_.increment();
        if (on_wire)
            on_wire();
        return;
    }
    const bool down =
        !ports_[packet.src]->up || !ports_[packet.dst]->up;
    const bool drop = down || (drop_filter_ && drop_filter_(packet));
    if (drop)
        dropped_.increment();
    if (!drop && corrupt_filter_ && corrupt_filter_(packet)) {
        packet.corrupted = true;
        corrupted_.increment();
    }

    PortState &src = *ports_[packet.src];
    src.bytes_sent.increment(packet.wire_bytes);

    const sim::Tick serialization =
        sim::transferTime(packet.wire_bytes, config_.bandwidth_bps);
    // Dropped packets burn serialization time but never propagate;
    // splitting the paths keeps the hot (delivered) capture within
    // EventFn's inline budget.
    const uint64_t order_key = packet.order_key;
    if (drop) {
        src.tx->submit(
            serialization,
            [on_wire = std::move(on_wire)]() mutable {
                if (on_wire)
                    on_wire();
            },
            order_key);
        return;
    }
    src.tx->submit(
        serialization,
        [this, packet = std::move(packet),
         on_wire = std::move(on_wire)]() mutable {
            if (on_wire)
                on_wire();
            queue_.schedule(config_.propagation,
                            [this, packet = std::move(packet)]()
                                mutable {
                                deliver(std::move(packet));
                            });
        },
        order_key);
}

void
Fabric::deliver(Packet packet)
{
    PortState &dst = *ports_[packet.dst];
    if (!dst.up) {
        // The port went down while this packet was propagating: a
        // crashed node cannot receive, so the packet just vanishes.
        dropped_.increment();
        return;
    }
    dst.delivered.increment();
    dst.handler(std::move(packet));
}

void
Fabric::setPortUp(PortId id, bool up)
{
    assert(id < ports_.size());
    ports_[id]->up = up;
}

bool
Fabric::portUp(PortId id) const
{
    return id < ports_.size() && ports_[id]->up;
}

uint64_t
Fabric::bytesSent(PortId port) const
{
    assert(port < ports_.size());
    return ports_[port]->bytes_sent.value();
}

uint64_t
Fabric::packetsDelivered(PortId port) const
{
    assert(port < ports_.size());
    return ports_[port]->delivered.value();
}

double
Fabric::txUtilization(PortId port) const
{
    assert(port < ports_.size());
    return ports_[port]->tx->utilization();
}

} // namespace v3sim::net
