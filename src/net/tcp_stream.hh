/**
 * @file
 * Reliable byte-stream transport over the SAN fabric — the TCP model
 * under the iSCSI rival backend (DESIGN.md §11).
 *
 * Models the pieces of paper-era TCP that determine host overhead and
 * loss recovery, at message granularity:
 *
 *  - MSS segmentation: a message becomes ceil(bytes / mss) segments,
 *    each a fabric Packet of payload + header_bytes on the wire;
 *    messages never share a segment (the sender pushes at PDU
 *    boundaries, as an iSCSI initiator/target would).
 *  - Cumulative acknowledgement with segment-granularity sequence
 *    numbers, delayed ACKs (one per ack_every data segments, plus an
 *    immediate ACK on every message-final segment — so no delayed-ACK
 *    timer is needed: the push at a PDU boundary always forces one).
 *  - Go-back-N loss recovery: out-of-order segments are discarded and
 *    answered with an immediate duplicate ACK; dupack_threshold
 *    duplicates trigger fast retransmit, a quiet retransmission
 *    timeout (RTO) does the rest. Both resend from the first unacked
 *    segment (Tahoe-style).
 *  - Slow start / congestion avoidance: cwnd doubles per RTT below
 *    ssthresh, then grows one segment per RTT; any loss signal halves
 *    ssthresh and collapses cwnd to initial_cwnd.
 *
 * Losses are never generated here: segments are dropped or damaged
 * only by the fabric's fault filters (vi::FaultInjector). The stream
 * itself consumes no randomness at all, so a fault-free run leaves
 * every RNG stream untouched and stays bit-identical with or without
 * this transport in the process (the determinism contract, §8).
 * Damaged packets are *delivered* by the fabric with a taint bit; an
 * accepted tainted segment taints the whole reassembled message, and
 * it is the iSCSI digests above — not the modeled Internet checksum —
 * that must catch it, mirroring the real-world argument for RFC 3720
 * digests.
 *
 * CPU is never charged here either (net/ cannot see osmodel/): the
 * stream only *counts* work. A caller that models host cost installs
 * an rx-notify hook (setRxNotify + armRx, the same one-shot arming
 * discipline as a VI completion queue) and drains packets itself via
 * processOnePacket(), which returns the segment/byte/ACK tallies to
 * convert into HostCosts charges. With no hook installed, packets are
 * processed inline on delivery — convenient for transport-only tests.
 *
 * Deliberate simplifications, documented here so the model's edges
 * are explicit: one connection per stream (every paper configuration
 * pairs one initiator with one target port); the handshake is not
 * retransmitted (connect before arming faults); the base RTO is a
 * fixed config.rto rather than an SRTT estimate (SAN round trips are
 * tens of microseconds and near-constant, so an estimator would
 * converge to a constant anyway — the real 200 ms minimum RTO would
 * only inflate recovery latency without changing host-overhead
 * results), though back-to-back timeouts do apply the standard
 * binary exponential backoff, doubling the timeout up to
 * config.max_rto and resetting on the next new cumulative ACK (RFC
 * 6298 §5.5-5.7) — without it, sustained overload degenerates into a
 * constant-rate retransmit storm; and timer-driven retransmits
 * charge no CPU (they exist only under injected faults or overload,
 * where recovery latency, not overhead, is the measured quantity).
 */

#ifndef V3SIM_NET_TCP_STREAM_HH
#define V3SIM_NET_TCP_STREAM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace v3sim::net
{

/** Static per-connection TCP parameters. */
struct TcpConfig
{
    /** Maximum segment size (payload bytes per segment). The
     *  Ethernet-era default; iSCSI PDUs larger than this fragment. */
    uint32_t mss = 1460;

    /** Wire overhead per data segment (Ethernet + IP + TCP headers,
     *  14+20+20 plus preamble/FCS rounded). */
    uint32_t header_bytes = 58;

    /** Wire size of a pure ACK segment. */
    uint32_t ack_wire_bytes = 58;

    /** Initial congestion window, in segments (RFC 2581). */
    uint32_t initial_cwnd = 2;

    /** Initial slow-start threshold, in segments. */
    uint32_t initial_ssthresh = 64;

    /** Flow-control clamp: cwnd never exceeds this many segments
     *  (models the peer's advertised receive window). */
    uint32_t max_window = 256;

    /** Base retransmission timeout (see file comment for why it is
     *  not an SRTT estimator). */
    sim::Tick rto = sim::msecs(2);

    /** Backoff ceiling: back-to-back timeouts double the effective
     *  RTO from config.rto up to this cap; a new cumulative ACK
     *  resets it to the base value. */
    sim::Tick max_rto = sim::msecs(64);

    /** Duplicate ACKs that trigger fast retransmit. */
    uint32_t dupack_threshold = 3;

    /** Delayed-ACK ratio: one cumulative ACK per this many in-order
     *  data segments (message-final segments always ACK at once). */
    uint32_t ack_every = 2;
};

/** One application message (an iSCSI PDU): a modeled size, an opaque
 *  payload pointer, and the in-flight damage taint accumulated over
 *  the segments that carried it. */
struct TcpMessage
{
    uint64_t bytes = 0;
    bool tainted = false;
    std::shared_ptr<void> payload;
    /** Same-tick send arbitration key (DESIGN.md §8.3). TCP sequence
     *  numbers freeze message order into the byte stream, so two
     *  coroutines calling sendMessage() on the same tick are a race;
     *  messages gather over the tick and are sequenced in one
     *  final-band pass ordered by this key (content — a buffer
     *  address, a transfer tag — never arrival order), then by
     *  submission for equal keys. */
    uint64_t order_key = 0;
};

/**
 * One endpoint of a TCP connection over the fabric. Construct two,
 * listen() on one, co_await connect(peer.port()) on the other, then
 * exchange messages.
 */
class TcpStream
{
  public:
    using MessageHandler = std::function<void(TcpMessage)>;

    /** Work performed by one processOnePacket() call, for the caller
     *  to convert into host CPU charges. */
    struct Work
    {
        /** In-order data segments accepted. */
        uint32_t data_segs = 0;
        /** Payload bytes in those segments (kernel->user copy and
         *  checksum work). */
        uint64_t data_bytes = 0;
        /** ACK segments processed (pure protocol work). */
        uint32_t ack_segs = 0;
        /** ACK segments this endpoint transmitted in response. */
        uint32_t acks_sent = 0;
        /** New or retransmitted data segments pumped out because the
         *  packet opened the window. */
        uint32_t segs_sent = 0;
        /** Messages fully reassembled and handed to the handler. */
        uint32_t msgs_delivered = 0;
    };

    /**
     * Attaches a port named @p name to @p fabric and registers
     * counters under @p metric_prefix (e.g. "iscsi.init.tcp").
     */
    TcpStream(sim::EventQueue &queue, Fabric &fabric,
              sim::MetricRegistry &metrics, std::string metric_prefix,
              std::string name, TcpConfig config = {});

    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    /** This endpoint's fabric port. */
    PortId port() const { return port_; }

    /** Passive open: adopt the first SYN that arrives. */
    void listen();

    /** Active open: handshake with a listening peer. Must complete
     *  before faults are armed (the handshake is not retransmitted). */
    sim::Task<> connect(PortId remote);

    bool connected() const { return connected_; }

    /** Installs the reassembled-message callback. */
    void setMessageHandler(MessageHandler handler)
    {
        on_message_ = std::move(handler);
    }

    /**
     * Queues @p message for transmission. Messages sent on the same
     * tick are sequenced in the tick's final band ordered by
     * TcpMessage::order_key (see there); segments then pump out up to
     * the congestion window, the rest following as ACKs open it.
     * Reliable: delivery is retried until acked.
     */
    void sendMessage(TcpMessage message);

    /** Segments a message of @p bytes will occupy (for tx-side cost
     *  accounting by the caller). */
    uint64_t segmentCount(uint64_t bytes) const
    {
        return (bytes + config_.mss - 1) / config_.mss;
    }

    /** @name Deferred receive processing
     * Cost-modeling callers take delivery in two phases, like a NIC
     * raising an interrupt: @p fn fires once when a packet arrives
     * while armed (one-shot — re-arm with armRx() after draining);
     * processOnePacket() then consumes one queued packet and reports
     * the work done. Without a notify hook, packets process inline.
     * @{ */
    void setRxNotify(std::function<void()> fn)
    {
        rx_notify_ = std::move(fn);
    }

    void armRx();

    bool rxPending() const { return !rx_queue_.empty(); }

    Work processOnePacket();
    /** @} */

    /** @name Introspection (tests, cost accounting) @{ */
    uint32_t cwnd() const { return cwnd_; }
    uint32_t ssthresh() const { return ssthresh_; }
    uint64_t sndUna() const { return snd_una_; }
    uint64_t sndNxt() const { return snd_nxt_; }
    uint64_t retransmitCount() const { return retransmits_.value(); }
    /** Effective RTO the next armed timer will use (base RTO doubled
     *  per back-to-back timeout, capped at max_rto). */
    sim::Tick currentRto() const;
    uint64_t segsSent() const { return segs_tx_.value(); }
    uint64_t acksSent() const { return acks_tx_.value(); }
    uint64_t acksReceived() const { return acks_rx_.value(); }
    uint64_t messagesDelivered() const { return msgs_rx_.value(); }
    const TcpConfig &config() const { return config_; }
    /** @} */

  private:
    /** Control header modeled on every packet (the payload pointer
     *  rides on the message-first segment only). */
    struct Seg
    {
        enum class Kind : uint8_t { Syn, SynAck, Data, Ack };
        Kind kind = Kind::Data;
        uint64_t seq = 0;       ///< Data: segment sequence number.
        uint64_t ack = 0;       ///< Ack: next expected sequence.
        uint32_t payload_bytes = 0;
        bool msg_first = false;
        bool msg_last = false;
        uint64_t msg_bytes = 0; ///< Valid when msg_first.
        std::shared_ptr<void> msg_payload; ///< Valid when msg_first.
    };

    /** An unacked or not-yet-sent message on the transmit side. */
    struct TxMsg
    {
        uint64_t start_seq = 0;
        uint64_t seg_count = 0;
        uint64_t bytes = 0;
        std::shared_ptr<void> payload;
    };

    void onPacket(Packet packet);
    void flushStaged();
    void handlePacket(const Packet &packet, Work &work);
    void handleData(const Seg &seg, bool wire_tainted, Work &work);
    void handleAck(const Seg &seg, Work &work);
    void sendSegment(uint64_t seq, Work *work);
    void sendAck(Work *work);
    void sendControl(Seg::Kind kind);
    void pump(Work *work);
    void onLossSignal();
    void armRto();
    void onRto();
    const TxMsg &msgForSeq(uint64_t seq) const;

    sim::EventQueue &queue_;
    Fabric &fabric_;
    TcpConfig config_;
    std::string metric_prefix_;

    PortId port_ = kInvalidPort;
    PortId peer_ = kInvalidPort;
    bool listening_ = false;
    bool connected_ = false;
    sim::Completion<> connect_done_;

    // Transmit state (segment-granularity sequence space).
    /** Same-tick sendMessage() calls awaiting the final-band
     *  sequencing pass (sorted by order_key there). */
    std::vector<TcpMessage> tx_staged_;
    bool tx_flush_scheduled_ = false;
    std::deque<TxMsg> tx_msgs_;
    uint64_t tx_next_seq_ = 0; ///< First seq past the queued messages.
    uint64_t snd_una_ = 0;
    uint64_t snd_nxt_ = 0;
    uint64_t max_sent_ = 0;    ///< Highest seq ever transmitted + 1.
    uint32_t cwnd_;
    uint32_t ssthresh_;
    uint32_t cwnd_acc_ = 0;    ///< Congestion-avoidance accumulator.
    uint32_t dupacks_ = 0;
    /** Back-to-back timeout count since the last new cumulative ACK;
     *  each one doubles the effective RTO (capped at max_rto). */
    uint32_t rto_backoff_ = 0;
    sim::EventQueue::Handle rto_timer_;

    // Receive state.
    uint64_t rcv_nxt_ = 0;
    uint32_t unacked_segs_ = 0;
    uint64_t cur_msg_bytes_ = 0;
    uint64_t cur_msg_received_ = 0;
    bool cur_msg_tainted_ = false;
    std::shared_ptr<void> cur_msg_payload_;
    MessageHandler on_message_;

    // Deferred rx processing.
    std::deque<Packet> rx_queue_;
    std::function<void()> rx_notify_;
    bool rx_armed_ = false;

    sim::CounterHandle segs_tx_;
    sim::CounterHandle segs_rx_;
    sim::CounterHandle acks_tx_;
    sim::CounterHandle acks_rx_;
    sim::CounterHandle retransmits_;
    sim::CounterHandle bytes_tx_;
    sim::CounterHandle msgs_rx_;
};

} // namespace v3sim::net

#endif // V3SIM_NET_TCP_STREAM_HH
