/**
 * @file
 * Point-to-point system-area-network fabric model.
 *
 * Models a Giganet-class switched SAN at the level the paper's
 * results depend on: per-port transmit serialization at link
 * bandwidth, a fixed propagation/switching delay, and in-order
 * delivery per (src, dst) pair. Receive-side contention is not
 * modelled because every experimental configuration in the paper
 * pairs one client NIC with one storage-node NIC (8 cLan NICs to 8
 * V3 nodes in the large setup); the VI layer on top adds NIC
 * processing costs and enforces the cLan 64K-64-byte maximum packet
 * size by fragmenting transfers.
 *
 * Payloads are opaque shared pointers: the fabric moves simulation
 * objects, while the modelled *wire size* is carried separately so
 * control headers and RDMA data can weigh what the real wire would.
 *
 * A drop filter supports fault injection (lost packets, severed
 * links) used to exercise DSA retransmission and reconnection. Ports
 * can additionally be marked down (setPortUp), modelling a whole
 * node/NIC leaving the fabric: packets to or from a down port vanish
 * silently, including packets already in flight towards it — exactly
 * what a powered-off node looks like to its peers.
 */

#ifndef V3SIM_NET_FABRIC_HH
#define V3SIM_NET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace v3sim::net
{

/** Identifies an attached port (NIC) on the fabric. */
using PortId = uint32_t;

constexpr PortId kInvalidPort = UINT32_MAX;

/** One message in flight: routing metadata plus an opaque payload. */
struct Packet
{
    PortId src = kInvalidPort;
    PortId dst = kInvalidPort;
    uint64_t wire_bytes = 0;
    /**
     * Fault injection: the packet's payload was damaged in flight.
     * The fabric delivers it anyway — the link-level CRC that would
     * catch a clean wire flip is a hop-local defence, and the
     * corruption classes the integrity work targets (bad NIC
     * buffers, DMA errors) get past it — so the receiving NIC model
     * applies the damage and end-to-end digests must detect it.
     */
    bool corrupted = false;
    /**
     * Determinism arbitration key (DESIGN.md §8.3): orders this
     * packet against others submitted to the same transmit queue on
     * the same tick. Senders derive it from message content (request
     * offset, transfer tag), never from arrival order; equal keys
     * keep submission order, so fragments of one transfer stay
     * sequential.
     */
    uint64_t order_key = 0;
    std::shared_ptr<void> payload;
};

/** Static fabric parameters. */
struct FabricConfig
{
    /** Link bandwidth in bytes/second. Giganet cLan end-to-end user
     *  bandwidth is ~110 MB/s (paper section 4). */
    double bandwidth_bps = 110e6;

    /** Fixed propagation + switch latency per packet. Chosen so that
     *  a 64-byte message plus VI send/receive processing lands at the
     *  paper's 7 us one-way figure. */
    sim::Tick propagation = sim::usecs(2);
};

/**
 * The switched fabric. Attach ports, then send packets between them.
 * Delivery calls the destination port's handler after transmit
 * serialization and propagation.
 */
class Fabric
{
  public:
    using Handler = std::function<void(Packet)>;

    /** Returns true to drop the packet (fault injection hook). */
    using DropFilter = std::function<bool(const Packet &)>;

    /** Returns true to corrupt the packet's payload in flight
     *  (fault injection hook; see Packet::corrupted). */
    using CorruptFilter = std::function<bool(const Packet &)>;

    Fabric(sim::EventQueue &queue, FabricConfig config = {});

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /** Attaches a port; @p handler receives delivered packets. */
    PortId attach(Handler handler, std::string name = "");

    /**
     * Sends @p packet.wire_bytes from packet.src to packet.dst.
     * The source port's transmitter serializes packets FIFO at link
     * bandwidth; delivery occurs one propagation delay later.
     * Sending to a detached or invalid port drops the packet.
     *
     * @param on_wire optional; fires when the packet has finished
     *        serializing onto the link (the moment a NIC would
     *        retire the send descriptor). Fires even for packets the
     *        drop filter will discard (the sender cannot tell).
     */
    void send(Packet packet, std::function<void()> on_wire = {});

    /** Installs (or clears, with nullptr) the drop filter. */
    void setDropFilter(DropFilter filter) { drop_filter_ = std::move(filter); }

    /** Installs (or clears, with nullptr) the corrupt filter. It is
     *  consulted only for packets that are not dropped. */
    void
    setCorruptFilter(CorruptFilter filter)
    {
        corrupt_filter_ = std::move(filter);
    }

    /**
     * Marks a port down (node crash) or back up (restart). While a
     * port is down every packet to or from it is dropped silently —
     * peers get no notification, matching a real node failure. Down
     * ports also swallow packets that were already propagating
     * towards them when the port went down.
     */
    void setPortUp(PortId id, bool up);

    /** True when the port is attached and up. */
    bool portUp(PortId id) const;

    const FabricConfig &config() const { return config_; }

    size_t portCount() const { return ports_.size(); }
    const std::string &portName(PortId id) const;

    /** Bytes handed to the wire by @p port (excludes dropped). */
    uint64_t bytesSent(PortId port) const;

    /** Packets delivered to @p port. */
    uint64_t packetsDelivered(PortId port) const;

    /** Packets removed by the drop filter. */
    uint64_t packetsDropped() const { return dropped_.value(); }

    /** Packets damaged by the corrupt filter. */
    uint64_t packetsCorrupted() const { return corrupted_.value(); }

    /** Transmit-queue utilization of @p port over the run. */
    double txUtilization(PortId port) const;

  private:
    struct PortState
    {
        Handler handler;
        std::string name;
        std::unique_ptr<sim::ServerPool> tx;
        bool up = true;
        sim::Counter bytes_sent;
        sim::Counter delivered;
    };

    void deliver(Packet packet);

    sim::EventQueue &queue_;
    FabricConfig config_;
    std::vector<std::unique_ptr<PortState>> ports_;
    DropFilter drop_filter_;
    CorruptFilter corrupt_filter_;
    sim::Counter dropped_;
    sim::Counter corrupted_;
};

} // namespace v3sim::net

#endif // V3SIM_NET_FABRIC_HH
