#include "net/tcp_stream.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace v3sim::net
{

TcpStream::TcpStream(sim::EventQueue &queue, Fabric &fabric,
                     sim::MetricRegistry &metrics,
                     std::string metric_prefix, std::string name,
                     TcpConfig config)
    : queue_(queue), fabric_(fabric), config_(config),
      metric_prefix_(std::move(metric_prefix)),
      cwnd_(config.initial_cwnd), ssthresh_(config.initial_ssthresh),
      segs_tx_(metrics.counter(metric_prefix_ + ".segs_tx")),
      segs_rx_(metrics.counter(metric_prefix_ + ".segs_rx")),
      acks_tx_(metrics.counter(metric_prefix_ + ".acks_tx")),
      acks_rx_(metrics.counter(metric_prefix_ + ".acks_rx")),
      retransmits_(metrics.counter(metric_prefix_ + ".retransmits")),
      bytes_tx_(metrics.counter(metric_prefix_ + ".bytes_tx")),
      msgs_rx_(metrics.counter(metric_prefix_ + ".msgs_rx"))
{
    assert(config_.mss > 0 && config_.initial_cwnd > 0);
    port_ = fabric_.attach(
        [this](Packet packet) { onPacket(std::move(packet)); },
        std::move(name));
}

void
TcpStream::listen()
{
    listening_ = true;
}

sim::Task<>
TcpStream::connect(PortId remote)
{
    assert(!connected_ && !listening_);
    peer_ = remote;
    sendControl(Seg::Kind::Syn);
    co_await connect_done_.wait();
}

void
TcpStream::sendMessage(TcpMessage message)
{
    assert(connected_ && message.bytes > 0);
    // Deferred to the tick's final band: sequence numbers freeze
    // message order into the byte stream, and same-tick senders
    // arrive in tie-shuffled order (DESIGN.md §8.3). Gathering the
    // tick's messages and sequencing them by order_key makes the
    // stream a function of the contender set. Zero simulated time
    // passes before the flush, so timing is unchanged.
    tx_staged_.push_back(std::move(message));
    if (!tx_flush_scheduled_) {
        tx_flush_scheduled_ = true;
        queue_.scheduleFinal([this] { flushStaged(); });
    }
}

void
TcpStream::flushStaged()
{
    // Cleared first: a handler resumed downstream may send again this
    // tick, scheduling a fresh (later) final-band batch.
    tx_flush_scheduled_ = false;
    std::vector<TcpMessage> batch = std::move(tx_staged_);
    tx_staged_.clear();
    // stable_sort: equal keys keep submission order, per the same
    // (order_key, submission) rule as ServerPool admission.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const TcpMessage &a, const TcpMessage &b) {
                         return a.order_key < b.order_key;
                     });
    for (TcpMessage &message : batch) {
        TxMsg msg;
        msg.start_seq = tx_next_seq_;
        msg.seg_count = segmentCount(message.bytes);
        msg.bytes = message.bytes;
        msg.payload = std::move(message.payload);
        tx_next_seq_ += msg.seg_count;
        tx_msgs_.push_back(std::move(msg));
    }
    pump(nullptr);
}

void
TcpStream::armRx()
{
    rx_armed_ = true;
    if (!rx_queue_.empty() && rx_notify_) {
        rx_armed_ = false;
        rx_notify_();
    }
}

TcpStream::Work
TcpStream::processOnePacket()
{
    assert(!rx_queue_.empty());
    Work work;
    Packet packet = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    handlePacket(packet, work);
    return work;
}

void
TcpStream::onPacket(Packet packet)
{
    rx_queue_.push_back(std::move(packet));
    if (rx_notify_) {
        if (rx_armed_) {
            rx_armed_ = false;
            rx_notify_();
        }
        return;
    }
    // Transport-only mode: process inline on delivery. Handlers may
    // send, but fabric delivery is always via a scheduled event, so
    // this loop cannot re-enter.
    while (!rx_queue_.empty())
        processOnePacket();
}

void
TcpStream::handlePacket(const Packet &packet, Work &work)
{
    auto seg = std::static_pointer_cast<const Seg>(packet.payload);
    switch (seg->kind) {
    case Seg::Kind::Syn:
        // Adopt the first active opener; late SYNs are ignored (one
        // connection per stream).
        if (listening_ && peer_ == kInvalidPort) {
            peer_ = packet.src;
            connected_ = true;
            sendControl(Seg::Kind::SynAck);
        }
        break;
    case Seg::Kind::SynAck:
        if (!connected_) {
            connected_ = true;
            connect_done_.set();
        }
        break;
    case Seg::Kind::Data:
        handleData(*seg, packet.corrupted, work);
        break;
    case Seg::Kind::Ack:
        // Damage to a header-only segment is caught by the real TCP
        // checksum and behaves like a drop; taint is ignored here.
        handleAck(*seg, work);
        break;
    }
}

void
TcpStream::handleData(const Seg &seg, bool wire_tainted, Work &work)
{
    if (seg.seq != rcv_nxt_) {
        // Go-back-N: discard out-of-order (or duplicate) data and
        // answer with an immediate duplicate ACK for what we expect.
        sendAck(&work);
        return;
    }
    ++rcv_nxt_;
    segs_rx_.increment();
    ++work.data_segs;
    work.data_bytes += seg.payload_bytes;
    if (seg.msg_first) {
        cur_msg_bytes_ = seg.msg_bytes;
        cur_msg_payload_ = seg.msg_payload;
        cur_msg_tainted_ = false;
        cur_msg_received_ = 0;
    }
    cur_msg_tainted_ = cur_msg_tainted_ || wire_tainted;
    cur_msg_received_ += seg.payload_bytes;
    ++unacked_segs_;
    if (seg.msg_last) {
        assert(cur_msg_received_ == cur_msg_bytes_);
        TcpMessage message;
        message.bytes = cur_msg_bytes_;
        message.tainted = cur_msg_tainted_;
        message.payload = std::move(cur_msg_payload_);
        msgs_rx_.increment();
        ++work.msgs_delivered;
        sendAck(&work); // the PDU-boundary push forces an ACK
        if (on_message_)
            on_message_(std::move(message));
    } else if (unacked_segs_ >= config_.ack_every) {
        sendAck(&work);
    }
}

void
TcpStream::handleAck(const Seg &seg, Work &work)
{
    acks_rx_.increment();
    ++work.ack_segs;
    if (seg.ack > snd_una_) {
        uint64_t acked = seg.ack - snd_una_;
        snd_una_ = seg.ack;
        dupacks_ = 0;
        // Forward progress: the peer is alive, so back-to-back
        // timeout backoff (if any) resets to the base RTO.
        rto_backoff_ = 0;
        for (uint64_t i = 0; i < acked; ++i) {
            if (cwnd_ < ssthresh_) {
                ++cwnd_; // slow start: +1 per acked segment
            } else {
                // Congestion avoidance: +1 per window of ACKs,
                // tracked with an integer accumulator.
                if (++cwnd_acc_ >= cwnd_) {
                    cwnd_acc_ = 0;
                    ++cwnd_;
                }
            }
        }
        cwnd_ = std::min(cwnd_, config_.max_window);
        while (!tx_msgs_.empty() &&
               tx_msgs_.front().start_seq +
                       tx_msgs_.front().seg_count <=
                   snd_una_)
            tx_msgs_.pop_front();
        rto_timer_.cancel();
        pump(&work);
    } else if (seg.ack == snd_una_ && snd_una_ < snd_nxt_) {
        if (++dupacks_ >= config_.dupack_threshold) {
            dupacks_ = 0;
            onLossSignal();
            snd_nxt_ = snd_una_; // fast retransmit, Tahoe-style
            rto_timer_.cancel();
            pump(&work);
        }
    }
}

void
TcpStream::sendSegment(uint64_t seq, Work *work)
{
    const TxMsg &msg = msgForSeq(seq);
    uint64_t offset = seq - msg.start_seq;
    auto seg = std::make_shared<Seg>();
    seg->kind = Seg::Kind::Data;
    seg->seq = seq;
    seg->payload_bytes = static_cast<uint32_t>(std::min<uint64_t>(
        config_.mss, msg.bytes - offset * config_.mss));
    seg->msg_first = seq == msg.start_seq;
    seg->msg_last = seq == msg.start_seq + msg.seg_count - 1;
    if (seg->msg_first) {
        seg->msg_bytes = msg.bytes;
        seg->msg_payload = msg.payload;
    }
    uint64_t wire = seg->payload_bytes + config_.header_bytes;
    if (seq < max_sent_)
        retransmits_.increment();
    else
        max_sent_ = seq + 1;
    segs_tx_.increment();
    bytes_tx_.increment(wire);
    if (work != nullptr)
        ++work->segs_sent;
    Packet packet;
    packet.src = port_;
    packet.dst = peer_;
    packet.wire_bytes = wire;
    packet.payload = std::move(seg);
    fabric_.send(std::move(packet));
}

void
TcpStream::sendAck(Work *work)
{
    unacked_segs_ = 0;
    auto seg = std::make_shared<Seg>();
    seg->kind = Seg::Kind::Ack;
    seg->ack = rcv_nxt_;
    acks_tx_.increment();
    if (work != nullptr)
        ++work->acks_sent;
    Packet packet;
    packet.src = port_;
    packet.dst = peer_;
    packet.wire_bytes = config_.ack_wire_bytes;
    packet.payload = std::move(seg);
    fabric_.send(std::move(packet));
}

void
TcpStream::sendControl(Seg::Kind kind)
{
    auto seg = std::make_shared<Seg>();
    seg->kind = kind;
    Packet packet;
    packet.src = port_;
    packet.dst = peer_;
    packet.wire_bytes = config_.header_bytes;
    packet.payload = std::move(seg);
    fabric_.send(std::move(packet));
}

void
TcpStream::pump(Work *work)
{
    uint64_t window =
        std::min<uint64_t>(cwnd_, config_.max_window);
    while (snd_nxt_ < tx_next_seq_ &&
           snd_nxt_ - snd_una_ < window) {
        sendSegment(snd_nxt_, work);
        ++snd_nxt_;
    }
    if (snd_una_ < snd_nxt_ && !rto_timer_.pending())
        armRto();
}

void
TcpStream::onLossSignal()
{
    uint64_t flight = snd_nxt_ - snd_una_;
    ssthresh_ = static_cast<uint32_t>(
        std::max<uint64_t>(flight / 2, 2));
    cwnd_ = config_.initial_cwnd;
    cwnd_acc_ = 0;
}

sim::Tick
TcpStream::currentRto() const
{
    // Binary exponential backoff, saturating at max_rto. The shift
    // count is bounded by the doubling guard in onRto(), so the shift
    // itself cannot overflow.
    sim::Tick rto = config_.rto << rto_backoff_;
    return std::min(rto, std::max(config_.max_rto, config_.rto));
}

void
TcpStream::armRto()
{
    rto_timer_ = queue_.scheduleCancelable(currentRto(),
                                           [this] { onRto(); });
}

void
TcpStream::onRto()
{
    if (snd_una_ >= snd_nxt_)
        return;
    // Each back-to-back timeout doubles the next timer (RFC 6298
    // §5.5-5.7); a new cumulative ACK in handleAck resets it.
    if (currentRto() < config_.max_rto)
        ++rto_backoff_;
    onLossSignal();
    dupacks_ = 0;
    snd_nxt_ = snd_una_;
    // Timer-driven recovery charges no host CPU: it only happens
    // under injected faults, where the measured quantity is recovery
    // latency, not overhead (see file comment in the header).
    pump(nullptr);
}

const TcpStream::TxMsg &
TcpStream::msgForSeq(uint64_t seq) const
{
    // Outstanding messages are bounded by the window, so the scan is
    // short; fully acked messages were popped in handleAck.
    for (const TxMsg &msg : tx_msgs_) {
        if (seq >= msg.start_seq && seq < msg.start_seq + msg.seg_count)
            return msg;
    }
    assert(false && "sequence outside queued messages");
    return tx_msgs_.front();
}

} // namespace v3sim::net
