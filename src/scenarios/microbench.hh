/**
 * @file
 * Micro-benchmark rig for the paper's section 5 experiments.
 *
 * "In our experiments, the V3 configuration uses two nodes, a single
 * application client that runs our micro-benchmark and a single
 * storage node that presents a virtual disk to the application
 * client. The local case uses a locally-attached disk, without any
 * V3 software." (section 5)
 *
 * The rig builds exactly that, measures request latency (with the
 * Figure 4 breakdown: client CPU overhead / node-to-node / V3 server
 * time), closed-loop throughput at a chosen outstanding-request
 * count, and the raw-VI reference latency of Figure 3 (the
 * register / send / RDMA-response / interrupt / deregister cycle the
 * paper lists step by step).
 */

#ifndef V3SIM_SCENARIOS_MICROBENCH_HH
#define V3SIM_SCENARIOS_MICROBENCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "scenarios/testbed.hh"

namespace v3sim::scenarios
{

/** Micro-benchmark platform: one client, one storage target. */
class MicroRig
{
  public:
    struct Config
    {
        Backend backend = Backend::Cdsa;
        /** V3 server cache (0 = off, the Figure 7/8 setting). */
        uint64_t cache_bytes = 512ull * util::kMiB;
        int disks = 8;
        disk::DiskSpec disk_spec = disk::DiskSpec::scsi10k();
        dsa::DsaConfig dsa;
        uint64_t seed = 42;
    };

    explicit MicroRig(Config config);
    ~MicroRig();

    MicroRig(const MicroRig &) = delete;
    MicroRig &operator=(const MicroRig &) = delete;

    /** True once the client connected (Local is always ready). */
    bool ready() const { return ready_; }

    sim::Simulation &sim() { return testbed_->sim(); }
    osmodel::Node &host() { return testbed_->host(); }
    dsa::BlockDevice &device() { return testbed_->device(); }

    storage::V3Server *
    server()
    {
        auto &servers = testbed_->servers();
        return servers.empty() ? nullptr : servers.front().get();
    }

    /** Latency measurement with the Figure 4 breakdown. */
    struct LatencyResult
    {
        double mean_us = 0;         ///< end-to-end response time
        double cpu_overhead_us = 0; ///< host CPU busy per I/O
        double server_us = 0;       ///< V3-server-resident time
        /** Client-observed tail latency (log2-bucket histogram on
         *  the DSA client / local HBA path). @{ */
        double p50_us = 0;
        double p95_us = 0;
        double p99_us = 0;
        /** @} */
        /** mean - cpu - server: wire, NIC, and DMA time. */
        double
        wireUs() const
        {
            return std::max(0.0, mean_us - cpu_overhead_us - server_us);
        }
    };

    /**
     * Runs @p iterations sequential requests of @p size.
     * @param cached confine offsets to a pre-warmed region so every
     *        access hits the V3 cache (sections 5.1/5.2); otherwise
     *        offsets are uniform over the device (section 5.3).
     */
    LatencyResult measureLatency(uint64_t size, bool is_read,
                                 int iterations, bool cached);

    /** Closed-loop throughput with @p outstanding requests. */
    struct ThroughputResult
    {
        double mbps = 0;
        double mean_response_us = 0;
        double iops = 0;
        /** Host CPU busy per completed I/O over the window. */
        double cpu_us_per_io = 0;
    };

    ThroughputResult measureThroughput(uint64_t size, bool is_read,
                                       int outstanding,
                                       sim::Tick window, bool cached);

  private:
    /** Pre-warms the cached-region blocks (one read sweep). */
    void warmRegion(uint64_t size);

    Config config_;
    std::unique_ptr<Testbed> testbed_;
    bool ready_ = false;
    uint64_t warm_bytes_ = 0;
    sim::Addr buffer_pool_ = sim::kNullAddr;
    sim::Rng rng_;
};

/**
 * Raw VI round-trip latency (the Figure 3 "VI" series): client
 * registers a receive buffer, sends a 64-byte request, the server
 * RDMA-writes @p size bytes back (with immediate), the client takes
 * the completion interrupt and deregisters. Returns the mean
 * microseconds over @p iterations.
 */
double rawViLatencyUs(uint64_t size, int iterations,
                      uint64_t seed = 11);

} // namespace v3sim::scenarios

#endif // V3SIM_SCENARIOS_MICROBENCH_HH
