#include "testbed.hh"

#include <cassert>

namespace v3sim::scenarios
{

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Local: return "Local";
      case Backend::Kdsa: return "kDSA";
      case Backend::Wdsa: return "wDSA";
      case Backend::Cdsa: return "cDSA";
      case Backend::Iscsi: return "iSCSI";
    }
    return "?";
}

dsa::DsaImpl
backendImpl(Backend backend)
{
    switch (backend) {
      case Backend::Kdsa: return dsa::DsaImpl::Kdsa;
      case Backend::Wdsa: return dsa::DsaImpl::Wdsa;
      case Backend::Cdsa: return dsa::DsaImpl::Cdsa;
      case Backend::Local:
      case Backend::Iscsi: break;
    }
    assert(false && "backend has no DSA implementation");
    return dsa::DsaImpl::Kdsa;
}

HostParams
HostParams::midSize()
{
    HostParams params;
    params.cpus = 4;
    params.costs = osmodel::HostCosts::midSize();
    return params;
}

HostParams
HostParams::large()
{
    HostParams params;
    params.cpus = 32;
    params.costs = osmodel::HostCosts::large();
    return params;
}

StorageParams
StorageParams::midSize()
{
    StorageParams params;
    params.v3_nodes = 4;
    params.disks_per_node = 15;
    params.disk_spec = disk::DiskSpec::scsi10k();
    // Table 2: 1.6 GB V3 cache per node, scaled by kTpccScale.
    params.cache_bytes_per_node =
        1600ull * util::kMiB / kTpccScale;
    params.local_disks = 176; // Table 1
    return params;
}

StorageParams
StorageParams::large()
{
    StorageParams params;
    params.v3_nodes = 8;
    params.disks_per_node = 80;
    params.disk_spec = disk::DiskSpec::fc15k();
    // Table 2: 2.4 GB V3 cache per node, scaled.
    params.cache_bytes_per_node =
        2400ull * util::kMiB / kTpccScale;
    params.local_disks = 640; // Table 1
    return params;
}

Testbed::Testbed(Backend backend, HostParams host_params,
                 StorageParams storage_params,
                 dsa::DsaConfig dsa_config, uint64_t seed)
    : backend_(backend),
      storage_params_(storage_params),
      sim_(seed),
      fabric_(sim_.queue())
{
    faults_ = std::make_unique<vi::FaultInjector>(sim_, fabric_);
    host_ = std::make_unique<osmodel::Node>(
        sim_, osmodel::NodeConfig{"db", host_params.cpus,
                                  host_params.costs,
                                  host_params.phantom_memory});

    if (backend_ == Backend::Local) {
        const int count =
            storage_params_.local_disks > 0
                ? storage_params_.local_disks
                : storage_params_.v3_nodes *
                      storage_params_.disks_per_node;
        std::vector<disk::Volume *> parts;
        for (int i = 0; i < count; ++i) {
            local_disks_.push_back(std::make_unique<disk::Disk>(
                sim_, storage_params_.disk_spec, sim_.forkRng(),
                "local.d" + std::to_string(i),
                disk::SchedPolicy::Elevator,
                host_params.phantom_memory));
            local_parts_.push_back(
                std::make_unique<disk::SingleDiskVolume>(
                    *local_disks_.back()));
            parts.push_back(local_parts_.back().get());
        }
        local_volume_ = std::make_unique<disk::StripeVolume>(
            parts, storage_params_.stripe_unit);
        local_ = std::make_unique<dsa::LocalBackend>(*host_,
                                                     *local_volume_);
        device_ = local_.get();
        return;
    }

    if (backend_ == Backend::Iscsi) {
        // Rival transport: the same storage-node hardware as the V3
        // branch below (disks, cache size and policy, CPU count),
        // reached through one iSCSI/TCP session per node instead of
        // a VI connection. The host needs no VI NICs: each initiator
        // attaches a plain fabric port.
        assert(!storage_params_.mirrored &&
               "mirroring is a DSA-backend feature");
        std::vector<dsa::BlockDevice *> children;
        for (int n = 0; n < storage_params_.v3_nodes; ++n) {
            iscsi::TargetConfig target_config;
            target_config.name = "tgt." + std::to_string(n);
            target_config.cache_bytes =
                storage_params_.cache_bytes_per_node;
            target_config.cache_policy = storage_params_.cache_policy;
            target_config.phantom_memory = host_params.phantom_memory;
            target_config.admission = storage_params_.admission;
            auto target = std::make_unique<iscsi::Target>(
                sim_, fabric_, target_config);
            auto disks = target->diskManager().addDisks(
                storage_params_.disk_spec,
                target_config.name + ".d",
                storage_params_.disks_per_node,
                host_params.phantom_memory);
            const uint32_t volume =
                target->volumeManager().addStripedVolume(
                    disks, storage_params_.stripe_unit);
            target->start();

            iscsi::InitiatorConfig init_config;
            init_config.volume = volume;
            init_config.max_outstanding =
                storage_params_.request_credits;
            iscsi_initiators_.push_back(
                std::make_unique<iscsi::Initiator>(*host_, fabric_,
                                                   init_config));
            children.push_back(iscsi_initiators_.back().get());
            iscsi_targets_.push_back(std::move(target));
        }
        striped_ = std::make_unique<dsa::StripedDevice>(
            children, storage_params_.stripe_unit);
        device_ = striped_.get();
        return;
    }

    // V3 backend: one server per storage node, one client NIC per
    // server, one DSA connection per pair; the database volume
    // stripes across nodes.
    std::vector<dsa::BlockDevice *> children;
    for (int n = 0; n < storage_params_.v3_nodes; ++n) {
        storage::V3ServerConfig server_config;
        server_config.name = "v3." + std::to_string(n);
        server_config.cache_bytes =
            storage_params_.cache_bytes_per_node;
        server_config.cache_policy = storage_params_.cache_policy;
        server_config.request_credits =
            storage_params_.request_credits;
        server_config.staging_slots = storage_params_.staging_slots;
        server_config.phantom_memory = host_params.phantom_memory;
        server_config.admission = storage_params_.admission;
        auto server = std::make_unique<storage::V3Server>(
            sim_, fabric_, server_config);
        auto disks = server->diskManager().addDisks(
            storage_params_.disk_spec,
            server_config.name + ".d",
            storage_params_.disks_per_node,
            host_params.phantom_memory);
        const uint32_t volume =
            server->volumeManager().addStripedVolume(
                disks, storage_params_.stripe_unit);
        server->start();

        nics_.push_back(std::make_unique<vi::ViNic>(
            sim_, fabric_, host_->memory(),
            "db.nic" + std::to_string(n)));
        clients_.push_back(std::make_unique<dsa::DsaClient>(
            backendImpl(backend_), *host_, *nics_.back(),
            server->nic().port(), volume, dsa_config));
        children.push_back(clients_.back().get());
        servers_.push_back(std::move(server));
    }

    if (storage_params_.mirrored) {
        // RAID-10: adjacent nodes pair into mirrors, the volume
        // stripes across the pairs.
        assert(storage_params_.v3_nodes % 2 == 0 &&
               "mirroring pairs nodes; v3_nodes must be even");
        std::vector<dsa::BlockDevice *> stripe_children;
        for (size_t pair = 0; pair + 1 < children.size(); pair += 2) {
            dsa::MirrorConfig mirror_config = storage_params_.mirror;
            mirror_config.name =
                "m" + std::to_string(pair / 2);
            std::vector<dsa::MirrorReplica> legs;
            legs.push_back(dsa::MirrorReplica::forClient(
                *clients_[pair]));
            legs.push_back(dsa::MirrorReplica::forClient(
                *clients_[pair + 1]));
            mirrors_.push_back(std::make_unique<dsa::MirroredDevice>(
                sim_, host_->memory(), std::move(legs),
                mirror_config));
            stripe_children.push_back(mirrors_.back().get());
        }
        striped_ = std::make_unique<dsa::StripedDevice>(
            stripe_children, storage_params_.stripe_unit);
    } else {
        striped_ = std::make_unique<dsa::StripedDevice>(
            children, storage_params_.stripe_unit);
    }
    device_ = striped_.get();

    if (storage_params_.cluster) {
        // Promote the RAID-10 composition into a volume service:
        // a metadata service describing the geometry (genesis map,
        // every node Active), heartbeat detection over the nodes,
        // and the client-side directory routing epoch-checked I/O.
        assert(storage_params_.mirrored &&
               "cluster mode runs over node-level mirrors");
        cluster::PlacementMap genesis;
        genesis.stripe_unit = storage_params_.stripe_unit;
        for (size_t pair = 0; pair + 1 < servers_.size(); pair += 2) {
            cluster::ShardView shard;
            shard.replicas.push_back(cluster::ReplicaView{
                static_cast<int>(pair), cluster::ReplicaState::Active});
            shard.replicas.push_back(cluster::ReplicaView{
                static_cast<int>(pair + 1),
                cluster::ReplicaState::Active});
            genesis.shards.push_back(std::move(shard));
        }
        meta_service_ = std::make_unique<cluster::MetaService>(
            sim_, storage_params_.meta, std::move(genesis));

        std::vector<cluster::HeartbeatPeer> peers;
        for (auto &server : servers_) {
            storage::V3Server *srv = server.get();
            peers.push_back(cluster::HeartbeatPeer{
                srv->config().name,
                [srv] { return !srv->crashed(); },
                [srv] { return srv->bootEpoch(); }});
        }
        heartbeat_ = std::make_unique<cluster::HeartbeatMonitor>(
            sim_, storage_params_.heartbeat, std::move(peers));

        std::vector<dsa::MirroredDevice *> shard_mirrors;
        for (auto &mirror : mirrors_)
            shard_mirrors.push_back(mirror.get());
        directory_ = std::make_unique<cluster::VolumeDirectory>(
            sim_, *meta_service_, *heartbeat_,
            std::move(shard_mirrors), *striped_,
            storage_params_.directory);
        device_ = directory_.get();

        // Whole-box fault targets: node i and, on the first
        // meta.replicas boxes, its co-located metadata replica.
        for (size_t n = 0; n < servers_.size(); ++n) {
            auto target = std::make_unique<vi::CompositeFaultTarget>();
            target->add(*servers_[n]);
            if (n < static_cast<size_t>(meta_service_->replicaCount()))
                target->add(meta_service_->replica(
                    static_cast<int>(n)));
            composite_targets_.push_back(std::move(target));
        }
    }
}

Testbed::~Testbed() = default;

bool
Testbed::connectAll()
{
    if (backend_ == Backend::Local)
        return true;
    if (backend_ == Backend::Iscsi) {
        bool all_ok = true;
        int pending = static_cast<int>(iscsi_initiators_.size());
        for (size_t i = 0; i < iscsi_initiators_.size(); ++i) {
            sim::spawn([](iscsi::Initiator &init, net::PortId port,
                          bool &ok, int &remaining) -> sim::Task<> {
                if (!co_await init.connect(port))
                    ok = false;
                --remaining;
            }(*iscsi_initiators_[i], iscsi_targets_[i]->port(),
              all_ok, pending));
        }
        sim_.run();
        return all_ok && pending == 0;
    }
    bool all_ok = true;
    int pending = static_cast<int>(clients_.size());
    for (auto &client : clients_) {
        sim::spawn([](dsa::DsaClient &c, bool &ok,
                      int &remaining) -> sim::Task<> {
            if (!co_await c.connect())
                ok = false;
            --remaining;
        }(*client, all_ok, pending));
    }
    sim_.run();
    return all_ok && pending == 0;
}

std::vector<vi::NodeFaultTarget *>
Testbed::nodeTargets()
{
    std::vector<vi::NodeFaultTarget *> out;
    for (auto &target : composite_targets_)
        out.push_back(target.get());
    return out;
}

std::vector<storage::BlockCache *>
Testbed::caches()
{
    std::vector<storage::BlockCache *> out;
    for (auto &server : servers_)
        if (storage::BlockCache *cache = server->cache())
            out.push_back(cache);
    for (auto &target : iscsi_targets_)
        if (storage::BlockCache *cache = target->cache())
            out.push_back(cache);
    return out;
}

double
Testbed::serverCacheHitRatio() const
{
    uint64_t hits = 0, misses = 0;
    for (storage::BlockCache *cache :
         const_cast<Testbed *>(this)->caches()) {
        hits += cache->hits();
        misses += cache->misses();
    }
    const uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / total : 0.0;
}

double
Testbed::diskUtilization() const
{
    double sum = 0;
    int count = 0;
    for (const auto &server : servers_) {
        auto &manager =
            const_cast<storage::V3Server &>(*server).diskManager();
        for (size_t i = 0; i < manager.diskCount(); ++i) {
            sum += manager.disk(i).utilization();
            ++count;
        }
    }
    for (const auto &target : iscsi_targets_) {
        auto &manager =
            const_cast<iscsi::Target &>(*target).diskManager();
        for (size_t i = 0; i < manager.diskCount(); ++i) {
            sum += manager.disk(i).utilization();
            ++count;
        }
    }
    for (const auto &d : local_disks_) {
        sum += d->utilization();
        ++count;
    }
    return count ? sum / count : 0.0;
}

uint64_t
Testbed::hostInterrupts() const
{
    return const_cast<osmodel::Node &>(*host_)
        .interrupts()
        .interruptCount();
}

void
Testbed::resetStats()
{
    // One registry-wide epoch replaces the old per-component
    // resetStats() fan-out: every registered metric (clients,
    // servers, caches, disks, NICs, CPU pools) restarts here.
    sim_.metrics().resetEpoch();
}

} // namespace v3sim::scenarios
