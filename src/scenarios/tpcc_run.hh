/**
 * @file
 * The TPC-C experiment harness: assembles a platform (Tables 1/2), a
 * workload (section 6) and the database engine, runs a measurement
 * window, and reports the quantities the paper's Figures 9-14 plot.
 */

#ifndef V3SIM_SCENARIOS_TPCC_RUN_HH
#define V3SIM_SCENARIOS_TPCC_RUN_HH

#include <array>
#include <cstdint>
#include <string>

#include "db/oltp_engine.hh"
#include "scenarios/testbed.hh"
#include "tpcc/workload.hh"

namespace v3sim::scenarios
{

/** Platform selector. */
enum class Platform : uint8_t
{
    MidSize,
    Large,
};

/** One TPC-C experiment description. */
struct TpccRunConfig
{
    Backend backend = Backend::Cdsa;
    Platform platform = Platform::MidSize;
    dsa::DsaOptimizations opts = dsa::DsaOptimizations::all();
    storage::CachePolicy cache_policy = storage::CachePolicy::Mq;

    /** Local backend: directly attached disk count (Figure 13
     *  sweeps this); 0 keeps the platform default. */
    int local_disks = 0;

    /** 0 = platform default worker count. */
    int workers = 0;

    sim::Tick warmup = sim::msecs(300);
    sim::Tick window = sim::msecs(1500);
    uint64_t seed = 1;

    /** Nonzero arms EventQueue tie-shuffle with this seed before the
     *  run, for abl_determinism-style byte-identical double runs. */
    uint64_t tie_seed = 0;

    /** Optional DSA overrides for ablation sweeps (0 = default). */
    uint32_t intr_high_watermark = 0;
    uint32_t intr_low_watermark = 0;
    sim::Tick poll_interval = 0;
    uint32_t flow_credits = 0;
    int kdsa_extra_layers = 0;
};

/** Everything the figures need from one run. */
struct TpccRunResult
{
    db::OltpResult oltp;
    /** V3 server cache read-hit ratio (0 for Local). */
    double server_cache_hit = 0;
    double disk_utilization = 0;
    uint64_t host_interrupts = 0;
    uint64_t retransmits = 0;
    /** Simulator self-accounting for bench/selftime: total events the
     *  run's EventQueue fired and the simulated time it covered. */
    uint64_t events_fired = 0;
    sim::Tick sim_elapsed = 0;
    /** Full MetricRegistry snapshot (JSON), rendered before the
     *  testbed is torn down; benches attach it to their artifact. */
    std::string metrics_json;
};

/** Platform-default workload parameters (warehouses, skew, demand),
 *  scaled by kTpccScale (see testbed.hh). */
tpcc::TpccConfig platformWorkload(Platform platform);

/** Platform-default engine parameters. */
db::OltpConfig platformEngine(Platform platform, Backend backend,
                              const dsa::DsaOptimizations &opts =
                                  dsa::DsaOptimizations::all());

/** Runs one TPC-C experiment end to end. */
TpccRunResult runTpcc(const TpccRunConfig &config);

} // namespace v3sim::scenarios

#endif // V3SIM_SCENARIOS_TPCC_RUN_HH
