/**
 * @file
 * Experiment testbeds: the paper's platforms, ready to assemble.
 *
 * A Testbed wires one database host to storage through a chosen
 * backend:
 *  - Local: the paper's baseline — the same disks attached directly
 *    to the host behind the kernel driver stack;
 *  - Kdsa / Wdsa / Cdsa: one or more V3 storage nodes reached over
 *    the VI fabric, one client NIC per storage node (the paper's
 *    NIC-per-node pairing), with the database volume striped across
 *    nodes. With StorageParams::mirrored the nodes pair up into
 *    dsa::MirroredDevice replicas and the volume stripes across the
 *    mirrors (RAID-10), so availability experiments can crash nodes
 *    via faults() while I/O continues.
 *
 * Every testbed owns a vi::FaultInjector over its fabric (faults()),
 * so experiments can script packet loss, connection breaks and
 * node crash/restart schedules without extra wiring.
 *
 * Scaling note (documented in DESIGN.md): TPC-C testbeds shrink the
 * working set and server caches by a common factor so the simulation
 * holds millions of cache-metadata entries instead of billions of
 * bytes. Hit ratios depend on the cache:working-set *ratio*, which
 * the scaling preserves; disk counts, CPU counts and all path costs
 * stay at paper scale.
 */

#ifndef V3SIM_SCENARIOS_TESTBED_HH
#define V3SIM_SCENARIOS_TESTBED_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/heartbeat.hh"
#include "cluster/meta_service.hh"
#include "cluster/volume_directory.hh"
#include "disk/disk_spec.hh"
#include "disk/volume.hh"
#include "dsa/block_device.hh"
#include "dsa/dsa_client.hh"
#include "dsa/local_backend.hh"
#include "dsa/mirrored_device.hh"
#include "iscsi/initiator.hh"
#include "iscsi/target.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"
#include "vi/fault_injector.hh"

namespace v3sim::scenarios
{

/** Storage attachment under test. */
enum class Backend : uint8_t
{
    Local,
    Kdsa,
    Wdsa,
    Cdsa,
    /** The rival transport: software iSCSI over TCP (DESIGN.md §11).
     *  Same storage nodes as the DSA backends, reached through the
     *  kernel socket stack instead of VI. */
    Iscsi,
};

const char *backendName(Backend backend);

/** Maps Backend to the DSA implementation (not valid for Local). */
dsa::DsaImpl backendImpl(Backend backend);

/** Host-side parameters (Table 1). */
struct HostParams
{
    int cpus = 4;
    osmodel::HostCosts costs = osmodel::HostCosts::midSize();
    bool phantom_memory = false;

    static HostParams midSize();
    static HostParams large();
};

/** Storage-side parameters (Table 2). */
struct StorageParams
{
    int v3_nodes = 4;
    int disks_per_node = 15;
    disk::DiskSpec disk_spec = disk::DiskSpec::scsi10k();
    uint64_t cache_bytes_per_node = 200 * util::kMiB;
    storage::CachePolicy cache_policy = storage::CachePolicy::Mq;
    uint64_t stripe_unit = 64 * util::kKiB;
    /** Local backend: total directly attached disks (Fig 13 sweeps
     *  this); 0 means v3_nodes * disks_per_node. */
    int local_disks = 0;
    uint32_t request_credits = 64;
    uint32_t staging_slots = 32;

    /** Pair the V3 nodes into mirrors (RAID-1) and stripe across the
     *  pairs (RAID-10). Requires an even v3_nodes. */
    bool mirrored = false;
    dsa::MirrorConfig mirror;

    /**
     * Run the storage nodes as one fault-tolerant volume service
     * (src/cluster): placement-metadata service with lease-holding
     * primary, heartbeat failure detection, and a client-side volume
     * directory driving node-level failover. Requires mirrored. The
     * first meta.replicas nodes co-host a metadata replica (one
     * failure domain per box — see vi::CompositeFaultTarget).
     */
    bool cluster = false;
    cluster::MetaConfig meta;
    cluster::HeartbeatConfig heartbeat;
    cluster::DirectoryConfig directory;

    /** Overload control at every storage node (V3 servers and iSCSI
     *  targets alike; DESIGN.md §12). Disabled by default. */
    storage::AdmissionConfig admission;

    /** Mid-size: 4 nodes x 15 SCSI disks, 1.6 GB cache per node
     *  (scaled by kTpccScale). */
    static StorageParams midSize();

    /** Large: 8 nodes x 80 FC disks, 2.4 GB cache per node
     *  (scaled). */
    static StorageParams large();
};

/** Working-set / cache scale factor for TPC-C testbeds (see file
 *  comment). */
constexpr uint64_t kTpccScale = 32;

/** One assembled experiment platform. */
class Testbed
{
  public:
    Testbed(Backend backend, HostParams host_params,
            StorageParams storage_params,
            dsa::DsaConfig dsa_config = {}, uint64_t seed = 1);

    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;
    ~Testbed();

    /** Connects every DSA client (no-op for Local). Run to ready. */
    bool connectAll();

    sim::Simulation &sim() { return sim_; }
    net::Fabric &fabric() { return fabric_; }
    osmodel::Node &host() { return *host_; }
    Backend backend() const { return backend_; }

    /** The database-facing device (striped across V3 nodes, or the
     *  local volume). */
    dsa::BlockDevice &device() { return *device_; }

    std::vector<std::unique_ptr<storage::V3Server>> &servers()
    {
        return servers_;
    }

    std::vector<std::unique_ptr<dsa::DsaClient>> &clients()
    {
        return clients_;
    }

    dsa::LocalBackend *local() { return local_.get(); }

    /** iSCSI storage nodes (empty unless Backend::Iscsi). */
    std::vector<std::unique_ptr<iscsi::Target>> &iscsiTargets()
    {
        return iscsi_targets_;
    }

    /** iSCSI sessions, one per target (empty unless
     *  Backend::Iscsi). */
    std::vector<std::unique_ptr<iscsi::Initiator>> &iscsiInitiators()
    {
        return iscsi_initiators_;
    }

    /** Every storage-node block cache in the testbed, regardless of
     *  backend (V3 servers or iSCSI targets); empty for Local. */
    std::vector<storage::BlockCache *> caches();

    /** Mirror pairs (empty unless StorageParams::mirrored). */
    std::vector<std::unique_ptr<dsa::MirroredDevice>> &mirrors()
    {
        return mirrors_;
    }

    /** Fault injector over this testbed's fabric. */
    vi::FaultInjector &faults() { return *faults_; }

    /** Cluster control plane (null unless StorageParams::cluster). */
    cluster::MetaService *meta() { return meta_service_.get(); }
    cluster::HeartbeatMonitor *heartbeats()
    {
        return heartbeat_.get();
    }
    cluster::VolumeDirectory *directory()
    {
        return directory_.get();
    }

    /**
     * Whole-box fault targets, one per storage node (cluster mode
     * only): crashing target i takes out server i AND, on the first
     * meta.replicas nodes, its co-located metadata replica. Feed
     * these to faults().scheduleNodeOutage / startChaos.
     */
    std::vector<vi::NodeFaultTarget *> nodeTargets();

    /** Read hit ratio across all storage-node caches. */
    double serverCacheHitRatio() const;

    /** Mean disk utilization across all storage spindles. */
    double diskUtilization() const;

    /** Interrupts taken on the host since construction. */
    uint64_t hostInterrupts() const;

    /** Starts a fresh metric epoch: every metric registered with the
     *  simulation's MetricRegistry (clients, servers, caches, disks,
     *  NICs, CPU pools, fault injector) resets at once. */
    void resetStats();

  private:
    Backend backend_;
    StorageParams storage_params_;
    sim::Simulation sim_;
    net::Fabric fabric_;
    std::unique_ptr<vi::FaultInjector> faults_;
    std::unique_ptr<osmodel::Node> host_;

    std::vector<std::unique_ptr<storage::V3Server>> servers_;
    std::vector<std::unique_ptr<vi::ViNic>> nics_;
    std::vector<std::unique_ptr<dsa::DsaClient>> clients_;
    std::vector<std::unique_ptr<dsa::MirroredDevice>> mirrors_;
    std::vector<std::unique_ptr<iscsi::Target>> iscsi_targets_;
    std::vector<std::unique_ptr<iscsi::Initiator>> iscsi_initiators_;
    std::unique_ptr<dsa::StripedDevice> striped_;

    std::unique_ptr<cluster::MetaService> meta_service_;
    std::unique_ptr<cluster::HeartbeatMonitor> heartbeat_;
    std::unique_ptr<cluster::VolumeDirectory> directory_;
    std::vector<std::unique_ptr<vi::CompositeFaultTarget>>
        composite_targets_;

    std::vector<std::unique_ptr<disk::Disk>> local_disks_;
    std::vector<std::unique_ptr<disk::SingleDiskVolume>> local_parts_;
    std::unique_ptr<disk::StripeVolume> local_volume_;
    std::unique_ptr<dsa::LocalBackend> local_;

    dsa::BlockDevice *device_ = nullptr;
};

} // namespace v3sim::scenarios

#endif // V3SIM_SCENARIOS_TESTBED_HH
