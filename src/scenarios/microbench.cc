#include "microbench.hh"

#include <algorithm>

namespace v3sim::scenarios
{

using osmodel::CpuCat;
using osmodel::CpuLease;

MicroRig::MicroRig(Config config)
    : config_(std::move(config)), rng_(config_.seed ^ 0xABCDEF)
{
    HostParams host = HostParams::midSize();
    StorageParams storage;
    storage.v3_nodes = 1;
    storage.disks_per_node = config_.disks;
    storage.disk_spec = config_.disk_spec;
    storage.cache_bytes_per_node = config_.cache_bytes;
    storage.local_disks = config_.disks;

    testbed_ = std::make_unique<Testbed>(config_.backend, host,
                                         storage, config_.dsa,
                                         config_.seed);
    ready_ = testbed_->connectAll();

    // One shared scratch pool big enough for the largest request.
    buffer_pool_ =
        testbed_->host().memory().allocate(256 * util::kKiB);
}

MicroRig::~MicroRig() = default;

void
MicroRig::warmRegion(uint64_t size)
{
    // A modest region of distinct offsets that comfortably fits the
    // server cache; one sweep loads every block.
    const uint64_t region = std::min<uint64_t>(
        config_.cache_bytes ? config_.cache_bytes / 2 : 8 * util::kMiB,
        8 * util::kMiB);
    warm_bytes_ = std::max<uint64_t>(region, size);
    bool done = false;
    sim::spawn([](MicroRig *rig, uint64_t request, bool &flag)
                   -> sim::Task<> {
        for (uint64_t off = 0; off + request <= rig->warm_bytes_;
             off += request) {
            co_await rig->device().read(off, request,
                                        rig->buffer_pool_);
        }
        flag = true;
    }(this, std::max<uint64_t>(size, 8192), done));
    sim().run();
    (void)done;
}

MicroRig::LatencyResult
MicroRig::measureLatency(uint64_t size, bool is_read, int iterations,
                         bool cached)
{
    if (cached)
        warmRegion(size);

    testbed_->resetStats();
    sim::Sampler response;
    const uint64_t span =
        cached ? warm_bytes_
               : testbed_->device().capacity() - size;

    sim::spawn([](MicroRig *rig, uint64_t request, bool read_op,
                  int iters, uint64_t range,
                  sim::Sampler &out) -> sim::Task<> {
        sim::Simulation &s = rig->sim();
        for (int i = 0; i < iters; ++i) {
            const uint64_t offset =
                rig->rng_.uniformInt(0, range / request - 1) *
                request;
            const sim::Tick start = s.now();
            if (read_op) {
                co_await rig->device().read(offset, request,
                                            rig->buffer_pool_);
            } else {
                co_await rig->device().write(offset, request,
                                             rig->buffer_pool_);
            }
            out.add(static_cast<double>(s.now() - start));
        }
    }(this, size, is_read, iterations, span, response));

    const sim::Tick cpu_before = host().cpus().totalBusyTime();
    sim().run();

    LatencyResult result;
    result.mean_us = response.mean() / 1e3;
    result.cpu_overhead_us =
        sim::toUsecs(host().cpus().totalBusyTime() - cpu_before) /
        iterations;
    if (server() && server()->serverTime().count() > 0) {
        result.server_us = server()->serverTime().mean() / 1e3;
    } else if (!testbed_->iscsiTargets().empty()) {
        const auto &tgt = *testbed_->iscsiTargets().front();
        if (tgt.serverTime().count() > 0)
            result.server_us = tgt.serverTime().mean() / 1e3;
    }

    // Tail latency from the client-side histogram (DSA client for
    // V3 backends, the iSCSI session for Iscsi, the HBA path for
    // Local).
    const sim::Histogram *hist = nullptr;
    if (testbed_->local()) {
        hist = &testbed_->local()->latencyHistogram();
    } else if (!testbed_->clients().empty()) {
        hist = &testbed_->clients().front()->latencyHistogram();
    } else if (!testbed_->iscsiInitiators().empty()) {
        hist = &testbed_->iscsiInitiators()
                    .front()
                    ->latencyHistogram();
    }
    if (hist && hist->count() > 0) {
        result.p50_us = hist->quantile(0.50) / 1e3;
        result.p95_us = hist->quantile(0.95) / 1e3;
        result.p99_us = hist->quantile(0.99) / 1e3;
    }
    return result;
}

MicroRig::ThroughputResult
MicroRig::measureThroughput(uint64_t size, bool is_read,
                            int outstanding, sim::Tick window,
                            bool cached)
{
    if (cached)
        warmRegion(size);
    testbed_->resetStats();

    const uint64_t span =
        cached ? warm_bytes_
               : testbed_->device().capacity() - size;
    sim::Sampler response;
    uint64_t completed = 0;
    bool stop = false;

    for (int w = 0; w < outstanding; ++w) {
        sim::spawn([](MicroRig *rig, uint64_t request, bool read_op,
                      uint64_t range, sim::Sampler &out,
                      uint64_t &count, bool &halt) -> sim::Task<> {
            sim::Simulation &s = rig->sim();
            while (!halt) {
                const uint64_t offset =
                    rig->rng_.uniformInt(0, range / request - 1) *
                    request;
                const sim::Tick start = s.now();
                if (read_op) {
                    co_await rig->device().read(offset, request,
                                                rig->buffer_pool_);
                } else {
                    co_await rig->device().write(offset, request,
                                                 rig->buffer_pool_);
                }
                out.add(static_cast<double>(s.now() - start));
                ++count;
            }
        }(this, size, is_read, span, response, completed, stop));
    }

    const sim::Tick begin = sim().now();
    sim().runUntil(begin + window);
    const sim::Tick span_ticks = sim().now() - begin;
    stop = true;
    sim().run();

    ThroughputResult result;
    const double seconds = sim::toSecs(span_ticks);
    result.mbps = static_cast<double>(completed) *
                  static_cast<double>(size) / seconds / 1e6;
    result.iops = static_cast<double>(completed) / seconds;
    result.mean_response_us = response.mean() / 1e3;
    // resetStats() above started a fresh epoch, so the pool's busy
    // time covers exactly this measurement (window plus drain).
    if (completed > 0)
        result.cpu_us_per_io =
            sim::toUsecs(host().cpus().totalBusyTime()) /
            static_cast<double>(completed);
    return result;
}

double
rawViLatencyUs(uint64_t size, int iterations, uint64_t seed)
{
    // Build the minimal two-node VI setup the paper's raw test uses.
    sim::Simulation sim(seed);
    net::Fabric fabric(sim.queue());
    osmodel::Node client_node(
        sim, osmodel::NodeConfig{.name = "cli", .cpus = 1});
    osmodel::Node server_node(
        sim, osmodel::NodeConfig{.name = "srv", .cpus = 1});
    vi::ViNic client_nic(sim, fabric, client_node.memory(), "cli.nic");
    vi::ViNic server_nic(sim, fabric, server_node.memory(), "srv.nic");

    vi::CompletionQueue client_rcq("cli.rcq");
    vi::CompletionQueue server_rcq("srv.rcq");
    vi::ViEndpoint &client_ep =
        client_nic.createEndpoint(nullptr, &client_rcq);
    vi::ViEndpoint &server_ep =
        server_nic.createEndpoint(nullptr, &server_rcq);
    server_nic.setAcceptHandler(
        [&](net::PortId, vi::EndpointId) { return &server_ep; });

    // Pre-registered fixed resources (the paper's server sends from
    // a preregistered buffer; the client's request buffer is small
    // and long-lived).
    sim::MemorySpace &cmem = client_node.memory();
    sim::MemorySpace &smem = server_node.memory();
    const sim::Addr req_buf = cmem.allocate(64);
    const auto req_handle =
        client_nic.registry().registerMemory(req_buf, 64, true);
    const sim::Addr srv_req_buf = smem.allocate(64);
    const auto srv_req_handle =
        server_nic.registry().registerMemory(srv_req_buf, 64, true);
    const sim::Addr srv_data = smem.allocate(size);
    const auto srv_data_handle =
        server_nic.registry().registerMemory(srv_data, size, true);

    const sim::Addr data_buf = cmem.allocate(size);

    // Server: poll for requests, respond with RDMA + immediate
    // (polling on the server per section 5.1).
    sim::spawn([](vi::ViNic &nic, vi::ViEndpoint &ep,
                  vi::CompletionQueue &rcq, sim::Addr reply_src,
                  vi::MemHandle reply_handle, uint64_t reply_len,
                  sim::Addr req_target,
                  vi::MemHandle req_handle_) -> sim::Task<> {
        for (;;) {
            vi::WorkDescriptor recv;
            recv.local_addr = req_target;
            recv.len = 64;
            nic.postRecv(ep, recv, req_handle_);
            const vi::WorkCompletion completion = co_await rcq.next();
            if (completion.status != vi::WorkStatus::Ok)
                co_return;
            auto target = std::static_pointer_cast<sim::Addr>(
                completion.control);
            vi::WorkDescriptor rdma;
            rdma.local_addr = reply_src;
            rdma.len = reply_len;
            rdma.remote_addr = *target;
            rdma.has_immediate = true;
            rdma.immediate = 1;
            nic.postRdmaWrite(ep, rdma, reply_handle);
        }
    }(server_nic, server_ep, server_rcq, srv_data, srv_data_handle->handle,
      size, srv_req_buf, srv_req_handle->handle));

    client_nic.connect(client_ep, server_nic.port());
    sim.run();

    // The measured loop, with client-side costs charged per the
    // paper's step list.
    sim::Sampler latency;
    sim::spawn([](sim::Simulation &s, osmodel::Node &node,
                  vi::ViNic &nic, vi::ViEndpoint &ep,
                  vi::CompletionQueue &rcq, sim::Addr req,
                  vi::MemHandle req_h, sim::Addr data, uint64_t len,
                  int iters, sim::Sampler &out) -> sim::Task<> {
        for (int i = 0; i < iters; ++i) {
            const sim::Tick start = s.now();
            CpuLease lease = co_await node.cpus().acquire();

            // (1) register the receive buffer dynamically.
            auto reg = nic.registry().registerMemory(data, len, false);
            co_await lease.run(reg ? reg->cost : 0, CpuCat::Vi);

            // (2) post a receive for the immediate + send the 64-byte
            // request.
            vi::WorkDescriptor recv;
            recv.local_addr = req;
            recv.len = 64;
            nic.postRecv(ep, recv, req_h);
            rcq.arm();
            sim::Completion<> got;
            rcq.setInterruptSink([&got, &node] {
                node.interrupts().raise(
                    [&got](CpuLease) -> sim::Task<> {
                        got.set();
                        co_return;
                    });
            });

            vi::WorkDescriptor send;
            send.local_addr = req;
            send.len = 64;
            send.control = std::make_shared<sim::Addr>(data);
            co_await lease.run(nic.costs().doorbell, CpuCat::Vi);
            nic.postSend(ep, send, req_h);
            node.cpus().release();

            // (5) interrupt on the completion queue.
            co_await got.wait();

            lease = co_await node.cpus().acquire();
            co_await lease.run(nic.costs().cq_poll, CpuCat::Vi);
            rcq.poll();
            // (6) deregister.
            auto dereg = nic.registry().deregister(reg->handle);
            co_await lease.run(dereg.value_or(0), CpuCat::Vi);
            node.cpus().release();

            out.add(static_cast<double>(s.now() - start));
        }
    }(sim, client_node, client_nic, client_ep, client_rcq, req_buf,
      req_handle->handle, data_buf, size, iterations, latency));

    sim.run();
    return latency.mean() / 1e3;
}

} // namespace v3sim::scenarios
