#include "tpcc_run.hh"

namespace v3sim::scenarios
{

tpcc::TpccConfig
platformWorkload(Platform platform)
{
    tpcc::TpccConfig config;
    config.page_size = 8192;
    config.read_fraction = 0.70;
    config.ios_per_txn = 8.0;
    config.cpu_per_txn = sim::usecs(1000);

    if (platform == Platform::Large) {
        // Table 1: 10,000 warehouses, ~1 TB working set (section
        // 6.1), scaled by kTpccScale.
        config.warehouses = 10000;
        config.bytes_per_warehouse = 100 * util::kMiB / kTpccScale;
        // Skew sized so the 8 x 2.4 GB V3 caches catch a useful
        // fraction of reads on a 1 TB working set.
        config.hot_access_fraction = 0.45;
        config.hot_space_fraction = 0.015;
    } else {
        // Table 1: 1,625 warehouses, ~100 GB working set (section
        // 6.2), scaled.
        config.warehouses = 1625;
        config.bytes_per_warehouse = 64 * util::kMiB / kTpccScale;
        // Section 6.2: the V3 cache sees a 40-45% read hit ratio.
        config.hot_access_fraction = 0.44;
        config.hot_space_fraction = 0.04;
    }
    return config;
}

db::OltpConfig
platformEngine(Platform platform, Backend backend,
               const dsa::DsaOptimizations &opts)
{
    db::OltpConfig config;
    config.workers = platform == Platform::Large ? 512 : 160;
    // Polled completions exist only when cDSA's interrupt
    // optimization (the flag/polling scheme) is enabled; without it
    // cDSA completes through messages and blocks like the others.
    config.polling_completion =
        backend == Backend::Cdsa && opts.interrupt_batching;
    if (platform == Platform::MidSize) {
        // Fewer processors, cheaper coherence: the induced per-I/O
        // overheads shrink with the platform (section 6.2: "kernel
        // and lock overheads ... are much less pronounced on the
        // mid-size").
        config.io_kernel_overhead = sim::usecs(30);
        config.io_other_overhead = sim::usecs(22);
        config.blocking_overhead = sim::usecs(18);
        config.io_latch_pairs = 5;
    }
    return config;
}

TpccRunResult
runTpcc(const TpccRunConfig &config)
{
    HostParams host = config.platform == Platform::Large
                          ? HostParams::large()
                          : HostParams::midSize();
    host.phantom_memory = true;

    dsa::DsaConfig dsa_config;
    StorageParams storage = config.platform == Platform::Large
                                ? StorageParams::large()
                                : StorageParams::midSize();
    storage.cache_policy = config.cache_policy;
    if (config.local_disks > 0)
        storage.local_disks = config.local_disks;
    if (config.flow_credits > 0) {
        storage.request_credits = config.flow_credits;
        dsa_config.max_outstanding = config.flow_credits;
    }

    dsa_config.opts = config.opts;
    // Under a loaded database, SQL Server's scheduler keeps polling
    // between work items rather than sleeping (section 3.2: "Under
    // heavy database workloads this scheme almost eliminates the
    // number of interrupts"). Model: a long poll window with a
    // scheduler-pass check interval.
    dsa_config.poll_interval = sim::usecs(25);
    dsa_config.poll_timeout = sim::msecs(50);
    // One flag check inside the scheduler's poll pass is a cached
    // read, far cheaper than the micro-benchmark's isolated check.
    dsa_config.costs.poll_check = sim::nsecs(200);
    if (config.intr_high_watermark > 0) {
        dsa_config.intr_high_watermark = config.intr_high_watermark;
        dsa_config.intr_low_watermark = config.intr_low_watermark;
    }
    if (config.poll_interval > 0)
        dsa_config.poll_interval = config.poll_interval;
    dsa_config.kdsa_extra_layers = config.kdsa_extra_layers;

    Testbed testbed(config.backend, host, storage, dsa_config,
                    config.seed);
    if (config.tie_seed != 0)
        testbed.sim().queue().setTieShuffle(config.tie_seed);
    if (!testbed.connectAll()) {
        return TpccRunResult{};
    }

    tpcc::TpccConfig workload_config = platformWorkload(config.platform);
    tpcc::Workload workload(workload_config,
                            testbed.device().capacity(),
                            testbed.sim().forkRng());

    // Warm-start the V3 caches with the hot set so short measurement
    // windows see steady-state hit ratios (the real system warmed up
    // over tens of minutes).
    std::vector<storage::BlockCache *> caches = testbed.caches();
    for (storage::BlockCache *cache : caches) {
        const uint64_t hot_pages =
            static_cast<uint64_t>(
                static_cast<double>(workload.workingSetBytes()) *
                workload_config.hot_space_fraction) /
            workload_config.page_size;
        // The device stripes round-robin across nodes, so each node
        // holds 1/N of the hot range, at the *start* of its own
        // volume (stripe unit i of the device is unit i/N locally).
        const uint64_t hot_per_node =
            hot_pages / static_cast<uint64_t>(caches.size());
        const uint64_t fill =
            std::min(hot_per_node, cache->capacityBlocks());
        for (uint64_t b = 0; b < fill; ++b) {
            const storage::CacheKey key{0, b};
            if (auto frame = cache->insertAndPin(key))
                cache->unpin(key);
        }
        cache->resetStats();
    }

    db::OltpConfig engine_config =
        platformEngine(config.platform, config.backend, config.opts);
    if (config.workers > 0)
        engine_config.workers = config.workers;

    db::OltpEngine engine(testbed.host(), testbed.device(), workload,
                          engine_config);

    TpccRunResult result;
    result.oltp = engine.run(config.warmup, config.window);
    result.server_cache_hit = testbed.serverCacheHitRatio();
    result.disk_utilization = testbed.diskUtilization();
    result.host_interrupts = testbed.hostInterrupts();
    for (auto &client : testbed.clients())
        result.retransmits += client->retransmitCount();
    for (auto &init : testbed.iscsiInitiators())
        result.retransmits += init->tcp().retransmitCount();
    result.metrics_json = testbed.sim().metrics().toJson();
    result.events_fired = testbed.sim().queue().firedCount();
    result.sim_elapsed = testbed.sim().now();
    return result;
}

} // namespace v3sim::scenarios
