/**
 * @file
 * The database-server model: a pool of transaction workers over an
 * async block device.
 *
 * Models what matters about SQL Server 2000 for the paper's
 * experiments: many concurrent transactions, each interleaving
 * database CPU work (charged to CpuCat::Sql) with random physical
 * block I/O through the storage stack under test. The storage
 * stack's own CPU costs land in the Kernel/Lock/DSA/VI categories,
 * so Figure 11/14-style utilization breakdowns and tpmC differences
 * fall out of the simulation rather than being assumed.
 *
 * Workers are closed-loop (a new transaction starts when the
 * previous one commits), the standard way TPC-C drives a server at
 * saturation. A group-commit log writer streams sequential log
 * records to a dedicated device, as production databases do.
 */

#ifndef V3SIM_DB_OLTP_ENGINE_HH
#define V3SIM_DB_OLTP_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "dsa/block_device.hh"
#include "osmodel/node.hh"
#include "osmodel/sim_lock.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "tpcc/workload.hh"

namespace v3sim::db
{

/** Engine configuration. */
struct OltpConfig
{
    /** Concurrent transaction workers (database worker threads). */
    int workers = 128;

    /** @name SQL-Server-induced per-I/O overheads.
     * Figure 11's discussion attributes much of the kernel and lock
     * time to "overheads introduced by SQL Server 2000, such as
     * context switching, that are not necessarily related to I/O
     * activity". These knobs model that induced work, identically
     * for every storage backend; only the completion style differs
     * (blocking thread wake vs. polled fiber switch — the mechanism
     * cDSA's API exists to exploit).
     * @{ */
    /** Kernel-category work per physical I/O (scheduler, paging,
     *  system services). */
    sim::Tick io_kernel_overhead = sim::usecs(45);
    /** Other-category work per physical I/O (runtime libraries,
     *  socket/utility code). */
    sim::Tick io_other_overhead = sim::usecs(35);
    /** Database latch (buffer manager / lock manager) sync pairs
     *  per physical I/O. */
    int io_latch_pairs = 6;
    /** Latch critical-section length. */
    sim::Tick latch_hold = sim::usecs(1);
    /** Extra Kernel work per I/O when completion blocks the worker
     *  thread (kernel scheduler round trip; expensive on the 32-way
     *  NUMA platform — cross-node IPIs and run-queue coherence). */
    sim::Tick blocking_overhead = sim::usecs(55);
    /** Extra DSA-layer work per I/O when completion is polled: the
     *  user-mode scheduler's fiber switch plus the cDSA flag/request
     *  management woven into every scheduler pass. */
    sim::Tick polling_overhead = sim::usecs(10);
    /** True when the backend completes by polling (cDSA). */
    bool polling_completion = false;
    /** @} */

    /** Group-commit log writing (sequential stream on log_device). */
    bool enable_log = false;

    /** Bytes per log record group. */
    uint64_t log_write_bytes = 4096;

    /** Log flush interval (group commit window). */
    sim::Tick log_interval = sim::msecs(1);
};

/** Results for one measurement window. */
struct OltpResult
{
    /** New-Order transactions per minute (the TPC-C metric). */
    double tpmc = 0;
    /** All transactions per minute. */
    double total_tpm = 0;
    double io_per_second = 0;
    double mean_txn_latency_us = 0;
    double cpu_utilization = 0;
    /** Per-category CPU share of total capacity (Figure 11 bars). */
    std::array<double, osmodel::kCpuCatCount> cpu_breakdown{};
};

/** The database engine. */
class OltpEngine
{
  public:
    OltpEngine(osmodel::Node &node, dsa::BlockDevice &device,
               tpcc::Workload &workload, OltpConfig config = {});

    OltpEngine(const OltpEngine &) = delete;
    OltpEngine &operator=(const OltpEngine &) = delete;

    /** Spawns the worker pool (and log writer, if enabled). */
    void start();

    /** Workers stop at their next transaction boundary. */
    void stop() { running_ = false; }

    bool running() const { return running_; }

    /** @name Counters since last reset @{ */
    uint64_t committedCount() const { return committed_.value(); }
    uint64_t newOrderCount() const { return new_orders_.value(); }
    uint64_t ioCount() const { return ios_.value(); }
    const sim::Sampler &txnLatency() const { return txn_latency_.raw(); }
    void resetStats();
    /** @} */

    /**
     * Convenience harness: runs @p warmup of simulated time, resets
     * statistics, runs @p window more, stops, and reports.
     */
    OltpResult run(sim::Tick warmup, sim::Tick window);

    /** Directs log writes at @p device (sequential stream). */
    void
    setLogDevice(dsa::BlockDevice *device)
    {
        log_device_ = device;
    }

  private:
    sim::Task<> worker(int id);
    sim::Task<> logWriter();

    osmodel::Node &node_;
    dsa::BlockDevice &device_;
    tpcc::Workload &workload_;
    OltpConfig config_;
    dsa::BlockDevice *log_device_ = nullptr;

    bool running_ = false;
    int active_workers_ = 0;
    /** Database-internal latches (buffer manager, lock manager,
     *  log manager, scheduler). */
    std::vector<std::unique_ptr<osmodel::SimLock>> latches_;
    std::vector<sim::Addr> worker_buffers_;
    /** One forked sampler per worker: random-draw assignment must
     *  not depend on same-tick worker resume order (DESIGN.md §8). */
    std::vector<tpcc::Workload> worker_workloads_;
    uint64_t log_offset_ = 0;
    uint64_t commits_since_flush_ = 0;

    /// Registry path prefix ("db.oltp", uniquified); must precede
    /// the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::CounterHandle committed_;
    sim::CounterHandle new_orders_;
    sim::CounterHandle ios_;
    sim::SamplerHandle txn_latency_;
};

} // namespace v3sim::db

#endif // V3SIM_DB_OLTP_ENGINE_HH
