#include "oltp_engine.hh"

namespace v3sim::db
{

using osmodel::CpuCat;
using osmodel::CpuLease;

OltpEngine::OltpEngine(osmodel::Node &node, dsa::BlockDevice &device,
                       tpcc::Workload &workload, OltpConfig config)
    : node_(node),
      device_(device),
      workload_(workload),
      config_(config),
      metric_prefix_(node.sim().metrics().uniquePrefix("db.oltp")),
      committed_(
          node.sim().metrics().counter(metric_prefix_ + ".committed")),
      new_orders_(node.sim().metrics().counter(metric_prefix_ +
                                               ".new_orders")),
      ios_(node.sim().metrics().counter(metric_prefix_ + ".ios")),
      txn_latency_(node.sim().metrics().sampler(
          metric_prefix_ + ".txn_latency_ns"))
{
    // One page buffer per worker, from AWE so buffers are pinned
    // physical memory the way SQL Server's cache is (section 3.1).
    worker_buffers_.reserve(static_cast<size_t>(config_.workers));
    worker_workloads_.reserve(static_cast<size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        worker_buffers_.push_back(
            node_.awe().allocate(workload_.config().page_size));
        worker_workloads_.push_back(workload_.fork());
    }
    const char *latch_names[] = {"db.bufmgr", "db.lockmgr", "db.log",
                                 "db.sched"};
    for (const char *name : latch_names) {
        latches_.push_back(std::make_unique<osmodel::SimLock>(
            node_.sim(), node_.costs(), name));
    }
}

void
OltpEngine::start()
{
    running_ = true;
    for (int i = 0; i < config_.workers; ++i)
        sim::spawn(worker(i));
    if (config_.enable_log && log_device_)
        sim::spawn(logWriter());
}

sim::Task<>
OltpEngine::worker(int id)
{
    ++active_workers_;
    const sim::Addr buffer =
        worker_buffers_[static_cast<size_t>(id)];
    tpcc::Workload &workload =
        worker_workloads_[static_cast<size_t>(id)];
    const uint64_t page = workload.config().page_size;
    // Per-worker latch rotation: a shared cursor would hand out
    // latches in same-tick resume order (a tie-shuffle race).
    size_t next_latch = static_cast<size_t>(id) % latches_.size();
    // CPU-pool arbitration key: same-tick contending workers are
    // admitted by id, not by resume order (DESIGN.md §8.3).
    const uint64_t wkey = static_cast<uint64_t>(id);

    while (running_) {
        const sim::Tick start = node_.sim().now();
        const tpcc::TxnType type = workload.sampleType();
        const uint32_t io_count = workload.sampleIoCount(type);
        const sim::Tick cpu_demand = workload.cpuDemand(type);
        // Database CPU work is spread across the I/O interleave.
        const sim::Tick slice =
            cpu_demand / static_cast<sim::Tick>(io_count + 1);

        for (uint32_t i = 0; i < io_count; ++i) {
            {
                CpuLease lease = co_await node_.cpus().acquire(
                    osmodel::CpuPool::kNormalPriority, wkey);
                co_await lease.run(slice, CpuCat::Sql);
                node_.cpus().release();
            }
            const uint64_t offset = workload.sampleOffset();
            if (workload.sampleIsRead())
                co_await device_.read(offset, page, buffer);
            else
                co_await device_.write(offset, page, buffer);
            ios_.increment();

            // SQL-Server-induced per-I/O work (see OltpConfig).
            {
                CpuLease lease = co_await node_.cpus().acquire(
                    osmodel::CpuPool::kNormalPriority, wkey);
                co_await lease.run(config_.io_kernel_overhead,
                                   CpuCat::Kernel);
                co_await lease.run(config_.io_other_overhead,
                                   CpuCat::Other);
                for (int p = 0; p < config_.io_latch_pairs; ++p) {
                    osmodel::SimLock &latch =
                        *latches_[next_latch];
                    next_latch =
                        (next_latch + 1) % latches_.size();
                    co_await latch.syncPair(lease, CpuCat::Lock,
                                            config_.latch_hold);
                }
                if (config_.polling_completion) {
                    co_await lease.run(config_.polling_overhead,
                                       CpuCat::Dsa);
                } else {
                    co_await lease.run(config_.blocking_overhead,
                                       CpuCat::Kernel);
                }
                node_.cpus().release();
            }
        }
        {
            CpuLease lease = co_await node_.cpus().acquire(
                osmodel::CpuPool::kNormalPriority, wkey);
            co_await lease.run(slice, CpuCat::Sql);
            node_.cpus().release();
        }

        committed_.increment();
        ++commits_since_flush_;
        if (type == tpcc::TxnType::NewOrder)
            new_orders_.increment();
        txn_latency_.add(
            static_cast<double>(node_.sim().now() - start));
    }
    --active_workers_;
}

sim::Task<>
OltpEngine::logWriter()
{
    // Group commit: one sequential log write per interval covering
    // every commit since the previous flush.
    while (running_) {
        co_await node_.sim().sleep(config_.log_interval);
        if (commits_since_flush_ == 0 || !log_device_)
            continue;
        commits_since_flush_ = 0;
        const uint64_t len = config_.log_write_bytes;
        if (log_offset_ + len > log_device_->capacity())
            log_offset_ = 0; // circular log
        co_await log_device_->write(log_offset_, len,
                                    worker_buffers_.front());
        log_offset_ += len;
    }
}

void
OltpEngine::resetStats()
{
    committed_.reset();
    new_orders_.reset();
    ios_.reset();
    txn_latency_.reset();
    node_.cpus().resetStats();
}

OltpResult
OltpEngine::run(sim::Tick warmup, sim::Tick window)
{
    sim::Simulation &sim = node_.sim();
    start();
    sim.runUntil(sim.now() + warmup);
    resetStats();
    const sim::Tick begin = sim.now();
    sim.runUntil(begin + window);
    const sim::Tick span = sim.now() - begin;

    OltpResult result;
    const double minutes = sim::toSecs(span) / 60.0;
    result.tpmc = static_cast<double>(newOrderCount()) / minutes;
    result.total_tpm =
        static_cast<double>(committedCount()) / minutes;
    result.io_per_second =
        static_cast<double>(ioCount()) / sim::toSecs(span);
    result.mean_txn_latency_us = txn_latency_.mean() / 1e3;
    result.cpu_utilization = node_.cpus().utilization();
    for (size_t c = 0; c < osmodel::kCpuCatCount; ++c) {
        result.cpu_breakdown[c] = node_.cpus().utilization(
            static_cast<CpuCat>(c));
    }

    stop();
    sim.run(); // let workers wind down
    return result;
}

} // namespace v3sim::db
