/**
 * @file
 * Open-loop multi-tenant load generator (DESIGN.md §12).
 *
 * The paper's OLTP experiments are closed-loop: a fixed worker pool
 * issues the next I/O only when the previous one completes, so
 * offered load self-limits at saturation. A consolidated storage
 * service sees the opposite regime — millions of independent tenants
 * whose arrivals do not slow down because the server is busy. This
 * driver models that population: arrivals come from a configurable
 * process (Poisson, on/off bursty, or a diurnal rate swing), each
 * carrying a tenant id drawn from a Zipf popularity distribution
 * over `tenants` ids, multiplexed onto the bounded device
 * connections through `max_inflight` lanes (the client library's
 * connection pool).
 *
 * Past saturation an open-loop backlog grows without bound, so the
 * client library bounds its own submit queue at `queue_cap`:
 * arrivals beyond it are refused locally (counted as overflow) the
 * way a full accept queue refuses connections. What the driver
 * *measures* is therefore exactly the overload story: goodput
 * (completions inside `deadline`), late completions, failures
 * (including server-side sheds surfacing as Busy), and client
 * overflow — every arrival disposed exactly once.
 *
 * Determinism: one sequential generator coroutine makes every random
 * draw (tenant, op, offset, inter-arrival gap) from one forked
 * sim::Rng, so draw order never depends on same-tick completion
 * order; concurrent request coroutines consume pre-drawn values and
 * contend only through content-keyed semaphore lanes (DESIGN.md §8).
 */

#ifndef V3SIM_DB_OPEN_LOOP_HH
#define V3SIM_DB_OPEN_LOOP_HH

#include <cstdint>
#include <set>
#include <string>

#include "dsa/block_device.hh"
#include "osmodel/node.hh"
#include "sim/random.hh"
#include "sim/resource.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace v3sim::db
{

/** Arrival process shapes. All are rate-modulated Poisson: the
 *  instantaneous rate is a deterministic function of simulated time,
 *  and gaps are exponential at that rate. */
enum class ArrivalProcess : uint8_t
{
    Poisson, ///< constant rate `offered_iops`
    Bursty,  ///< on/off: burst_factor x rate for burst_on, then
             ///< idle_factor x rate for burst_off
    Diurnal, ///< sinusoidal swing of amplitude `diurnal_amplitude`
             ///< around `offered_iops` with period `diurnal_period`
};

const char *arrivalProcessName(ArrivalProcess process);

/** Driver configuration. */
struct OpenLoopConfig
{
    /** Simulated tenant population (ids 0..tenants-1). Tenants are
     *  identities, not threads: memory cost is O(1) per tenant. */
    uint64_t tenants = 1'000'000;
    /** Zipf skew of tenant popularity (0 = uniform). A heavy hitter
     *  at theta ~1 is what the server's DRR gate must contain. */
    double zipf_theta = 0.99;

    ArrivalProcess process = ArrivalProcess::Poisson;
    /** Mean arrival rate (I/Os per second of simulated time). */
    double offered_iops = 20'000.0;

    /** @name Bursty process @{ */
    double burst_factor = 4.0;
    double idle_factor = 0.25;
    sim::Tick burst_on = sim::msecs(20);
    sim::Tick burst_off = sim::msecs(80);
    /** @} */

    /** @name Diurnal process @{ */
    sim::Tick diurnal_period = sim::msecs(2000);
    double diurnal_amplitude = 0.8;
    /** @} */

    /** Fraction of arrivals that are reads. */
    double read_fraction = 0.7;
    /** Bytes per I/O (also the offset alignment). */
    uint64_t io_bytes = 8192;

    /** Concurrent I/Os in flight toward the device — the client
     *  library's connection-pool bound. */
    uint32_t max_inflight = 256;
    /** Arrivals waiting for a lane beyond which the client refuses
     *  locally (overflow). Bounds the open-loop backlog so drains
     *  terminate; the refusals are part of the measured story. */
    uint32_t queue_cap = 4096;

    /** Completion SLO: completions slower than this are "late" and
     *  do not count toward goodput. */
    sim::Tick deadline = sim::msecs(50);
};

/** The load generator. Construct, start(), run the simulation for
 *  the window, stop(), then let the simulation drain. */
class OpenLoopDriver
{
  public:
    /** @param rng a forked stream (sim.forkRng()); the driver owns
     *  every draw it makes. */
    OpenLoopDriver(osmodel::Node &host, dsa::BlockDevice &device,
                   OpenLoopConfig config, sim::Rng rng);

    OpenLoopDriver(const OpenLoopDriver &) = delete;
    OpenLoopDriver &operator=(const OpenLoopDriver &) = delete;
    ~OpenLoopDriver();

    /** Spawns the arrival generator. Call after the device is
     *  connected (capacity must be known). */
    void start();

    /** Stops generating at the next arrival; requests already in the
     *  system complete as the simulation drains. */
    void stop() { running_ = false; }
    bool running() const { return running_; }

    /** Requests currently queued or in flight (0 once drained). */
    uint32_t inSystem() const { return in_system_; }

    /** @name Disposition counters — every arrival lands in exactly
     *  one of overflow / failed / late / goodput. @{ */
    uint64_t offeredCount() const { return offered_.value(); }
    uint64_t overflowCount() const { return overflow_.value(); }
    uint64_t failedCount() const { return failed_.value(); }
    uint64_t lateCount() const { return late_.value(); }
    uint64_t goodputCount() const { return goodput_.value(); }
    /** @} */

    /** End-to-end latency (arrival to completion, ns) of completed
     *  requests; the histogram supplies p99/p99.9. */
    const sim::Sampler &latency() const { return latency_.raw(); }
    const sim::Histogram &latencyHistogram() const
    {
        return latency_hist_.raw();
    }
    /** Lane-queue wait (ns) — where open-loop overload accumulates
     *  when the server does not shed. */
    const sim::Sampler &queueWait() const { return queue_wait_.raw(); }

    void resetStats();

  private:
    sim::Task<> generate();
    sim::Task<> request(uint64_t tenant, bool is_read,
                        uint64_t offset, uint64_t seq);
    /** Instantaneous arrival rate (IOPS) at the current tick. */
    double currentRate() const;

    osmodel::Node &host_;
    dsa::BlockDevice &device_;
    OpenLoopConfig config_;
    sim::Rng rng_;
    sim::ZipfGenerator zipf_;

    bool running_ = false;
    uint32_t in_system_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t blocks_ = 0;

    /** Connection-pool lanes; grants keyed by arrival seq (assigned
     *  by the sequential generator, so pure content). */
    sim::Semaphore lanes_;
    /** One I/O buffer per lane, kept *ordered*: a granted lane takes
     *  the lowest free address, so the request->buffer mapping is a
     *  function of the free set — never of same-tick return order,
     *  which the tie shuffle permutes. The address matters because
     *  it is the client library's flow-control content key
     *  (DESIGN.md §8.3). */
    std::set<sim::Addr> free_buffers_;

    /// Registry path prefix ("db.openloop", uniquified); must
    /// precede the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::CounterHandle offered_;
    sim::CounterHandle overflow_;
    sim::CounterHandle failed_;
    sim::CounterHandle late_;
    sim::CounterHandle goodput_;
    sim::SamplerHandle latency_;
    sim::HistogramHandle latency_hist_;
    sim::SamplerHandle queue_wait_;
};

} // namespace v3sim::db

#endif // V3SIM_DB_OPEN_LOOP_HH
