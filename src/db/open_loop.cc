#include "db/open_loop.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace v3sim::db
{

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Bursty: return "bursty";
      case ArrivalProcess::Diurnal: return "diurnal";
    }
    return "?";
}

OpenLoopDriver::OpenLoopDriver(osmodel::Node &host,
                               dsa::BlockDevice &device,
                               OpenLoopConfig config, sim::Rng rng)
    : host_(host), device_(device), config_(config), rng_(rng),
      zipf_(config_.tenants, config_.zipf_theta),
      lanes_(host.sim().queue(),
             static_cast<int64_t>(config_.max_inflight)),
      metric_prefix_(host.sim().metrics().uniquePrefix("db.openloop")),
      offered_(host.sim().metrics().counter(metric_prefix_ +
                                            ".offered")),
      overflow_(host.sim().metrics().counter(metric_prefix_ +
                                             ".overflow")),
      failed_(host.sim().metrics().counter(metric_prefix_ +
                                           ".failed")),
      late_(host.sim().metrics().counter(metric_prefix_ + ".late")),
      goodput_(host.sim().metrics().counter(metric_prefix_ +
                                            ".goodput")),
      latency_(host.sim().metrics().sampler(metric_prefix_ +
                                            ".latency_ns")),
      latency_hist_(host.sim().metrics().histogram(
          metric_prefix_ + ".latency_hist_ns")),
      queue_wait_(host.sim().metrics().sampler(metric_prefix_ +
                                               ".queue_wait_ns"))
{
    for (uint32_t i = 0; i < config_.max_inflight; ++i)
        free_buffers_.insert(
            host_.memory().allocate(config_.io_bytes));
}

OpenLoopDriver::~OpenLoopDriver()
{
    running_ = false;
    // Lane buffers are only returned to the free list once a request
    // drains; freeing what is back is enough for well-drained runs
    // and harmless otherwise (MemorySpace reclaims with the node).
    for (sim::Addr buffer : free_buffers_)
        host_.memory().free(buffer);
}

void
OpenLoopDriver::start()
{
    assert(device_.capacity() >= config_.io_bytes &&
           "device must be connected before start()");
    blocks_ = device_.capacity() / config_.io_bytes;
    running_ = true;
    sim::spawn(generate());
}

double
OpenLoopDriver::currentRate() const
{
    const double mean = config_.offered_iops;
    switch (config_.process) {
      case ArrivalProcess::Poisson:
        return mean;
      case ArrivalProcess::Bursty: {
        const sim::Tick period = config_.burst_on + config_.burst_off;
        const sim::Tick phase = host_.sim().now() % period;
        return phase < config_.burst_on ? mean * config_.burst_factor
                                        : mean * config_.idle_factor;
      }
      case ArrivalProcess::Diurnal: {
        const sim::Tick period = config_.diurnal_period;
        const double phase =
            static_cast<double>(host_.sim().now() % period) /
            static_cast<double>(period);
        const double swing =
            1.0 + config_.diurnal_amplitude *
                      std::sin(2.0 * 3.14159265358979323846 * phase);
        // Never let the rate hit zero: the generator paces itself by
        // sampling gaps at the instantaneous rate.
        return std::max(mean * 0.01, mean * swing);
      }
    }
    return mean;
}

sim::Task<>
OpenLoopDriver::generate()
{
    while (running_) {
        // Rate-modulated Poisson: exponential gap at the rate in
        // force *now*. (For the modulated processes this slightly
        // smears phase edges — one gap can straddle them — which is
        // fine: the processes are load shapes, not exact NHPPs.)
        const double mean_gap_ns = 1e9 / currentRate();
        const double gap = rng_.exponential(mean_gap_ns);
        co_await host_.sim().sleep(std::max<sim::Tick>(
            1, static_cast<sim::Tick>(gap)));
        if (!running_)
            break;

        // Every random draw happens here, on the one sequential
        // generator, so the stream is independent of completion
        // interleaving (DESIGN.md §8).
        const uint64_t tenant = zipf_.sample(rng_);
        const bool is_read = rng_.bernoulli(config_.read_fraction);
        const uint64_t offset =
            rng_.uniformInt(0, blocks_ - 1) * config_.io_bytes;

        offered_.increment();
        if (in_system_ >= config_.queue_cap + config_.max_inflight) {
            // The client library's submit queue is full: refuse
            // locally. This is the open-loop pressure valve that
            // keeps the backlog (and the drain) finite.
            overflow_.increment();
            continue;
        }
        ++in_system_;
        sim::spawn(request(tenant, is_read, offset, next_seq_++));
    }
}

sim::Task<>
OpenLoopDriver::request(uint64_t tenant, bool is_read,
                        uint64_t offset, uint64_t seq)
{
    const sim::Tick arrival = host_.sim().now();
    // Wait for a connection-pool lane; this queue is where overload
    // turns into latency when the server does not shed.
    co_await lanes_.acquire(seq);
    queue_wait_.add(static_cast<double>(host_.sim().now() - arrival));

    // Lowest free address: deterministic given the free *set* (see
    // open_loop.hh) — lane grants run in the tick's final band, after
    // every same-tick buffer return has been inserted.
    const sim::Addr buffer = *free_buffers_.begin();
    free_buffers_.erase(free_buffers_.begin());
    const bool ok =
        is_read ? co_await device_.read(offset, config_.io_bytes,
                                        buffer, tenant)
                : co_await device_.write(offset, config_.io_bytes,
                                         buffer, tenant);
    free_buffers_.insert(buffer);
    lanes_.release();

    const sim::Tick elapsed = host_.sim().now() - arrival;
    latency_.add(static_cast<double>(elapsed));
    latency_hist_.add(static_cast<double>(elapsed));
    if (!ok)
        failed_.increment(); // shed (Busy) or error
    else if (elapsed <= config_.deadline)
        goodput_.increment();
    else
        late_.increment();
    // Deferred to the final band so the generator's same-tick
    // queue-cap check reads a value no completion race can perturb.
    host_.sim().queue().scheduleFinal([this] {
        assert(in_system_ > 0);
        --in_system_;
    });
}

void
OpenLoopDriver::resetStats()
{
    offered_.reset();
    overflow_.reset();
    failed_.reset();
    late_.reset();
    goodput_.reset();
    latency_.reset();
    latency_hist_.reset();
    queue_wait_.reset();
}

} // namespace v3sim::db
