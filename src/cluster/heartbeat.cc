#include "cluster/heartbeat.hh"

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace v3sim::cluster
{

HeartbeatMonitor::HeartbeatMonitor(sim::Simulation &sim,
                                   HeartbeatConfig config,
                                   std::vector<HeartbeatPeer> peers)
    : sim_(sim), config_(std::move(config)),
      metric_prefix_(config_.name),
      probes_(sim.metrics().counter(metric_prefix_ + ".probes")),
      down_events_(
          sim.metrics().counter(metric_prefix_ + ".down_events")),
      up_events_(sim.metrics().counter(metric_prefix_ + ".up_events"))
{
    peers_.reserve(peers.size());
    for (HeartbeatPeer &peer : peers)
        peers_.push_back(PeerState{std::move(peer)});
}

void
HeartbeatMonitor::start()
{
    if (started_)
        return;
    started_ = true;
    running_ = true;
    sim::spawn(probeLoop());
}

sim::Task<>
HeartbeatMonitor::probeLoop()
{
    std::vector<bool> alive_at_send(peers_.size(), false);
    while (running_) {
        co_await sim_.sleep(config_.interval);
        co_await sim_.queue().finalBand();
        if (!running_)
            break;
        // A probe is answered only if the peer was up when the probe
        // left AND when the reply would be sent: a node that crashed
        // in between has dropped the request on the floor.
        for (size_t i = 0; i < peers_.size(); ++i)
            alive_at_send[i] = peers_[i].peer.alive();
        co_await sim_.sleep(2 * config_.rpc_delay);
        co_await sim_.queue().finalBand();
        if (!running_)
            break;
        for (size_t i = 0; i < peers_.size(); ++i) {
            PeerState &state = peers_[i];
            probes_.increment();
            const bool replied =
                alive_at_send[i] && state.peer.alive();
            if (!replied) {
                state.epoch_valid = false;
                if (++state.misses >= config_.miss_threshold &&
                    !state.down) {
                    state.down = true;
                    down_events_.increment();
                    V3LOG(Info, "hb")
                        << state.peer.name << " declared down after "
                        << state.misses << " missed probes";
                }
                continue;
            }
            // Answered. Did it bounce since the last answer?
            bool bounced = false;
            if (state.peer.boot_epoch) {
                const uint64_t epoch = state.peer.boot_epoch();
                bounced = state.epoch_valid && epoch != state.last_epoch;
                state.last_epoch = epoch;
                state.epoch_valid = true;
            }
            if (bounced) {
                // The peer crashed and came back between two answered
                // probes: surface one down/up cycle so the control
                // plane re-walks it through failover and resync.
                if (!state.down) {
                    state.down = true;
                    down_events_.increment();
                    V3LOG(Info, "hb")
                        << state.peer.name
                        << " bounced (boot epoch changed)";
                }
                state.misses = config_.miss_threshold;
                continue;
            }
            state.misses = 0;
            if (state.down) {
                state.down = false;
                up_events_.increment();
                V3LOG(Info, "hb") << state.peer.name << " back up";
            }
        }
    }
}

} // namespace v3sim::cluster
