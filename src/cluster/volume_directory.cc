#include "cluster/volume_directory.hh"

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace v3sim::cluster
{

VolumeDirectory::VolumeDirectory(
    sim::Simulation &sim, MetaService &meta,
    HeartbeatMonitor &heartbeats,
    std::vector<dsa::MirroredDevice *> shards,
    dsa::BlockDevice &data, DirectoryConfig config)
    : sim_(sim), meta_(meta), heartbeats_(heartbeats),
      shards_(std::move(shards)), data_(data),
      config_(std::move(config)),
      metric_prefix_(config_.name),
      reads_(sim.metrics().counter(metric_prefix_ + ".reads")),
      writes_(sim.metrics().counter(metric_prefix_ + ".writes")),
      stale_redirects_(
          sim.metrics().counter(metric_prefix_ + ".stale_redirects")),
      driven_failovers_(
          sim.metrics().counter(metric_prefix_ + ".driven_failovers"))
{
    // Routing starts on the genesis map; every node begins Active.
    cached_ = meta_.committed();
    last_state_.assign(heartbeats_.peerCount(),
                       ReplicaState::Active);
}

void
VolumeDirectory::ensureStarted()
{
    if (started_)
        return;
    started_ = true;
    running_ = true;
    meta_.start();
    heartbeats_.start();
    sim::spawn(reconcileLoop());
}

void
VolumeDirectory::stopControl()
{
    running_ = false;
    heartbeats_.stop();
    meta_.stop();
}

sim::Task<bool>
VolumeDirectory::route()
{
    ensureStarted();
    // Bounded retries: a refetch can itself race another epoch bump,
    // but a handful of rounds always catches a quiescing cluster,
    // and an unhealthy metadata service must fail the I/O rather
    // than spin forever.
    for (int attempt = 0; attempt < 4; ++attempt) {
        if (cached_.epoch == meta_.committedEpoch())
            co_return true;
        stale_redirects_.increment();
        co_await sim_.sleep(config_.redirect_delay);
        // Awaits are hoisted out of condition position throughout
        // this file: g++ 12.2 miscompiles some coroutines whose
        // co_await sits in an if-condition (the ramp hands out a
        // frame handle biased 8 bytes from the layout the resumer
        // indexes, so the first resume reads a garbage resume index
        // and hits the dispatch trap). A named local sidesteps it.
        const bool fetched = co_await meta_.fetch(cached_);
        if (!fetched)
            co_return false;
    }
    co_return cached_.epoch == meta_.committedEpoch();
}

sim::Task<bool>
VolumeDirectory::read(uint64_t offset, uint64_t len, uint64_t buffer)
{
    reads_.increment();
    const bool routed = co_await route();
    if (!routed)
        co_return false;
    co_return co_await data_.read(offset, len, buffer);
}

sim::Task<bool>
VolumeDirectory::write(uint64_t offset, uint64_t len, uint64_t buffer)
{
    writes_.increment();
    const bool routed = co_await route();
    if (!routed)
        co_return false;
    co_return co_await data_.write(offset, len, buffer);
}

sim::Task<>
VolumeDirectory::reconcileLoop()
{
    while (running_) {
        co_await sim_.sleep(config_.reconcile_interval);
        co_await sim_.queue().finalBand();
        if (!running_)
            break;
        // Nodes are walked in index order (a content key): two nodes
        // changing state on the same tick always commit in the same
        // order regardless of event-queue tie shuffle.
        for (size_t node = 0; node < last_state_.size(); ++node) {
            const size_t shard = node / 2;
            const size_t leg = node % 2;
            if (shard >= shards_.size())
                continue;
            dsa::MirroredDevice &mirror = *shards_[shard];
            if (heartbeats_.isDown(node) && mirror.legActive(leg)) {
                // Proactive failover: commit the death to the map
                // first, then fail the leg. If the proposal loses
                // quorum we leave the leg alone — the data plane's
                // own retransmit ladder still protects writes, and
                // we retry next round.
                const bool committed = co_await meta_.propose(
                    static_cast<int>(shard), static_cast<int>(node),
                    ReplicaState::Failed);
                if (committed) {
                    mirror.failLeg(leg);
                    driven_failovers_.increment();
                    last_state_[node] = ReplicaState::Failed;
                    V3LOG(Info, "vdir")
                        << "failed over node " << node << " (shard "
                        << shard << " leg " << leg << "), epoch "
                        << meta_.committedEpoch();
                }
                continue;
            }
            // Observe the mirror's own view of the leg (its resync
            // machinery runs independently) and commit transitions
            // after the fact so routing state catches up.
            ReplicaState actual = ReplicaState::Failed;
            if (mirror.legActive(leg))
                actual = ReplicaState::Active;
            else if (mirror.legCatchingUp(leg))
                actual = ReplicaState::Resyncing;
            if (actual != last_state_[node]) {
                const bool committed = co_await meta_.propose(
                    static_cast<int>(shard), static_cast<int>(node),
                    actual);
                if (committed)
                    last_state_[node] = actual;
            }
        }
    }
}

} // namespace v3sim::cluster
