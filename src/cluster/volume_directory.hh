/**
 * @file
 * Client-side volume directory: epoch-checked routing plus the
 * control loop that turns failure detection into placement changes.
 *
 * This is the piece that makes N independent V3 servers *one*
 * volume service. The data path is unchanged — reads and writes
 * still flow through the RAID-10 composition of dsa::MirroredDevice
 * legs under a dsa::StripedDevice — but every I/O is now admitted
 * under a placement-map epoch. A client whose cached map is stale
 * (the committed epoch moved) is redirected: it pays a refetch round
 * trip to the metadata service before its I/O proceeds. That models
 * the paper's direct-attached clients growing a level of indirection
 * without giving up the kernel-bypass data path: the epoch check is
 * a comparison against a cached integer, and the redirect penalty is
 * only paid when the cluster actually changed.
 *
 * The reconcile loop is the cluster's actuator. It watches the
 * heartbeat monitor and the mirror legs, proposes every observed
 * state transition to the metadata service, and only acts on a
 * transition once it commits: "detect -> commit to the map -> fail
 * the leg" — never the other way around, so the authoritative map
 * can never lag the data plane into serving a reader from a leg the
 * map still calls active while the cluster believes it failed.
 * Recovery transitions (Failed -> Resyncing -> Active) are observed
 * from the mirror's own resync machinery and committed after the
 * fact; the mirror remains the source of truth for data movement,
 * the map for routing.
 */

#ifndef V3SIM_CLUSTER_VOLUME_DIRECTORY_HH
#define V3SIM_CLUSTER_VOLUME_DIRECTORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/heartbeat.hh"
#include "cluster/meta_service.hh"
#include "cluster/placement.hh"
#include "dsa/block_device.hh"
#include "dsa/mirrored_device.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"

namespace v3sim::cluster
{

/** Directory configuration. */
struct DirectoryConfig
{
    std::string name = "vdir";

    /** Reconcile-loop period: how often observed node/leg state is
     *  compared against the committed map. */
    sim::Tick reconcile_interval = sim::msecs(2);

    /** Penalty for routing with a stale epoch: one metadata-refetch
     *  redirect round trip (on top of MetaService::fetch's own
     *  modeled delay). */
    sim::Tick redirect_delay = sim::usecs(80);
};

/**
 * The clustered volume, as a BlockDevice. Route every I/O through
 * the cached placement map, refetching on epoch change; run the
 * reconcile loop that drives failover and placement updates.
 */
class VolumeDirectory : public dsa::BlockDevice
{
  public:
    /**
     * @param shards  the mirror behind each stripe column, indexed
     *                by shard id (node 2s = leg 0, node 2s+1 = leg 1
     *                of shard s, matching the genesis map);
     * @param data    the striped composition of those mirrors — the
     *                data path I/O is forwarded to after routing.
     */
    VolumeDirectory(sim::Simulation &sim, MetaService &meta,
                    HeartbeatMonitor &heartbeats,
                    std::vector<dsa::MirroredDevice *> shards,
                    dsa::BlockDevice &data, DirectoryConfig config);

    VolumeDirectory(const VolumeDirectory &) = delete;
    VolumeDirectory &operator=(const VolumeDirectory &) = delete;

    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         uint64_t buffer) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          uint64_t buffer) override;
    uint64_t capacity() const override { return data_.capacity(); }

    /**
     * Stops the control plane (reconcile loop, heartbeats, metadata
     * lease loop) at the next wakeup. Required before any
     * Simulation::run() drain — the loops never end on their own.
     */
    void stopControl();

    /** Epoch of the map this client last routed with. */
    uint64_t cachedEpoch() const { return cached_.epoch; }

    /** @name Statistics @{ */
    uint64_t staleRedirectCount() const
    {
        return stale_redirects_.value();
    }
    uint64_t drivenFailoverCount() const
    {
        return driven_failovers_.value();
    }
    /** @} */

  private:
    /** Epoch check + refetch-on-stale, shared by read and write. */
    sim::Task<bool> route();
    void ensureStarted();
    sim::Task<> reconcileLoop();

    sim::Simulation &sim_;
    MetaService &meta_;
    HeartbeatMonitor &heartbeats_;
    std::vector<dsa::MirroredDevice *> shards_;
    dsa::BlockDevice &data_;
    DirectoryConfig config_;

    /** The map this client last fetched; I/O routes against it. */
    PlacementMap cached_;

    /** Last state this loop committed per node; transitions are
     *  proposed only on change. */
    std::vector<ReplicaState> last_state_;

    bool started_ = false;
    bool running_ = false;

    // Prefix member must precede the metric references (init order).
    std::string metric_prefix_;
    sim::CounterHandle reads_;
    sim::CounterHandle writes_;
    sim::CounterHandle stale_redirects_;
    sim::CounterHandle driven_failovers_;
};

} // namespace v3sim::cluster

#endif // V3SIM_CLUSTER_VOLUME_DIRECTORY_HH
