/**
 * @file
 * Heartbeat-based failure detection for the cluster control plane.
 *
 * The data plane already has implicit failure detection — a DSA
 * client notices a dead server through retransmit exhaustion — but
 * that only fires when an I/O happens to be in flight to the dead
 * node, and only at the client that issued it. The control plane
 * needs an explicit, shared answer to "is node i up?", on a clock of
 * its own, so failover can be *proactive* (fail the leg, stop
 * sending I/O into a black hole) instead of waiting for every client
 * to time out independently.
 *
 * The monitor probes every peer on a fixed interval; a peer is
 * declared down after miss_threshold consecutive unanswered probes
 * (one missed heartbeat is jitter, three is a crash — the standard
 * phi-accrual-lite compromise), and up again on the first answered
 * probe. A peer whose boot epoch changed between two answered probes
 * *bounced*: it crashed and restarted faster than the detector's
 * resolution, so its volatile state is gone even though it looks
 * healthy. A bounce is reported as one down/up cycle so the
 * reconcile loop re-walks the leg through failover and resync rather
 * than trusting a server that silently lost its staging buffers.
 *
 * Determinism: each probe round samples all peers in index order
 * inside the event queue's final band, so a crash landing on the
 * same tick as a probe resolves identically under tie shuffle.
 */

#ifndef V3SIM_CLUSTER_HEARTBEAT_HH
#define V3SIM_CLUSTER_HEARTBEAT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/task.hh"

namespace v3sim::cluster
{

/** Failure-detector configuration. */
struct HeartbeatConfig
{
    std::string name = "hb";

    /** Probe period. Detection latency is roughly
     *  interval * miss_threshold + 2 * rpc_delay. */
    sim::Tick interval = sim::msecs(2);

    /** One-way probe RPC delay. */
    sim::Tick rpc_delay = sim::usecs(40);

    /** Consecutive missed probes before a peer is declared down. */
    int miss_threshold = 3;
};

/** One monitored peer, described by callbacks so the monitor depends
 *  on nothing above the sim layer. */
struct HeartbeatPeer
{
    std::string name;
    /** Would the peer answer a probe right now? */
    std::function<bool()> alive;
    /** Monotone restart counter (storage::V3Server::bootEpoch);
     *  leave empty when the peer cannot bounce. */
    std::function<uint64_t()> boot_epoch;
};

/** Periodic prober with consecutive-miss down detection. */
class HeartbeatMonitor
{
  public:
    HeartbeatMonitor(sim::Simulation &sim, HeartbeatConfig config,
                     std::vector<HeartbeatPeer> peers);

    HeartbeatMonitor(const HeartbeatMonitor &) = delete;
    HeartbeatMonitor &operator=(const HeartbeatMonitor &) = delete;

    /** Spawns the probe loop. Lazy and idempotent, like
     *  MetaService::start(). */
    void start();

    /** Stops the probe loop at its next wakeup. */
    void stop() { running_ = false; }

    /** Current verdict for peer @p index. */
    bool isDown(size_t index) const { return peers_[index].down; }

    size_t peerCount() const { return peers_.size(); }

    /** @name Statistics @{ */
    uint64_t probeCount() const { return probes_.value(); }
    uint64_t downEventCount() const { return down_events_.value(); }
    uint64_t upEventCount() const { return up_events_.value(); }
    /** @} */

  private:
    struct PeerState
    {
        HeartbeatPeer peer;
        int misses = 0;
        bool down = false;
        /** Boot epoch seen on the last answered probe. */
        uint64_t last_epoch = 0;
        bool epoch_valid = false;
    };

    sim::Task<> probeLoop();

    sim::Simulation &sim_;
    HeartbeatConfig config_;
    std::vector<PeerState> peers_;
    bool started_ = false;
    bool running_ = false;

    // Prefix member must precede the metric references (init order).
    std::string metric_prefix_;
    sim::CounterHandle probes_;
    sim::CounterHandle down_events_;
    sim::CounterHandle up_events_;
};

} // namespace v3sim::cluster

#endif // V3SIM_CLUSTER_HEARTBEAT_HH
