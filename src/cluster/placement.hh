/**
 * @file
 * The placement map: which node replicates which volume extent.
 *
 * The paper runs V3 as a fixed cluster of storage nodes (Tables 1/2)
 * with the volume striped across them; src/cluster generalizes that
 * static wiring into a *service*. The unit of placement is the
 * shard: one RAID-1 replica set (a dsa::MirroredDevice leg pair),
 * with the volume striped round-robin across shards exactly as
 * dsa::StripedDevice does — so the map is a description of the
 * RAID-10 geometry the data plane already implements, plus the
 * liveness state of every replica.
 *
 * Every mutation of the map is an epoch bump. Clients carry the
 * epoch of the map they routed with; a client presenting a stale
 * epoch is redirected to refetch (cluster::VolumeDirectory models
 * the redirect round trip). The epoch is what makes "exactly once
 * across a view change" arguable: a write admitted under epoch E
 * only targets replicas the epoch-E map called writable, and the
 * DSA layer's per-connection dedup absorbs duplicate retransmissions
 * within a connection regardless of epoch.
 */

#ifndef V3SIM_CLUSTER_PLACEMENT_HH
#define V3SIM_CLUSTER_PLACEMENT_HH

#include <cstdint>
#include <vector>

namespace v3sim::cluster
{

/** Liveness of one replica of one shard. */
enum class ReplicaState : uint8_t
{
    /** Serving reads and taking writes. */
    Active,
    /** Reachable again and taking writes, still replaying missed
     *  regions; not readable yet. */
    Resyncing,
    /** Down: writes are logged against it, reads avoid it. */
    Failed,
};

constexpr const char *
replicaStateName(ReplicaState state)
{
    switch (state) {
      case ReplicaState::Active: return "active";
      case ReplicaState::Resyncing: return "resyncing";
      case ReplicaState::Failed: return "failed";
    }
    return "?";
}

/** One replica of one shard: a storage node holding a full copy. */
struct ReplicaView
{
    int node = -1;
    ReplicaState state = ReplicaState::Active;
};

/** One shard: a replica set holding one stripe column. */
struct ShardView
{
    std::vector<ReplicaView> replicas;

    size_t
    activeCount() const
    {
        size_t n = 0;
        for (const ReplicaView &replica : replicas)
            n += replica.state == ReplicaState::Active ? 1 : 0;
        return n;
    }
};

/** The whole volume's placement at one epoch. */
struct PlacementMap
{
    /** Monotone view number; 0 means "no map yet". */
    uint64_t epoch = 0;
    /** Stripe unit of the round-robin layout across shards. */
    uint64_t stripe_unit = 0;
    std::vector<ShardView> shards;

    /** Shard owning byte @p offset (StripedDevice's round-robin). */
    size_t
    shardFor(uint64_t offset) const
    {
        return static_cast<size_t>((offset / stripe_unit) %
                                   shards.size());
    }

    /** Locates @p node in the map; returns false when absent. */
    bool
    find(int node, size_t &shard, size_t &replica) const
    {
        for (size_t s = 0; s < shards.size(); ++s) {
            for (size_t r = 0; r < shards[s].replicas.size(); ++r) {
                if (shards[s].replicas[r].node == node) {
                    shard = s;
                    replica = r;
                    return true;
                }
            }
        }
        return false;
    }
};

/**
 * One entry of the metadata log: "as of this epoch, this node's
 * replica is in this state". The genesis map is record zero; every
 * later record is a single-replica state transition, so replaying
 * the log from genesis reproduces the map at any epoch.
 */
struct PlacementRecord
{
    uint64_t epoch = 0;
    int shard = -1;
    int node = -1;
    ReplicaState state = ReplicaState::Active;
};

} // namespace v3sim::cluster

#endif // V3SIM_CLUSTER_PLACEMENT_HH
