#include "cluster/meta_service.hh"

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace v3sim::cluster
{

MetaService::MetaService(sim::Simulation &sim, MetaConfig config,
                         PlacementMap genesis)
    : sim_(sim), config_(std::move(config)),
      metric_prefix_(config_.name),
      elections_(sim.metrics().counter(metric_prefix_ + ".elections")),
      commits_(sim.metrics().counter(metric_prefix_ + ".commits")),
      rejects_(sim.metrics().counter(metric_prefix_ + ".rejects")),
      fetches_(sim.metrics().counter(metric_prefix_ + ".fetches"))
{
    replicas_.reserve(static_cast<size_t>(config_.replicas));
    for (int id = 0; id < config_.replicas; ++id)
        replicas_.push_back(std::make_unique<MetaReplica>(id));

    // The genesis map is epoch 1, record zero of every log: the
    // cluster is born already agreed, the way a deployment tool
    // would initialize all replicas before serving. Replica 0 holds
    // the genesis lease from t=0.
    map_ = std::move(genesis);
    map_.epoch = 1;
    const PlacementRecord birth{map_.epoch, -1, -1,
                                ReplicaState::Active};
    for (auto &replica : replicas_)
        replica->append(birth);
    lease_until_ = sim_.now() + config_.lease_duration;
}

void
MetaService::start()
{
    if (started_)
        return;
    started_ = true;
    running_ = true;
    sim::spawn(leaseLoop());
}

size_t
MetaService::liveCount() const
{
    size_t n = 0;
    for (const auto &replica : replicas_)
        n += replica->crashed() ? 0 : 1;
    return n;
}

sim::Task<bool>
MetaService::propose(int shard, int node, ReplicaState state)
{
    start();
    // Client -> primary hop.
    co_await sim_.sleep(config_.rpc_delay);
    co_await sim_.queue().finalBand();
    if (primary_ < 0 || replicas_[static_cast<size_t>(primary_)]->crashed()) {
        rejects_.increment();
        co_return false;
    }
    const int leader = primary_;
    // Primary -> replicas fan-out and ack collection.
    co_await sim_.sleep(2 * config_.rpc_delay);
    co_await sim_.queue().finalBand();
    // The leader may have crashed or been superseded while the
    // round trip was in flight; a deposed leader must not commit.
    if (primary_ != leader ||
        replicas_[static_cast<size_t>(leader)]->crashed()) {
        rejects_.increment();
        co_return false;
    }
    if (liveCount() < majority()) {
        rejects_.increment();
        co_return false;
    }
    const PlacementRecord record{map_.epoch + 1, shard, node, state};
    for (auto &replica : replicas_) {
        if (!replica->crashed())
            replica->append(record);
    }
    map_.epoch = record.epoch;
    if (shard >= 0) {
        for (ReplicaView &view :
             map_.shards[static_cast<size_t>(shard)].replicas) {
            if (view.node == node)
                view.state = state;
        }
    }
    commits_.increment();
    co_return true;
}

sim::Task<bool>
MetaService::fetch(PlacementMap &out)
{
    start();
    co_await sim_.sleep(2 * config_.rpc_delay);
    co_await sim_.queue().finalBand();
    if (liveCount() < majority())
        co_return false;
    out = map_;
    fetches_.increment();
    co_return true;
}

sim::Task<>
MetaService::leaseLoop()
{
    while (running_) {
        co_await sim_.sleep(config_.lease_interval);
        // All lease arithmetic in the final band: a crash and a
        // renewal landing on the same tick must resolve the same way
        // regardless of event-queue tie order.
        co_await sim_.queue().finalBand();
        if (!running_)
            break;
        if (liveCount() < majority()) {
            // A minority fragment can renew nothing and elect
            // nobody; note the expiry so a later healthy majority
            // starts from "leaderless" rather than trusting a lease
            // that lapsed during the partition.
            if (sim_.now() >= lease_until_)
                primary_ = -1;
            continue;
        }
        if (primary_ >= 0 &&
            !replicas_[static_cast<size_t>(primary_)]->crashed()) {
            lease_until_ = sim_.now() + config_.lease_duration;
            continue;
        }
        if (sim_.now() < lease_until_) {
            // The primary is down but its lease has not expired.
            // Electing now could overlap with a primary that is
            // merely slow in the real-world analogue; wait it out.
            continue;
        }
        // Election. The winner is the minimum live replica id — a
        // content key, so the outcome never depends on the order in
        // which same-tick events happened to run (DESIGN.md §8).
        int winner = -1;
        for (const auto &replica : replicas_) {
            if (!replica->crashed()) {
                winner = replica->id();
                break;
            }
        }
        primary_ = winner;
        lease_until_ = sim_.now() + config_.lease_duration;
        elections_.increment();
        // A view-change record: epoch bumps with no placement
        // delta, so every client is forced through a refetch and
        // nobody keeps routing on a map the new primary may be
        // about to change.
        const PlacementRecord view{map_.epoch + 1, -1, -1,
                                   ReplicaState::Active};
        for (auto &replica : replicas_) {
            if (!replica->crashed())
                replica->append(view);
        }
        map_.epoch = view.epoch;
        V3LOG(Info, "meta") << "elected replica " << winner
                            << " as primary, epoch " << map_.epoch;
    }
}

} // namespace v3sim::cluster
