/**
 * @file
 * Durability audit: the bench's exit-code oracle that no committed
 * write was lost across crashes, failovers, and resyncs.
 *
 * The audit interposes on the volume's write path and stamps a
 * unique, monotonically increasing version into the first word of
 * every block each write touches (via the host MemorySpace, so the
 * stamp travels through the real data path: staging buffers, RDMA,
 * server-side landing, mirror legs, resync replay). Per block it
 * tracks:
 *
 *  - settled: the highest version whose write COMPLETED SUCCESSFULLY
 *    while no other write to that block was in flight. A committed
 *    transaction's data is at least this fresh — anything older is
 *    provably lost data.
 *  - attempted: every version ever issued and not yet superseded by
 *    a later settled version. A crash can legitimately leave a block
 *    at a version that was in flight (the write reached some legs
 *    before the failure and its completion failed back to the
 *    client) — that is allowed; a version nobody ever wrote, or one
 *    older than settled, is not.
 *
 * At quiesce (all I/O drained, all mirrors whole, dirty logs empty)
 * audit() reads every tracked block back through the device —
 * round-robin across mirror legs, so each replica is checked — and
 * verdicts each stamp: lost if stamp < settled, foreign if the stamp
 * was never attempted. Both are durability violations and fail the
 * bench.
 *
 * Soundness of the settled floor: in this simulator every
 * server-side landing of a write happens strictly before the
 * client-side completion event, so when a write completes with no
 * concurrent writes outstanding on the block, every replica that
 * will ever serve the block (including via resync from a peer) holds
 * that version or newer.
 */

#ifndef V3SIM_CLUSTER_WRITE_AUDIT_HH
#define V3SIM_CLUSTER_WRITE_AUDIT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dsa/block_device.hh"
#include "sim/memory.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"

namespace v3sim::cluster
{

/** Write-versioning BlockDevice wrapper with a read-back audit. */
class DurabilityAudit : public dsa::BlockDevice
{
  public:
    /**
     * @param memory the host memory space I/O buffers live in; must
     *               be backed (not phantom), or stamps would vanish.
     * @param block_size granularity of version tracking; writes must
     *               be block-aligned multiples (TPC-C pages are).
     */
    DurabilityAudit(sim::Simulation &sim, sim::MemorySpace &memory,
                    dsa::BlockDevice &under,
                    uint64_t block_size = 8192);

    DurabilityAudit(const DurabilityAudit &) = delete;
    DurabilityAudit &operator=(const DurabilityAudit &) = delete;

    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         uint64_t buffer) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          uint64_t buffer) override;
    uint64_t capacity() const override { return under_.capacity(); }

    /**
     * Reads every tracked block back and checks its stamp. Call only
     * at quiesce. @p replica_count reads are issued per block, back
     * to back, so the mirror's round-robin reader visits every leg.
     * Returns true iff no block is lost or foreign.
     */
    sim::Task<bool> audit(size_t replica_count);

    /** @name Statistics @{ */
    uint64_t auditedBlocks() const { return blocks_checked_.value(); }
    uint64_t lostBlocks() const { return lost_.value(); }
    uint64_t foreignBlocks() const { return foreign_.value(); }
    uint64_t stampedWrites() const { return stamped_.value(); }
    /** @} */

  private:
    struct BlockState
    {
        /** Durability floor: highest version settled with no
         *  concurrent writes outstanding on this block. */
        uint64_t settled = 0;
        /** Writes currently in flight covering this block. */
        uint64_t outstanding = 0;
        /** Versions issued and not yet superseded; any of these is
         *  an acceptable stamp. */
        std::vector<uint64_t> attempted;
    };

    sim::Simulation &sim_;
    sim::MemorySpace &memory_;
    dsa::BlockDevice &under_;
    uint64_t block_size_;

    uint64_t next_version_ = 0;
    std::map<uint64_t, BlockState> blocks_;

    // Prefix member must precede the metric references (init order).
    std::string metric_prefix_;
    sim::CounterHandle stamped_;
    sim::CounterHandle blocks_checked_;
    sim::CounterHandle lost_;
    sim::CounterHandle foreign_;
};

} // namespace v3sim::cluster

#endif // V3SIM_CLUSTER_WRITE_AUDIT_HH
