#include "cluster/write_audit.hh"

#include <algorithm>
#include <cassert>

#include "util/logging.hh"

namespace v3sim::cluster
{

DurabilityAudit::DurabilityAudit(sim::Simulation &sim,
                                 sim::MemorySpace &memory,
                                 dsa::BlockDevice &under,
                                 uint64_t block_size)
    : sim_(sim), memory_(memory), under_(under),
      block_size_(block_size),
      metric_prefix_("audit"),
      stamped_(sim.metrics().counter(metric_prefix_ + ".writes")),
      blocks_checked_(
          sim.metrics().counter(metric_prefix_ + ".blocks")),
      lost_(sim.metrics().counter(metric_prefix_ + ".lost")),
      foreign_(sim.metrics().counter(metric_prefix_ + ".foreign"))
{
    // Stamps must reach the platter for the read-back to mean
    // anything; a phantom memory space silently discards them.
    assert(!memory_.phantom());
}

sim::Task<bool>
DurabilityAudit::read(uint64_t offset, uint64_t len, uint64_t buffer)
{
    co_return co_await under_.read(offset, len, buffer);
}

sim::Task<bool>
DurabilityAudit::write(uint64_t offset, uint64_t len, uint64_t buffer)
{
    assert(offset % block_size_ == 0 && len % block_size_ == 0);
    const uint64_t first = offset / block_size_;
    const uint64_t count = len / block_size_;
    // One fresh version per (write, block): the stamp identifies
    // exactly which attempt a block's bytes came from.
    std::vector<uint64_t> versions(count);
    for (uint64_t b = 0; b < count; ++b) {
        const uint64_t version = ++next_version_;
        versions[b] = version;
        memory_.writeU64(buffer + b * block_size_, version);
        BlockState &state = blocks_[first + b];
        state.attempted.push_back(version);
        ++state.outstanding;
    }
    stamped_.increment();

    const bool ok = co_await under_.write(offset, len, buffer);

    for (uint64_t b = 0; b < count; ++b) {
        BlockState &state = blocks_[first + b];
        --state.outstanding;
        if (ok && state.outstanding == 0 &&
            versions[b] > state.settled) {
            // Settled: this write completed and nothing else is in
            // flight on the block, so every replica now holds at
            // least this version (landings precede completion in
            // this simulator). Older attempts can no longer be the
            // surviving stamp legitimately — prune them.
            state.settled = versions[b];
            std::erase_if(state.attempted,
                          [&](uint64_t v) { return v < state.settled; });
        }
    }
    co_return ok;
}

sim::Task<bool>
DurabilityAudit::audit(size_t replica_count)
{
    const uint64_t buffer = memory_.allocate(block_size_);
    bool clean = true;
    for (const auto &[block, state] : blocks_) {
        for (size_t r = 0; r < replica_count; ++r) {
            blocks_checked_.increment();
            // Hoisted out of the condition; see the g++ 12.2
            // coroutine-frame note in volume_directory.cc.
            const bool read_ok = co_await under_.read(
                block * block_size_, block_size_, buffer);
            if (!read_ok) {
                V3LOG(Warn, "audit")
                    << "read of block " << block
                    << " failed during audit";
                lost_.increment();
                clean = false;
                continue;
            }
            const uint64_t stamp = memory_.readU64(buffer);
            if (stamp == 0) {
                // Never-written blocks read back as zero; a zero on
                // a block with a settled write is lost data.
                if (state.settled != 0) {
                    lost_.increment();
                    clean = false;
                    V3LOG(Warn, "audit")
                        << "block " << block << " blank, settled "
                        << state.settled;
                }
                continue;
            }
            if (stamp < state.settled) {
                lost_.increment();
                clean = false;
                V3LOG(Warn, "audit")
                    << "block " << block << " stamp " << stamp
                    << " older than settled " << state.settled;
                continue;
            }
            if (std::find(state.attempted.begin(),
                          state.attempted.end(),
                          stamp) == state.attempted.end()) {
                foreign_.increment();
                clean = false;
                V3LOG(Warn, "audit")
                    << "block " << block << " stamp " << stamp
                    << " was never written";
            }
        }
    }
    memory_.free(buffer);
    co_return clean;
}

} // namespace v3sim::cluster
