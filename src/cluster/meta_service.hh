/**
 * @file
 * The placement-metadata service: a small replicated log with a
 * lease-holding primary.
 *
 * The paper's V3 cluster is statically configured; turning it into a
 * volume *service* needs one authoritative, fault-tolerant answer to
 * "which nodes hold which extent right now". This is that answer in
 * miniature: three metadata replicas (co-located with the first
 * three storage nodes — vi::CompositeFaultTarget makes them share
 * the node's failure domain), one of which holds a time-bounded
 * lease as primary. Placement changes are proposed through the
 * primary and commit when a majority of replicas has appended the
 * record; each commit bumps the map epoch. fetch() serves the
 * committed map (again requiring a majority, so a minority fragment
 * can never serve a stale view as authoritative).
 *
 * Lease safety: a primary may act until its lease expires; an
 * election can only install a successor *after* that expiry tick, so
 * two primaries never overlap. (The simulator has one global clock;
 * the real-world version of this argument needs bounded clock skew
 * folded into the lease duration.) Losing the primary therefore
 * costs availability of *metadata writes* for at most
 * lease_duration, never consistency; data-plane I/O keeps flowing on
 * the last fetched map the whole time.
 *
 * Determinism (DESIGN.md §8): every decision that could race with
 * same-tick crash/restart events — lease renewal, expiry, election,
 * commit quorum counts — is taken in the event queue's final band,
 * and the election winner is the minimum live replica id (a content
 * key), so runs are byte-identical under event-tie shuffle.
 */

#ifndef V3SIM_CLUSTER_META_SERVICE_HH
#define V3SIM_CLUSTER_META_SERVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/placement.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "vi/fault_targets.hh"

namespace v3sim::cluster
{

/** Metadata-service configuration. */
struct MetaConfig
{
    std::string name = "meta";

    /** Metadata replica count (majority = replicas/2 + 1). */
    int replicas = 3;

    /** One-way metadata RPC delay (client->primary,
     *  primary->replica). */
    sim::Tick rpc_delay = sim::usecs(40);

    /** Primary lease renewal period. */
    sim::Tick lease_interval = sim::msecs(5);

    /** Lease validity; an election waits out the old lease, so this
     *  bounds metadata-write unavailability after a primary crash. */
    sim::Tick lease_duration = sim::msecs(15);
};

/**
 * One metadata replica: a durable log of placement records plus a
 * crashed flag. crash() stops it acking (and, if primary, lets the
 * lease lapse); the log itself is persistent, like the V3 servers'
 * disks, so a restarted replica rejoins with its history intact.
 */
class MetaReplica : public vi::NodeFaultTarget
{
  public:
    explicit MetaReplica(int id) : id_(id) {}

    void crash() override { crashed_ = true; }
    void restart() override { crashed_ = false; }

    int id() const { return id_; }
    bool crashed() const { return crashed_; }
    const std::vector<PlacementRecord> &log() const { return log_; }
    void append(const PlacementRecord &record)
    {
        log_.push_back(record);
    }

  private:
    int id_;
    bool crashed_ = false;
    std::vector<PlacementRecord> log_;
};

/** The replicated placement-metadata service. */
class MetaService
{
  public:
    /** @param genesis initial map; committed as epoch 1, record 0 of
     *  every replica's log. Replica 0 holds the genesis lease. */
    MetaService(sim::Simulation &sim, MetaConfig config,
                PlacementMap genesis);

    MetaService(const MetaService &) = delete;
    MetaService &operator=(const MetaService &) = delete;

    /** Spawns the lease/election loop. Lazy and idempotent — called
     *  on first use, never at construction, so connect-time
     *  Simulation::run() drains still terminate. */
    void start();

    /** Stops the lease loop at its next wakeup. */
    void stop() { running_ = false; }

    /**
     * Proposes "shard/node is now in @p state" through the current
     * primary. Commits (true) once a majority of replicas appended
     * the record; fails (false) without a live leased primary or
     * without quorum. A commit bumps the epoch.
     */
    sim::Task<bool> propose(int shard, int node, ReplicaState state);

    /** Fetches the committed map into @p out (a majority must
     *  answer); models the metadata-read round trip. */
    sim::Task<bool> fetch(PlacementMap &out);

    /** Current primary replica id, or -1 while leaderless. */
    int primary() const { return primary_; }

    /** Committed epoch (instantaneous; oracles and tests). */
    uint64_t committedEpoch() const { return map_.epoch; }

    /** Committed map (instantaneous; oracles and tests). */
    const PlacementMap &committed() const { return map_; }

    MetaReplica &replica(int id) { return *replicas_[id]; }
    int replicaCount() const
    {
        return static_cast<int>(replicas_.size());
    }

    /** @name Statistics @{ */
    uint64_t electionCount() const { return elections_.value(); }
    uint64_t commitCount() const { return commits_.value(); }
    uint64_t rejectCount() const { return rejects_.value(); }
    uint64_t fetchCount() const { return fetches_.value(); }
    /** @} */

  private:
    sim::Task<> leaseLoop();
    size_t majority() const { return replicas_.size() / 2 + 1; }
    size_t liveCount() const;

    sim::Simulation &sim_;
    MetaConfig config_;
    std::vector<std::unique_ptr<MetaReplica>> replicas_;

    /** Committed state (what a majority of logs agrees on). */
    PlacementMap map_;

    int primary_ = 0;
    sim::Tick lease_until_ = 0;
    bool started_ = false;
    bool running_ = false;

    // Prefix member must precede the metric references (init order).
    std::string metric_prefix_;
    sim::CounterHandle elections_;
    sim::CounterHandle commits_;
    sim::CounterHandle rejects_;
    sim::CounterHandle fetches_;
};

} // namespace v3sim::cluster

#endif // V3SIM_CLUSTER_META_SERVICE_HH
