/**
 * @file
 * Core VI architecture types: descriptors, completions, handles.
 *
 * Mirrors the Virtual Interface Architecture specification's model:
 * applications post work descriptors (send / receive / RDMA-write) on
 * per-VI work queues and consume completions from completion queues.
 * RDMA-write carries an optional 32-bit immediate; plain RDMA-write
 * is invisible to the remote CPU — the property cDSA exploits for
 * completion flags.
 */

#ifndef V3SIM_VI_VI_TYPES_HH
#define V3SIM_VI_VI_TYPES_HH

#include <cstdint>
#include <memory>

#include "sim/memory.hh"

namespace v3sim::vi
{

/** Endpoint (VI instance) identifier, unique per NIC. */
using EndpointId = uint32_t;

constexpr EndpointId kInvalidEndpoint = UINT32_MAX;

/** Registration handle returned by MemoryRegistry. */
struct MemHandle
{
    uint32_t slot = UINT32_MAX; ///< translation-table index
    uint64_t generation = 0;    ///< guards against stale handles

    bool valid() const { return slot != UINT32_MAX; }
};

/** Kinds of work a VI consumes. */
enum class WorkType : uint8_t
{
    Send,
    Recv,
    RdmaWrite,
    /** RDMA read: pulls remote memory into a local buffer without
     *  remote CPU involvement. Optional in the VI spec (the paper's
     *  cLan lacked it); provided here for the Infiniband-direction
     *  systems the paper's sections 7-8 point to. */
    RdmaRead,
};

/** Completion status. */
enum class WorkStatus : uint8_t
{
    Ok,
    /** Connection went away (fault injection / disconnect). */
    ConnectionError,
    /** Incoming send found no posted receive descriptor. */
    RecvOverrun,
    /** RDMA target was not registered at the remote NIC. */
    ProtectionError,
    /** Descriptor flushed because the endpoint was torn down. */
    Flushed,
};

/** A work request posted to a send or receive queue. */
struct WorkDescriptor
{
    WorkType type = WorkType::Send;
    uint64_t cookie = 0;       ///< opaque user tag, echoed in completion
    sim::Addr local_addr = sim::kNullAddr;
    uint64_t len = 0;
    /** RDMA only: destination address in the remote memory space. */
    sim::Addr remote_addr = sim::kNullAddr;
    /** RDMA only: deliver a remote completion with this immediate.
     *  When false, the write is invisible to the remote CPU. */
    bool has_immediate = false;
    uint32_t immediate = 0;
    /**
     * Simulation-level scalar sidecar surfaced in the receiver's
     * RdmaEvent. Protocol layers use it to carry the semantic value
     * of an RDMA-written word (cDSA completion-flag bits) so pollers
     * keep working when host memory runs in phantom mode.
     */
    uint64_t meta = 0;
    /**
     * Simulation-level sidecar carried with the message and surfaced
     * in the remote completion. Protocol layers attach their typed
     * request/response structs here so control traffic stays parseable
     * when host memory runs in phantom mode; `len` still models the
     * wire size the real serialized message would have.
     */
    std::shared_ptr<void> control;
    /**
     * Determinism arbitration key (DESIGN.md §8.3): orders this work
     * against other work posted to the same NIC on the same tick.
     * Derive it from message content (request offset, transfer tag),
     * never from arrival order. Equal keys keep posting order.
     */
    uint64_t order_key = 0;
};

/** A completed work request, consumed from a completion queue. */
struct WorkCompletion
{
    WorkType type = WorkType::Send;
    WorkStatus status = WorkStatus::Ok;
    EndpointId endpoint = kInvalidEndpoint;
    uint64_t cookie = 0;   ///< poster's cookie (local completions)
    uint64_t len = 0;      ///< bytes transferred
    uint32_t immediate = 0;
    bool has_immediate = false;
    /**
     * Fault injection: some fragment of this message was damaged in
     * flight. The NIC model flips payload bytes when memory is real,
     * and always raises this flag so phantom-memory runs observe the
     * same corruption the real bytes would show. Consumers that care
     * about integrity must treat the data as suspect and fall back on
     * end-to-end digests / retransmission.
     */
    bool corrupted = false;
    /** Sender-attached sidecar (see WorkDescriptor::control). */
    std::shared_ptr<void> control;
};

/** Connection state of an endpoint. */
enum class EndpointState : uint8_t
{
    Idle,
    Connecting,
    Connected,
    Error,
    Closed,
};

} // namespace v3sim::vi

#endif // V3SIM_VI_VI_TYPES_HH
