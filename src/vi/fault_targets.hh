/**
 * @file
 * Abstract targets the fault injector can act on.
 *
 * The injector lives in the vi layer but injects faults into layers
 * above and below it (storage nodes, disks). These interfaces keep
 * the dependency arrow pointing the right way: the concrete targets
 * (storage::V3Server, disk::Disk) implement them, and vi never
 * includes storage or disk headers.
 */

#ifndef V3SIM_VI_FAULT_TARGETS_HH
#define V3SIM_VI_FAULT_TARGETS_HH

#include <cstdint>
#include <vector>

namespace v3sim::vi
{

/**
 * A node the injector can crash and restart. Implemented by
 * storage::V3Server. crash() must be idempotent and drop all volatile
 * state; restart() must bring the node back cold and re-listening.
 */
class NodeFaultTarget
{
  public:
    virtual ~NodeFaultTarget() = default;
    virtual void crash() = 0;
    virtual void restart() = 0;
};

/**
 * Several fault targets that share one failure domain: a whole-box
 * fault takes them all out at once. The cluster layer co-locates a
 * placement-metadata replica with a storage server on the first few
 * nodes; crashing "the node" must crash both, or chaos campaigns
 * would quietly test a world where metadata never shares fate with
 * data.
 */
class CompositeFaultTarget : public NodeFaultTarget
{
  public:
    CompositeFaultTarget() = default;
    explicit CompositeFaultTarget(std::vector<NodeFaultTarget *> parts)
        : parts_(std::move(parts))
    {
    }

    void add(NodeFaultTarget &part) { parts_.push_back(&part); }

    void
    crash() override
    {
        for (NodeFaultTarget *part : parts_)
            part->crash();
    }

    void
    restart() override
    {
        for (NodeFaultTarget *part : parts_)
            part->restart();
    }

  private:
    std::vector<NodeFaultTarget *> parts_;
};

/**
 * A storage medium the injector can silently damage. Implemented by
 * disk::Disk. These model the failure classes that reach disks in
 * the field *without* any I/O error being reported:
 *
 *  - latent sector errors: a sector's contents rot in place (media
 *    defect, misdirected or dropped write by the firmware) and
 *    nothing notices until something reads and verifies it;
 *  - torn writes: power is lost mid-write and only a prefix of the
 *    sectors reaches the platter, leaving the tail stale/garbled.
 */
class MediaFaultTarget
{
  public:
    virtual ~MediaFaultTarget() = default;

    /** Silently corrupts the sectors overlapping [offset, offset+len).
     *  Subsequent reads see damaged data; no error is reported. */
    virtual void injectLatentError(uint64_t offset, uint64_t len) = 0;

    /** Each committed write independently tears with probability
     *  @p p (its tail sectors end up corrupt). 0 disables. */
    virtual void setTornWriteRate(double p) = 0;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_FAULT_TARGETS_HH
