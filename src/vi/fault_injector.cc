#include "fault_injector.hh"

namespace v3sim::vi
{

FaultInjector::FaultInjector(sim::Simulation &sim, net::Fabric &fabric)
    : sim_(sim), fabric_(fabric),
      metric_prefix_(sim.metrics().uniquePrefix("fault")),
      dropped_(sim.metrics().counter(metric_prefix_ + ".dropped")),
      breaks_(sim.metrics().counter(metric_prefix_ + ".breaks")),
      node_crashes_(
          sim.metrics().counter(metric_prefix_ + ".node_crashes")),
      node_restarts_(
          sim.metrics().counter(metric_prefix_ + ".node_restarts"))
{
    fabric_.setDropFilter([this](const net::Packet &packet) {
        return shouldDrop(packet);
    });
}

FaultInjector::~FaultInjector()
{
    fabric_.setDropFilter(nullptr);
}

void
FaultInjector::dropNext(int count, std::optional<net::PortId> towards)
{
    drop_next_ = count;
    drop_towards_ = towards;
}

void
FaultInjector::setLossRate(double p)
{
    loss_rate_ = p;
    if (p > 0.0 && !rng_.has_value())
        rng_ = sim_.forkRng();
}

void
FaultInjector::blackout(sim::Tick from, sim::Tick until)
{
    blackout_from_ = from;
    blackout_until_ = until;
}

void
FaultInjector::scheduleBreak(sim::Tick when, ViNic &nic, EndpointId ep)
{
    sim_.queue().scheduleAt(when, [this, &nic, ep] {
        if (ViEndpoint *endpoint = nic.endpoint(ep)) {
            breaks_.increment();
            nic.breakConnection(*endpoint);
        }
    });
}

void
FaultInjector::scheduleNodeCrash(sim::Tick when, NodeFaultTarget &node)
{
    sim_.queue().scheduleAt(when, [this, &node] {
        node_crashes_.increment();
        node.crash();
    });
}

void
FaultInjector::scheduleNodeRestart(sim::Tick when,
                                   NodeFaultTarget &node)
{
    sim_.queue().scheduleAt(when, [this, &node] {
        node_restarts_.increment();
        node.restart();
    });
}

void
FaultInjector::scheduleNodeOutage(sim::Tick from, sim::Tick until,
                                  NodeFaultTarget &node)
{
    scheduleNodeCrash(from, node);
    scheduleNodeRestart(until, node);
}

void
FaultInjector::clear()
{
    drop_next_ = 0;
    drop_towards_.reset();
    loss_rate_ = 0.0;
    blackout_from_ = 0;
    blackout_until_ = 0;
}

bool
FaultInjector::shouldDrop(const net::Packet &packet)
{
    bool drop = false;

    if (drop_next_ > 0 &&
        (!drop_towards_ || packet.dst == *drop_towards_)) {
        --drop_next_;
        drop = true;
    }
    if (!drop && loss_rate_ > 0.0 && rng_->bernoulli(loss_rate_))
        drop = true;
    if (!drop && sim_.now() >= blackout_from_ &&
        sim_.now() < blackout_until_) {
        drop = true;
    }

    if (drop)
        dropped_.increment();
    return drop;
}

} // namespace v3sim::vi
