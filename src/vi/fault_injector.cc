#include "fault_injector.hh"

#include <algorithm>

namespace v3sim::vi
{

FaultInjector::FaultInjector(sim::Simulation &sim, net::Fabric &fabric)
    : sim_(sim), fabric_(fabric),
      metric_prefix_(sim.metrics().uniquePrefix("fault")),
      dropped_(sim.metrics().counter(metric_prefix_ + ".dropped")),
      corrupted_(sim.metrics().counter(metric_prefix_ + ".corrupted")),
      latent_errors_(
          sim.metrics().counter(metric_prefix_ + ".latent_errors")),
      breaks_(sim.metrics().counter(metric_prefix_ + ".breaks")),
      node_crashes_(
          sim.metrics().counter(metric_prefix_ + ".node_crashes")),
      node_restarts_(
          sim.metrics().counter(metric_prefix_ + ".node_restarts")),
      chaos_outages_(
          sim.metrics().counter(metric_prefix_ + ".chaos_outages"))
{
    fabric_.setDropFilter([this](const net::Packet &packet) {
        return shouldDrop(packet);
    });
    fabric_.setCorruptFilter([this](const net::Packet &packet) {
        return shouldCorrupt(packet);
    });
}

FaultInjector::~FaultInjector()
{
    fabric_.setDropFilter(nullptr);
    fabric_.setCorruptFilter(nullptr);
    cancelScheduled();
}

void
FaultInjector::dropNext(int count, std::optional<net::PortId> towards)
{
    drop_next_ = count;
    drop_towards_ = towards;
}

void
FaultInjector::setLossRate(double p)
{
    loss_rate_ = p;
    if (p > 0.0 && !rng_.has_value())
        rng_ = sim_.forkRng();
}

void
FaultInjector::blackout(sim::Tick from, sim::Tick until)
{
    blackout_from_ = from;
    blackout_until_ = until;
}

void
FaultInjector::corruptNext(int count,
                           std::optional<net::PortId> towards)
{
    corrupt_next_ = count;
    corrupt_towards_ = towards;
}

void
FaultInjector::setCorruptRate(double p)
{
    corrupt_rate_ = p;
    if (p > 0.0 && !corrupt_rng_.has_value())
        corrupt_rng_ = sim_.forkRng();
}

void
FaultInjector::corruptWindow(sim::Tick from, sim::Tick until)
{
    corrupt_from_ = from;
    corrupt_until_ = until;
}

void
FaultInjector::corruptRdmaNext(ViNic &nic, int count)
{
    nic.corruptNextRdma(count);
    corrupted_.increment(static_cast<uint64_t>(count));
}

void
FaultInjector::injectLatentError(MediaFaultTarget &media,
                                 uint64_t offset, uint64_t len)
{
    media.injectLatentError(offset, len);
    latent_errors_.increment();
}

void
FaultInjector::setTornWriteRate(MediaFaultTarget &media, double p)
{
    media.setTornWriteRate(p);
}

void
FaultInjector::track(sim::EventQueue::Handle handle)
{
    scheduled_.erase(std::remove_if(scheduled_.begin(),
                                    scheduled_.end(),
                                    [](const sim::EventQueue::Handle &h) {
                                        return !h.pending();
                                    }),
                     scheduled_.end());
    scheduled_.push_back(std::move(handle));
}

void
FaultInjector::scheduleBreak(sim::Tick when, ViNic &nic, EndpointId ep)
{
    track(sim_.queue().scheduleAtCancelable(when, [this, &nic, ep] {
        if (ViEndpoint *endpoint = nic.endpoint(ep)) {
            breaks_.increment();
            nic.breakConnection(*endpoint);
        }
    }));
}

void
FaultInjector::scheduleNodeCrash(sim::Tick when, NodeFaultTarget &node)
{
    track(sim_.queue().scheduleAtCancelable(when, [this, &node] {
        node_crashes_.increment();
        node.crash();
    }));
}

void
FaultInjector::scheduleNodeRestart(sim::Tick when,
                                   NodeFaultTarget &node)
{
    track(sim_.queue().scheduleAtCancelable(when, [this, &node] {
        node_restarts_.increment();
        node.restart();
    }));
}

void
FaultInjector::scheduleNodeOutage(sim::Tick from, sim::Tick until,
                                  NodeFaultTarget &node)
{
    scheduleNodeCrash(from, node);
    scheduleNodeRestart(until, node);
}

void
FaultInjector::startChaos(const ChaosConfig &config,
                          std::vector<NodeFaultTarget *> victims)
{
    if (victims.empty() || config.end <= config.begin)
        return;
    // Lazy fork, same rule as the loss and corruption streams: a
    // build that never runs a campaign draws nothing.
    if (!chaos_rng_)
        chaos_rng_.emplace(sim_.forkRng());
    sim::spawn(chaosTask(config, std::move(victims)));
}

sim::Task<>
FaultInjector::chaosTask(ChaosConfig config,
                         std::vector<NodeFaultTarget *> victims)
{
    if (sim_.now() < config.begin)
        co_await sim_.sleep(config.begin - sim_.now());
    for (;;) {
        const sim::Tick gap = static_cast<sim::Tick>(
            chaos_rng_->exponential(
                static_cast<double>(config.mean_gap)));
        if (sim_.now() + gap >= config.end)
            break;
        co_await sim_.sleep(gap);
        const size_t victim =
            chaos_rng_->uniformInt(0, victims.size() - 1);
        const sim::Tick down = static_cast<sim::Tick>(
            chaos_rng_->uniformInt(config.min_down, config.max_down));
        node_crashes_.increment();
        victims[victim]->crash();
        co_await sim_.sleep(down);
        node_restarts_.increment();
        victims[victim]->restart();
        chaos_outages_.increment();
    }
}

void
FaultInjector::cancelScheduled()
{
    for (sim::EventQueue::Handle &handle : scheduled_)
        handle.cancel();
    scheduled_.clear();
}

void
FaultInjector::clear()
{
    drop_next_ = 0;
    drop_towards_.reset();
    loss_rate_ = 0.0;
    blackout_from_ = 0;
    blackout_until_ = 0;
    corrupt_next_ = 0;
    corrupt_towards_.reset();
    corrupt_rate_ = 0.0;
    corrupt_from_ = 0;
    corrupt_until_ = 0;
    cancelScheduled();
}

bool
FaultInjector::shouldDrop(const net::Packet &packet)
{
    bool drop = false;

    if (drop_next_ > 0 &&
        (!drop_towards_ || packet.dst == *drop_towards_)) {
        --drop_next_;
        drop = true;
    }
    if (!drop && loss_rate_ > 0.0 && rng_->bernoulli(loss_rate_))
        drop = true;
    if (!drop && sim_.now() >= blackout_from_ &&
        sim_.now() < blackout_until_) {
        drop = true;
    }

    if (drop)
        dropped_.increment();
    return drop;
}

bool
FaultInjector::shouldCorrupt(const net::Packet &packet)
{
    bool corrupt = false;

    if (corrupt_next_ > 0 &&
        (!corrupt_towards_ || packet.dst == *corrupt_towards_)) {
        --corrupt_next_;
        corrupt = true;
    }
    if (!corrupt && corrupt_rate_ > 0.0 &&
        corrupt_rng_->bernoulli(corrupt_rate_)) {
        corrupt = true;
    }
    if (!corrupt && sim_.now() >= corrupt_from_ &&
        sim_.now() < corrupt_until_) {
        corrupt = true;
    }

    if (corrupt)
        corrupted_.increment();
    return corrupt;
}

} // namespace v3sim::vi
