/**
 * @file
 * Structured fault injection for the VI fabric and storage media.
 *
 * DSA exists because VI gives no reliability guarantees (section
 * 2.2: "most existing VI implementations do not provide strong
 * reliability guarantees"), so exercising loss and failure paths is
 * first-class in this reproduction. The injector composes the common
 * patterns over the fabric's drop/corrupt filters, the NIC's
 * connection-break hook, and the disks' media-fault hooks, in
 * escalating order of severity:
 *
 *  - dropNext(n): lose the next n packets (optionally one direction);
 *  - lossRate(p): Bernoulli loss until cleared;
 *  - blackout(from, until): total loss inside a time window;
 *  - corruptNext(n) / corruptRate(p) / corruptWindow(from, until):
 *    the same three patterns, but the packet is delivered with a
 *    damaged payload instead of dropped — exercising the end-to-end
 *    digest machinery instead of retransmission timers;
 *  - corruptRdmaNext(nic, n): damage the next n inbound RDMA
 *    fragments at a specific NIC's DMA engine (past the link CRC);
 *  - injectLatentError / setTornWriteRate: silent media corruption
 *    on a disk (vi::MediaFaultTarget), detected only by
 *    verify-on-read and the scrubber;
 *  - scheduleBreak(t, nic, ep): silent connection kill at time t;
 *  - scheduleNodeCrash/Restart/Outage(t, node): whole-node failure —
 *    the node drops its volatile state and leaves the fabric, then
 *    (optionally) comes back cold. Targets implement NodeFaultTarget
 *    so the injector stays independent of the storage layer.
 *
 * All active rules apply simultaneously (a packet is dropped if any
 * drop rule says so; a surviving packet is corrupted if any corrupt
 * rule says so). Statistics go into the simulation's MetricRegistry
 * under a unique "fault" prefix (dropped, corrupted, breaks,
 * latent_errors, node_crashes, node_restarts) so experiments can
 * snapshot what was injected alongside what the system did about it.
 */

#ifndef V3SIM_VI_FAULT_INJECTOR_HH
#define V3SIM_VI_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "vi/fault_targets.hh"
#include "vi/vi_nic.hh"

namespace v3sim::vi
{

/** Composable fault patterns over one fabric. */
class FaultInjector
{
  public:
    /**
     * Installs itself as the fabric's drop and corrupt filters. Only
     * one injector per fabric; it replaces any existing filters.
     */
    FaultInjector(sim::Simulation &sim, net::Fabric &fabric);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    ~FaultInjector();

    /**
     * Drops the next @p count packets. When @p towards is set, only
     * packets destined for that port count (and are dropped).
     */
    void dropNext(int count,
                  std::optional<net::PortId> towards = std::nullopt);

    /** Random loss with probability @p p until cleared (0 clears). */
    void setLossRate(double p);

    /** Drops everything in [from, until) of simulated time. */
    void blackout(sim::Tick from, sim::Tick until);

    /**
     * Damages the payload of the next @p count delivered packets.
     * When @p towards is set, only packets destined for that port
     * count. Corruption never drops: the packet arrives, the link
     * CRC "passed", and only end-to-end digests can tell.
     */
    void corruptNext(int count,
                     std::optional<net::PortId> towards = std::nullopt);

    /** Random per-packet corruption with probability @p p until
     *  cleared (0 clears). Independent of the loss process. */
    void setCorruptRate(double p);

    /** Corrupts everything delivered in [from, until). */
    void corruptWindow(sim::Tick from, sim::Tick until);

    /** Damages the next @p count inbound RDMA fragments at @p nic's
     *  DMA engine (see ViNic::corruptNextRdma). */
    void corruptRdmaNext(ViNic &nic, int count);

    /** Silently corrupts [offset, offset+len) on @p media and counts
     *  it under fault.latent_errors. */
    void injectLatentError(MediaFaultTarget &media, uint64_t offset,
                           uint64_t len);

    /** Makes each write on @p media tear with probability @p p. */
    void setTornWriteRate(MediaFaultTarget &media, double p);

    /** Schedules a silent connection break at absolute time @p when. */
    void scheduleBreak(sim::Tick when, ViNic &nic, EndpointId ep);

    /** Schedules @p node.crash() at absolute time @p when. */
    void scheduleNodeCrash(sim::Tick when, NodeFaultTarget &node);

    /** Schedules @p node.restart() at absolute time @p when. */
    void scheduleNodeRestart(sim::Tick when, NodeFaultTarget &node);

    /**
     * Convenience: crash at @p from, restart at @p until — the
     * scripted availability window the bench and tests use.
     */
    void scheduleNodeOutage(sim::Tick from, sim::Tick until,
                            NodeFaultTarget &node);

    /** Randomized crash/restart campaign (see startChaos). */
    struct ChaosConfig
    {
        /** Campaign window in absolute simulated time. */
        sim::Tick begin = 0;
        sim::Tick end = 0;
        /** Mean healthy gap between outages (exponential). */
        sim::Tick mean_gap = sim::msecs(100);
        /** Outage length, uniform in [min_down, max_down]. */
        sim::Tick min_down = sim::msecs(20);
        sim::Tick max_down = sim::msecs(100);
    };

    /**
     * Runs a seeded random crash/restart campaign over @p victims
     * inside [config.begin, config.end): exponential healthy gaps,
     * a uniformly chosen victim per outage, a uniform down time.
     * Outages are strictly sequential — one node down at a time —
     * so every replica set with its legs on distinct nodes keeps a
     * survivor throughout (data loss in the campaign is a bug in
     * the system under test, never in the schedule). The campaign
     * RNG forks lazily on the first call, preserving the injector's
     * rule that fault-free runs are bit-identical to builds without
     * it. The task ends itself at config.end; crashes and restarts
     * land in the usual node_crashes/node_restarts counters.
     */
    void startChaos(const ChaosConfig &config,
                    std::vector<NodeFaultTarget *> victims);

    /** Outages the chaos campaigns have completed. */
    uint64_t chaosOutageCount() const { return chaos_outages_.value(); }

    /** Cancels every scheduled-but-not-yet-fired break/crash/restart. */
    void cancelScheduled();

    /**
     * Removes every active drop and corrupt rule and cancels pending
     * scheduled faults (breaks, crashes, restarts). After clear() the
     * injector is fully inert.
     */
    void clear();

    /** Packets dropped by this injector. */
    uint64_t droppedCount() const { return dropped_.value(); }

    /** Packets corrupted by this injector's wire rules. */
    uint64_t corruptedCount() const { return corrupted_.value(); }

    /** Latent sector errors injected. */
    uint64_t latentErrorCount() const { return latent_errors_.value(); }

    /** Connection breaks executed. */
    uint64_t breakCount() const { return breaks_.value(); }

    /** Node crashes executed. */
    uint64_t nodeCrashCount() const { return node_crashes_.value(); }

    /** Node restarts executed. */
    uint64_t nodeRestartCount() const { return node_restarts_.value(); }

  private:
    bool shouldDrop(const net::Packet &packet);
    bool shouldCorrupt(const net::Packet &packet);

    /** Remembers a scheduled fault so clear() can cancel it. */
    void track(sim::EventQueue::Handle handle);

    sim::Simulation &sim_;
    net::Fabric &fabric_;
    /** Forked lazily on the first setLossRate: an idle injector must
     *  not consume an RNG stream, or merely constructing one would
     *  perturb every fault-free scenario's randomness. */
    std::optional<sim::Rng> rng_;
    /** Same lazy-fork rule, separate stream: the corruption process
     *  must not perturb the loss process (and vice versa), so runs
     *  that only differ in one rate stay comparable. */
    std::optional<sim::Rng> corrupt_rng_;
    /** And a third independent stream for chaos campaigns. */
    std::optional<sim::Rng> chaos_rng_;

    /** Chaos campaign body (one coroutine per startChaos call). */
    sim::Task<> chaosTask(ChaosConfig config,
                          std::vector<NodeFaultTarget *> victims);

    int drop_next_ = 0;
    std::optional<net::PortId> drop_towards_;
    double loss_rate_ = 0.0;
    sim::Tick blackout_from_ = 0;
    sim::Tick blackout_until_ = 0;

    int corrupt_next_ = 0;
    std::optional<net::PortId> corrupt_towards_;
    double corrupt_rate_ = 0.0;
    sim::Tick corrupt_from_ = 0;
    sim::Tick corrupt_until_ = 0;

    /** Handles of scheduled break/crash/restart events; fired ones
     *  are pruned opportunistically on the next track(). */
    std::vector<sim::EventQueue::Handle> scheduled_;

    // Prefix member must precede the metric references (init order).
    std::string metric_prefix_;
    sim::CounterHandle dropped_;
    sim::CounterHandle corrupted_;
    sim::CounterHandle latent_errors_;
    sim::CounterHandle breaks_;
    sim::CounterHandle node_crashes_;
    sim::CounterHandle node_restarts_;
    sim::CounterHandle chaos_outages_;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_FAULT_INJECTOR_HH
