/**
 * @file
 * Structured fault injection for the VI fabric.
 *
 * DSA exists because VI gives no reliability guarantees (section
 * 2.2: "most existing VI implementations do not provide strong
 * reliability guarantees"), so exercising loss and failure paths is
 * first-class in this reproduction. The injector composes the common
 * patterns over the fabric's drop filter and the NIC's
 * connection-break hook, in escalating order of severity:
 *
 *  - dropNext(n): lose the next n packets (optionally one direction);
 *  - lossRate(p): Bernoulli loss until cleared;
 *  - blackout(from, until): total loss inside a time window;
 *  - scheduleBreak(t, nic, ep): silent connection kill at time t;
 *  - scheduleNodeCrash/Restart/Outage(t, node): whole-node failure —
 *    the node drops its volatile state and leaves the fabric, then
 *    (optionally) comes back cold. Targets implement NodeFaultTarget
 *    so the injector stays independent of the storage layer.
 *
 * All active rules apply simultaneously (a packet is dropped if any
 * rule says so). Statistics go into the simulation's MetricRegistry
 * under a unique "fault" prefix (dropped, breaks, node_crashes,
 * node_restarts) so availability experiments can snapshot what was
 * injected alongside what the system did about it.
 */

#ifndef V3SIM_VI_FAULT_INJECTOR_HH
#define V3SIM_VI_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <string>

#include "net/fabric.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "vi/vi_nic.hh"

namespace v3sim::vi
{

/**
 * A node the injector can crash and restart. Implemented by
 * storage::V3Server (declared here so vi does not depend on storage).
 * crash() must be idempotent and drop all volatile state; restart()
 * must bring the node back cold and re-listening.
 */
class NodeFaultTarget
{
  public:
    virtual ~NodeFaultTarget() = default;
    virtual void crash() = 0;
    virtual void restart() = 0;
};

/** Composable fault patterns over one fabric. */
class FaultInjector
{
  public:
    /**
     * Installs itself as the fabric's drop filter. Only one
     * injector per fabric; it replaces any existing filter.
     */
    FaultInjector(sim::Simulation &sim, net::Fabric &fabric);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    ~FaultInjector();

    /**
     * Drops the next @p count packets. When @p towards is set, only
     * packets destined for that port count (and are dropped).
     */
    void dropNext(int count,
                  std::optional<net::PortId> towards = std::nullopt);

    /** Random loss with probability @p p until cleared (0 clears). */
    void setLossRate(double p);

    /** Drops everything in [from, until) of simulated time. */
    void blackout(sim::Tick from, sim::Tick until);

    /** Schedules a silent connection break at absolute time @p when. */
    void scheduleBreak(sim::Tick when, ViNic &nic, EndpointId ep);

    /** Schedules @p node.crash() at absolute time @p when. */
    void scheduleNodeCrash(sim::Tick when, NodeFaultTarget &node);

    /** Schedules @p node.restart() at absolute time @p when. */
    void scheduleNodeRestart(sim::Tick when, NodeFaultTarget &node);

    /**
     * Convenience: crash at @p from, restart at @p until — the
     * scripted availability window the bench and tests use.
     */
    void scheduleNodeOutage(sim::Tick from, sim::Tick until,
                            NodeFaultTarget &node);

    /** Removes every active drop rule (scheduled events still fire). */
    void clear();

    /** Packets dropped by this injector. */
    uint64_t droppedCount() const { return dropped_.value(); }

    /** Connection breaks executed. */
    uint64_t breakCount() const { return breaks_.value(); }

    /** Node crashes executed. */
    uint64_t nodeCrashCount() const { return node_crashes_.value(); }

    /** Node restarts executed. */
    uint64_t nodeRestartCount() const { return node_restarts_.value(); }

  private:
    bool shouldDrop(const net::Packet &packet);

    sim::Simulation &sim_;
    net::Fabric &fabric_;
    /** Forked lazily on the first setLossRate: an idle injector must
     *  not consume an RNG stream, or merely constructing one would
     *  perturb every fault-free scenario's randomness. */
    std::optional<sim::Rng> rng_;

    int drop_next_ = 0;
    std::optional<net::PortId> drop_towards_;
    double loss_rate_ = 0.0;
    sim::Tick blackout_from_ = 0;
    sim::Tick blackout_until_ = 0;

    // Prefix member must precede the metric references (init order).
    std::string metric_prefix_;
    sim::Counter &dropped_;
    sim::Counter &breaks_;
    sim::Counter &node_crashes_;
    sim::Counter &node_restarts_;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_FAULT_INJECTOR_HH
