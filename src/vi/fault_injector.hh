/**
 * @file
 * Structured fault injection for the VI fabric.
 *
 * DSA exists because VI gives no reliability guarantees (section
 * 2.2: "most existing VI implementations do not provide strong
 * reliability guarantees"), so exercising loss and failure paths is
 * first-class in this reproduction. The injector composes the common
 * patterns over the fabric's drop filter and the NIC's
 * connection-break hook:
 *
 *  - dropNext(n): lose the next n packets (optionally one direction);
 *  - lossRate(p): Bernoulli loss until cleared;
 *  - blackout(from, until): total loss inside a time window;
 *  - scheduleBreak(t, nic, ep): silent connection kill at time t.
 *
 * All active rules apply simultaneously (a packet is dropped if any
 * rule says so); statistics record what was injected.
 */

#ifndef V3SIM_VI_FAULT_INJECTOR_HH
#define V3SIM_VI_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>

#include "net/fabric.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "vi/vi_nic.hh"

namespace v3sim::vi
{

/** Composable fault patterns over one fabric. */
class FaultInjector
{
  public:
    /**
     * Installs itself as the fabric's drop filter. Only one
     * injector per fabric; it replaces any existing filter.
     */
    FaultInjector(sim::Simulation &sim, net::Fabric &fabric);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    ~FaultInjector();

    /**
     * Drops the next @p count packets. When @p towards is set, only
     * packets destined for that port count (and are dropped).
     */
    void dropNext(int count,
                  std::optional<net::PortId> towards = std::nullopt);

    /** Random loss with probability @p p until cleared (0 clears). */
    void setLossRate(double p);

    /** Drops everything in [from, until) of simulated time. */
    void blackout(sim::Tick from, sim::Tick until);

    /** Schedules a silent connection break at absolute time @p when. */
    void scheduleBreak(sim::Tick when, ViNic &nic, EndpointId ep);

    /** Removes every active rule (scheduled breaks still fire). */
    void clear();

    /** Packets dropped by this injector. */
    uint64_t droppedCount() const { return dropped_.value(); }

    /** Connection breaks executed. */
    uint64_t breakCount() const { return breaks_.value(); }

  private:
    bool shouldDrop(const net::Packet &packet);

    sim::Simulation &sim_;
    net::Fabric &fabric_;
    sim::Rng rng_;

    int drop_next_ = 0;
    std::optional<net::PortId> drop_towards_;
    double loss_rate_ = 0.0;
    sim::Tick blackout_from_ = 0;
    sim::Tick blackout_until_ = 0;

    sim::Counter dropped_;
    sim::Counter breaks_;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_FAULT_INJECTOR_HH
