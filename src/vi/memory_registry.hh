/**
 * @file
 * The NIC address-translation table: VI memory registration.
 *
 * Models what section 3.1 of the paper fights with:
 *  - registering a buffer pins its pages (unless already pinned) and
 *    installs one translation-table entry — ~5 us for an 8 KB buffer;
 *  - the NIC bounds total registered memory (cLan: 1 GB);
 *  - consecutive registrations land in consecutive table slots, which
 *    is what makes *batched deregistration* possible: the table is
 *    divided into regions of `region_entries` consecutive slots
 *    (paper: 1000 entries = 4 MB of host memory) and one
 *    deregistration operation can free a whole region.
 *
 * The registry is mechanism only. Policy — when to deregister, per
 * I/O or batched — lives in dsa::RegCache. Costs are *returned* to
 * the caller, which charges them to the host CPU under the proper
 * accounting category; the registry itself never advances time.
 */

#ifndef V3SIM_VI_MEMORY_REGISTRY_HH
#define V3SIM_VI_MEMORY_REGISTRY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/memory.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vi/vi_costs.hh"
#include "vi/vi_types.hh"

namespace v3sim::vi
{

/** Result of a successful registration. */
struct RegResult
{
    MemHandle handle;
    /** Host CPU time the caller must charge for the operation. */
    sim::Tick cost = 0;
    /** Region (slot / region_entries) the new entry landed in. */
    uint32_t region = 0;
};

/** Result of a region deregistration. */
struct RegionDeregResult
{
    /** Host CPU time for the single batched table-remove (plus
     *  unpinning when the entries pinned their own pages). */
    sim::Tick cost = 0;
    /** Entries freed. */
    uint32_t entries_freed = 0;
};

/** One NIC's translation table. */
class MemoryRegistry
{
  public:
    /**
     * @param costs cost/limit model (capacity, per-op costs).
     * @param region_entries consecutive slots per batched region
     *        (paper default 1000).
     */
    explicit MemoryRegistry(const ViCosts &costs,
                            uint32_t region_entries = 1000);

    /**
     * Registers [addr, addr+len). Fails (nullopt) when the table is
     * out of entries or the byte capacity would be exceeded — the
     * caller must deregister something and retry.
     *
     * @param pre_pinned true when the pages are already pinned (AWE
     *        memory, or buffers pinned by the kernel I/O manager);
     *        skips pin cost.
     */
    std::optional<RegResult> registerMemory(sim::Addr addr,
                                            uint64_t len,
                                            bool pre_pinned);

    /**
     * Deregisters a single entry (the unbatched path).
     * @return the host cost, or nullopt if the handle is stale.
     */
    std::optional<sim::Tick> deregister(MemHandle handle);

    /**
     * Frees every in-use entry in @p region with one table operation
     * (batched deregistration). The caller asserts all I/O on those
     * buffers has completed.
     */
    RegionDeregResult deregisterRegion(uint32_t region);

    /** True if @p handle is live and covers [addr, addr+len). */
    bool covers(MemHandle handle, sim::Addr addr, uint64_t len) const;

    /** True if *some* live entry covers [addr, addr+len). Used by
     *  the NIC to validate incoming RDMA targets. */
    bool anyCovers(sim::Addr addr, uint64_t len) const;

    /** Region a handle's slot belongs to. */
    uint32_t regionOf(MemHandle handle) const;

    uint32_t regionEntries() const { return region_entries_; }
    uint64_t registeredBytes() const { return registered_bytes_; }
    uint32_t liveEntries() const { return live_entries_; }

    /** @name Statistics @{ */
    uint64_t registrationCount() const { return registrations_.value(); }
    uint64_t deregistrationCount() const
    {
        return deregistrations_.value();
    }
    uint64_t regionDeregCount() const { return region_deregs_.value(); }
    uint64_t failureCount() const { return failures_.value(); }
    uint64_t peakRegisteredBytes() const { return peak_bytes_; }
    /** @} */

    /**
     * Publishes this registry's stats under @p prefix (typically
     * "nic.<name>.mem_registry"). The registry keeps owning its
     * counters — it is constructed standalone in tests, without a
     * Simulation — so the metrics are gauges, plus an epoch hook
     * that resets the operation counters (live translation-table
     * state is untouched: registered buffers survive epochs).
     */
    void registerMetrics(sim::MetricRegistry &metrics,
                         const std::string &prefix);

  private:
    struct Entry
    {
        bool in_use = false;
        uint64_t generation = 0;
        sim::Addr addr = sim::kNullAddr;
        uint64_t len = 0;
        bool self_pinned = false; ///< pages were pinned by register
    };

    /** Advances the cursor to a free slot; false if table full. */
    bool findFreeSlot(uint32_t *slot);

    void
    markSlotUsed(uint32_t slot)
    {
        free_bits_[slot / 64] &= ~(uint64_t(1) << (slot % 64));
    }

    void
    markSlotFree(uint32_t slot)
    {
        free_bits_[slot / 64] |= uint64_t(1) << (slot % 64);
    }

    /** Removes one (addr, slot) pair from the address index. */
    void eraseByAddr(sim::Addr addr, uint32_t slot);

    /** Stored by value: callers may pass temporaries. */
    ViCosts costs_;
    uint32_t region_entries_;
    std::vector<Entry> table_;
    /** One bit per slot, set = free. The allocation probe walks this
     *  8KB-per-64Ki-entries bitmap instead of sweeping the cold
     *  multi-MB entry table; selection order is identical to the
     *  plain linear scan. */
    std::vector<uint64_t> free_bits_;
    uint32_t cursor_ = 0;
    uint32_t live_entries_ = 0;
    uint64_t registered_bytes_ = 0;
    uint64_t peak_bytes_ = 0;
    uint64_t next_generation_ = 1;
    /** Live entries indexed by base address for O(log n) RDMA-target
     *  validation. A multimap: the same buffer may be registered by
     *  several in-flight I/Os at once (wDSA registers per I/O), and
     *  one completion deregistering its entry must not invalidate the
     *  siblings still covering the address. */
    std::multimap<sim::Addr, uint32_t> by_addr_;

    sim::Counter registrations_;
    sim::Counter deregistrations_;
    sim::Counter region_deregs_;
    sim::Counter failures_;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_MEMORY_REGISTRY_HH
