/**
 * @file
 * VI NIC and endpoint model.
 *
 * A ViNic owns one fabric port, one memory registry (translation
 * table), and a set of endpoints (VIs). It implements the VI
 * architecture behaviours the paper's systems depend on:
 *
 *  - connection-oriented endpoints with an explicit handshake
 *    (ConnectReq / ConnectAck over the wire) and disconnect;
 *  - pre-posted receive descriptors; an incoming send that finds no
 *    posted receive is a *receive overrun* and breaks the connection
 *    — the failure DSA's flow control exists to prevent;
 *  - RDMA write, optionally with a 32-bit immediate. Plain RDMA
 *    writes touch remote memory without consuming a receive
 *    descriptor or generating a remote completion — the mechanism
 *    behind cDSA's polled completion flags;
 *  - fragmentation of transfers into cLan-sized packets (64K - 64
 *    bytes) with per-packet NIC processing;
 *  - memory protection: sends must reference locally registered
 *    buffers, RDMA targets must be registered at the remote NIC, and
 *    violations error the connection;
 *  - completion queues with poll or one-shot interrupt notification.
 *
 * Host CPU costs (doorbells, kernel transitions, interrupt handling)
 * are charged by the layers above; the NIC model only spends NIC and
 * wire time. Data is really copied between the two hosts' memory
 * spaces unless those are phantom.
 */

#ifndef V3SIM_VI_VI_NIC_HH
#define V3SIM_VI_VI_NIC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/memory.hh"
#include "sim/resource.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "vi/completion_queue.hh"
#include "vi/memory_registry.hh"
#include "vi/vi_costs.hh"
#include "vi/vi_types.hh"

namespace v3sim::vi
{

class ViNic;

/**
 * One VI: a connected pair of send/receive work queues. Created via
 * ViNic::createEndpoint and operated through the owning NIC.
 */
class ViEndpoint
{
  public:
    using StateHandler = std::function<void(EndpointState)>;

    EndpointId id() const { return id_; }
    EndpointState state() const { return state_; }
    ViNic &nic() { return *nic_; }

    net::PortId remotePort() const { return remote_port_; }
    EndpointId remoteEndpoint() const { return remote_ep_; }

    /** Receive descriptors currently posted and unconsumed. */
    size_t postedRecvCount() const { return recv_queue_.size(); }

    CompletionQueue *sendCq() { return send_cq_; }
    CompletionQueue *recvCq() { return recv_cq_; }

    /** Observer for connection state changes (connected, error). */
    void
    setStateHandler(StateHandler handler)
    {
        state_handler_ = std::move(handler);
    }

  private:
    friend class ViNic;

    ViEndpoint(ViNic *nic, EndpointId id, CompletionQueue *send_cq,
               CompletionQueue *recv_cq)
        : nic_(nic), id_(id), send_cq_(send_cq), recv_cq_(recv_cq)
    {}

    void setState(EndpointState next);

    ViNic *nic_;
    EndpointId id_;
    CompletionQueue *send_cq_;
    CompletionQueue *recv_cq_;
    EndpointState state_ = EndpointState::Idle;
    net::PortId remote_port_ = net::kInvalidPort;
    EndpointId remote_ep_ = kInvalidEndpoint;
    StateHandler state_handler_;

    std::deque<WorkDescriptor> recv_queue_;

    /** Reassembly of the in-flight inbound send, if any. */
    struct InboundSend
    {
        WorkDescriptor desc;
        uint64_t received = 0;
        bool active = false;
        /** Any fragment so far arrived damaged. */
        bool corrupted = false;
    };
    InboundSend inbound_;
};

/** The NIC: fabric port + translation table + endpoints. */
class ViNic
{
  public:
    /**
     * @param memory the owning host's memory space (DMA target).
     * @param reg_region_entries translation-table region size used
     *        for batched deregistration.
     */
    ViNic(sim::Simulation &sim, net::Fabric &fabric,
          sim::MemorySpace &memory, std::string name,
          ViCosts costs = {}, uint32_t reg_region_entries = 1000);

    ViNic(const ViNic &) = delete;
    ViNic &operator=(const ViNic &) = delete;

    const std::string &name() const { return name_; }
    net::PortId port() const { return port_; }
    const ViCosts &costs() const { return costs_; }
    MemoryRegistry &registry() { return registry_; }
    sim::MemorySpace &memory() { return memory_; }

    /** Creates an endpoint bound to the given completion queues. */
    ViEndpoint &createEndpoint(CompletionQueue *send_cq,
                               CompletionQueue *recv_cq);

    ViEndpoint *endpoint(EndpointId id);

    /**
     * Server side: decides whether to accept an incoming connection.
     * Return the local endpoint to bind, or nullptr to refuse. The
     * endpoint must be Idle.
     */
    using AcceptHandler =
        std::function<ViEndpoint *(net::PortId remote_port,
                                   EndpointId remote_ep)>;

    void setAcceptHandler(AcceptHandler handler)
    {
        accept_handler_ = std::move(handler);
    }

    /**
     * Client side: starts the connection handshake towards
     * @p remote_port. The endpoint's state handler fires with
     * Connected or Error when the handshake resolves.
     */
    void connect(ViEndpoint &ep, net::PortId remote_port);

    /** Graceful disconnect; notifies the peer. */
    void disconnect(ViEndpoint &ep);

    /**
     * Fault injection: drops the connection as a link/NIC failure
     * would — no notification reaches the peer; local posted work is
     * flushed and the state handler sees Error.
     */
    void breakConnection(ViEndpoint &ep);

    /** One inbound RDMA fragment that landed in this host's memory. */
    struct RdmaEvent
    {
        sim::Addr addr = sim::kNullAddr; ///< where it landed
        uint64_t len = 0;                ///< fragment bytes
        bool last = true;                ///< last fragment of transfer
        bool corrupted = false;          ///< damaged in flight
        uint64_t meta = 0; ///< sender's WorkDescriptor::meta sidecar
    };

    /**
     * Observer invoked whenever an inbound RDMA write lands in this
     * host's memory (once per fragment). cDSA uses it to implement
     * polled completion flags in a way that also works with phantom
     * memory: the poller's flag state is updated by the observer
     * rather than by re-reading bytes. The integrity layer uses the
     * per-fragment corrupted bit to taint client buffers and server
     * staging slots touched by damaged RDMA traffic.
     */
    using RdmaObserver = std::function<void(const RdmaEvent &)>;

    void setRdmaObserver(RdmaObserver observer)
    {
        rdma_observer_ = std::move(observer);
    }

    /**
     * Fault injection: damages the next @p count inbound RDMA
     * fragments (RDMA writes and RDMA-read responses) as they DMA
     * into this host's memory — modelling a bad NIC receive buffer or
     * DMA engine, the corruption class the link CRC cannot see at
     * all because it happens after the CRC check.
     */
    void corruptNextRdma(int count) { corrupt_next_rdma_ += count; }

    /**
     * Posts a receive descriptor. The buffer must be registered.
     * @return false (nothing posted) on validation failure.
     */
    bool postRecv(ViEndpoint &ep, const WorkDescriptor &desc,
                  MemHandle handle);

    /**
     * Posts a send. Fragments onto the wire; a send completion lands
     * on the endpoint's send CQ when the last fragment leaves the
     * NIC. @return false on validation failure.
     */
    bool postSend(ViEndpoint &ep, const WorkDescriptor &desc,
                  MemHandle handle);

    /**
     * Posts an RDMA write into the peer's memory. The local buffer
     * must be registered here; the target range must be registered
     * at the peer, else the peer errors the connection. Completion
     * semantics mirror postSend.
     */
    bool postRdmaWrite(ViEndpoint &ep, const WorkDescriptor &desc,
                       MemHandle handle);

    /**
     * Posts an RDMA read: pulls desc.len bytes from desc.remote_addr
     * in the peer's memory into the local buffer. Serviced entirely
     * by the remote NIC (no remote CPU, no remote completion). The
     * local completion (type RdmaRead) lands on the endpoint's
     * *receive* CQ when the data has arrived. @return false on
     * validation failure.
     */
    bool postRdmaRead(ViEndpoint &ep, const WorkDescriptor &desc,
                      MemHandle handle);

    /** @name Statistics @{ */
    uint64_t packetsSent() const { return packets_sent_.value(); }
    uint64_t packetsReceived() const { return packets_received_.value(); }
    uint64_t recvOverruns() const { return recv_overruns_.value(); }
    uint64_t protectionErrors() const
    {
        return protection_errors_.value();
    }
    /** Inbound packets this NIC delivered with damaged payloads. */
    uint64_t packetsCorrupted() const
    {
        return packets_corrupted_.value();
    }
    /** @} */

  private:
    /** Wire message carried as the fabric payload. */
    struct WireMsg
    {
        enum class Kind : uint8_t
        {
            ConnectReq,
            ConnectAck,
            ConnectRefuse,
            Disconnect,
            Send,
            Rdma,
            RdmaReadReq,
            RdmaReadResp,
        };

        Kind kind = Kind::Send;
        EndpointId src_ep = kInvalidEndpoint;
        EndpointId dst_ep = kInvalidEndpoint;
        uint64_t offset = 0;
        uint64_t frag_len = 0;
        uint64_t total_len = 0;
        bool last = true;
        sim::Addr remote_addr = sim::kNullAddr; // RDMA target/source
        sim::Addr read_dest = sim::kNullAddr;   // RDMA-read sink
        uint64_t read_cookie = 0;               // RDMA-read match
        bool has_immediate = false;
        uint32_t immediate = 0;
        uint64_t meta = 0; // WorkDescriptor::meta sidecar
        bool corrupted = false; // damaged in flight (fault injection)
        std::vector<uint8_t> data; // empty when memory is phantom
        std::shared_ptr<void> control; // protocol sidecar
    };

    /** Fragments and transmits a send/RDMA descriptor. */
    void transmit(ViEndpoint &ep, const WorkDescriptor &desc,
                  WireMsg::Kind kind);

    /** Sends a small control message (connect/disconnect family).
     *  @p order_key orders it against same-tick transmit work. */
    void sendControl(net::PortId dst, WireMsg msg,
                     uint64_t order_key = 0);

    void onPacket(net::Packet packet);

    /** Marks @p msg corrupted and, when it carries real bytes, flips
     *  one of them so software-visible data actually differs. */
    void applyCorruption(WireMsg &msg);

    void handleControl(net::PortId src_port, const WireMsg &msg);
    void handleSendMsg(const WireMsg &msg);
    void handleRdmaMsg(const WireMsg &msg);
    void handleRdmaReadReq(const WireMsg &msg);
    void handleRdmaReadResp(const WireMsg &msg);

    /** Errors the connection and flushes posted receives. */
    void failEndpoint(ViEndpoint &ep, WorkStatus reason,
                      bool notify_peer);

    sim::Simulation &sim_;
    net::Fabric &fabric_;
    sim::MemorySpace &memory_;
    std::string name_;
    ViCosts costs_;
    MemoryRegistry registry_;
    net::PortId port_;
    /** Serializes per-packet NIC receive processing. */
    sim::ServerPool rx_engine_;
    /** Serializes per-packet NIC transmit processing. */
    sim::ServerPool tx_engine_;

    std::vector<std::unique_ptr<ViEndpoint>> endpoints_;
    AcceptHandler accept_handler_;
    RdmaObserver rdma_observer_;

    /** Pending corruptNextRdma() injections. */
    int corrupt_next_rdma_ = 0;

    /// Registry path prefix ("nic.<name>", uniquified); must precede
    /// the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::CounterHandle packets_sent_;
    sim::CounterHandle packets_received_;
    sim::CounterHandle recv_overruns_;
    sim::CounterHandle protection_errors_;
    sim::CounterHandle packets_corrupted_;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_VI_NIC_HH
