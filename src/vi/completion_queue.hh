/**
 * @file
 * VI completion queue.
 *
 * Work completions land here; the consumer drains them either by
 * explicit polling (cDSA's polling mode, the V3 server's dedicated
 * receive loop) or after arming the queue for a one-shot interrupt
 * notification (kDSA/wDSA completion paths). Arming follows the VI /
 * verbs convention: the interrupt sink fires once on the next push,
 * then the queue must be re-armed — which is exactly the hook DSA's
 * interrupt-batching policies manipulate (section 3.2).
 *
 * The awaitable next() is a simulation convenience for consumers that
 * dedicate a loop to the queue (the V3 server polls; modelling a
 * spinning poll with events would only burn simulator cycles).
 */

#ifndef V3SIM_VI_COMPLETION_QUEUE_HH
#define V3SIM_VI_COMPLETION_QUEUE_HH

#include <coroutine>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "sim/stats.hh"
#include "vi/vi_types.hh"

namespace v3sim::vi
{

/** Queue of WorkCompletions with poll and one-shot-interrupt modes. */
class CompletionQueue
{
  public:
    explicit CompletionQueue(std::string name = "")
        : name_(std::move(name))
    {}

    CompletionQueue(const CompletionQueue &) = delete;
    CompletionQueue &operator=(const CompletionQueue &) = delete;

    const std::string &name() const { return name_; }

    /** NIC side: appends a completion and delivers notifications. */
    void
    push(WorkCompletion completion)
    {
        entries_.push_back(completion);
        pushes_.increment();
        if (waiter_) {
            auto w = std::exchange(waiter_, nullptr);
            w.resume();
            return;
        }
        if (armed_) {
            armed_ = false;
            interrupts_.increment();
            if (interrupt_sink_)
                interrupt_sink_();
        }
    }

    /** Consumer side: pops the oldest completion, if any. */
    std::optional<WorkCompletion>
    poll()
    {
        if (entries_.empty())
            return std::nullopt;
        WorkCompletion completion = entries_.front();
        entries_.pop_front();
        return completion;
    }

    size_t depth() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Requests a one-shot interrupt on the next push. */
    void arm() { armed_ = true; }

    /** Cancels a pending arm (interrupt batching turns these off). */
    void disarm() { armed_ = false; }

    bool armed() const { return armed_; }

    /** Installs the host interrupt entry point (owner wires this to
     *  the node's interrupt controller). */
    void
    setInterruptSink(std::function<void()> sink)
    {
        interrupt_sink_ = std::move(sink);
    }

    /**
     * Awaitable: resumes with the oldest completion, waiting for a
     * push when empty. Single waiter at a time (one service loop per
     * queue). Bypasses the interrupt mechanism entirely — use it only
     * for dedicated polling loops.
     */
    auto
    next()
    {
        struct Awaiter
        {
            CompletionQueue *cq;

            bool await_ready() const { return !cq->entries_.empty(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                cq->waiter_ = h;
            }

            WorkCompletion
            await_resume()
            {
                WorkCompletion completion = cq->entries_.front();
                cq->entries_.pop_front();
                return completion;
            }
        };
        return Awaiter{this};
    }

    /** Completions ever pushed. */
    uint64_t pushCount() const { return pushes_.value(); }

    /** Interrupts ever fired from this queue. */
    uint64_t interruptCount() const { return interrupts_.value(); }

  private:
    std::string name_;
    std::deque<WorkCompletion> entries_;
    bool armed_ = false;
    std::function<void()> interrupt_sink_;
    std::coroutine_handle<> waiter_;
    sim::Counter pushes_;
    sim::Counter interrupts_;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_COMPLETION_QUEUE_HH
