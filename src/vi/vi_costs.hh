/**
 * @file
 * Cost constants for the VI provider and NIC model.
 *
 * Every value is taken from, or calibrated against, figures the paper
 * states for the Giganet cLan platform (sections 3.1, 3.2, 4, 5.1):
 *
 *  - "the maximum end-to-end user-level bandwidth of Giganet is about
 *    110 MB/s and the one-way latency for a 64-bytes message is about
 *    7 us" (section 4) — bandwidth lives in FabricConfig; the latency
 *    budget is split below across doorbell, NIC processing, wire and
 *    receive dispatch so the total lands at ~7 us.
 *  - "takes about 10 us to register and deregister an 8K buffer",
 *    "registration/deregistration cost (5-10 microseconds each)"
 *    (sections 3.1, 5.1) — an 8 KB buffer spans 2 pages, so
 *    register = pin 2 pages + 1 table write ~= 5 us, deregister
 *    similar.
 *  - "allows 1 GB of outstanding registered buffers" (section 3.1).
 *  - "the packet size in the cLan VI implementation is 64K - 64
 *    bytes" (section 5.3).
 *  - interrupt cost of 5-10 us is a *host* property and lives in
 *    osmodel::HostCosts.
 */

#ifndef V3SIM_VI_VI_COSTS_HH
#define V3SIM_VI_VI_COSTS_HH

#include <cstdint>

#include "sim/types.hh"
#include "util/units.hh"

namespace v3sim::vi
{

/** Tunable VI provider/NIC cost model. Defaults model Giganet cLan. */
struct ViCosts
{
    /** Host cost to ring a doorbell (post a descriptor) from user
     *  level: "a few instructions" plus a PIO write. */
    sim::Tick doorbell = sim::nsecs(700);

    /** Extra host cost when the provider call must enter the kernel
     *  (kernel-level VI as used by kDSA). */
    sim::Tick kernel_transition = sim::usecs(1.2);

    /** NIC-side processing per transmitted packet (descriptor fetch,
     *  address translation, DMA setup). */
    sim::Tick nic_tx_processing = sim::usecs(1.5);

    /** NIC-side processing per received packet (match to recv
     *  descriptor or RDMA target, DMA to host memory). */
    sim::Tick nic_rx_processing = sim::usecs(1.5);

    /** Host cost to poll a completion queue once (check + pop). */
    sim::Tick cq_poll = sim::nsecs(300);

    /** Host cost to pin or unpin one page (enters the kernel). */
    sim::Tick page_pin = sim::usecs(1.8);

    /** Host cost to install one NIC translation-table entry. */
    sim::Tick table_update = sim::usecs(1.4);

    /** Host cost to remove translation-table entries; one operation
     *  can cover a whole region (batched deregistration). */
    sim::Tick table_remove = sim::usecs(1.4);

    /** Maximum bytes the NIC allows registered at once (cLan: 1 GB). */
    uint64_t max_registered_bytes = 1ull * util::kGiB;

    /** Maximum NIC translation-table entries. The cLan table holds
     *  one entry per registered buffer; regions of 1000 entries map
     *  4 MB of host memory (section 3.1). 64 Ki entries comfortably
     *  exceeds any realistic count of concurrently registered I/O
     *  buffers while keeping the simulated table small. */
    uint32_t max_table_entries = 65536;

    /** Maximum wire packet (cLan: 64K - 64 bytes). */
    uint64_t max_packet_bytes = 64 * util::kKiB - 64;

    /**
     * Wire overhead bytes added per packet (headers/CRC). This is the
     * *link-level* CRC the NIC hardware checks and strips on every
     * hop; it protects a single wire segment only. It is distinct
     * from — and no substitute for — the *end-to-end* CRC32C digests
     * the DSA protocol carries (dsa/protocol.hh, util/crc32c.hh),
     * which survive NIC buffers, DMA engines and staging copies and
     * are the detection layer of the integrity subsystem.
     */
    uint64_t packet_header_bytes = 64;
};

} // namespace v3sim::vi

#endif // V3SIM_VI_VI_COSTS_HH
