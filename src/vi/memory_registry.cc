#include "memory_registry.hh"

#include <cassert>

namespace v3sim::vi
{

MemoryRegistry::MemoryRegistry(const ViCosts &costs,
                               uint32_t region_entries)
    : costs_(costs), region_entries_(region_entries)
{
    assert(region_entries_ >= 1);
    table_.resize(costs_.max_table_entries);
    free_bits_.assign((table_.size() + 63) / 64, ~uint64_t(0));
    if (table_.size() % 64 != 0)
        free_bits_.back() =
            (uint64_t(1) << (table_.size() % 64)) - 1;
}

bool
MemoryRegistry::findFreeSlot(uint32_t *slot)
{
    if (live_entries_ >= table_.size())
        return false;
    const uint32_t n = static_cast<uint32_t>(table_.size());
    // First free slot at or after cursor_, wrapping — the same
    // round-robin policy as a linear probe of the table, but over the
    // free-slot bitmap. Probing order: the cursor word's high bits,
    // the following words (wrapping), then the cursor word's low
    // bits, which is exactly the slot order cursor_..n-1, 0..cursor_-1.
    const uint32_t words = static_cast<uint32_t>(free_bits_.size());
    const uint32_t start_word = cursor_ / 64;
    const uint32_t start_bit = cursor_ % 64;
    for (uint32_t i = 0; i <= words; ++i) {
        const uint32_t w = (start_word + i) % words;
        uint64_t bits = free_bits_[w];
        if (i == 0)
            bits &= ~uint64_t(0) << start_bit;
        else if (i == words)
            bits &= start_bit != 0
                        ? (uint64_t(1) << start_bit) - 1
                        : 0;
        if (bits != 0) {
            const uint32_t candidate =
                w * 64 +
                static_cast<uint32_t>(__builtin_ctzll(bits));
            *slot = candidate;
            cursor_ = (candidate + 1) % n;
            return true;
        }
    }
    return false;
}

std::optional<RegResult>
MemoryRegistry::registerMemory(sim::Addr addr, uint64_t len,
                               bool pre_pinned)
{
    if (len == 0 ||
        registered_bytes_ + len > costs_.max_registered_bytes) {
        failures_.increment();
        return std::nullopt;
    }
    uint32_t slot;
    if (!findFreeSlot(&slot)) {
        failures_.increment();
        return std::nullopt;
    }

    Entry &entry = table_[slot];
    markSlotUsed(slot);
    entry.in_use = true;
    entry.generation = next_generation_++;
    entry.addr = addr;
    entry.len = len;
    entry.self_pinned = !pre_pinned;

    ++live_entries_;
    registered_bytes_ += len;
    peak_bytes_ = std::max(peak_bytes_, registered_bytes_);
    registrations_.increment();

    sim::Tick cost = costs_.table_update;
    if (!pre_pinned)
        cost += static_cast<sim::Tick>(sim::pageSpan(addr, len)) *
                costs_.page_pin;

    by_addr_.emplace(addr, slot);

    RegResult result;
    result.handle = MemHandle{slot, entry.generation};
    result.cost = cost;
    result.region = slot / region_entries_;
    return result;
}

std::optional<sim::Tick>
MemoryRegistry::deregister(MemHandle handle)
{
    if (handle.slot >= table_.size())
        return std::nullopt;
    Entry &entry = table_[handle.slot];
    if (!entry.in_use || entry.generation != handle.generation)
        return std::nullopt;

    sim::Tick cost = costs_.table_remove;
    if (entry.self_pinned)
        cost += static_cast<sim::Tick>(
                    sim::pageSpan(entry.addr, entry.len)) *
                costs_.page_pin;

    eraseByAddr(entry.addr, handle.slot);
    registered_bytes_ -= entry.len;
    --live_entries_;
    entry = Entry{};
    markSlotFree(handle.slot);
    deregistrations_.increment();
    return cost;
}

RegionDeregResult
MemoryRegistry::deregisterRegion(uint32_t region)
{
    RegionDeregResult result;
    const uint64_t first =
        static_cast<uint64_t>(region) * region_entries_;
    if (first >= table_.size())
        return result;
    const uint64_t last =
        std::min<uint64_t>(first + region_entries_, table_.size());

    // One table operation covers the whole region; unpinning (when
    // the entries pinned their own pages) still costs per page.
    result.cost = costs_.table_remove;
    for (uint64_t slot = first; slot < last; ++slot) {
        Entry &entry = table_[slot];
        if (!entry.in_use)
            continue;
        if (entry.self_pinned) {
            result.cost +=
                static_cast<sim::Tick>(
                    sim::pageSpan(entry.addr, entry.len)) *
                costs_.page_pin;
        }
        eraseByAddr(entry.addr, slot);
        registered_bytes_ -= entry.len;
        --live_entries_;
        entry = Entry{};
        markSlotFree(static_cast<uint32_t>(slot));
        ++result.entries_freed;
    }
    region_deregs_.increment();
    return result;
}

bool
MemoryRegistry::covers(MemHandle handle, sim::Addr addr,
                       uint64_t len) const
{
    if (handle.slot >= table_.size())
        return false;
    const Entry &entry = table_[handle.slot];
    if (!entry.in_use || entry.generation != handle.generation)
        return false;
    return addr >= entry.addr && addr - entry.addr <= entry.len &&
           len <= entry.len - (addr - entry.addr);
}

bool
MemoryRegistry::anyCovers(sim::Addr addr, uint64_t len) const
{
    if (by_addr_.empty())
        return false;
    auto it = by_addr_.upper_bound(addr);
    if (it == by_addr_.begin())
        return false;
    --it;
    // Every entry sharing the closest base address gets a look: the
    // same buffer can carry several live registrations with
    // different lengths.
    const sim::Addr base = it->first;
    for (; it->first == base; --it) {
        const Entry &entry = table_[it->second];
        if (entry.in_use && addr >= entry.addr &&
            addr - entry.addr <= entry.len &&
            len <= entry.len - (addr - entry.addr)) {
            return true;
        }
        if (it == by_addr_.begin())
            break;
    }
    return false;
}

uint32_t
MemoryRegistry::regionOf(MemHandle handle) const
{
    return handle.slot / region_entries_;
}

void
MemoryRegistry::eraseByAddr(sim::Addr addr, uint32_t slot)
{
    auto [first, last] = by_addr_.equal_range(addr);
    for (auto it = first; it != last; ++it) {
        if (it->second == slot) {
            by_addr_.erase(it);
            return;
        }
    }
}

void
MemoryRegistry::registerMetrics(sim::MetricRegistry &metrics,
                                const std::string &prefix)
{
    metrics.gauge(prefix + ".registrations", [this] {
        return static_cast<double>(registrations_.value());
    });
    metrics.gauge(prefix + ".deregistrations", [this] {
        return static_cast<double>(deregistrations_.value());
    });
    metrics.gauge(prefix + ".region_deregs", [this] {
        return static_cast<double>(region_deregs_.value());
    });
    metrics.gauge(prefix + ".failures", [this] {
        return static_cast<double>(failures_.value());
    });
    metrics.gauge(prefix + ".pinned_bytes", [this] {
        return static_cast<double>(registered_bytes_);
    });
    metrics.gauge(prefix + ".live_entries", [this] {
        return static_cast<double>(live_entries_);
    });
    metrics.gauge(prefix + ".peak_bytes", [this] {
        return static_cast<double>(peak_bytes_);
    });
    metrics.onEpochReset([this](sim::Tick) {
        registrations_.reset();
        deregistrations_.reset();
        region_deregs_.reset();
        failures_.reset();
    });
}

} // namespace v3sim::vi
