#include "vi_nic.hh"

#include <algorithm>
#include <cassert>

#include "util/logging.hh"

namespace v3sim::vi
{

void
ViEndpoint::setState(EndpointState next)
{
    if (state_ == next)
        return;
    state_ = next;
    if (state_handler_)
        state_handler_(next);
}

ViNic::ViNic(sim::Simulation &sim, net::Fabric &fabric,
             sim::MemorySpace &memory, std::string name, ViCosts costs,
             uint32_t reg_region_entries)
    : sim_(sim),
      fabric_(fabric),
      memory_(memory),
      name_(std::move(name)),
      costs_(costs),
      registry_(costs_, reg_region_entries),
      port_(net::kInvalidPort),
      rx_engine_(sim.queue(), 1, name_ + ".rx"),
      tx_engine_(sim.queue(), 1, name_ + ".tx"),
      metric_prefix_(sim.metrics().uniquePrefix("nic." + name_)),
      packets_sent_(
          sim.metrics().counter(metric_prefix_ + ".packets_sent")),
      packets_received_(
          sim.metrics().counter(metric_prefix_ + ".packets_received")),
      recv_overruns_(
          sim.metrics().counter(metric_prefix_ + ".recv_overruns")),
      protection_errors_(sim.metrics().counter(metric_prefix_ +
                                               ".protection_errors")),
      packets_corrupted_(sim.metrics().counter(metric_prefix_ +
                                               ".packets_corrupted"))
{
    port_ = fabric_.attach(
        [this](net::Packet packet) { onPacket(std::move(packet)); },
        name_);
    registry_.registerMetrics(sim.metrics(),
                              metric_prefix_ + ".mem_registry");
}

ViEndpoint &
ViNic::createEndpoint(CompletionQueue *send_cq, CompletionQueue *recv_cq)
{
    const EndpointId id = static_cast<EndpointId>(endpoints_.size());
    endpoints_.push_back(std::unique_ptr<ViEndpoint>(
        new ViEndpoint(this, id, send_cq, recv_cq)));
    return *endpoints_.back();
}

ViEndpoint *
ViNic::endpoint(EndpointId id)
{
    if (id >= endpoints_.size())
        return nullptr;
    return endpoints_[id].get();
}

void
ViNic::connect(ViEndpoint &ep, net::PortId remote_port)
{
    assert(ep.state_ == EndpointState::Idle);
    ep.remote_port_ = remote_port;
    ep.setState(EndpointState::Connecting);

    WireMsg msg;
    msg.kind = WireMsg::Kind::ConnectReq;
    msg.src_ep = ep.id_;
    sendControl(remote_port, std::move(msg));
}

void
ViNic::disconnect(ViEndpoint &ep)
{
    if (ep.state_ != EndpointState::Connected) {
        ep.setState(EndpointState::Closed);
        return;
    }
    WireMsg msg;
    msg.kind = WireMsg::Kind::Disconnect;
    msg.src_ep = ep.id_;
    msg.dst_ep = ep.remote_ep_;
    sendControl(ep.remote_port_, std::move(msg));

    // Flush still-posted receives so the owner can reclaim buffers.
    for (const WorkDescriptor &desc : ep.recv_queue_) {
        WorkCompletion flushed;
        flushed.type = WorkType::Recv;
        flushed.status = WorkStatus::Flushed;
        flushed.endpoint = ep.id_;
        flushed.cookie = desc.cookie;
        if (ep.recv_cq_)
            ep.recv_cq_->push(flushed);
    }
    ep.recv_queue_.clear();
    ep.inbound_.active = false;
    ep.setState(EndpointState::Closed);
}

void
ViNic::breakConnection(ViEndpoint &ep)
{
    failEndpoint(ep, WorkStatus::ConnectionError, /*notify_peer=*/false);
}

bool
ViNic::postRecv(ViEndpoint &ep, const WorkDescriptor &desc,
                MemHandle handle)
{
    if (ep.state_ == EndpointState::Error ||
        ep.state_ == EndpointState::Closed) {
        return false;
    }
    if (!registry_.covers(handle, desc.local_addr, desc.len)) {
        V3LOG(Warn, "vi") << name_ << ": postRecv on unregistered buffer";
        return false;
    }
    WorkDescriptor queued = desc;
    queued.type = WorkType::Recv;
    ep.recv_queue_.push_back(queued);
    return true;
}

bool
ViNic::postSend(ViEndpoint &ep, const WorkDescriptor &desc,
                MemHandle handle)
{
    if (ep.state_ != EndpointState::Connected)
        return false;
    if (!registry_.covers(handle, desc.local_addr, desc.len)) {
        V3LOG(Warn, "vi") << name_ << ": postSend on unregistered buffer";
        return false;
    }
    transmit(ep, desc, WireMsg::Kind::Send);
    return true;
}

bool
ViNic::postRdmaWrite(ViEndpoint &ep, const WorkDescriptor &desc,
                     MemHandle handle)
{
    if (ep.state_ != EndpointState::Connected)
        return false;
    if (!registry_.covers(handle, desc.local_addr, desc.len)) {
        V3LOG(Warn, "vi") << name_
                          << ": postRdmaWrite on unregistered buffer";
        return false;
    }
    transmit(ep, desc, WireMsg::Kind::Rdma);
    return true;
}

bool
ViNic::postRdmaRead(ViEndpoint &ep, const WorkDescriptor &desc,
                    MemHandle handle)
{
    if (ep.state_ != EndpointState::Connected)
        return false;
    if (!registry_.covers(handle, desc.local_addr, desc.len)) {
        V3LOG(Warn, "vi") << name_
                          << ": postRdmaRead on unregistered buffer";
        return false;
    }
    // A small request frame; the remote NIC streams the data back as
    // RdmaReadResp fragments targeted at our local buffer.
    WireMsg msg;
    msg.kind = WireMsg::Kind::RdmaReadReq;
    msg.src_ep = ep.id_;
    msg.dst_ep = ep.remote_ep_;
    msg.remote_addr = desc.remote_addr; // source at the peer
    msg.read_dest = desc.local_addr;    // sink here
    msg.total_len = desc.len;
    msg.read_cookie = desc.cookie;
    sendControl(ep.remote_port_, std::move(msg), desc.order_key);
    return true;
}

void
ViNic::transmit(ViEndpoint &ep, const WorkDescriptor &desc,
                WireMsg::Kind kind)
{
    const uint64_t max_frag = costs_.max_packet_bytes;
    const uint64_t total = desc.len;
    uint64_t offset = 0;

    // A zero-length message still takes one packet (pure control /
    // immediate-only RDMA).
    do {
        const uint64_t frag_len =
            std::min<uint64_t>(max_frag, total - offset);
        const bool last = offset + frag_len >= total;

        auto msg = std::make_shared<WireMsg>();
        msg->kind = kind;
        msg->src_ep = ep.id_;
        msg->dst_ep = ep.remote_ep_;
        msg->offset = offset;
        msg->frag_len = frag_len;
        msg->total_len = total;
        msg->last = last;
        msg->has_immediate = desc.has_immediate;
        msg->immediate = desc.immediate;
        msg->meta = desc.meta;
        if (last)
            msg->control = desc.control;
        if (kind == WireMsg::Kind::Rdma)
            msg->remote_addr = desc.remote_addr + offset;

        if (!memory_.phantom() && frag_len > 0) {
            msg->data.resize(frag_len);
            memory_.read(desc.local_addr + offset, msg->data.data(),
                         frag_len);
        }

        net::Packet packet;
        packet.src = port_;
        packet.dst = ep.remote_port_;
        packet.wire_bytes = frag_len + costs_.packet_header_bytes;
        packet.order_key = desc.order_key;
        packet.payload = std::move(msg);

        packets_sent_.increment();

        std::function<void()> on_wire;
        if (last) {
            // Retire the send descriptor when the last fragment has
            // fully left the NIC.
            ViNic *nic = this;
            const EndpointId ep_id = ep.id_;
            const uint64_t cookie = desc.cookie;
            const WorkType type = kind == WireMsg::Kind::Rdma
                                      ? WorkType::RdmaWrite
                                      : WorkType::Send;
            on_wire = [nic, ep_id, cookie, total, type] {
                ViEndpoint *e = nic->endpoint(ep_id);
                if (!e || !e->send_cq_)
                    return;
                WorkCompletion completion;
                completion.type = type;
                completion.status =
                    e->state_ == EndpointState::Connected
                        ? WorkStatus::Ok
                        : WorkStatus::Flushed;
                completion.endpoint = ep_id;
                completion.cookie = cookie;
                completion.len = total;
                e->send_cq_->push(completion);
            };
        }

        tx_engine_.submit(
            costs_.nic_tx_processing,
            [this, packet = std::move(packet),
             on_wire = std::move(on_wire)]() mutable {
                fabric_.send(std::move(packet), std::move(on_wire));
            },
            desc.order_key);

        offset += frag_len;
    } while (offset < total);
}

void
ViNic::sendControl(net::PortId dst, WireMsg msg, uint64_t order_key)
{
    auto payload = std::make_shared<WireMsg>(std::move(msg));
    net::Packet packet;
    packet.src = port_;
    packet.dst = dst;
    packet.wire_bytes = costs_.packet_header_bytes;
    packet.order_key = order_key;
    packet.payload = std::move(payload);
    packets_sent_.increment();
    tx_engine_.submit(
        costs_.nic_tx_processing,
        [this, packet = std::move(packet)]() mutable {
            fabric_.send(std::move(packet));
        },
        order_key);
}

void
ViNic::applyCorruption(WireMsg &msg)
{
    msg.corrupted = true;
    packets_corrupted_.increment();
    // Damage a deterministic byte so real-memory runs see data that
    // truly differs; phantom runs rely on the corrupted flag alone.
    if (!msg.data.empty())
        msg.data[msg.data.size() / 2] ^= 0x40;
}

void
ViNic::onPacket(net::Packet packet)
{
    packets_received_.increment();
    // Receive-side arbitration key: the source port. Packets from
    // one source are serialized by its link and never collide on a
    // tick; same-tick collisions are always different sources, and
    // ordering those by port id is content, not arrival order.
    const uint64_t rx_key = packet.src;
    rx_engine_.submit(
        costs_.nic_rx_processing,
        [this, packet = std::move(packet)]() mutable {
            auto msg = std::static_pointer_cast<WireMsg>(packet.payload);
            // Wire-level injection marks the packet; NIC-level
            // injection (bad DMA) hits inbound RDMA fragments after
            // the link CRC has already been checked and stripped.
            bool corrupt = packet.corrupted;
            if (corrupt_next_rdma_ > 0 &&
                (msg->kind == WireMsg::Kind::Rdma ||
                 msg->kind == WireMsg::Kind::RdmaReadResp)) {
                --corrupt_next_rdma_;
                corrupt = true;
            }
            if (corrupt)
                applyCorruption(*msg);
            switch (msg->kind) {
              case WireMsg::Kind::Send:
                handleSendMsg(*msg);
                break;
              case WireMsg::Kind::Rdma:
                handleRdmaMsg(*msg);
                break;
              case WireMsg::Kind::RdmaReadReq:
                handleRdmaReadReq(*msg);
                break;
              case WireMsg::Kind::RdmaReadResp:
                handleRdmaReadResp(*msg);
                break;
              default:
                handleControl(packet.src, *msg);
                break;
            }
        },
        rx_key);
}

void
ViNic::handleControl(net::PortId src_port, const WireMsg &msg)
{
    switch (msg.kind) {
      case WireMsg::Kind::ConnectReq: {
        ViEndpoint *ep = nullptr;
        if (accept_handler_)
            ep = accept_handler_(src_port, msg.src_ep);
        if (!ep || ep->state_ != EndpointState::Idle) {
            WireMsg refuse;
            refuse.kind = WireMsg::Kind::ConnectRefuse;
            refuse.dst_ep = msg.src_ep;
            sendControl(src_port, std::move(refuse));
            return;
        }
        ep->remote_port_ = src_port;
        ep->remote_ep_ = msg.src_ep;
        WireMsg ack;
        ack.kind = WireMsg::Kind::ConnectAck;
        ack.src_ep = ep->id_;
        ack.dst_ep = msg.src_ep;
        sendControl(src_port, std::move(ack));
        ep->setState(EndpointState::Connected);
        return;
      }
      case WireMsg::Kind::ConnectAck: {
        ViEndpoint *ep = endpoint(msg.dst_ep);
        if (!ep || ep->state_ != EndpointState::Connecting)
            return;
        ep->remote_ep_ = msg.src_ep;
        ep->setState(EndpointState::Connected);
        return;
      }
      case WireMsg::Kind::ConnectRefuse: {
        ViEndpoint *ep = endpoint(msg.dst_ep);
        if (!ep || ep->state_ != EndpointState::Connecting)
            return;
        ep->setState(EndpointState::Error);
        return;
      }
      case WireMsg::Kind::Disconnect: {
        ViEndpoint *ep = endpoint(msg.dst_ep);
        if (!ep)
            return;
        failEndpoint(*ep, WorkStatus::ConnectionError,
                     /*notify_peer=*/false);
        return;
      }
      default:
        return;
    }
}

void
ViNic::handleSendMsg(const WireMsg &msg)
{
    ViEndpoint *ep = endpoint(msg.dst_ep);
    if (!ep || ep->state_ != EndpointState::Connected)
        return;

    if (!ep->inbound_.active) {
        if (msg.offset != 0)
            return; // stale mid-message fragment after a drop
        if (ep->recv_queue_.empty()) {
            recv_overruns_.increment();
            V3LOG(Debug, "vi") << name_ << ": receive overrun on ep "
                               << ep->id_;
            failEndpoint(*ep, WorkStatus::RecvOverrun,
                         /*notify_peer=*/true);
            return;
        }
        if (msg.total_len > ep->recv_queue_.front().len) {
            recv_overruns_.increment();
            failEndpoint(*ep, WorkStatus::RecvOverrun,
                         /*notify_peer=*/true);
            return;
        }
        ep->inbound_.desc = ep->recv_queue_.front();
        ep->recv_queue_.pop_front();
        ep->inbound_.received = 0;
        ep->inbound_.active = true;
        ep->inbound_.corrupted = false;
    }

    if (msg.offset != ep->inbound_.received) {
        // Lost fragment mid-message: abandon the message; the recv
        // descriptor is consumed and never completes (DSA's
        // request-level retransmission recovers).
        ep->inbound_.active = false;
        return;
    }

    if (!msg.data.empty()) {
        memory_.write(ep->inbound_.desc.local_addr + msg.offset,
                      msg.data.data(), msg.data.size());
    }
    ep->inbound_.received += msg.frag_len;
    if (msg.corrupted)
        ep->inbound_.corrupted = true;

    if (msg.last) {
        WorkCompletion completion;
        completion.type = WorkType::Recv;
        completion.status = WorkStatus::Ok;
        completion.endpoint = ep->id_;
        completion.cookie = ep->inbound_.desc.cookie;
        completion.len = msg.total_len;
        completion.has_immediate = msg.has_immediate;
        completion.immediate = msg.immediate;
        completion.corrupted = ep->inbound_.corrupted;
        completion.control = msg.control;
        ep->inbound_.active = false;
        if (ep->recv_cq_)
            ep->recv_cq_->push(completion);
    }
}

void
ViNic::handleRdmaMsg(const WireMsg &msg)
{
    ViEndpoint *ep = endpoint(msg.dst_ep);
    if (!ep || ep->state_ != EndpointState::Connected)
        return;

    if (msg.frag_len > 0 &&
        !registry_.anyCovers(msg.remote_addr, msg.frag_len)) {
        protection_errors_.increment();
        V3LOG(Warn, "vi") << name_
                          << ": RDMA protection error on ep "
                          << ep->id_;
        failEndpoint(*ep, WorkStatus::ProtectionError,
                     /*notify_peer=*/true);
        return;
    }

    if (!msg.data.empty())
        memory_.write(msg.remote_addr, msg.data.data(),
                      msg.data.size());
    if (rdma_observer_) {
        RdmaEvent event;
        event.addr = msg.remote_addr;
        event.len = msg.frag_len;
        event.last = msg.last;
        event.corrupted = msg.corrupted;
        event.meta = msg.meta;
        rdma_observer_(event);
    }

    if (msg.last && msg.has_immediate) {
        // RDMA-write-with-immediate consumes one receive descriptor.
        if (ep->recv_queue_.empty()) {
            recv_overruns_.increment();
            failEndpoint(*ep, WorkStatus::RecvOverrun,
                         /*notify_peer=*/true);
            return;
        }
        const WorkDescriptor desc = ep->recv_queue_.front();
        ep->recv_queue_.pop_front();
        WorkCompletion completion;
        completion.type = WorkType::Recv;
        completion.status = WorkStatus::Ok;
        completion.endpoint = ep->id_;
        completion.cookie = desc.cookie;
        completion.len = msg.total_len;
        completion.has_immediate = true;
        completion.immediate = msg.immediate;
        completion.corrupted = msg.corrupted;
        completion.control = msg.control;
        if (ep->recv_cq_)
            ep->recv_cq_->push(completion);
    }
}

void
ViNic::handleRdmaReadReq(const WireMsg &msg)
{
    ViEndpoint *ep = endpoint(msg.dst_ep);
    if (!ep || ep->state_ != EndpointState::Connected)
        return;

    // Memory protection: the requested source range must be
    // registered here.
    if (msg.total_len > 0 &&
        !registry_.anyCovers(msg.remote_addr, msg.total_len)) {
        protection_errors_.increment();
        V3LOG(Warn, "vi") << name_
                          << ": RDMA-read protection error on ep "
                          << ep->id_;
        failEndpoint(*ep, WorkStatus::ProtectionError,
                     /*notify_peer=*/true);
        return;
    }

    // Stream the data back, fragmenting like any transfer. Served
    // entirely by the NIC: no CPU, no completion on this side.
    const uint64_t max_frag = costs_.max_packet_bytes;
    uint64_t offset = 0;
    do {
        const uint64_t frag_len =
            std::min<uint64_t>(max_frag, msg.total_len - offset);
        auto resp = std::make_shared<WireMsg>();
        resp->kind = WireMsg::Kind::RdmaReadResp;
        resp->src_ep = ep->id_;
        resp->dst_ep = msg.src_ep;
        resp->offset = offset;
        resp->frag_len = frag_len;
        resp->total_len = msg.total_len;
        resp->last = offset + frag_len >= msg.total_len;
        resp->read_dest = msg.read_dest;
        resp->read_cookie = msg.read_cookie;
        if (!memory_.phantom() && frag_len > 0) {
            resp->data.resize(frag_len);
            memory_.read(msg.remote_addr + offset, resp->data.data(),
                         frag_len);
        }
        net::Packet packet;
        packet.src = port_;
        packet.dst = ep->remote_port_;
        packet.wire_bytes = frag_len + costs_.packet_header_bytes;
        // Content key: the read's sink address identifies the
        // transfer no matter what order requests arrived in.
        packet.order_key = msg.read_dest;
        packet.payload = std::move(resp);
        packets_sent_.increment();
        tx_engine_.submit(
            costs_.nic_tx_processing,
            [this, packet = std::move(packet)]() mutable {
                fabric_.send(std::move(packet));
            },
            msg.read_dest);
        offset += frag_len;
    } while (offset < msg.total_len);
}

void
ViNic::handleRdmaReadResp(const WireMsg &msg)
{
    ViEndpoint *ep = endpoint(msg.dst_ep);
    if (!ep || ep->state_ != EndpointState::Connected)
        return;
    if (!msg.data.empty()) {
        memory_.write(msg.read_dest + msg.offset, msg.data.data(),
                      msg.data.size());
    }
    if (rdma_observer_) {
        RdmaEvent event;
        event.addr = msg.read_dest + msg.offset;
        event.len = msg.frag_len;
        event.last = msg.last;
        event.corrupted = msg.corrupted;
        event.meta = msg.meta;
        rdma_observer_(event);
    }
    if (msg.last && ep->recv_cq_) {
        WorkCompletion completion;
        completion.type = WorkType::RdmaRead;
        completion.status = WorkStatus::Ok;
        completion.endpoint = ep->id_;
        completion.cookie = msg.read_cookie;
        completion.len = msg.total_len;
        completion.corrupted = msg.corrupted;
        ep->recv_cq_->push(completion);
    }
}

void
ViNic::failEndpoint(ViEndpoint &ep, WorkStatus reason, bool notify_peer)
{
    if (ep.state_ == EndpointState::Error ||
        ep.state_ == EndpointState::Closed) {
        return;
    }
    if (notify_peer && ep.remote_port_ != net::kInvalidPort &&
        ep.remote_ep_ != kInvalidEndpoint) {
        WireMsg msg;
        msg.kind = WireMsg::Kind::Disconnect;
        msg.src_ep = ep.id_;
        msg.dst_ep = ep.remote_ep_;
        sendControl(ep.remote_port_, std::move(msg));
    }
    for (const WorkDescriptor &desc : ep.recv_queue_) {
        WorkCompletion flushed;
        flushed.type = WorkType::Recv;
        flushed.status = reason == WorkStatus::Ok ? WorkStatus::Flushed
                                                  : reason;
        flushed.endpoint = ep.id_;
        flushed.cookie = desc.cookie;
        if (ep.recv_cq_)
            ep.recv_cq_->push(flushed);
    }
    ep.recv_queue_.clear();
    ep.inbound_.active = false;
    ep.setState(EndpointState::Error);
}

} // namespace v3sim::vi
