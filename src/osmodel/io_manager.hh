/**
 * @file
 * Windows-like kernel I/O-manager path model.
 *
 * kDSA and the local-disk baseline both issue I/O through the
 * standard kernel storage API. Per request the I/O manager costs:
 *
 *  issue side:    syscall entry, IRP allocation/validation/dispatch,
 *                 buffer probe-and-lock (pinning, which is what lets
 *                 kDSA register memory without paying pin costs
 *                 again — section 3.1), and two synchronization
 *                 pairs (section 3.3);
 *  completion:    IRP completion processing, two more sync pairs,
 *                 buffer unlock, and waking the issuing thread.
 *
 * All, work is charged to CpuCat::Kernel (sync pairs split their
 * cost between Lock and Kernel per SimLock's accounting).
 */

#ifndef V3SIM_OSMODEL_IO_MANAGER_HH
#define V3SIM_OSMODEL_IO_MANAGER_HH

#include <cstdint>

#include "osmodel/cpu_pool.hh"
#include "osmodel/host_costs.hh"
#include "osmodel/sim_lock.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace v3sim::osmodel
{

/** The kernel I/O path shared by kDSA and the local-disk baseline. */
class IoManager
{
  public:
    IoManager(sim::Simulation &sim, const HostCosts &costs);

    IoManager(const IoManager &) = delete;
    IoManager &operator=(const IoManager &) = delete;

    /**
     * Kernel-side issue work for one request, run on the caller's
     * CPU. @p buffer_pages is the request buffer's page span;
     * @p pin_buffer selects whether probe-and-lock happens (true for
     * any DMA-capable driver below).
     */
    sim::Task<> issueRequest(CpuLease lease, uint64_t buffer_pages,
                             bool pin_buffer);

    /**
     * Kernel-side completion work: IRP completion, sync pairs,
     * buffer unlock, and the context switch that wakes the waiting
     * application thread.
     */
    sim::Task<> completeRequest(CpuLease lease, uint64_t buffer_pages,
                                bool unpin_buffer);

    uint64_t requestCount() const { return requests_.value(); }

    SimLock &queueLock() { return queue_lock_; }
    SimLock &dispatchLock() { return dispatch_lock_; }

  private:
    const HostCosts &costs_;
    /** The two I/O-manager locks the paper counts on each path. */
    SimLock queue_lock_;
    SimLock dispatch_lock_;
    sim::Counter requests_;
};

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_IO_MANAGER_HH
