/**
 * @file
 * Interrupt delivery to the host CPUs.
 *
 * A raised interrupt grabs a CPU at interrupt priority, pays the
 * platform's interrupt entry/exit cost (5-10 us on the paper's
 * Windows hosts, section 3.2), then runs the device handler on that
 * CPU. Handlers are coroutines so they can perform further charged
 * work (DPC processing, CQ draining, waking threads).
 *
 * Implicit interrupt batching (section 6.2: "many replies ... tend
 * to arrive at the same time. These replies can be handled with a
 * single interrupt") is not modelled here — it emerges naturally
 * from the completion queue's one-shot arming: completions that pile
 * up while a handler runs are drained by that same handler.
 */

#ifndef V3SIM_OSMODEL_INTERRUPT_CONTROLLER_HH
#define V3SIM_OSMODEL_INTERRUPT_CONTROLLER_HH

#include <functional>

#include "osmodel/cpu_pool.hh"
#include "osmodel/host_costs.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace v3sim::osmodel
{

/** Routes device interrupts onto the node's CPU pool. */
class InterruptController
{
  public:
    /** Device-level handler, run on the interrupted CPU. */
    using Handler = std::function<sim::Task<>(CpuLease)>;

    InterruptController(sim::Simulation &sim, CpuPool &cpus,
                        const HostCosts &costs)
        : sim_(sim), cpus_(cpus), costs_(costs),
          raised_(sim.metrics().counter(
              sim.metrics().uniquePrefix(
                  "intr." + (cpus.name().empty() ? "host"
                                                 : cpus.name())) +
              ".raised"))
    {}

    InterruptController(const InterruptController &) = delete;
    InterruptController &operator=(const InterruptController &) = delete;

    /**
     * Raises an interrupt: preempt-priority CPU acquisition, the
     * interrupt entry/exit cost (charged to Kernel), then @p handler.
     *
     * @param order_key determinism arbitration key (DESIGN.md §8.3):
     *        orders this interrupt against others raised on the same
     *        tick. Pass a stable source identity (device/queue id),
     *        never an arrival-order value.
     */
    void
    raise(Handler handler, uint64_t order_key = 0)
    {
        raised_.increment();
        sim::spawn(dispatch(std::move(handler), order_key));
    }

    /** Interrupts raised since construction. */
    uint64_t interruptCount() const { return raised_.value(); }

  private:
    sim::Task<>
    dispatch(Handler handler, uint64_t order_key)
    {
        CpuLease lease = co_await cpus_.acquire(
            CpuPool::kInterruptPriority, order_key);
        co_await lease.run(costs_.interrupt, CpuCat::Kernel);
        co_await handler(lease);
        cpus_.release();
    }

    sim::Simulation &sim_;
    CpuPool &cpus_;
    const HostCosts &costs_;
    sim::CounterHandle raised_; ///< registry-owned: "intr.<cpus>.raised"
};

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_INTERRUPT_CONTROLLER_HH
