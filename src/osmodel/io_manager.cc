#include "io_manager.hh"

namespace v3sim::osmodel
{

IoManager::IoManager(sim::Simulation &sim, const HostCosts &costs)
    : costs_(costs),
      queue_lock_(sim, costs, "iomgr.queue"),
      dispatch_lock_(sim, costs, "iomgr.dispatch")
{}

sim::Task<>
IoManager::issueRequest(CpuLease lease, uint64_t buffer_pages,
                        bool pin_buffer)
{
    requests_.increment();
    co_await lease.run(costs_.syscall, CpuCat::Kernel);
    co_await queue_lock_.syncPair(lease, CpuCat::Kernel);
    co_await lease.run(costs_.irp_issue, CpuCat::Kernel);
    if (pin_buffer) {
        co_await lease.run(static_cast<sim::Tick>(buffer_pages) *
                               costs_.probe_lock_page,
                           CpuCat::Kernel);
    }
    co_await dispatch_lock_.syncPair(lease, CpuCat::Kernel);
}

sim::Task<>
IoManager::completeRequest(CpuLease lease, uint64_t buffer_pages,
                           bool unpin_buffer)
{
    co_await queue_lock_.syncPair(lease, CpuCat::Kernel);
    co_await lease.run(costs_.irp_complete, CpuCat::Kernel);
    if (unpin_buffer) {
        co_await lease.run(static_cast<sim::Tick>(buffer_pages) *
                               costs_.probe_lock_page,
                           CpuCat::Kernel);
    }
    co_await dispatch_lock_.syncPair(lease, CpuCat::Kernel);
    // Wake the thread that blocked in the I/O system call.
    co_await lease.run(costs_.context_switch, CpuCat::Kernel);
}

} // namespace v3sim::osmodel
