/**
 * @file
 * A simulated host: CPUs, memory, interrupt delivery, kernel I/O
 * path, and AWE allocation, bundled for convenient wiring.
 *
 * Database servers (Table 1) and V3 storage nodes (Table 2) are both
 * Nodes; they differ only in configuration. NICs and disks attach to
 * a Node by referencing its memory space and interrupt controller.
 */

#ifndef V3SIM_OSMODEL_NODE_HH
#define V3SIM_OSMODEL_NODE_HH

#include <memory>
#include <string>

#include "osmodel/awe.hh"
#include "osmodel/cpu_pool.hh"
#include "osmodel/host_costs.hh"
#include "osmodel/interrupt_controller.hh"
#include "osmodel/io_manager.hh"
#include "osmodel/sim_lock.hh"
#include "sim/memory.hh"
#include "sim/simulation.hh"

namespace v3sim::osmodel
{

/** Static description of one host. */
struct NodeConfig
{
    std::string name = "node";
    int cpus = 4;
    HostCosts costs = HostCosts::midSize();
    /** Phantom memory for large workload runs (no byte backing). */
    bool phantom_memory = false;
};

/** One simulated machine. */
class Node
{
  public:
    Node(sim::Simulation &sim, NodeConfig config)
        : sim_(sim),
          config_(std::move(config)),
          memory_(config_.phantom_memory, config_.name + ".mem"),
          cpus_(sim, config_.cpus, config_.name + ".cpu"),
          interrupts_(sim, cpus_, config_.costs),
          io_manager_(sim, config_.costs),
          awe_(memory_),
          memory_lock_(sim, config_.costs, config_.name + ".mm")
    {}

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    sim::Simulation &sim() { return sim_; }
    const std::string &name() const { return config_.name; }
    const HostCosts &costs() const { return config_.costs; }

    sim::MemorySpace &memory() { return memory_; }
    CpuPool &cpus() { return cpus_; }
    InterruptController &interrupts() { return interrupts_; }
    IoManager &ioManager() { return io_manager_; }
    AweAllocator &awe() { return awe_; }

    /** The memory manager's page lock (the MmPfn-lock analog): any
     *  path that wires or unwires pages serializes here. This is the
     *  resource behind section 3.1's "deregistration requires
     *  locking pages, which becomes more expensive at larger
     *  processor counts" — at 32 CPUs and 100K+ IOPS, per-I/O
     *  deregistration drives it toward saturation, which is what
     *  batched deregistration avoids. */
    SimLock &memoryLock() { return memory_lock_; }

  private:
    sim::Simulation &sim_;
    NodeConfig config_;
    sim::MemorySpace memory_;
    CpuPool cpus_;
    InterruptController interrupts_;
    IoManager io_manager_;
    AweAllocator awe_;
    SimLock memory_lock_;
};

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_NODE_HH
