#include "cpu_pool.hh"

#include <numeric>

namespace v3sim::osmodel
{

const char *
cpuCatName(CpuCat cat)
{
    switch (cat) {
      case CpuCat::Sql: return "SQL";
      case CpuCat::Kernel: return "OS Kernel";
      case CpuCat::Lock: return "Lock";
      case CpuCat::Dsa: return "DSA";
      case CpuCat::Vi: return "VI";
      case CpuCat::Other: return "Other";
    }
    return "?";
}

CpuPool::CpuPool(sim::Simulation &sim, int cpus, std::string name)
    : sim_(sim), cpus_(cpus), name_(std::move(name))
{
    assert(cpus >= 1);

    auto &m = sim.metrics();
    const std::string prefix =
        m.uniquePrefix("cpu." + (name_.empty() ? "pool" : name_));
    m.gauge(prefix + ".utilization", [this] { return utilization(); });
    static constexpr const char *kCatPath[kCpuCatCount] = {
        "sql", "kernel", "lock", "dsa", "vi", "other",
    };
    for (size_t c = 0; c < kCpuCatCount; ++c) {
        m.gauge(prefix + ".category." + kCatPath[c], [this, c] {
            return utilization(static_cast<CpuCat>(c));
        });
    }
    // The busy-time window restarts with the registry epoch so the
    // utilization gauges describe the current measurement window.
    m.onEpochReset([this](sim::Tick) { resetStats(); });
}

void
CpuPool::release()
{
    assert(busy_ > 0);
    // Hand the CPU directly to the next waiter: busy_ stays constant.
    if (!intr_waiters_.empty()) {
        auto h = intr_waiters_.front();
        intr_waiters_.pop_front();
        h.resume();
        return;
    }
    if (!normal_waiters_.empty()) {
        auto h = normal_waiters_.front();
        normal_waiters_.pop_front();
        h.resume();
        return;
    }
    --busy_;
}

sim::Tick
CpuPool::totalBusyTime() const
{
    return std::accumulate(busy_time_.begin(), busy_time_.end(),
                           sim::Tick{0});
}

double
CpuPool::utilization() const
{
    const sim::Tick window = sim_.now() - window_start_;
    if (window <= 0)
        return 0.0;
    return static_cast<double>(totalBusyTime()) /
           (static_cast<double>(window) * cpus_);
}

double
CpuPool::utilization(CpuCat cat) const
{
    const sim::Tick window = sim_.now() - window_start_;
    if (window <= 0)
        return 0.0;
    return static_cast<double>(busyTime(cat)) /
           (static_cast<double>(window) * cpus_);
}

void
CpuPool::resetStats()
{
    busy_time_.fill(0);
    window_start_ = sim_.now();
}

} // namespace v3sim::osmodel
