#include "cpu_pool.hh"

#include <algorithm>
#include <numeric>

namespace v3sim::osmodel
{

const char *
cpuCatName(CpuCat cat)
{
    switch (cat) {
      case CpuCat::Sql: return "SQL";
      case CpuCat::Kernel: return "OS Kernel";
      case CpuCat::Lock: return "Lock";
      case CpuCat::Dsa: return "DSA";
      case CpuCat::Vi: return "VI";
      case CpuCat::Other: return "Other";
    }
    return "?";
}

CpuPool::CpuPool(sim::Simulation &sim, int cpus, std::string name)
    : sim_(sim), cpus_(cpus), name_(std::move(name))
{
    assert(cpus >= 1);

    auto &m = sim.metrics();
    const std::string prefix =
        m.uniquePrefix("cpu." + (name_.empty() ? "pool" : name_));
    m.gauge(prefix + ".utilization", [this] { return utilization(); });
    static constexpr const char *kCatPath[kCpuCatCount] = {
        "sql", "kernel", "lock", "dsa", "vi", "other",
    };
    for (size_t c = 0; c < kCpuCatCount; ++c) {
        m.gauge(prefix + ".category." + kCatPath[c], [this, c] {
            return utilization(static_cast<CpuCat>(c));
        });
    }
    // The busy-time window restarts with the registry epoch so the
    // utilization gauges describe the current measurement window.
    m.onEpochReset([this](sim::Tick) { resetStats(); });
}

void
CpuPool::park(std::coroutine_handle<> h, int priority,
              uint64_t order_key)
{
    const Waiter w{h, priority, order_key, next_seq_++};
    waiters_.insert(
        std::upper_bound(waiters_.begin(), waiters_.end(), w), w);
    if (!arb_scheduled_) {
        arb_scheduled_ = true;
        sim_.queue().scheduleFinal([this] { arbitrate(); });
    }
}

void
CpuPool::release()
{
    assert(busy_ > 0);
    --busy_;
    // Freed capacity is not handed to the front waiter directly —
    // that would serve same-tick contenders in arrival order. The
    // final-band arbitration re-grants it against the full set.
    if (!waiters_.empty() && !arb_scheduled_) {
        arb_scheduled_ = true;
        sim_.queue().scheduleFinal([this] { arbitrate(); });
    }
}

void
CpuPool::arbitrate()
{
    // Clear the flag first: a waiter resumed below may release and
    // need a fresh arbitration pass later this same tick.
    arb_scheduled_ = false;
    while (busy_ < cpus_ && !waiters_.empty()) {
        const Waiter w = waiters_.front();
        waiters_.erase(waiters_.begin());
        ++busy_;
        w.handle.resume();
    }
}

CpuPool::Run *
CpuPool::beginRun(CpuCat cat)
{
    Run *run = free_runs_;
    if (run != nullptr)
        free_runs_ = run->next_free;
    else
        run = &run_slab_.emplace_back();
    run->cat = cat;
    run->start = sim_.now();
    run->idx = active_runs_.size();
    run->next_free = nullptr;
    active_runs_.push_back(run);
    return run;
}

sim::Tick
CpuPool::endRun(Run *run)
{
    const sim::Tick elapsed = sim_.now() - run->start;
    busy_time_[static_cast<size_t>(run->cat)] += elapsed;
    active_runs_[run->idx] = active_runs_.back();
    active_runs_[run->idx]->idx = run->idx;
    active_runs_.pop_back();
    run->next_free = free_runs_;
    free_runs_ = run;
    return elapsed;
}

sim::Tick
CpuPool::busyTime(CpuCat cat) const
{
    sim::Tick total = busy_time_[static_cast<size_t>(cat)];
    for (const Run *run : active_runs_) {
        if (run->cat == cat)
            total += sim_.now() - run->start;
    }
    return total;
}

sim::Tick
CpuPool::totalBusyTime() const
{
    sim::Tick total = std::accumulate(
        busy_time_.begin(), busy_time_.end(), sim::Tick{0});
    for (const Run *run : active_runs_)
        total += sim_.now() - run->start;
    return total;
}

double
CpuPool::utilization() const
{
    const sim::Tick window = sim_.now() - window_start_;
    if (window <= 0)
        return 0.0;
    return static_cast<double>(totalBusyTime()) /
           (static_cast<double>(window) * cpus_);
}

double
CpuPool::utilization(CpuCat cat) const
{
    const sim::Tick window = sim_.now() - window_start_;
    if (window <= 0)
        return 0.0;
    return static_cast<double>(busyTime(cat)) /
           (static_cast<double>(window) * cpus_);
}

void
CpuPool::resetStats()
{
    busy_time_.fill(0);
    window_start_ = sim_.now();
    // Clamp in-progress runs to the new window: the part that elapsed
    // before the reset belongs to the old window and is discarded.
    for (Run *run : active_runs_)
        run->start = window_start_;
}

} // namespace v3sim::osmodel
