/**
 * @file
 * Host CPU pool with per-category time accounting.
 *
 * The pool is the source of the paper's CPU-utilization breakdowns
 * (Figures 11 and 14): every piece of simulated host work runs while
 * holding a CPU lease and charges its time to one of the categories
 * the paper reports — SQL Server, OS kernel, lock synchronization,
 * DSA, VI, other.
 *
 * Usage contract:
 *  - acquire a lease (`co_await pool.acquire()`), possibly at
 *    interrupt priority;
 *  - while holding it, only advance time through `lease.run(d, cat)`
 *    or SimLock operations (lock waits spin, so the CPU stays busy);
 *  - never hold a lease across an I/O or network wait — release and
 *    re-acquire instead (that is what a blocked thread does).
 *
 * Under this contract the per-category busy sums exactly tile the
 * CPU-time the pool hands out, so breakdowns always add up.
 */

#ifndef V3SIM_OSMODEL_CPU_POOL_HH
#define V3SIM_OSMODEL_CPU_POOL_HH

#include <array>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace v3sim::osmodel
{

/** CPU-time categories, matching the paper's Figure 11 breakdown. */
enum class CpuCat : uint8_t
{
    Sql,    ///< database transaction processing
    Kernel, ///< OS kernel (I/O manager, interrupts, scheduling)
    Lock,   ///< lock synchronization (waits + lock/unlock ops)
    Dsa,    ///< the DSA layer itself
    Vi,     ///< VI library/driver work (registration, doorbells)
    Other,  ///< everything else (sockets, misc libraries)
};

constexpr size_t kCpuCatCount = 6;

/** Printable category name. */
const char *cpuCatName(CpuCat cat);

class CpuPool;

/**
 * Possession of one CPU. Obtained from CpuPool::acquire(); must be
 * released exactly once via CpuPool::release() (or the RAII helper
 * CpuLeaseGuard below when the scope is simple).
 */
class CpuLease
{
  public:
    CpuLease() = default;

    bool valid() const { return pool_ != nullptr; }
    CpuPool *pool() const { return pool_; }

    /** Spends @p d of CPU time charged to @p cat. Awaitable. */
    auto run(sim::Tick d, CpuCat cat);

  private:
    friend class CpuPool;
    explicit CpuLease(CpuPool *pool) : pool_(pool) {}
    CpuPool *pool_ = nullptr;
};

/** m CPUs with two-level priority admission (interrupts first). */
class CpuPool
{
  public:
    static constexpr int kInterruptPriority = 0;
    static constexpr int kNormalPriority = 1;

    CpuPool(sim::Simulation &sim, int cpus, std::string name = "");

    CpuPool(const CpuPool &) = delete;
    CpuPool &operator=(const CpuPool &) = delete;

    int cpus() const { return cpus_; }
    int busyCount() const { return busy_; }
    const std::string &name() const { return name_; }

    /**
     * Awaitable: resumes holding a CPU. Interrupt-priority waiters
     * are admitted before normal ones.
     */
    auto
    acquire(int priority = kNormalPriority)
    {
        struct Awaiter
        {
            CpuPool *pool;
            int priority;

            bool
            await_ready() const
            {
                if (pool->busy_ < pool->cpus_) {
                    pool->grant();
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                if (priority == kInterruptPriority)
                    pool->intr_waiters_.push_back(h);
                else
                    pool->normal_waiters_.push_back(h);
            }

            CpuLease await_resume() const { return CpuLease(pool); }
        };
        return Awaiter{this, priority};
    }

    /** Returns the CPU; wakes the highest-priority waiter, if any. */
    void release();

    /** Adds busy time to a category (used by CpuLease and SimLock). */
    void
    addBusy(CpuCat cat, sim::Tick d)
    {
        busy_time_[static_cast<size_t>(cat)] += d;
    }

    /** Accumulated busy time for @p cat since the last reset. */
    sim::Tick
    busyTime(CpuCat cat) const
    {
        return busy_time_[static_cast<size_t>(cat)];
    }

    /** Sum of all categories. */
    sim::Tick totalBusyTime() const;

    /** Busy fraction of the whole pool over [reset, now]. */
    double utilization() const;

    /** Fraction of pool capacity spent in @p cat over the window. */
    double utilization(CpuCat cat) const;

    /** Restarts the accounting window at the current time. */
    void resetStats();

    size_t waiterCount() const
    {
        return intr_waiters_.size() + normal_waiters_.size();
    }

  private:
    friend class CpuLease;

    void grant() { ++busy_; }

    sim::Simulation &sim_;
    int cpus_;
    std::string name_;
    int busy_ = 0;
    std::deque<std::coroutine_handle<>> intr_waiters_;
    std::deque<std::coroutine_handle<>> normal_waiters_;
    std::array<sim::Tick, kCpuCatCount> busy_time_{};
    sim::Tick window_start_ = 0;
};

inline auto
CpuLease::run(sim::Tick d, CpuCat cat)
{
    struct Awaiter
    {
        CpuLease *lease;
        sim::Tick d;
        CpuCat cat;

        bool await_ready() const { return d <= 0; }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            lease->pool_->addBusy(cat, d);
            lease->pool_->sim_.queue().schedule(d,
                                                [h] { h.resume(); });
        }

        void await_resume() const {}
    };
    assert(valid());
    return Awaiter{this, d, cat};
}

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_CPU_POOL_HH
