/**
 * @file
 * Host CPU pool with per-category time accounting.
 *
 * The pool is the source of the paper's CPU-utilization breakdowns
 * (Figures 11 and 14): every piece of simulated host work runs while
 * holding a CPU lease and charges its time to one of the categories
 * the paper reports — SQL Server, OS kernel, lock synchronization,
 * DSA, VI, other.
 *
 * Usage contract:
 *  - acquire a lease (`co_await pool.acquire()`), possibly at
 *    interrupt priority;
 *  - while holding it, only advance time through `lease.run(d, cat)`
 *    or SimLock operations (lock waits spin, so the CPU stays busy);
 *  - never hold a lease across an I/O or network wait — release and
 *    re-acquire instead (that is what a blocked thread does).
 *
 * Under this contract the per-category busy sums exactly tile the
 * CPU-time the pool hands out, so breakdowns always add up.
 */

#ifndef V3SIM_OSMODEL_CPU_POOL_HH
#define V3SIM_OSMODEL_CPU_POOL_HH

#include <array>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace v3sim::osmodel
{

/** CPU-time categories, matching the paper's Figure 11 breakdown. */
enum class CpuCat : uint8_t
{
    Sql,    ///< database transaction processing
    Kernel, ///< OS kernel (I/O manager, interrupts, scheduling)
    Lock,   ///< lock synchronization (waits + lock/unlock ops)
    Dsa,    ///< the DSA layer itself
    Vi,     ///< VI library/driver work (registration, doorbells)
    Other,  ///< everything else (sockets, misc libraries)
};

constexpr size_t kCpuCatCount = 6;

/** Printable category name. */
const char *cpuCatName(CpuCat cat);

class CpuPool;

/**
 * Possession of one CPU. Obtained from CpuPool::acquire(); must be
 * released exactly once via CpuPool::release() (or the RAII helper
 * CpuLeaseGuard below when the scope is simple).
 */
class CpuLease
{
  public:
    CpuLease() = default;

    bool valid() const { return pool_ != nullptr; }
    CpuPool *pool() const { return pool_; }

    /** Spends @p d of CPU time charged to @p cat. Awaitable. */
    auto run(sim::Tick d, CpuCat cat);

  private:
    friend class CpuPool;
    explicit CpuLease(CpuPool *pool) : pool_(pool) {}
    CpuPool *pool_ = nullptr;
};

/**
 * m CPUs with two-level priority admission (interrupts first).
 *
 * Admission is an arbitration point under the determinism contract
 * (DESIGN.md §8.3): when same-tick demand exceeds free CPUs, *which*
 * contender runs first must be a function of the contender set, not
 * of the (unspecified, tie-shuffled) order their acquire events
 * fired in. So no acquire is granted inline: every waiter parks and
 * a single final-band arbitration event per tick grants free CPUs in
 * (priority, order_key, arrival) order — same tick, zero simulated
 * latency, but a deterministic assignment. Callers whose acquires
 * can collide on one tick pass distinct `order_key`s (worker id,
 * request tag); the arrival-sequence tiebreak only decides between
 * same-key contenders.
 */
class CpuPool
{
  public:
    static constexpr int kInterruptPriority = 0;
    static constexpr int kNormalPriority = 1;

    CpuPool(sim::Simulation &sim, int cpus, std::string name = "");

    CpuPool(const CpuPool &) = delete;
    CpuPool &operator=(const CpuPool &) = delete;

    int cpus() const { return cpus_; }
    int busyCount() const { return busy_; }
    const std::string &name() const { return name_; }

    /**
     * Awaitable: resumes holding a CPU, granted in this tick's final
     * band. Interrupt-priority waiters are admitted before normal
     * ones; ties broken by @p order_key, then arrival.
     */
    auto
    acquire(int priority = kNormalPriority, uint64_t order_key = 0)
    {
        struct Awaiter
        {
            CpuPool *pool;
            int priority;
            uint64_t order_key;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                pool->park(h, priority, order_key);
            }

            CpuLease await_resume() const { return CpuLease(pool); }
        };
        return Awaiter{this, priority, order_key};
    }

    /** Returns the CPU; freed capacity is re-granted in the final
     *  band. */
    void release();

    /** An in-progress busy interval (one per running charge). The
     *  window accounting is exact: a run crossing a resetStats()
     *  boundary contributes to each window only the time that elapsed
     *  inside it, so utilization can never exceed 1 however the
     *  measurement window straddles running work. */
    struct Run
    {
        CpuCat cat = CpuCat::Other;
        sim::Tick start = 0;
        size_t idx = 0; ///< position in active_runs_ (swap-erase)
        Run *next_free = nullptr;
    };

    /** Opens a busy interval charged to @p cat starting now. */
    Run *beginRun(CpuCat cat);

    /** Closes @p run, charging the time elapsed since its (possibly
     *  reset-clamped) start; returns that charged amount. */
    sim::Tick endRun(Run *run);

    /** Adjusts a category's accumulated time directly (SimLock uses
     *  this to re-attribute a slice of a closed Lock run to the
     *  caller's hold category). */
    void
    addBusy(CpuCat cat, sim::Tick d)
    {
        busy_time_[static_cast<size_t>(cat)] += d;
    }

    /** Busy time for @p cat since the last reset, including the
     *  elapsed part of in-progress runs. */
    sim::Tick busyTime(CpuCat cat) const;

    /** Sum of all categories (in-progress runs included). */
    sim::Tick totalBusyTime() const;

    /** Busy fraction of the whole pool over [reset, now]. */
    double utilization() const;

    /** Fraction of pool capacity spent in @p cat over the window. */
    double utilization(CpuCat cat) const;

    /** Restarts the accounting window at the current time. */
    void resetStats();

    size_t waiterCount() const { return waiters_.size(); }

  private:
    friend class CpuLease;

    struct Waiter
    {
        std::coroutine_handle<> handle;
        int priority;
        uint64_t order_key;
        uint64_t seq; ///< arrival tiebreak among equal keys

        bool
        operator<(const Waiter &other) const
        {
            if (priority != other.priority)
                return priority < other.priority;
            if (order_key != other.order_key)
                return order_key < other.order_key;
            return seq < other.seq;
        }
    };

    void park(std::coroutine_handle<> h, int priority,
              uint64_t order_key);
    /** Final-band grant pass: admits waiters while CPUs are free. */
    void arbitrate();

    sim::Simulation &sim_;
    int cpus_;
    std::string name_;
    int busy_ = 0;
    std::vector<Waiter> waiters_; ///< kept sorted (insertion sort)
    uint64_t next_seq_ = 0;
    bool arb_scheduled_ = false;
    /** Completed-run time per category (excludes active runs). */
    std::array<sim::Tick, kCpuCatCount> busy_time_{};
    /** Open intervals; bounded by cpus_ (runs hold a lease). */
    std::vector<Run *> active_runs_;
    std::deque<Run> run_slab_; ///< stable addresses for Run nodes
    Run *free_runs_ = nullptr;
    sim::Tick window_start_ = 0;
};

inline auto
CpuLease::run(sim::Tick d, CpuCat cat)
{
    struct Awaiter
    {
        CpuLease *lease;
        sim::Tick d;
        CpuCat cat;

        bool await_ready() const { return d <= 0; }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            CpuPool *pool = lease->pool_;
            CpuPool::Run *run = pool->beginRun(cat);
            pool->sim_.queue().schedule(d, [pool, run, h] {
                pool->endRun(run);
                h.resume();
            });
        }

        void await_resume() const {}
    };
    assert(valid());
    return Awaiter{this, d, cat};
}

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_CPU_POOL_HH
