/**
 * @file
 * Spin-lock model with emergent contention.
 *
 * The paper counts I/O-path cost in "synchronization pairs" — one
 * lock/unlock around a short critical section (section 3.3: "a total
 * of about 8-10 synchronization pairs involved in the path of
 * processing a single I/O request"). A SimLock models one such lock.
 * syncPair() performs the full pair: the acquire atomic op, a spin
 * wait while the lock is held elsewhere, the critical section, and
 * the release op. Spin time burns the waiter's CPU and is charged to
 * the Lock accounting category, so lock contention *emerges* from
 * I/O rate and CPU count instead of being a dialed-in constant —
 * the mechanism behind Figures 9, 11, 12 and 14.
 */

#ifndef V3SIM_OSMODEL_SIM_LOCK_HH
#define V3SIM_OSMODEL_SIM_LOCK_HH

#include <coroutine>
#include <deque>
#include <string>

#include "osmodel/cpu_pool.hh"
#include "osmodel/host_costs.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace v3sim::osmodel
{

/** One kernel/library lock; FIFO-fair, spin-wait semantics. */
class SimLock
{
  public:
    SimLock(sim::Simulation &sim, const HostCosts &costs,
            std::string name = "");

    SimLock(const SimLock &) = delete;
    SimLock &operator=(const SimLock &) = delete;

    const std::string &name() const { return name_; }

    /**
     * Executes one synchronization pair on the caller's CPU:
     * acquire op + spin wait + critical section + release op.
     * The critical section is charged to @p hold_cat; lock ops and
     * spin time to CpuCat::Lock.
     *
     * @param hold critical-section length; negative means "use the
     *        platform default" (costs.lock_hold).
     */
    sim::Task<> syncPair(CpuLease lease, CpuCat hold_cat,
                         sim::Tick hold = -1);

    bool held() const { return held_; }
    uint64_t acquisitionCount() const { return acquisitions_.value(); }
    uint64_t contendedCount() const { return contended_.value(); }

    /** Total spin time across all waiters (ns). */
    sim::Tick totalWait() const { return total_wait_; }

  private:
    sim::Simulation &sim_;
    const HostCosts &costs_;
    std::string name_;
    bool held_ = false;
    std::deque<std::coroutine_handle<>> waiters_;
    sim::Counter acquisitions_;
    sim::Counter contended_;
    sim::Tick total_wait_ = 0;
};

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_SIM_LOCK_HH
