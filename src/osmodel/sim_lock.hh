/**
 * @file
 * Spin-lock model with emergent contention.
 *
 * The paper counts I/O-path cost in "synchronization pairs" — one
 * lock/unlock around a short critical section (section 3.3: "a total
 * of about 8-10 synchronization pairs involved in the path of
 * processing a single I/O request"). A SimLock models one such lock.
 * syncPair() performs the full pair: the acquire atomic op, a spin
 * wait while the lock is held elsewhere, the critical section, and
 * the release op. Spin time burns the waiter's CPU and is charged to
 * the Lock accounting category, so lock contention *emerges* from
 * I/O rate and CPU count instead of being a dialed-in constant —
 * the mechanism behind Figures 9, 11, 12 and 14.
 *
 * Determinism (DESIGN.md §8.3): contenders whose acquire ops land on
 * the same tick are a *race* — their relative order is unspecified
 * and tie-shuffled. The lock therefore never arbitrates by arrival
 * order. Same-tick contenders form one *batch*; a batch is granted
 * in the tick's final band and occupies the lock for the sum of its
 * members' critical sections (plus one release op each), and all
 * members exit together when the batch completes. Every observable —
 * exit times, spin accounting, contention counts — is a function of
 * the batch *set*, so runs are invariant under the tie-shuffle seed.
 * Contenders arriving on distinct ticks keep strict FIFO order, so
 * the uncontended fast path costs exactly acquire + hold + release,
 * as before.
 */

#ifndef V3SIM_OSMODEL_SIM_LOCK_HH
#define V3SIM_OSMODEL_SIM_LOCK_HH

#include <coroutine>
#include <deque>
#include <string>
#include <vector>

#include "osmodel/cpu_pool.hh"
#include "osmodel/host_costs.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace v3sim::osmodel
{

/** One kernel/library lock; batch-fair, spin-wait semantics. */
class SimLock
{
  public:
    SimLock(sim::Simulation &sim, const HostCosts &costs,
            std::string name = "");

    SimLock(const SimLock &) = delete;
    SimLock &operator=(const SimLock &) = delete;

    const std::string &name() const { return name_; }

    /**
     * Executes one synchronization pair on the caller's CPU:
     * acquire op + spin wait + critical section + release op.
     * The critical section is charged to @p hold_cat; lock ops and
     * spin time to CpuCat::Lock.
     *
     * @param hold critical-section length; negative means "use the
     *        platform default" (costs.lock_hold).
     */
    sim::Task<> syncPair(CpuLease lease, CpuCat hold_cat,
                         sim::Tick hold = -1);

    bool held() const { return busy_; }
    uint64_t acquisitionCount() const { return acquisitions_.value(); }

    /** Acquisitions that spun (exited later than an uncontended pair
     *  would have). Every member of a multi-member batch spins. */
    uint64_t contendedCount() const { return contended_.value(); }

    /** Total spin time across all waiters (ns). */
    sim::Tick totalWait() const { return total_wait_; }

  private:
    /** Same-tick contenders, granted and released as one unit. */
    struct Batch
    {
        sim::Tick arrived;
        sim::Tick total_hold = 0;
        std::vector<std::coroutine_handle<>> members;
    };

    /** Coalesced final-band grant of the head batch (if lock free). */
    void scheduleArbitration();
    void serveBatch();

    sim::Simulation &sim_;
    const HostCosts &costs_;
    std::string name_;
    bool busy_ = false; ///< a batch currently owns the lock
    bool arb_scheduled_ = false;
    std::deque<Batch> waiting_;
    sim::Counter acquisitions_;
    sim::Counter contended_;
    sim::Tick total_wait_ = 0;
};

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_SIM_LOCK_HH
