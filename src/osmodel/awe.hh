/**
 * @file
 * Address Windowing Extensions (AWE) memory model.
 *
 * Section 3.1: "In cDSA we use the Address Windowing Extensions to
 * allocate the database server cache on physical memory ...
 * Application memory allocated as AWE memory is always pinned."
 *
 * For the simulation, AWE's relevant property is exactly that:
 * allocations from this allocator are permanently pinned physical
 * memory, so VI registration of AWE buffers skips per-page pin
 * costs (pre_pinned=true) and never pays unpin on deregistration.
 * The window-remapping calls the real API needs are cheap
 * ("low-overhead calls") and do not sit on the I/O path, so they are
 * not modelled.
 */

#ifndef V3SIM_OSMODEL_AWE_HH
#define V3SIM_OSMODEL_AWE_HH

#include <cstdint>
#include <set>

#include "sim/memory.hh"

namespace v3sim::osmodel
{

/** Allocates permanently pinned memory out of a host memory space. */
class AweAllocator
{
  public:
    explicit AweAllocator(sim::MemorySpace &memory) : memory_(memory) {}

    AweAllocator(const AweAllocator &) = delete;
    AweAllocator &operator=(const AweAllocator &) = delete;

    /** Allocates @p len bytes of pinned physical memory. */
    sim::Addr
    allocate(uint64_t len)
    {
        const sim::Addr addr = memory_.allocate(len);
        if (addr != sim::kNullAddr) {
            regions_.insert({addr, len});
            total_ += len;
        }
        return addr;
    }

    /** True if @p addr lies in an AWE (always-pinned) region. */
    bool
    isPinned(sim::Addr addr) const
    {
        auto it = regions_.upper_bound({addr, UINT64_MAX});
        if (it == regions_.begin())
            return false;
        --it;
        return addr >= it->base && addr - it->base < it->len;
    }

    uint64_t totalBytes() const { return total_; }

  private:
    struct Region
    {
        sim::Addr base;
        uint64_t len;

        bool
        operator<(const Region &other) const
        {
            return base < other.base ||
                   (base == other.base && len < other.len);
        }
    };

    sim::MemorySpace &memory_;
    std::set<Region> regions_;
    uint64_t total_ = 0;
};

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_AWE_HH
