/**
 * @file
 * Host operating-system cost model.
 *
 * These constants model the Windows 2000/XP host behaviours the paper
 * measures or cites:
 *  - "interrupt cost is high on Windows, in the order of 5-10 us on
 *    our platforms" (section 3.2);
 *  - the kernel I/O path (I/O manager) adds per-request processing
 *    and "at least two more synchronization pairs in both the send
 *    and receive paths" beyond kDSA's own (section 3.3);
 *  - lock/unlock pairs get more expensive with processor count
 *    (coherence traffic), which is why "deregistration requires
 *    locking pages, which becomes more expensive at larger processor
 *    counts" (section 6.1) — the per-platform factories below encode
 *    that.
 */

#ifndef V3SIM_OSMODEL_HOST_COSTS_HH
#define V3SIM_OSMODEL_HOST_COSTS_HH

#include "sim/types.hh"

namespace v3sim::osmodel
{

/** Per-host OS cost constants. Defaults model a mid-size 4-way SMP. */
struct HostCosts
{
    /** User/kernel boundary crossing, round trip. */
    sim::Tick syscall = sim::usecs(1.3);

    /** Interrupt service entry/exit (paper: 5-10 us). */
    sim::Tick interrupt = sim::usecs(7);

    /** Dispatching deferred completion work (DPC-level processing). */
    sim::Tick dpc_dispatch = sim::usecs(1.2);

    /** Waking a blocked thread (scheduler + context switch). */
    sim::Tick context_switch = sim::usecs(3.5);

    /** I/O-manager per-request processing on the issue side
     *  (IRP allocation, validation, driver dispatch). */
    sim::Tick irp_issue = sim::usecs(2.2);

    /** I/O-manager per-request completion processing. */
    sim::Tick irp_complete = sim::usecs(1.8);

    /** Probe-and-lock (pin) cost per page when the kernel prepares a
     *  buffer for DMA; unlock costs the same on completion. */
    sim::Tick probe_lock_page = sim::usecs(0.9);

    /** Signalling a Win32 event / scheduling an APC callback into an
     *  application thread (wDSA's completion notification). */
    sim::Tick event_signal = sim::usecs(2.4);

    /** Acquire half of a lock/unlock synchronization pair (atomic op
     *  plus coherence traffic; rises with CPU count). */
    sim::Tick lock_acquire = sim::usecs(0.20);

    /** Release half of a synchronization pair. */
    sim::Tick lock_release = sim::usecs(0.15);

    /** Typical critical-section length inside the I/O path. */
    sim::Tick lock_hold = sim::usecs(0.25);

    /** @name Kernel TCP/socket path (the iSCSI rival transport,
     * DESIGN.md §11).
     * These are the per-I/O costs a user-level, zero-copy VI path
     * avoids by construction: the kernel protocol stack touches every
     * segment, copies every byte across the user/kernel boundary, and
     * checksums payloads in software (paper-era server NICs offered
     * no TCP checksum offload worth relying on).
     * @{ */
    /** TCP/IP per-segment protocol processing (header build/parse,
     *  state machine, socket demux) — charged on transmit and
     *  receive alike. */
    sim::Tick tcp_segment = sim::usecs(1.8);
    /** Socket-buffer copy across the user/kernel boundary, per KB
     *  (send: user->kernel; receive: kernel->user). VI RDMA places
     *  data directly in registered user buffers instead. */
    sim::Tick sock_copy_per_kb = sim::usecs(1.0);
    /** Internet checksum over segment payload, per KB, in software.
     *  VI relies on the NIC's hardware CRC per hop plus DSA's
     *  end-to-end digests. */
    sim::Tick inet_checksum_per_kb = sim::usecs(0.45);
    /** @} */

    /** Extra per-path cost of the *unoptimized* I/O request path:
     *  shared structures without cache-conscious layout bounce
     *  cache lines between processors (section 3.3). Grows steeply
     *  with the coherence domain. */
    sim::Tick sync_restructure = sim::usecs(6);

    /** Mid-size platform: 4 x 700 MHz PIII Xeon (Table 1). */
    static HostCosts midSize() { return HostCosts{}; }

    /**
     * Large platform: 32 x 800 MHz PIII Xeon in eight nodes with a
     * crossbar (Table 1). Lock primitives cost more because the
     * coherence fabric spans nodes; everything else is comparable.
     */
    static HostCosts
    large()
    {
        HostCosts costs;
        costs.lock_acquire = sim::usecs(0.55);
        costs.lock_release = sim::usecs(0.40);
        costs.lock_hold = sim::usecs(0.35);
        costs.probe_lock_page = sim::usecs(1.4);
        costs.context_switch = sim::usecs(4.5);
        costs.sync_restructure = sim::usecs(20);
        return costs;
    }

    /** V3 storage node: 2 x 700 MHz PIII (Table 2). */
    static HostCosts storageNode() { return HostCosts{}; }
};

} // namespace v3sim::osmodel

#endif // V3SIM_OSMODEL_HOST_COSTS_HH
