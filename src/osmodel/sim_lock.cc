#include "sim_lock.hh"

#include <cassert>

namespace v3sim::osmodel
{

namespace
{

/** Awaitable that parks the coroutine on the lock's wait queue. */
struct LockWait
{
    SimLock *lock;
    std::deque<std::coroutine_handle<>> *waiters;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        waiters->push_back(h);
    }

    void await_resume() const {}
};

} // namespace

SimLock::SimLock(sim::Simulation &sim, const HostCosts &costs,
                 std::string name)
    : sim_(sim), costs_(costs), name_(std::move(name))
{}

sim::Task<>
SimLock::syncPair(CpuLease lease, CpuCat hold_cat, sim::Tick hold)
{
    assert(lease.valid());
    if (hold < 0)
        hold = costs_.lock_hold;

    // The acquire atomic op always costs, contended or not.
    co_await lease.run(costs_.lock_acquire, CpuCat::Lock);

    acquisitions_.increment();
    if (held_) {
        contended_.increment();
        const sim::Tick start = sim_.now();
        co_await LockWait{this, &waiters_};
        // We were handed the lock by the releaser; held_ stays true.
        const sim::Tick waited = sim_.now() - start;
        total_wait_ += waited;
        lease.pool()->addBusy(CpuCat::Lock, waited);
    } else {
        held_ = true;
    }

    co_await lease.run(hold, hold_cat);
    co_await lease.run(costs_.lock_release, CpuCat::Lock);

    if (!waiters_.empty()) {
        auto h = waiters_.front();
        waiters_.pop_front();
        h.resume(); // ownership transfers; held_ remains true
    } else {
        held_ = false;
    }
}

} // namespace v3sim::osmodel
