#include "sim_lock.hh"

#include <algorithm>
#include <cassert>

namespace v3sim::osmodel
{

SimLock::SimLock(sim::Simulation &sim, const HostCosts &costs,
                 std::string name)
    : sim_(sim), costs_(costs), name_(std::move(name))
{}

sim::Task<>
SimLock::syncPair(CpuLease lease, CpuCat hold_cat, sim::Tick hold)
{
    assert(lease.valid());
    if (hold < 0)
        hold = costs_.lock_hold;

    // The acquire atomic op always costs, contended or not.
    co_await lease.run(costs_.lock_acquire, CpuCat::Lock);

    acquisitions_.increment();
    const sim::Tick start = sim_.now();
    // The stay is an open busy interval on our still-held CPU, so a
    // measurement-window reset mid-stay clips it correctly instead of
    // attributing the whole stay to whichever window it ends in.
    CpuPool::Run *stay = lease.pool()->beginRun(CpuCat::Lock);

    // Park into the tail batch (same-tick contenders share one) and
    // resume when that batch's turn completes. Local awaiter: it has
    // access to the enclosing class's private members.
    struct BatchJoin
    {
        SimLock *lock;
        sim::Tick hold;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            auto &waiting = lock->waiting_;
            if (waiting.empty() ||
                waiting.back().arrived != lock->sim_.now())
                waiting.push_back(Batch{lock->sim_.now(), 0, {}});
            waiting.back().total_hold += hold;
            waiting.back().members.push_back(h);
            lock->scheduleArbitration();
        }

        void await_resume() const {}
    };
    co_await BatchJoin{this, hold};

    // The whole stay — spin + critical section + release op — just
    // elapsed on our (still-held) CPU. Close the interval (charged to
    // Lock, clipped to the current window) and re-attribute the
    // critical section to the caller's category. Spin time beyond the
    // member's own hold+release means the batch had company (or
    // queued behind another batch).
    const sim::Tick elapsed = sim_.now() - start;
    const sim::Tick spin = elapsed - hold - costs_.lock_release;
    const sim::Tick charged = lease.pool()->endRun(stay);
    const sim::Tick hold_part = std::min(hold, charged);
    lease.pool()->addBusy(hold_cat, hold_part);
    lease.pool()->addBusy(CpuCat::Lock, -hold_part);
    if (spin > 0) {
        contended_.increment();
        total_wait_ += spin;
    }
}

void
SimLock::scheduleArbitration()
{
    if (busy_ || arb_scheduled_ || waiting_.empty())
        return;
    arb_scheduled_ = true;
    // Final band: the grant decision must see every same-tick
    // contender, so the served set cannot depend on the tie-shuffled
    // order in which they arrived (DESIGN.md §8.3).
    sim_.queue().scheduleFinal([this] {
        arb_scheduled_ = false;
        if (!busy_ && !waiting_.empty())
            serveBatch();
    });
}

void
SimLock::serveBatch()
{
    busy_ = true;
    Batch batch = std::move(waiting_.front());
    waiting_.pop_front();
    // The batch serializes inside the lock — the sum of the members'
    // critical sections plus one release op each — but exits as one:
    // per-member exit times are a function of the batch *set*, with
    // no per-member assignment an arrival order could perturb.
    const sim::Tick duration =
        batch.total_hold +
        static_cast<sim::Tick>(batch.members.size()) *
            costs_.lock_release;
    sim_.queue().schedule(
        duration, [this, members = std::move(batch.members)] {
            busy_ = false;
            scheduleArbitration();
            for (const auto &member : members)
                member.resume();
        });
}

} // namespace v3sim::osmodel
