/**
 * @file
 * The V3 server's volume manager: assembles RAID volumes over the
 * disk manager's spindles and exposes them by id (section 2.1: "Each
 * V3 server provides a virtualized view of a disk (V3 volume) ...
 * using combinations of RAID, such as concatenation and other disk
 * organizations").
 */

#ifndef V3SIM_STORAGE_VOLUME_MANAGER_HH
#define V3SIM_STORAGE_VOLUME_MANAGER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "disk/volume.hh"
#include "storage/disk_manager.hh"

namespace v3sim::storage
{

/** Owns composed volumes; hands out ids the wire protocol uses. */
class VolumeManager
{
  public:
    VolumeManager() = default;

    VolumeManager(const VolumeManager &) = delete;
    VolumeManager &operator=(const VolumeManager &) = delete;

    /** Registers a volume built elsewhere; returns its id. */
    uint32_t
    addVolume(std::unique_ptr<disk::Volume> volume)
    {
        volumes_.push_back(std::move(volume));
        return static_cast<uint32_t>(volumes_.size() - 1);
    }

    /**
     * Convenience: a striped (RAID-0) volume over @p disks. The
     * intermediate single-disk volumes are owned here too.
     */
    uint32_t
    addStripedVolume(const std::vector<disk::Disk *> &disks,
                     uint64_t stripe_unit)
    {
        std::vector<disk::Volume *> children;
        for (disk::Disk *d : disks) {
            parts_.push_back(
                std::make_unique<disk::SingleDiskVolume>(*d));
            children.push_back(parts_.back().get());
        }
        return addVolume(std::make_unique<disk::StripeVolume>(
            std::move(children), stripe_unit));
    }

    /** Convenience: concatenation of @p disks. */
    uint32_t
    addConcatVolume(const std::vector<disk::Disk *> &disks)
    {
        std::vector<disk::Volume *> children;
        for (disk::Disk *d : disks) {
            parts_.push_back(
                std::make_unique<disk::SingleDiskVolume>(*d));
            children.push_back(parts_.back().get());
        }
        return addVolume(
            std::make_unique<disk::ConcatVolume>(std::move(children)));
    }

    disk::Volume *
    volume(uint32_t id)
    {
        return id < volumes_.size() ? volumes_[id].get() : nullptr;
    }

    size_t volumeCount() const { return volumes_.size(); }

  private:
    std::vector<std::unique_ptr<disk::Volume>> volumes_;
    std::vector<std::unique_ptr<disk::Volume>> parts_;
};

} // namespace v3sim::storage

#endif // V3SIM_STORAGE_VOLUME_MANAGER_HH
