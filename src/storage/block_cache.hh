/**
 * @file
 * The V3 cache manager's block cache.
 *
 * Section 2.1: "V3 uses large main memories as disk buffer caches to
 * help reduce disk latencies." The cache manages a fixed pool of
 * block-sized frames carved out of the server's memory space (and
 * registered once with the server NIC so frames are valid RDMA
 * sources/targets).
 *
 * The interface uses pin counts because frames are DMA'd from/to
 * while requests are in flight: eviction only ever claims unpinned
 * frames. Two policies are provided: classic LRU (here) and the
 * Multi-Queue algorithm (mq_cache.hh) the V3 authors designed for
 * exactly this second-level buffer cache.
 */

#ifndef V3SIM_STORAGE_BLOCK_CACHE_HH
#define V3SIM_STORAGE_BLOCK_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <vector>

#include "sim/memory.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "util/flat_map.hh"

namespace v3sim::storage
{

/** Identifies one cache block: volume id + block index. */
struct CacheKey
{
    uint32_t volume = 0;
    uint64_t block = 0;

    bool
    operator==(const CacheKey &other) const
    {
        return volume == other.volume && block == other.block;
    }
};

struct CacheKeyHash
{
    size_t
    operator()(const CacheKey &key) const
    {
        return std::hash<uint64_t>()(key.block * 1000003 + key.volume);
    }
};

/** Pluggable replacement policy over a fixed frame pool. */
class BlockCache
{
  public:
    /**
     * Carves @p capacity_blocks frames of @p block_size bytes out of
     * @p memory (one allocation; the server registers it with its
     * NIC once).
     */
    BlockCache(sim::MemorySpace &memory, uint64_t block_size,
               uint64_t capacity_blocks);

    virtual ~BlockCache() = default;

    BlockCache(const BlockCache &) = delete;
    BlockCache &operator=(const BlockCache &) = delete;

    /**
     * Returns the frame address and pins the block if resident;
     * counts a hit or miss either way.
     */
    virtual std::optional<sim::Addr> lookupAndPin(CacheKey key) = 0;

    /**
     * Makes the block resident (evicting an unpinned victim if
     * needed) and pins it. The frame's contents are whatever was
     * there before — the caller fills it. Returns nullopt only when
     * every frame is pinned. Does not count hit/miss statistics.
     */
    virtual std::optional<sim::Addr> insertAndPin(CacheKey key) = 0;

    /** Drops one pin. */
    virtual void unpin(CacheKey key) = 0;

    /** Removes the block if resident and unpinned. */
    virtual void invalidate(CacheKey key) = 0;

    /**
     * Drops every unpinned resident block — the cache comes back
     * cold, as after a node crash (the paper's V3 cache is volatile
     * main memory; section 2.1). Pinned frames survive because
     * in-flight DMA may still reference them; the server drains those
     * requests separately on crash.
     */
    virtual void invalidateAll() = 0;

    /** Residency check without touching recency state. */
    virtual bool contains(CacheKey key) const = 0;

    virtual uint64_t residentBlocks() const = 0;

    uint64_t blockSize() const { return block_size_; }
    uint64_t capacityBlocks() const { return capacity_; }

    /** Base address of the frame pool (for one-shot registration). */
    sim::Addr frameBase() const { return base_; }
    uint64_t frameBytes() const { return capacity_ * block_size_; }

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }

    double
    hitRatio() const
    {
        const uint64_t total = hits() + misses();
        return total ? static_cast<double>(hits()) / total : 0.0;
    }

    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

    /**
     * Publishes the cache's stats under @p prefix (typically
     * "server.<name>.cache"). The cache keeps owning its counters —
     * it is constructed standalone in unit tests, without a
     * Simulation — so these are gauges plus an epoch hook that
     * clears the hit/miss counts.
     */
    void
    registerMetrics(sim::MetricRegistry &metrics,
                    const std::string &prefix)
    {
        metrics.gauge(prefix + ".hits", [this] {
            return static_cast<double>(hits());
        });
        metrics.gauge(prefix + ".misses", [this] {
            return static_cast<double>(misses());
        });
        metrics.gauge(prefix + ".hit_ratio",
                      [this] { return hitRatio(); });
        metrics.gauge(prefix + ".resident_blocks", [this] {
            return static_cast<double>(residentBlocks());
        });
        metrics.onEpochReset([this](sim::Tick) { resetStats(); });
    }

  protected:
    sim::Addr frameAddr(uint64_t index) const
    {
        return base_ + index * block_size_;
    }

    void recordHit() { hits_.increment(); }
    void recordMiss() { misses_.increment(); }

    uint64_t block_size_;
    uint64_t capacity_;
    sim::Addr base_;

  private:
    sim::Counter hits_;
    sim::Counter misses_;
};

/** Classic LRU with pinning. */
class LruCache : public BlockCache
{
  public:
    LruCache(sim::MemorySpace &memory, uint64_t block_size,
             uint64_t capacity_blocks);

    std::optional<sim::Addr> lookupAndPin(CacheKey key) override;
    std::optional<sim::Addr> insertAndPin(CacheKey key) override;
    void unpin(CacheKey key) override;
    void invalidate(CacheKey key) override;
    void invalidateAll() override;
    bool contains(CacheKey key) const override;
    uint64_t residentBlocks() const override { return map_.size(); }

  private:
    struct Entry
    {
        CacheKey key;
        uint64_t frame;
        uint32_t pins = 0;
    };

    using LruList = std::list<Entry>;

    /** Evicts the least-recent unpinned entry; returns its frame. */
    std::optional<uint64_t> evictOne();

    LruList lru_; ///< front = LRU, back = MRU
    util::FlatMap<CacheKey, LruList::iterator, CacheKeyHash> map_;
    std::vector<uint64_t> free_frames_;
};

} // namespace v3sim::storage

#endif // V3SIM_STORAGE_BLOCK_CACHE_HH
