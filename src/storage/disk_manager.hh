/**
 * @file
 * The V3 server's disk manager: owns the node's physical disks.
 *
 * Table 2: mid-size V3 nodes hold 15 SCSI disks each (60 across 4
 * nodes); large nodes hold 80 FC disks each (640 across 8 nodes).
 */

#ifndef V3SIM_STORAGE_DISK_MANAGER_HH
#define V3SIM_STORAGE_DISK_MANAGER_HH

#include <memory>
#include <string>
#include <vector>

#include "disk/disk.hh"
#include "sim/simulation.hh"

namespace v3sim::storage
{

/** Owns and tracks a node's spindles. */
class DiskManager
{
  public:
    explicit DiskManager(sim::Simulation &sim) : sim_(sim) {}

    DiskManager(const DiskManager &) = delete;
    DiskManager &operator=(const DiskManager &) = delete;

    /** Adds one disk; the manager owns it. */
    disk::Disk &
    addDisk(const disk::DiskSpec &spec, const std::string &name,
            bool phantom_store = false)
    {
        disks_.push_back(std::make_unique<disk::Disk>(
            sim_, spec, sim_.forkRng(), name,
            disk::SchedPolicy::Elevator, phantom_store));
        return *disks_.back();
    }

    /** Adds @p count identical disks with numbered names. */
    std::vector<disk::Disk *>
    addDisks(const disk::DiskSpec &spec, const std::string &prefix,
             int count, bool phantom_store = false)
    {
        std::vector<disk::Disk *> added;
        for (int i = 0; i < count; ++i) {
            added.push_back(&addDisk(
                spec, prefix + "." + std::to_string(i),
                phantom_store));
        }
        return added;
    }

    size_t diskCount() const { return disks_.size(); }
    disk::Disk &disk(size_t i) { return *disks_.at(i); }

    /** Total commands completed across all spindles. */
    uint64_t
    totalCompleted() const
    {
        uint64_t total = 0;
        for (const auto &d : disks_)
            total += d->completedCount();
        return total;
    }

    /** Mean utilization across spindles. */
    double
    meanUtilization() const
    {
        if (disks_.empty())
            return 0.0;
        double sum = 0;
        for (const auto &d : disks_)
            sum += d->utilization();
        return sum / static_cast<double>(disks_.size());
    }

    void
    resetStats()
    {
        for (auto &d : disks_)
            d->resetStats();
    }

  private:
    sim::Simulation &sim_;
    std::vector<std::unique_ptr<disk::Disk>> disks_;
};

} // namespace v3sim::storage

#endif // V3SIM_STORAGE_DISK_MANAGER_HH
