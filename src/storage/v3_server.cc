#include "v3_server.hh"

#include <algorithm>
#include <cassert>

#include "util/logging.hh"

namespace v3sim::storage
{

using osmodel::CpuCat;
using osmodel::CpuLease;

namespace
{

/** Rounds @p value down to a multiple of @p align. */
uint64_t
alignDown(uint64_t value, uint64_t align)
{
    return value / align * align;
}

/** Rounds @p value up to a multiple of @p align. */
uint64_t
alignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) / align * align;
}

constexpr uint64_t kSector = disk::DiskStore::kSectorSize;

/** CPU ticks to CRC32C @p len bytes at @p per_kb. */
sim::Tick
digestTicks(uint64_t len, sim::Tick per_kb)
{
    return static_cast<sim::Tick>((len + 1023) / 1024) * per_kb;
}

/**
 * Determinism arbitration key (DESIGN.md §8.3): hash-combines a
 * per-connection content value (the connection's unique staging base)
 * with a request-content value, so same-tick contenders from
 * different connections never tie. Ties fall back to arrival order,
 * which the tie-shuffle is free to permute — keys must therefore be
 * unique among plausible same-tick contenders.
 */
uint64_t
orderKey(uint64_t conn_salt, uint64_t v)
{
    return conn_salt * 0x9e3779b97f4a7c15ull ^ v;
}

} // namespace

V3Server::V3Server(sim::Simulation &sim, net::Fabric &fabric,
                   V3ServerConfig config)
    : sim_(sim),
      fabric_(fabric),
      config_(std::move(config)),
      node_(sim, osmodel::NodeConfig{config_.name, config_.cpus,
                                     config_.host_costs,
                                     config_.phantom_memory}),
      disks_(sim),
      metric_prefix_(
          sim.metrics().uniquePrefix("server." + config_.name)),
      reads_(sim.metrics().counter(metric_prefix_ + ".reads")),
      writes_(sim.metrics().counter(metric_prefix_ + ".writes")),
      hints_(sim.metrics().counter(metric_prefix_ + ".hints")),
      prefetched_(
          sim.metrics().counter(metric_prefix_ + ".prefetched")),
      retransmit_hits_(
          sim.metrics().counter(metric_prefix_ + ".retransmit_hits")),
      crashes_(sim.metrics().counter(metric_prefix_ + ".crashes")),
      restarts_(sim.metrics().counter(metric_prefix_ + ".restarts")),
      bad_requests_(sim.metrics().counter(
          metric_prefix_ + ".integrity_bad_requests")),
      digest_mismatches_(sim.metrics().counter(
          metric_prefix_ + ".integrity_digest_mismatches")),
      integrity_errors_(sim.metrics().counter(
          metric_prefix_ + ".integrity_verify_failures")),
      server_time_(
          sim.metrics().sampler(metric_prefix_ + ".server_time_ns")),
      admission_gate_(sim, metric_prefix_, config_.admission)
{
    // The server manages its own NIC registration: the cache, the
    // staging areas and the message buffers are registered once at
    // startup, so the NIC must admit the whole footprint (the server
    // side of section 3.1's registration problem — a server-class
    // configuration, unlike the 1 GB client cLan default).
    vi::ViCosts nic_costs;
    nic_costs.max_registered_bytes =
        config_.cache_bytes + 64ull * 1024 * 1024 +
        32ull * config_.staging_slots * config_.staging_slot_bytes;
    nic_ = std::make_unique<vi::ViNic>(sim, fabric, node_.memory(),
                                       config_.name + ".nic",
                                       nic_costs);
    nic_->setRdmaObserver([this](const vi::ViNic::RdmaEvent &event) {
        onRdmaEvent(event);
    });

    if (config_.cache_bytes >= config_.block_size) {
        const uint64_t blocks = config_.cache_bytes / config_.block_size;
        if (config_.cache_policy == CachePolicy::Mq) {
            cache_ = std::make_unique<MqCache>(node_.memory(),
                                               config_.block_size,
                                               blocks, config_.mq);
        } else {
            cache_ = std::make_unique<LruCache>(node_.memory(),
                                                config_.block_size,
                                                blocks);
        }
        const auto reg = nic_->registry().registerMemory(
            cache_->frameBase(), cache_->frameBytes(),
            /*pre_pinned=*/true);
        assert(reg.has_value() && "cache must fit the server NIC");
        cache_handle_ = reg->handle;
        cache_->registerMetrics(sim.metrics(),
                                metric_prefix_ + ".cache");
    }
}

void
V3Server::start()
{
    nic_->setAcceptHandler(
        [this](net::PortId remote_port, vi::EndpointId remote_ep) {
            return accept(remote_port, remote_ep);
        });
}

void
V3Server::crash()
{
    if (crashed_)
        return;
    crashed_ = true;
    crashes_.increment();
    V3LOG(Info, "v3") << config_.name << ": node crash";

    // The NIC leaves the fabric: nothing in or out, and packets
    // already propagating towards the node are lost.
    fabric_.setPortUp(nic_->port(), false);

    // Every connection dies. breakConnection flushes posted receives
    // with error status, which pops each serviceLoop out of its CQ
    // wait; alive=false makes handlers already past the CQ drop
    // their completions (postCompletion checks it) and abandon
    // writes before the disk commit.
    for (auto &conn : connections_) {
        if (!conn->alive)
            continue;
        conn->alive = false;
        nic_->breakConnection(*conn->ep);
        releaseConnection(*conn);
    }

    // Volatile cache contents are gone (section 2.1: main-memory
    // buffer cache). Pinned frames are skipped — in-flight DMA — but
    // their requests can no longer complete towards any client.
    if (cache_)
        cache_->invalidateAll();

    // Admission waiters park off-CPU, so nothing above woke them:
    // shed them all (their Busy completions are dropped because the
    // connections are already dead) and zero the gate.
    admission_gate_.shedAll();
}

void
V3Server::restart()
{
    if (!crashed_)
        return;
    crashed_ = false;
    ++boot_epoch_;
    restarts_.increment();
    V3LOG(Info, "v3") << config_.name << ": node restart";
    // Cold restart: port back up; the accept handler from start() is
    // still armed, so new connections are admitted immediately. The
    // cache is already empty from crash().
    fabric_.setPortUp(nic_->port(), true);
}

void
V3Server::releaseConnection(Connection &conn)
{
    if (conn.released)
        return;
    conn.released = true;
    // Registration capacity is the scarce server resource (section
    // 3.1): every abandoned connection must give its slice back, or
    // reconnect churn eventually exhausts the NIC and the node
    // refuses all new clients.
    nic_->registry().deregister(conn.req_buf_handle);
    nic_->registry().deregister(conn.reply_handle);
    nic_->registry().deregister(conn.flag_handle);
    nic_->registry().deregister(conn.staging_handle);
}

vi::ViEndpoint *
V3Server::accept(net::PortId, vi::EndpointId)
{
    if (crashed_)
        return nullptr; // a down node accepts nothing
    auto conn = std::make_unique<Connection>();
    conn->id = static_cast<uint32_t>(connections_.size());
    const std::string base =
        config_.name + ".c" + std::to_string(conn->id);
    conn->recv_cq =
        std::make_unique<vi::CompletionQueue>(base + ".rcq");
    conn->ep = &nic_->createEndpoint(nullptr, conn->recv_cq.get());

    sim::MemorySpace &mem = node_.memory();

    // Request receive buffers: one per credit, registered as a unit.
    // Any registration failure (NIC capacity after many client
    // reconnections) refuses the connection rather than accepting a
    // half-wired one.
    conn->req_buf_base = mem.allocate(
        static_cast<uint64_t>(config_.request_credits) *
        dsa::kRequestWireBytes);
    auto req_reg = nic_->registry().registerMemory(
        conn->req_buf_base,
        static_cast<uint64_t>(config_.request_credits) *
            dsa::kRequestWireBytes,
        true);
    conn->reply_buf = mem.allocate(dsa::kResponseWireBytes);
    auto reply_reg = nic_->registry().registerMemory(
        conn->reply_buf, dsa::kResponseWireBytes, true);
    conn->flag_scratch = mem.allocate(8);
    auto flag_reg =
        nic_->registry().registerMemory(conn->flag_scratch, 8, true);
    conn->staging_base = mem.allocate(
        static_cast<uint64_t>(config_.staging_slots) *
        config_.staging_slot_bytes);
    auto staging_reg = nic_->registry().registerMemory(
        conn->staging_base,
        static_cast<uint64_t>(config_.staging_slots) *
            config_.staging_slot_bytes,
        true);
    if (!req_reg || !reply_reg || !flag_reg || !staging_reg) {
        V3LOG(Warn, "v3") << config_.name
                          << ": refusing connection, NIC "
                             "registration capacity exhausted";
        return nullptr;
    }
    conn->req_buf_handle = req_reg->handle;
    conn->reply_handle = reply_reg->handle;
    conn->flag_handle = flag_reg->handle;
    conn->staging_handle = staging_reg->handle;

    // Pre-post one receive per request credit.
    for (uint32_t i = 0; i < config_.request_credits; ++i)
        repostRecv(*conn, i);

    Connection &ref = *conn;
    connections_.push_back(std::move(conn));
    sim::spawn(serviceLoop(ref));
    return ref.ep;
}

void
V3Server::onRdmaEvent(const vi::ViNic::RdmaEvent &event)
{
    // Locate the staging slot (if any) this fragment landed in. A
    // transfer always starts at the slot base, so a clean first
    // fragment clears any stale taint from an earlier (retransmitted)
    // transfer into the same slot; any damaged fragment taints it.
    for (auto &conn : connections_) {
        const uint64_t span =
            static_cast<uint64_t>(config_.staging_slots) *
            config_.staging_slot_bytes;
        if (conn->staging_base == sim::kNullAddr ||
            event.addr < conn->staging_base ||
            event.addr >= conn->staging_base + span) {
            continue;
        }
        const uint64_t off = event.addr - conn->staging_base;
        const uint32_t slot =
            static_cast<uint32_t>(off / config_.staging_slot_bytes);
        if (off % config_.staging_slot_bytes == 0)
            conn->staging_tainted.erase(slot);
        if (event.corrupted)
            conn->staging_tainted.insert(slot);
        return;
    }
}

void
V3Server::repostRecv(Connection &conn, uint64_t cookie)
{
    vi::WorkDescriptor desc;
    desc.cookie = cookie;
    desc.local_addr =
        conn.req_buf_base + cookie * dsa::kRequestWireBytes;
    desc.len = dsa::kRequestWireBytes;
    nic_->postRecv(*conn.ep, desc, conn.req_buf_handle);
}

sim::Task<>
V3Server::serviceLoop(Connection &conn)
{
    // The paper: the server polls for incoming messages (a dedicated
    // service loop); handlers are spawned so requests pipeline.
    for (;;) {
        vi::WorkCompletion completion =
            co_await conn.recv_cq->next();
        if (completion.status != vi::WorkStatus::Ok) {
            // Connection torn down (peer disconnect, connection
            // break, or node crash): stop servicing and return the
            // registrations so abandoned connections don't leak NIC
            // capacity across client reconnections.
            conn.alive = false;
            releaseConnection(conn);
            co_return;
        }
        if (!completion.control)
            continue; // not a DSA message
        if (completion.corrupted) {
            // The request message was damaged in flight: the header
            // digest check fails, so the request is dropped as if the
            // packet were lost. The credit goes back; the client's
            // retransmission timer recovers.
            bad_requests_.increment();
            repostRecv(conn, completion.cookie);
            continue;
        }
        auto req = std::static_pointer_cast<dsa::RequestMsg>(
            completion.control);
        sim::spawn(handleRequest(conn, *req, completion.cookie));
    }
}

void
V3Server::pruneSeqs(Connection &conn, uint64_t ack_below)
{
    conn.seqs.erase(conn.seqs.begin(),
                    conn.seqs.lower_bound(ack_below));
}

sim::Task<>
V3Server::handleRequest(Connection &conn, dsa::RequestMsg req,
                        uint64_t recv_cookie)
{
    const sim::Tick arrival = sim_.now();
    CpuLease lease = co_await node_.cpus().acquire(
        osmodel::CpuPool::kNormalPriority,
        orderKey(conn.staging_base, req.offset));
    co_await lease.run(config_.parse_cost, CpuCat::Other);

    pruneSeqs(conn, req.ack_below);

    if (req.op == dsa::DsaOp::Hello) {
        co_await handleHello(conn, req, lease);
        repostRecv(conn, recv_cookie);
        node_.cpus().release();
        co_return;
    }

    // Retransmission filter (exactly-once for writes, no duplicate
    // execution for hints).
    const auto seq_it = conn.seqs.find(req.seq);
    if (seq_it != conn.seqs.end()) {
        retransmit_hits_.increment();
        if (seq_it->second == Connection::SeqState::InProgress) {
            // The original is still being served; it will complete.
            repostRecv(conn, recv_cookie);
            node_.cpus().release();
            co_return;
        }
        if (req.op != dsa::DsaOp::Read) {
            const dsa::IoStatus replay =
                seq_it->second == Connection::SeqState::DoneOk
                    ? dsa::IoStatus::Ok
                    : dsa::IoStatus::Error;
            co_await lease.run(config_.complete_cost, CpuCat::Other);
            postCompletion(conn, req, replay);
            repostRecv(conn, recv_cookie);
            node_.cpus().release();
            co_return;
        }
        // Retransmitted read: the client only retransmits when it
        // did not observe good data (lost or digest-failed), so a
        // bare replayed status would strand it. Reads are idempotent;
        // fall through and re-execute so the data is RDMA'd again.
    }
    conn.seqs[req.seq] = Connection::SeqState::InProgress;

    // Overload control (DESIGN.md §12): data-path requests pass the
    // admission gate; hints stay ungated (advisory and cheap, they
    // never hold a service slot). The request is already recorded
    // InProgress above, so a retransmission arriving while the
    // original is parked in the gate is absorbed by the dedup filter
    // instead of queueing twice. The wait itself parks off-CPU: a
    // queued backlog must not pin the request-manager CPUs and
    // starve the in-service requests that would drain it.
    bool gated = false;
    if (config_.admission.enabled && req.op != dsa::DsaOp::Hint) {
        node_.cpus().release();
        const bool admitted = co_await admission_gate_.admit(
            req.tenant, req.len, orderKey(conn.staging_base, req.seq));
        lease = co_await node_.cpus().acquire(
            osmodel::CpuPool::kNormalPriority,
            orderKey(conn.staging_base, req.offset));
        if (!admitted) {
            // Shed: refuse fast with Busy, and forget the sequence —
            // like BadDigest, a future retransmission must re-enter
            // the gate rather than replay this refusal.
            conn.seqs.erase(req.seq);
            co_await lease.run(config_.complete_cost, CpuCat::Other);
            postCompletion(conn, req, dsa::IoStatus::Busy);
            repostRecv(conn, recv_cookie);
            node_.cpus().release();
            co_return;
        }
        gated = true;
    }

    dsa::IoStatus status = dsa::IoStatus::Error;
    uint32_t payload_digest = 0;
    bool digest_valid = false;
    if (req.op == dsa::DsaOp::Read) {
        reads_.increment();
        status = co_await doRead(conn, req, lease, payload_digest,
                                 digest_valid);
    } else if (req.op == dsa::DsaOp::Write) {
        writes_.increment();
        status = co_await doWrite(conn, req, lease);
    } else {
        hints_.increment();
        status = co_await doHint(req, lease);
    }

    if (status == dsa::IoStatus::BadDigest) {
        // Not recorded in the dedup filter: the retransmission must
        // re-stage and re-execute, not replay this failure.
        conn.seqs.erase(req.seq);
    } else {
        conn.seqs[req.seq] = status == dsa::IoStatus::Ok
                                 ? Connection::SeqState::DoneOk
                                 : Connection::SeqState::DoneFail;
    }
    co_await lease.run(config_.complete_cost, CpuCat::Other);
    postCompletion(conn, req, status, payload_digest, digest_valid);
    server_time_.add(static_cast<double>(sim_.now() - arrival));
    repostRecv(conn, recv_cookie);
    node_.cpus().release();
    if (gated)
        admission_gate_.release();
}

sim::Task<>
V3Server::handleHello(Connection &conn, const dsa::RequestMsg &req,
                      CpuLease lease)
{
    co_await lease.run(config_.complete_cost, CpuCat::Other);
    auto ack = std::make_shared<dsa::ServerMsg>();
    ack->kind = dsa::ServerMsg::Kind::HelloAck;
    disk::Volume *volume = volumes_.volume(req.volume);
    ack->hello.volume_capacity = volume ? volume->capacity() : 0;
    ack->hello.request_credits = config_.request_credits;
    ack->hello.staging_slots = config_.staging_slots;
    ack->hello.staging_slot_bytes =
        static_cast<uint32_t>(config_.staging_slot_bytes);
    ack->hello.staging_base = conn.staging_base;

    vi::WorkDescriptor desc;
    desc.local_addr = conn.reply_buf;
    desc.len = dsa::kResponseWireBytes;
    desc.control = std::move(ack);
    desc.order_key = conn.reply_buf;
    nic_->postSend(*conn.ep, desc, conn.reply_handle);
}

void
V3Server::postCompletion(Connection &conn, const dsa::RequestMsg &req,
                         dsa::IoStatus status, uint32_t payload_digest,
                         bool digest_valid)
{
    if (!conn.alive ||
        conn.ep->state() != vi::EndpointState::Connected) {
        return;
    }
    if (req.completion == dsa::CompletionMode::RdmaFlag) {
        // Write the flag value into scratch, then RDMA it onto the
        // request's flag address; the data was posted on the same
        // connection first, so in-order delivery makes the flag the
        // last thing the client observes. The flag word carries the
        // full IoStatus encoding plus the read payload digest in its
        // upper half, so flag-mode clients verify read data end to
        // end just like Message-mode clients do from ResponseMsg.
        // The meta sidecar mirrors it so phantom-memory clients (no
        // bytes to re-read) still learn the status from their
        // RdmaEvent observer.
        const uint64_t flag = dsa::flagValue(
            status, digest_valid ? payload_digest : 0);
        node_.memory().writeU64(conn.flag_scratch, flag);
        vi::WorkDescriptor desc;
        desc.local_addr = conn.flag_scratch;
        desc.len = 8;
        desc.remote_addr = req.flag_addr;
        desc.meta = flag;
        desc.order_key = req.flag_addr;
        nic_->postRdmaWrite(*conn.ep, desc, conn.flag_handle);
    } else {
        auto response = std::make_shared<dsa::ServerMsg>();
        response->kind = dsa::ServerMsg::Kind::Response;
        response->response.request_id = req.request_id;
        response->response.status = status;
        response->response.payload_digest = payload_digest;
        response->response.digest_valid = digest_valid;
        vi::WorkDescriptor desc;
        desc.local_addr = conn.reply_buf;
        desc.len = dsa::kResponseWireBytes;
        desc.control = std::move(response);
        desc.order_key = orderKey(conn.staging_base, req.offset);
        nic_->postSend(*conn.ep, desc, conn.reply_handle);
    }
}

sim::Task<dsa::IoStatus>
V3Server::doRead(Connection &conn, const dsa::RequestMsg &req,
                 CpuLease &lease, uint32_t &digest, bool &digest_valid)
{
    disk::Volume *volume = volumes_.volume(req.volume);
    if (!volume || req.len == 0 ||
        req.offset + req.len > volume->capacity()) {
        co_return dsa::IoStatus::Error;
    }

    if (!cache_) {
        // Caching off: one transient buffer, one volume read, one
        // RDMA (the NIC fragments it on the wire).
        const uint64_t a_off = alignDown(req.offset, kSector);
        const uint64_t a_end = alignUp(req.offset + req.len, kSector);
        sim::MemorySpace &mem = node_.memory();
        const sim::Addr tbuf = mem.allocate(a_end - a_off);
        auto reg =
            nic_->registry().registerMemory(tbuf, a_end - a_off, true);
        co_await lease.run(config_.disk_sched_cost, CpuCat::Other);

        node_.cpus().release();
        const bool ok =
            co_await volume->read(a_off, a_end - a_off, mem, tbuf);
        lease = co_await node_.cpus().acquire(
            osmodel::CpuPool::kNormalPriority,
            orderKey(conn.staging_base, req.offset));

        // Verify-on-read: damaged platter data must not reach the
        // client as if it were good.
        bool integrity_bad = false;
        if (ok && volume->corrupt(a_off, a_end - a_off)) {
            integrity_errors_.increment();
            integrity_bad = true;
        }

        bool sent = false;
        if (ok && !integrity_bad && reg.has_value()) {
            co_await lease.run(
                digestTicks(req.len, config_.digest_per_kb),
                CpuCat::Other);
            if (!mem.phantom()) {
                digest = dsa::payloadDigest(
                    mem, tbuf + (req.offset - a_off), req.len);
                digest_valid = true;
            }
            co_await lease.run(nic_->costs().doorbell, CpuCat::Other);
            vi::WorkDescriptor desc;
            desc.local_addr = tbuf + (req.offset - a_off);
            desc.len = req.len;
            desc.remote_addr = req.client_buffer;
            desc.order_key = req.client_buffer;
            sent = nic_->postRdmaWrite(*conn.ep, desc, reg->handle);
        }
        // NOTE: the transient stays registered until after the RDMA
        // snapshot (taken synchronously at post), so it can be freed
        // immediately in simulation terms.
        if (reg.has_value())
            nic_->registry().deregister(reg->handle);
        mem.free(tbuf);
        if (integrity_bad)
            co_return dsa::IoStatus::IntegrityError;
        co_return sent ? dsa::IoStatus::Ok : dsa::IoStatus::Error;
    }

    // Cached path: per-block lookups with miss-run coalescing.
    const uint64_t bs = config_.block_size;
    const uint64_t first = req.offset / bs;
    const uint64_t last = (req.offset + req.len - 1) / bs;

    struct BlockRef
    {
        uint64_t block;
        sim::Addr frame;     // data home (frame or transient)
        bool pinned;         // needs unpin
    };
    std::vector<BlockRef> refs;
    struct Transient
    {
        sim::Addr addr;
        uint64_t len;
        vi::MemHandle handle;
    };
    std::vector<Transient> transients;

    sim::MemorySpace &mem = node_.memory();
    bool integrity_bad = false;
    uint64_t b = first;
    while (b <= last) {
        const CacheKey key{req.volume, b};
        co_await lease.run(config_.cache_op_cost, CpuCat::Other);

        if (auto frame = cache_->lookupAndPin(key)) {
            refs.push_back(BlockRef{b, *frame, true});
            ++b;
            continue;
        }

        auto loading = loading_.find(key);
        if (loading != loading_.end()) {
            // Another request is already fetching this block; wait
            // without holding a CPU, then retry the lookup.
            sim::CondEvent *event = loading->second.get();
            node_.cpus().release();
            co_await event->wait();
            lease = co_await node_.cpus().acquire(
                osmodel::CpuPool::kNormalPriority,
                orderKey(conn.staging_base, req.offset));
            continue;
        }

        // We own the fetch of a run of consecutive cold blocks.
        uint64_t run_end = b + 1;
        loading_[key] = std::make_unique<sim::CondEvent>();
        while (run_end <= last &&
               !cache_->contains(CacheKey{req.volume, run_end}) &&
               loading_.find(CacheKey{req.volume, run_end}) ==
                   loading_.end()) {
            loading_[CacheKey{req.volume, run_end}] =
                std::make_unique<sim::CondEvent>();
            ++run_end;
        }

        const uint64_t run_bytes = (run_end - b) * bs;
        const sim::Addr tbuf = mem.allocate(run_bytes);
        co_await lease.run(config_.disk_sched_cost, CpuCat::Other);

        node_.cpus().release();
        bool ok = co_await volume->read(b * bs, run_bytes, mem, tbuf);
        lease = co_await node_.cpus().acquire(
            osmodel::CpuPool::kNormalPriority,
            orderKey(conn.staging_base, req.offset));

        // Verify-on-read: a block damaged on the platter must never
        // enter the cache (it would masquerade as a verified copy)
        // or reach a client.
        if (ok && volume->corrupt(b * bs, run_bytes)) {
            integrity_errors_.increment();
            integrity_bad = true;
            ok = false;
        }

        bool tbuf_needed = false;
        for (uint64_t bb = b; bb < run_end; ++bb) {
            const CacheKey bkey{req.volume, bb};
            co_await lease.run(config_.cache_op_cost, CpuCat::Other);
            // A write racing this fill may have committed newer
            // bytes than the disk read captured: consume the stale
            // mark (always, so it cannot leak) and serve from the
            // transient instead of installing a stale frame.
            const bool fill_unsafe =
                fill_stale_.erase(bkey) > 0 ||
                writing_.find(bkey) != writing_.end();
            std::optional<sim::Addr> frame =
                ok && !fill_unsafe ? cache_->insertAndPin(bkey)
                                   : std::nullopt;
            if (frame) {
                sim::MemorySpace::copy(mem, tbuf + (bb - b) * bs, mem,
                                       *frame, bs);
                co_await lease.run(
                    static_cast<sim::Tick>(bs / 1024) *
                        config_.memcpy_per_kb,
                    CpuCat::Other);
                refs.push_back(BlockRef{bb, *frame, true});
            } else if (ok) {
                // All frames pinned: serve from the transient.
                refs.push_back(
                    BlockRef{bb, tbuf + (bb - b) * bs, false});
                tbuf_needed = true;
            }
            auto event = loading_.find(bkey);
            if (event != loading_.end()) {
                event->second->notifyAll();
                loading_.erase(event);
            }
        }

        if (!ok) {
            // Unpin and bail out.
            for (const BlockRef &ref : refs) {
                if (ref.pinned)
                    cache_->unpin(CacheKey{req.volume, ref.block});
            }
            mem.free(tbuf);
            for (const Transient &t : transients) {
                nic_->registry().deregister(t.handle);
                mem.free(t.addr);
            }
            co_return integrity_bad ? dsa::IoStatus::IntegrityError
                                    : dsa::IoStatus::Error;
        }

        if (tbuf_needed) {
            auto reg =
                nic_->registry().registerMemory(tbuf, run_bytes, true);
            assert(reg.has_value());
            transients.push_back(Transient{tbuf, run_bytes,
                                           reg->handle});
        } else {
            mem.free(tbuf);
        }
        b = run_end;
    }

    // RDMA each block's overlap with the requested range, in order,
    // accumulating the response digest over the delivered bytes
    // (client-buffer order == refs order, so one chained CRC works).
    co_await lease.run(digestTicks(req.len, config_.digest_per_kb),
                       CpuCat::Other);
    uint32_t crc = 0;
    for (const BlockRef &ref : refs) {
        const uint64_t block_start = ref.block * bs;
        const uint64_t piece_start =
            std::max(block_start, req.offset);
        const uint64_t piece_end =
            std::min(block_start + bs, req.offset + req.len);
        if (piece_end <= piece_start)
            continue;
        co_await lease.run(nic_->costs().doorbell, CpuCat::Other);
        vi::WorkDescriptor desc;
        desc.local_addr = ref.frame + (piece_start - block_start);
        desc.len = piece_end - piece_start;
        if (!mem.phantom())
            crc = dsa::payloadDigest(mem, desc.local_addr, desc.len,
                                     crc);
        desc.remote_addr =
            req.client_buffer + (piece_start - req.offset);
        desc.order_key = desc.remote_addr;
        vi::MemHandle handle = cache_handle_;
        if (!ref.pinned) {
            // Find the covering transient registration.
            for (const Transient &t : transients) {
                if (desc.local_addr >= t.addr &&
                    desc.local_addr + desc.len <= t.addr + t.len) {
                    handle = t.handle;
                    break;
                }
            }
        }
        nic_->postRdmaWrite(*conn.ep, desc, handle);
    }

    if (!mem.phantom()) {
        digest = crc;
        digest_valid = true;
    }

    for (const BlockRef &ref : refs) {
        if (ref.pinned)
            cache_->unpin(CacheKey{req.volume, ref.block});
    }
    for (const Transient &t : transients) {
        nic_->registry().deregister(t.handle);
        mem.free(t.addr);
    }
    co_return dsa::IoStatus::Ok;
}

sim::Task<dsa::IoStatus>
V3Server::doWrite(Connection &conn, const dsa::RequestMsg &req,
                  CpuLease &lease)
{
    disk::Volume *volume = volumes_.volume(req.volume);
    if (!volume || req.len == 0 ||
        req.offset + req.len > volume->capacity() ||
        req.offset % kSector != 0 || req.len % kSector != 0 ||
        req.staging_slot >= config_.staging_slots ||
        req.len > config_.staging_slot_bytes) {
        co_return dsa::IoStatus::Error;
    }

    sim::MemorySpace &mem = node_.memory();
    const sim::Addr staging =
        conn.staging_base +
        static_cast<uint64_t>(req.staging_slot) *
            config_.staging_slot_bytes;

    // Verify the staged payload before the cache or the disk sees
    // it: a block damaged on the way in must never become "the"
    // durable copy. Taint covers phantom runs; the CRC compare
    // additionally covers real-memory runs.
    co_await lease.run(digestTicks(req.len, config_.digest_per_kb),
                       CpuCat::Other);
    const bool tainted =
        conn.staging_tainted.erase(req.staging_slot) > 0;
    bool digest_ok = !tainted;
    if (digest_ok && req.digest_valid && !mem.phantom()) {
        digest_ok = dsa::payloadDigest(mem, staging, req.len) ==
                    req.payload_digest;
    }
    if (!digest_ok) {
        digest_mismatches_.increment();
        co_return dsa::IoStatus::BadDigest;
    }
    // Guard concurrent miss fills: a fill whose disk read races this
    // write can capture pre-commit bytes; if it installed them after
    // our cache update, the cache would serve stale data forever
    // (the disk itself stays correct, which makes the corruption
    // invisible until the frame is evicted). Count the write against
    // every covered block now, and on the way out invalidate any
    // fill still in flight.
    const uint64_t wbs = config_.block_size;
    const uint64_t wfirst = req.offset / wbs;
    const uint64_t wlast = (req.offset + req.len - 1) / wbs;
    for (uint64_t b = wfirst; b <= wlast; ++b)
        ++writing_[CacheKey{req.volume, b}];
    auto finish_writing = [&] {
        for (uint64_t b = wfirst; b <= wlast; ++b) {
            const CacheKey key{req.volume, b};
            auto it = writing_.find(key);
            if (it != writing_.end() && --it->second == 0)
                writing_.erase(it);
            if (loading_.find(key) != loading_.end())
                fill_stale_[key] = true;
        }
    };

    // Update cache blocks so subsequent reads see the new data.
    if (cache_) {
        const uint64_t bs = config_.block_size;
        for (uint64_t b = req.offset / bs;
             b <= (req.offset + req.len - 1) / bs; ++b) {
            const CacheKey key{req.volume, b};
            const uint64_t block_start = b * bs;
            const uint64_t piece_start =
                std::max(block_start, req.offset);
            const uint64_t piece_end =
                std::min(block_start + bs, req.offset + req.len);
            const bool full_block =
                piece_start == block_start && piece_end - piece_start == bs;

            co_await lease.run(config_.cache_op_cost, CpuCat::Other);
            std::optional<sim::Addr> frame;
            if (full_block) {
                frame = cache_->insertAndPin(key);
            } else if (cache_->contains(key)) {
                frame = cache_->lookupAndPin(key);
            }
            if (frame) {
                sim::MemorySpace::copy(
                    mem, staging + (piece_start - req.offset), mem,
                    *frame + (piece_start - block_start),
                    piece_end - piece_start);
                co_await lease.run(
                    static_cast<sim::Tick>(
                        (piece_end - piece_start) / 1024) *
                        config_.memcpy_per_kb,
                    CpuCat::Other);
                cache_->unpin(key);
            }
        }
    }

    // A crash between staging and commit loses the write: the node
    // is fail-stop, so nothing may reach disk after the cache died.
    if (!conn.alive) {
        finish_writing();
        co_return dsa::IoStatus::Error;
    }

    // Commit to disk before completing (durability, section 5.2).
    co_await lease.run(config_.disk_sched_cost, CpuCat::Other);
    node_.cpus().release();
    const bool ok =
        co_await volume->write(req.offset, req.len, mem, staging);
    lease = co_await node_.cpus().acquire(
        osmodel::CpuPool::kNormalPriority,
        orderKey(conn.staging_base, req.offset));
    finish_writing();
    co_return ok ? dsa::IoStatus::Ok : dsa::IoStatus::Error;
}

sim::Task<dsa::IoStatus>
V3Server::doHint(const dsa::RequestMsg &req, CpuLease &lease)
{
    disk::Volume *volume = volumes_.volume(req.volume);
    if (!volume || req.len == 0 ||
        req.offset + req.len > volume->capacity()) {
        co_return dsa::IoStatus::Error;
    }
    if (!cache_)
        co_return dsa::IoStatus::Ok; // nothing to manage; still acked

    const uint64_t bs = config_.block_size;
    const uint64_t first = req.offset / bs;
    const uint64_t last = (req.offset + req.len - 1) / bs;

    switch (req.hint) {
      case dsa::HintKind::WillNeed:
        // Acknowledge immediately; fetch in the background.
        sim::spawn(prefetchRange(req.volume, first, last));
        break;
      case dsa::HintKind::DontNeed:
        for (uint64_t b = first; b <= last; ++b) {
            co_await lease.run(config_.cache_op_cost, CpuCat::Other);
            cache_->invalidate(CacheKey{req.volume, b});
        }
        break;
      case dsa::HintKind::Sequential:
        // Advisory only; accepted.
        break;
    }
    co_return dsa::IoStatus::Ok;
}

sim::Task<>
V3Server::prefetchRange(uint32_t volume_id, uint64_t first,
                        uint64_t last)
{
    disk::Volume *volume = volumes_.volume(volume_id);
    if (!volume || !cache_)
        co_return;
    const uint64_t bs = config_.block_size;
    sim::MemorySpace &mem = node_.memory();

    CpuLease lease = co_await node_.cpus().acquire(
        osmodel::CpuPool::kNormalPriority,
        orderKey(volume_id, first * bs));
    uint64_t b = first;
    while (b <= last) {
        const CacheKey key{volume_id, b};
        co_await lease.run(config_.cache_op_cost, CpuCat::Other);
        if (cache_->contains(key) ||
            loading_.find(key) != loading_.end()) {
            ++b;
            continue;
        }
        // Fetch a run of consecutive cold blocks, as doRead does.
        uint64_t run_end = b + 1;
        loading_[key] = std::make_unique<sim::CondEvent>();
        while (run_end <= last &&
               !cache_->contains(CacheKey{volume_id, run_end}) &&
               loading_.find(CacheKey{volume_id, run_end}) ==
                   loading_.end()) {
            loading_[CacheKey{volume_id, run_end}] =
                std::make_unique<sim::CondEvent>();
            ++run_end;
        }
        const uint64_t run_bytes = (run_end - b) * bs;
        const sim::Addr tbuf = mem.allocate(run_bytes);
        co_await lease.run(config_.disk_sched_cost, CpuCat::Other);
        node_.cpus().release();
        bool ok = co_await volume->read(b * bs, run_bytes, mem, tbuf);
        lease = co_await node_.cpus().acquire(
            osmodel::CpuPool::kNormalPriority,
            orderKey(volume_id, b * bs));

        // Same verify-on-read rule as doRead: never cache a block
        // that is damaged on disk.
        if (ok && volume->corrupt(b * bs, run_bytes)) {
            integrity_errors_.increment();
            ok = false;
        }

        for (uint64_t bb = b; bb < run_end; ++bb) {
            const CacheKey bkey{volume_id, bb};
            // Same stale-fill guard as doRead: skip blocks a racing
            // write invalidated or still has in flight.
            const bool fill_unsafe =
                fill_stale_.erase(bkey) > 0 ||
                writing_.find(bkey) != writing_.end();
            if (ok && !fill_unsafe) {
                co_await lease.run(config_.cache_op_cost,
                                   CpuCat::Other);
                if (auto frame = cache_->insertAndPin(bkey)) {
                    sim::MemorySpace::copy(mem, tbuf + (bb - b) * bs,
                                           mem, *frame, bs);
                    cache_->unpin(bkey);
                    prefetched_.increment();
                }
            }
            auto event = loading_.find(bkey);
            if (event != loading_.end()) {
                event->second->notifyAll();
                loading_.erase(event);
            }
        }
        mem.free(tbuf);
        b = run_end;
    }
    node_.cpus().release();
}

void
V3Server::resetStats()
{
    reads_.reset();
    writes_.reset();
    retransmit_hits_.reset();
    bad_requests_.reset();
    digest_mismatches_.reset();
    integrity_errors_.reset();
    admission_gate_.resetStats();
    server_time_.reset();
    if (cache_)
        cache_->resetStats();
    disks_.resetStats();
    node_.cpus().resetStats();
}

} // namespace v3sim::storage
