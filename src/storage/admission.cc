#include "admission.hh"

#include <algorithm>

namespace v3sim::storage
{

AdmissionQueue::AdmissionQueue(AdmissionConfig config)
    : config_(config)
{
    config_.drr_quantum = std::max<uint64_t>(config_.drr_quantum, 1);
}

AdmissionQueue::Decision
AdmissionQueue::offer(uint64_t tenant, uint64_t cost, uint64_t token)
{
    // A free slot is taken directly only when no one is waiting:
    // otherwise a late arrival would overtake the backlog the DRR
    // scheduler owns.
    if (queued_ == 0 && in_service_ < config_.service_slots) {
        ++in_service_;
        return Decision::Admit;
    }
    if (queued_ >= config_.max_queue_depth)
        return Decision::Shed;
    tenants_[tenant].items.push_back(Item{cost, token});
    ++queued_;
    return Decision::Queue;
}

std::optional<uint64_t>
AdmissionQueue::next()
{
    if (in_service_ >= config_.service_slots || queued_ == 0)
        return std::nullopt;
    // DRR scan: serve the cursor tenant while its deficit covers its
    // head request; otherwise top the deficit up by one quantum and
    // advance. Terminates: every unsuccessful visit adds a quantum,
    // so some backlogged tenant's deficit eventually covers its head.
    for (;;) {
        auto it = tenants_.lower_bound(cursor_);
        if (it == tenants_.end())
            it = tenants_.begin();
        TenantQ &tq = it->second;
        if (tq.deficit >= tq.items.front().cost) {
            tq.deficit -= tq.items.front().cost;
            const uint64_t token = tq.items.front().token;
            tq.items.pop_front();
            --queued_;
            ++in_service_;
            if (tq.items.empty()) {
                // Idle flows keep no credit (classic DRR); the
                // cursor moves past the vacated ring position.
                cursor_ = it->first + 1;
                tenants_.erase(it);
            } else {
                // Stay on this tenant: remaining deficit is spent
                // before the ring advances.
                cursor_ = it->first;
            }
            return token;
        }
        tq.deficit += config_.drr_quantum;
        cursor_ = it->first + 1;
    }
}

void
AdmissionQueue::release()
{
    if (in_service_ > 0)
        --in_service_;
}

void
AdmissionQueue::reset()
{
    tenants_.clear();
    cursor_ = 0;
    queued_ = 0;
    in_service_ = 0;
}

} // namespace v3sim::storage
