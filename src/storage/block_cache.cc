#include "block_cache.hh"

#include <cassert>

namespace v3sim::storage
{

BlockCache::BlockCache(sim::MemorySpace &memory, uint64_t block_size,
                       uint64_t capacity_blocks)
    : block_size_(block_size), capacity_(capacity_blocks)
{
    assert(block_size_ > 0);
    assert(capacity_ > 0);
    base_ = memory.allocate(block_size_ * capacity_);
    assert(base_ != sim::kNullAddr);
}

LruCache::LruCache(sim::MemorySpace &memory, uint64_t block_size,
                   uint64_t capacity_blocks)
    : BlockCache(memory, block_size, capacity_blocks)
{
    free_frames_.reserve(capacity_);
    for (uint64_t i = 0; i < capacity_; ++i)
        free_frames_.push_back(capacity_ - 1 - i);
}

std::optional<sim::Addr>
LruCache::lookupAndPin(CacheKey key)
{
    auto it = map_.find(key);
    if (it == map_.end()) {
        recordMiss();
        return std::nullopt;
    }
    recordHit();
    // Move to MRU position.
    lru_.splice(lru_.end(), lru_, it->second);
    it->second = std::prev(lru_.end());
    ++it->second->pins;
    return frameAddr(it->second->frame);
}

std::optional<uint64_t>
LruCache::evictOne()
{
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (it->pins == 0) {
            const uint64_t frame = it->frame;
            map_.erase(it->key);
            lru_.erase(it);
            return frame;
        }
    }
    return std::nullopt;
}

std::optional<sim::Addr>
LruCache::insertAndPin(CacheKey key)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        lru_.splice(lru_.end(), lru_, it->second);
        it->second = std::prev(lru_.end());
        ++it->second->pins;
        return frameAddr(it->second->frame);
    }

    uint64_t frame;
    if (!free_frames_.empty()) {
        frame = free_frames_.back();
        free_frames_.pop_back();
    } else {
        const auto victim = evictOne();
        if (!victim.has_value())
            return std::nullopt; // every frame pinned
        frame = *victim;
    }
    lru_.push_back(Entry{key, frame, 1});
    map_[key] = std::prev(lru_.end());
    return frameAddr(frame);
}

void
LruCache::unpin(CacheKey key)
{
    auto it = map_.find(key);
    if (it == map_.end())
        return;
    assert(it->second->pins > 0);
    --it->second->pins;
}

void
LruCache::invalidate(CacheKey key)
{
    auto it = map_.find(key);
    if (it == map_.end() || it->second->pins > 0)
        return;
    free_frames_.push_back(it->second->frame);
    lru_.erase(it->second);
    map_.erase(it);
}

void
LruCache::invalidateAll()
{
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->pins > 0) {
            ++it;
            continue;
        }
        free_frames_.push_back(it->frame);
        map_.erase(it->key);
        it = lru_.erase(it);
    }
}

bool
LruCache::contains(CacheKey key) const
{
    return map_.find(key) != map_.end();
}

} // namespace v3sim::storage
