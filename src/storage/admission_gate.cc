#include "storage/admission_gate.hh"

#include <algorithm>
#include <cassert>
#include <optional>

namespace v3sim::storage
{

AdmissionGate::AdmissionGate(sim::Simulation &sim,
                             const std::string &prefix,
                             AdmissionConfig config)
    : sim_(sim), queue_(config),
      admitted_(
          sim.metrics().counter(prefix + ".admission_admitted")),
      queued_ct_(
          sim.metrics().counter(prefix + ".admission_queued")),
      shed_(sim.metrics().counter(prefix + ".admission_shed")),
      wait_(sim.metrics().sampler(prefix + ".admission_wait_ns"))
{}

sim::Task<bool>
AdmissionGate::admit(uint64_t tenant, uint64_t cost,
                     uint64_t order_key)
{
    if (!enabled())
        co_return true;
    // The waiter lives on this coroutine's frame; it is staged for
    // the tick's final-band pass, which makes the Admit/Queue/Shed
    // decision over the full same-tick contender set in order_key
    // order (DESIGN.md §8.3) and fires ready.
    Waiter waiter;
    waiter.tenant = tenant;
    waiter.cost = cost;
    waiter.order_key = order_key;
    const sim::Tick enter = sim_.now();
    staged_.push_back(&waiter);
    schedulePass();
    co_await waiter.ready.wait();
    if (waiter.queued &&
        waiter.decision == AdmissionQueue::Decision::Admit)
        wait_.add(static_cast<double>(sim_.now() - enter));
    co_return waiter.decision == AdmissionQueue::Decision::Admit;
}

void
AdmissionGate::release()
{
    if (!enabled())
        return;
    queue_.release();
    schedulePass();
}

void
AdmissionGate::schedulePass()
{
    if (pass_scheduled_)
        return;
    pass_scheduled_ = true;
    sim_.queue().scheduleFinal([this] { pass(); });
}

void
AdmissionGate::pass()
{
    pass_scheduled_ = false;

    // Offers first, sorted by content key: the tick's arrivals join
    // the contender set before any freed slot is re-filled, so the
    // DRR scheduler — not intra-tick arrival order — decides who
    // runs next.
    std::vector<Waiter *> batch = std::move(staged_);
    staged_.clear();
    std::sort(batch.begin(), batch.end(),
              [](const Waiter *a, const Waiter *b) {
                  return a->order_key < b->order_key;
              });
    for (Waiter *waiter : batch) {
        const uint64_t token = next_token_++;
        waiter->decision =
            queue_.offer(waiter->tenant, waiter->cost, token);
        switch (waiter->decision) {
          case AdmissionQueue::Decision::Admit:
            admitted_.increment();
            waiter->ready.set();
            break;
          case AdmissionQueue::Decision::Shed:
            shed_.increment();
            waiter->ready.set();
            break;
          case AdmissionQueue::Decision::Queue:
            queued_ct_.increment();
            waiter->queued = true;
            waiting_.emplace(token, waiter);
            break;
        }
    }

    // Then fill any free service slots from the backlog.
    while (std::optional<uint64_t> token = queue_.next()) {
        const auto it = waiting_.find(*token);
        assert(it != waiting_.end());
        Waiter *waiter = it->second;
        waiting_.erase(it);
        waiter->decision = AdmissionQueue::Decision::Admit;
        admitted_.increment();
        waiter->ready.set();
    }
}

void
AdmissionGate::shedAll()
{
    for (Waiter *waiter : staged_) {
        waiter->decision = AdmissionQueue::Decision::Shed;
        shed_.increment();
        waiter->ready.set();
    }
    staged_.clear();
    for (auto &[token, waiter] : waiting_) {
        waiter->decision = AdmissionQueue::Decision::Shed;
        shed_.increment();
        waiter->ready.set();
    }
    waiting_.clear();
    queue_.reset();
}

void
AdmissionGate::resetStats()
{
    admitted_.reset();
    queued_ct_.reset();
    shed_.reset();
    wait_.reset();
}

} // namespace v3sim::storage
