#include "mq_cache.hh"

#include <cassert>

namespace v3sim::storage
{

MqCache::MqCache(sim::MemorySpace &memory, uint64_t block_size,
                 uint64_t capacity_blocks, MqConfig config)
    : BlockCache(memory, block_size, capacity_blocks),
      config_(config),
      life_time_(config.life_time ? config.life_time
                                  : 2 * capacity_blocks),
      queues_(config.queue_count),
      ghost_capacity_(static_cast<uint64_t>(
          static_cast<double>(capacity_blocks) * config.ghost_ratio))
{
    assert(config_.queue_count >= 1);
    free_frames_.reserve(capacity_);
    for (uint64_t i = 0; i < capacity_; ++i)
        free_frames_.push_back(capacity_ - 1 - i);
}

uint32_t
MqCache::queueFor(uint64_t freq) const
{
    uint32_t q = 0;
    while (freq > 1 && q + 1 < config_.queue_count) {
        freq >>= 1;
        ++q;
    }
    return q;
}

void
MqCache::adjust()
{
    // Amortized demotion: inspect the head of each non-bottom queue
    // once per access, demoting it if its lifetime expired.
    for (uint32_t q = 1; q < queues_.size(); ++q) {
        QueueList &queue = queues_[q];
        if (queue.empty())
            continue;
        Entry &head = queue.front();
        if (head.expire < now_ && head.pins == 0) {
            head.queue = q - 1;
            head.expire = now_ + life_time_;
            QueueList &lower = queues_[q - 1];
            lower.splice(lower.end(), queue, queue.begin());
            map_[lower.back().key] = std::prev(lower.end());
        }
    }
}

void
MqCache::requeue(QueueList::iterator it)
{
    const uint32_t target = queueFor(it->freq);
    it->expire = now_ + life_time_;
    QueueList &from = queues_[it->queue];
    QueueList &to = queues_[target];
    it->queue = target;
    to.splice(to.end(), from, it);
    map_[it->key] = it; // iterator stays valid across splice
}

std::optional<sim::Addr>
MqCache::lookupAndPin(CacheKey key)
{
    ++now_;
    adjust();
    auto it = map_.find(key);
    if (it == map_.end()) {
        recordMiss();
        return std::nullopt;
    }
    recordHit();
    auto entry = it->second;
    ++entry->freq;
    requeue(entry);
    ++entry->pins;
    return frameAddr(entry->frame);
}

std::optional<uint64_t>
MqCache::evictOne()
{
    for (auto &queue : queues_) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->pins != 0)
                continue;
            const uint64_t frame = it->frame;
            remember(it->key, it->freq);
            map_.erase(it->key);
            queue.erase(it);
            return frame;
        }
    }
    return std::nullopt;
}

void
MqCache::remember(CacheKey key, uint64_t freq)
{
    if (ghost_capacity_ == 0)
        return;
    if (ghost_map_.find(key) == ghost_map_.end()) {
        while (ghost_fifo_.size() >= ghost_capacity_) {
            ghost_map_.erase(ghost_fifo_.front());
            ghost_fifo_.pop_front();
        }
        ghost_fifo_.push_back(key);
    }
    ghost_map_[key] = freq;
}

std::optional<sim::Addr>
MqCache::insertAndPin(CacheKey key)
{
    ++now_;
    auto it = map_.find(key);
    if (it != map_.end()) {
        ++it->second->pins;
        return frameAddr(it->second->frame);
    }

    uint64_t frame;
    if (!free_frames_.empty()) {
        frame = free_frames_.back();
        free_frames_.pop_back();
    } else {
        const auto victim = evictOne();
        if (!victim.has_value())
            return std::nullopt;
        frame = *victim;
    }

    Entry entry;
    entry.key = key;
    entry.frame = frame;
    entry.pins = 1;
    // Resume the block's remembered standing, if any (ghost hit).
    auto ghost = ghost_map_.find(key);
    entry.freq = ghost != ghost_map_.end() ? ghost->second + 1 : 1;
    entry.expire = now_ + life_time_;
    entry.queue = queueFor(entry.freq);

    QueueList &queue = queues_[entry.queue];
    queue.push_back(entry);
    map_[key] = std::prev(queue.end());
    return frameAddr(frame);
}

void
MqCache::unpin(CacheKey key)
{
    auto it = map_.find(key);
    if (it == map_.end())
        return;
    assert(it->second->pins > 0);
    --it->second->pins;
}

void
MqCache::invalidate(CacheKey key)
{
    auto it = map_.find(key);
    if (it == map_.end() || it->second->pins > 0)
        return;
    free_frames_.push_back(it->second->frame);
    queues_[it->second->queue].erase(it->second);
    map_.erase(it);
}

void
MqCache::invalidateAll()
{
    for (auto &queue : queues_) {
        for (auto it = queue.begin(); it != queue.end();) {
            if (it->pins > 0) {
                ++it;
                continue;
            }
            free_frames_.push_back(it->frame);
            map_.erase(it->key);
            it = queue.erase(it);
        }
    }
    // A crash also forgets ghost history: the restarted node has no
    // memory of pre-crash access frequencies.
    ghost_map_.clear();
    ghost_fifo_.clear();
}

bool
MqCache::contains(CacheKey key) const
{
    return map_.find(key) != map_.end();
}

} // namespace v3sim::storage
