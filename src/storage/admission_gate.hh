/**
 * @file
 * Coroutine-facing wrapper around the pure AdmissionQueue: the piece
 * a storage server embeds to gate its data path (DESIGN.md §12).
 *
 * The wrapper supplies the determinism discipline the queue itself
 * leaves to the caller (admission.hh): every Admit/Queue/Shed
 * decision is deferred to a single final-band pass per tick, which
 * offers the tick's arrivals to the queue in content-key order and
 * only then refills freed service slots from the DRR backlog — so
 * outcomes are functions of the same-tick contender *set*, never of
 * intra-tick arrival order (DESIGN.md §8.3). Both V3Server and the
 * iSCSI target embed one, keeping overload behavior apples-to-apples
 * across transports.
 *
 * Contract for callers: admit() must be awaited holding NO CPU
 * lease. A queued request parks here, off-CPU, until a slot frees —
 * if it held a CPU, a deep backlog would pin the request-manager
 * CPUs and starve the in-service requests that would drain it.
 */

#ifndef V3SIM_STORAGE_ADMISSION_GATE_HH
#define V3SIM_STORAGE_ADMISSION_GATE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/admission.hh"

namespace v3sim::storage
{

/** The embedded admission gate. Registers its own metrics under
 *  `<prefix>.admission_*`. */
class AdmissionGate
{
  public:
    AdmissionGate(sim::Simulation &sim, const std::string &prefix,
                  AdmissionConfig config);

    AdmissionGate(const AdmissionGate &) = delete;
    AdmissionGate &operator=(const AdmissionGate &) = delete;

    /** True when the gate is configured on; when false, admit()
     *  still resolves true immediately (no gating). */
    bool enabled() const { return queue_.config().enabled; }

    /**
     * One request of @p cost bytes from @p tenant asks to enter the
     * data path. Resolves true (admitted — call release() when the
     * request leaves the data path) or false (shed — refuse the
     * request with a Busy status). @p order_key is the content
     * arbitration key (DESIGN.md §8.3) ordering same-tick arrivals.
     *
     * Must be awaited holding no CPU lease (see file comment).
     */
    sim::Task<bool> admit(uint64_t tenant, uint64_t cost,
                          uint64_t order_key);

    /** An admitted request left the data path: frees its service
     *  slot and schedules a backlog refill pass. */
    void release();

    /**
     * Node crash: wakes every parked waiter as shed (their Busy
     * completions are dropped by the caller's dead connections) and
     * zeroes the gate. In-flight handlers past the gate may still
     * call release() as they unwind; the underlying queue tolerates
     * the reset count.
     */
    void shedAll();

    /** @name Statistics @{ */
    uint64_t admittedCount() const { return admitted_.value(); }
    uint64_t queuedCount() const { return queued_ct_.value(); }
    uint64_t shedCount() const { return shed_.value(); }
    const AdmissionQueue &queue() const { return queue_; }
    void resetStats();
    /** @} */

  private:
    /** One request waiting on the gate. Lives on the admitting
     *  coroutine's frame for the duration of the wait. */
    struct Waiter
    {
        uint64_t tenant = 0;
        uint64_t cost = 0;
        /** Content arbitration key (DESIGN.md §8.3): same-tick
         *  arrivals are offered to the gate in this order. */
        uint64_t order_key = 0;
        AdmissionQueue::Decision decision =
            AdmissionQueue::Decision::Shed;
        /** True once the waiter entered the DRR backlog (its wait is
         *  then sampled into admission_wait_ns). */
        bool queued = false;
        sim::Completion<> ready;
    };

    /** The tick's single decision pass (final band). */
    void pass();
    void schedulePass();

    sim::Simulation &sim_;
    AdmissionQueue queue_;
    std::vector<Waiter *> staged_;
    /** Queued waiters by gate token (ordered: shedAll() wakes them
     *  in token order; tokens are assigned in the final-band pass,
     *  so they are deterministic). */
    std::map<uint64_t, Waiter *> waiting_;
    uint64_t next_token_ = 0;
    bool pass_scheduled_ = false;

    sim::CounterHandle admitted_;
    sim::CounterHandle queued_ct_;
    sim::CounterHandle shed_;
    sim::SamplerHandle wait_;
};

} // namespace v3sim::storage

#endif // V3SIM_STORAGE_ADMISSION_GATE_HH
