/**
 * @file
 * The V3 storage server: request manager pipeline over the cache,
 * volume and disk managers (Figure 1 of the paper).
 *
 * One V3Server is one storage node: a 2-CPU host (Table 2) with a VI
 * NIC, a large block cache, and locally attached disks organized
 * into volumes. Clients connect VI endpoints to it and speak the DSA
 * protocol (dsa/protocol.hh).
 *
 * Request manager structure, per section 2.1: the server "runs at
 * user level and communicates with clients with user-level VI
 * primitives" and "employs a lightweight pipeline structure ... that
 * allows large numbers of I/O requests to be serviced concurrently".
 * Here: a per-connection service loop polls the receive completion
 * queue (the paper: "we always use polling for incoming messages on
 * the server") and spawns one handler coroutine per request; handlers
 * interleave freely across cache lookups, disk I/O and RDMA.
 *
 * Read path:  RDMA the data from cache frames (or a transient buffer
 *             when caching is off) straight into the client's
 *             registered buffer, then complete.
 * Write path: the payload is already in a server staging slot (the
 *             client RDMA-wrote it before sending the request); the
 *             server updates resident cache blocks and commits to
 *             disk *before* completing (section 5.2).
 * Completion: a Response send (consumes a client receive descriptor;
 *             interrupt-capable) or an RDMA flag write the client
 *             polls (cDSA).
 *
 * The server also implements the exactly-once filter for DSA's
 * request-level retransmission: completed sequence numbers are
 * remembered per connection until the client's piggybacked ack
 * watermark passes them.
 *
 * Node failure (vi::NodeFaultTarget): crash() models a fail-stop
 * node — the NIC port goes down on the fabric, every connection is
 * torn down, their NIC registrations are released, and the volatile
 * block cache is dropped; disks (persistent) survive. restart()
 * brings the node back cold and re-listening on the same port;
 * clients reconnect and dsa::MirroredDevice resyncs what the node
 * missed. This extends the paper's reliability story (§2.2 — DSA
 * adds "flow control, retransmission and reconnection") from link
 * faults to whole-node faults, the failure class a storage *cluster*
 * (§1) must survive.
 */

#ifndef V3SIM_STORAGE_V3_SERVER_HH
#define V3SIM_STORAGE_V3_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dsa/protocol.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "storage/admission_gate.hh"
#include "storage/block_cache.hh"
#include "storage/disk_manager.hh"
#include "storage/mq_cache.hh"
#include "storage/volume_manager.hh"
#include "vi/fault_injector.hh"
#include "vi/vi_nic.hh"

namespace v3sim::storage
{

/** Cache replacement policy selector. */
enum class CachePolicy : uint8_t
{
    Lru,
    Mq,
};

/** Static configuration of one V3 storage node. */
struct V3ServerConfig
{
    std::string name = "v3";
    int cpus = 2;
    osmodel::HostCosts host_costs = osmodel::HostCosts::storageNode();

    /** Cache block size (the paper's experiments fix this at 8 KB). */
    uint64_t block_size = 8192;

    /** Cache capacity in bytes; 0 disables caching entirely (the
     *  Figure 7/8 configuration: "the V3 server cache size is set to
     *  zero and all V3 I/O requests are serviced from disks"). */
    uint64_t cache_bytes = 256ull * 1024 * 1024;

    CachePolicy cache_policy = CachePolicy::Mq;
    MqConfig mq;

    /** Outstanding-request credits granted per client connection
     *  (matches posted receive descriptors — DSA flow control). */
    uint32_t request_credits = 64;

    /** Write-staging slots granted per client connection. */
    uint32_t staging_slots = 32;

    /** Size of one staging slot (must cover the largest write). */
    uint64_t staging_slot_bytes = 128 * 1024;

    /** Phantom memory for large workload runs. */
    bool phantom_memory = false;

    /** @name Request-manager CPU costs (charged on the server CPUs)
     * @{ */
    sim::Tick parse_cost = sim::usecs(5.0);
    sim::Tick cache_op_cost = sim::usecs(1.5);
    sim::Tick disk_sched_cost = sim::usecs(3.0);
    sim::Tick complete_cost = sim::usecs(4.0);
    /** Per-KB cost of staging<->frame copies. */
    sim::Tick memcpy_per_kb = sim::usecs(0.12);
    /** Per-KB cost of the end-to-end CRC32C digest (verify staged
     *  write payloads, digest read responses). Charged in phantom
     *  and real-memory runs alike; see dsa::payloadDigest. */
    sim::Tick digest_per_kb = sim::usecs(0.04);
    /** @} */

    /** Overload control: bounded admission queue + per-tenant DRR
     *  fair queueing in front of the data path (DESIGN.md §12).
     *  Disabled by default — the paper's closed-loop experiments run
     *  the ungated pipeline. */
    AdmissionConfig admission;
};

/** One V3 storage node. */
class V3Server : public vi::NodeFaultTarget
{
  public:
    V3Server(sim::Simulation &sim, net::Fabric &fabric,
             V3ServerConfig config);

    V3Server(const V3Server &) = delete;
    V3Server &operator=(const V3Server &) = delete;

    osmodel::Node &node() { return node_; }
    vi::ViNic &nic() { return *nic_; }
    DiskManager &diskManager() { return disks_; }
    VolumeManager &volumeManager() { return volumes_; }
    BlockCache *cache() { return cache_.get(); }
    const V3ServerConfig &config() const { return config_; }

    /**
     * Begins accepting client connections. Call after volumes are
     * assembled.
     */
    void start();

    /**
     * Fail-stop crash: the NIC port leaves the fabric (in-flight
     * packets to/from it vanish), every connection dies silently —
     * peers find out via retransmission timeouts, as with a real
     * crash — their NIC registrations are released, and the volatile
     * cache is dropped. Disk contents persist. Idempotent.
     */
    void crash() override;

    /**
     * Cold restart: the port comes back up and the accept handler
     * (still armed from start()) admits fresh connections. The cache
     * starts empty; clients must reconnect and replay. Idempotent.
     */
    void restart() override;

    /** True while crashed (between crash() and restart()). */
    bool crashed() const { return crashed_; }

    /**
     * Incarnation counter: bumped on every restart(). A failure
     * detector that only samples crashed() can miss a crash-and-
     * restart that fits entirely between two probes; comparing boot
     * epochs across probes catches the bounce (the cache was lost
     * even though the node looks continuously up).
     */
    uint64_t bootEpoch() const { return boot_epoch_; }

    /** @name Statistics @{ */
    uint64_t readCount() const { return reads_.value(); }
    uint64_t writeCount() const { return writes_.value(); }
    uint64_t hintCount() const { return hints_.value(); }
    uint64_t prefetchedBlocks() const { return prefetched_.value(); }
    uint64_t retransmitHits() const { return retransmit_hits_.value(); }
    uint64_t crashCount() const { return crashes_.value(); }
    uint64_t restartCount() const { return restarts_.value(); }

    /** Request messages dropped because they arrived damaged. */
    uint64_t badRequestCount() const { return bad_requests_.value(); }
    /** Write payloads rejected by the staging digest/taint check. */
    uint64_t
    digestMismatchCount() const
    {
        return digest_mismatches_.value();
    }
    /** Verify-on-read hits: blocks found damaged on disk. */
    uint64_t
    integrityErrorCount() const
    {
        return integrity_errors_.value();
    }

    /** @name Admission gate (config.admission; DESIGN.md §12) @{ */
    /** Requests refused with IoStatus::Busy at the queue bound. */
    uint64_t shedCount() const { return admission_gate_.shedCount(); }
    /** Requests that waited in the admission queue. */
    uint64_t
    admissionQueuedCount() const
    {
        return admission_gate_.queuedCount();
    }
    /** Requests that passed the gate (directly or via the queue). */
    uint64_t
    admittedCount() const
    {
        return admission_gate_.admittedCount();
    }
    /** @} */

    /** Server-resident time per request: arrival at the request
     *  manager to completion post (the Figure 4 "V3 Storage Server"
     *  component). */
    const sim::Sampler &serverTime() const { return server_time_.raw(); }

    double
    cacheHitRatio() const
    {
        return cache_ ? cache_->hitRatio() : 0.0;
    }

    /** Zeroes this server's registry-owned metrics (crash/restart
     *  counters included). Prefer `MetricRegistry::resetEpoch()` for
     *  stack-wide measurement windows. */
    void resetStats();
    /** @} */

  private:
    /** Per-client connection state (the request manager instance). */
    struct Connection
    {
        uint32_t id = 0;
        vi::ViEndpoint *ep = nullptr;
        /** Send CQ is deliberately absent: the server never needs
         *  local send completions, and an undrained CQ would grow
         *  without bound over long runs. */
        std::unique_ptr<vi::CompletionQueue> recv_cq;

        /** Request receive buffers, one per credit. */
        sim::Addr req_buf_base = sim::kNullAddr;
        vi::MemHandle req_buf_handle;

        /** Reply/flag scratch buffers. */
        sim::Addr reply_buf = sim::kNullAddr;
        vi::MemHandle reply_handle;
        sim::Addr flag_scratch = sim::kNullAddr;
        vi::MemHandle flag_handle;

        /** Write-staging area granted to this client. */
        sim::Addr staging_base = sim::kNullAddr;
        vi::MemHandle staging_handle;

        /** Retransmission filter: seq -> completed ok/in-progress.
         *  Ordered so pruneSeqs can range-erase below the ack and
         *  iteration order is deterministic (DESIGN.md §8). */
        enum class SeqState : uint8_t { InProgress, DoneOk, DoneFail };
        std::map<uint64_t, SeqState> seqs;
        /** Staging slots whose latest inbound RDMA transfer carried a
         *  damaged fragment (set by the NIC's RdmaEvent observer,
         *  consumed by doWrite). This is how phantom-memory runs —
         *  where there are no bytes to CRC — detect payload damage;
         *  in real-memory runs the digest check finds it too. */
        std::unordered_set<uint32_t> staging_tainted;
        bool alive = true;
        /** NIC registrations already returned (releaseConnection). */
        bool released = false;
    };

    /** Accept hook: allocates a Connection and its endpoint. */
    vi::ViEndpoint *accept(net::PortId remote_port,
                           vi::EndpointId remote_ep);

    /** Drains one connection's receive CQ forever. */
    sim::Task<> serviceLoop(Connection &conn);

    /** Returns a dead connection's NIC registrations (idempotent).
     *  The buffers themselves are kept: in-flight handler coroutines
     *  may still read staging/reply memory while unwinding. */
    void releaseConnection(Connection &conn);

    /** Dispatches one request message. */
    sim::Task<> handleRequest(Connection &conn, dsa::RequestMsg req,
                              uint64_t recv_cookie);

    sim::Task<> handleHello(Connection &conn,
                            const dsa::RequestMsg &req,
                            osmodel::CpuLease lease);

    /** Read data path. Verifies blocks against the volume's latent-
     *  corruption oracle before they are cached or delivered, and
     *  accumulates the response payload digest over the RDMA'd pieces
     *  into @p digest / @p digest_valid. */
    sim::Task<dsa::IoStatus> doRead(Connection &conn,
                                    const dsa::RequestMsg &req,
                                    osmodel::CpuLease &lease,
                                    uint32_t &digest,
                                    bool &digest_valid);

    /** Write data path. Checks the staged payload's digest / taint
     *  before the cache or the disk sees it. */
    sim::Task<dsa::IoStatus> doWrite(Connection &conn,
                                     const dsa::RequestMsg &req,
                                     osmodel::CpuLease &lease);

    /** Hint handling (cDSA advanced feature): WillNeed prefetches
     *  asynchronously, DontNeed drops blocks, Sequential is
     *  advisory. */
    sim::Task<dsa::IoStatus> doHint(const dsa::RequestMsg &req,
                                    osmodel::CpuLease &lease);

    /** Background prefetch of [first_block, last_block]. */
    sim::Task<> prefetchRange(uint32_t volume_id, uint64_t first,
                              uint64_t last);

    /** Sends the completion (message or RDMA flag). The digest pair
     *  covers the read data already RDMA'd to the client (Message
     *  mode only; RdmaFlag clients detect damage via taint). */
    void postCompletion(Connection &conn, const dsa::RequestMsg &req,
                        dsa::IoStatus status,
                        uint32_t payload_digest = 0,
                        bool digest_valid = false);

    /** NIC observer: maps damaged inbound RDMA fragments onto the
     *  staging slot they landed in. */
    void onRdmaEvent(const vi::ViNic::RdmaEvent &event);

    /** Re-posts the request receive buffer (returns the credit). */
    void repostRecv(Connection &conn, uint64_t cookie);

    /** Prunes the retransmission filter below the client's ack. */
    static void pruneSeqs(Connection &conn, uint64_t ack_below);

    sim::Simulation &sim_;
    net::Fabric &fabric_;
    V3ServerConfig config_;
    osmodel::Node node_;
    std::unique_ptr<vi::ViNic> nic_;
    DiskManager disks_;
    VolumeManager volumes_;
    std::unique_ptr<BlockCache> cache_;
    vi::MemHandle cache_handle_;

    std::vector<std::unique_ptr<Connection>> connections_;
    bool crashed_ = false;
    uint64_t boot_epoch_ = 0;

    /** Blocks currently being read from disk (miss coalescing). */
    util::FlatMap<CacheKey, std::unique_ptr<sim::CondEvent>,
                  CacheKeyHash>
        loading_;

    /** Writes in flight per block, counted from the cache update to
     *  the disk commit returning. A miss fill whose disk read raced
     *  such a write may hold pre-commit bytes; installing them would
     *  shadow the committed data in the cache indefinitely, so fills
     *  skip blocks with a write in flight. */
    util::FlatMap<CacheKey, uint32_t, CacheKeyHash> writing_;

    /** Fills invalidated by a write that committed while the fill
     *  was still in loading_: the filler consumes (erases) its mark
     *  and serves the read from its transient instead of installing
     *  a possibly-stale frame. */
    util::FlatMap<CacheKey, bool, CacheKeyHash> fill_stale_;

    /// Registry path prefix ("server.<name>", uniquified); must
    /// precede the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::CounterHandle reads_;
    sim::CounterHandle writes_;
    sim::CounterHandle hints_;
    sim::CounterHandle prefetched_;
    sim::CounterHandle retransmit_hits_;
    sim::CounterHandle crashes_;
    sim::CounterHandle restarts_;
    sim::CounterHandle bad_requests_;
    sim::CounterHandle digest_mismatches_;
    sim::CounterHandle integrity_errors_;
    sim::SamplerHandle server_time_;

    /** Overload-control gate in front of the data path
     *  (config_.admission; DESIGN.md §12). Declared after
     *  metric_prefix_: it registers its own metrics under it. */
    AdmissionGate admission_gate_;
};

} // namespace v3sim::storage

#endif // V3SIM_STORAGE_V3_SERVER_HH
