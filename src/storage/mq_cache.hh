/**
 * @file
 * Multi-Queue (MQ) replacement for the V3 server cache.
 *
 * The paper's V3 cache design cites the authors' own second-level
 * buffer-cache work (Zhou, Philbin, Li, "The Multi-Queue Replacement
 * Algorithm for Second Level Buffer Caches", USENIX ATC 2001). The
 * key observation: a storage server's cache sits *below* the
 * database's own buffer pool, so it sees accesses with weak recency
 * but meaningful frequency — plain LRU keeps the wrong blocks.
 *
 * MQ as implemented here, following the published algorithm:
 *  - m LRU queues Q0..Q(m-1); a block with access frequency f lives
 *    in queue min(log2(f), m-1);
 *  - on hit, frequency increments and the block moves to the tail of
 *    its (possibly higher) queue with expiry now + lifeTime;
 *  - Adjust(): when the block at the head of a queue expires, it
 *    demotes one queue down (amortized one check per access);
 *  - eviction takes the head of the lowest non-empty queue (skipping
 *    pinned frames);
 *  - a ghost FIFO Qout remembers the frequencies of recently evicted
 *    blocks so re-fetched blocks resume their old standing.
 */

#ifndef V3SIM_STORAGE_MQ_CACHE_HH
#define V3SIM_STORAGE_MQ_CACHE_HH

#include <cstdint>
#include <deque>
#include <list>
#include <vector>

#include "storage/block_cache.hh"

namespace v3sim::storage
{

/** MQ policy configuration. */
struct MqConfig
{
    /** Number of LRU queues (the paper's m; 8 covers f up to 2^7). */
    uint32_t queue_count = 8;

    /**
     * Accesses a block may sit idle before demotion. 0 means "use
     * the heuristic default" of 2x capacity accesses.
     */
    uint64_t life_time = 0;

    /**
     * Ghost-queue capacity as a multiple of cache capacity (the MQ
     * paper's Kout; it recommends on the order of the cache size).
     */
    double ghost_ratio = 2.0;
};

/** The Multi-Queue block cache. */
class MqCache : public BlockCache
{
  public:
    MqCache(sim::MemorySpace &memory, uint64_t block_size,
            uint64_t capacity_blocks, MqConfig config = {});

    std::optional<sim::Addr> lookupAndPin(CacheKey key) override;
    std::optional<sim::Addr> insertAndPin(CacheKey key) override;
    void unpin(CacheKey key) override;
    void invalidate(CacheKey key) override;
    void invalidateAll() override;
    bool contains(CacheKey key) const override;
    uint64_t residentBlocks() const override { return map_.size(); }

    uint64_t ghostSize() const { return ghost_map_.size(); }

  private:
    struct Entry
    {
        CacheKey key;
        uint64_t frame;
        uint32_t pins = 0;
        uint64_t freq = 1;
        uint64_t expire = 0;
        uint32_t queue = 0;
    };

    using QueueList = std::list<Entry>;

    /** Queue index for a frequency. */
    uint32_t queueFor(uint64_t freq) const;

    /** Demotes expired queue heads (amortized; one pass per call). */
    void adjust();

    /** Moves an entry to the tail of the queue its frequency maps
     *  to, refreshing its expiry. */
    void requeue(QueueList::iterator it);

    /** Evicts from the head of the lowest non-empty queue; returns
     *  the freed frame or nullopt if all entries are pinned. */
    std::optional<uint64_t> evictOne();

    /** Remembers an evicted block's frequency in the ghost queue. */
    void remember(CacheKey key, uint64_t freq);

    MqConfig config_;
    uint64_t life_time_;
    uint64_t now_ = 0; ///< access clock

    std::vector<QueueList> queues_;
    util::FlatMap<CacheKey, QueueList::iterator, CacheKeyHash>
        map_;
    std::vector<uint64_t> free_frames_;

    /** Ghost entries: key -> remembered frequency, FIFO-bounded. */
    util::FlatMap<CacheKey, uint64_t, CacheKeyHash> ghost_map_;
    std::deque<CacheKey> ghost_fifo_;
    uint64_t ghost_capacity_;
};

} // namespace v3sim::storage

#endif // V3SIM_STORAGE_MQ_CACHE_HH
