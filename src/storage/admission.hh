/**
 * @file
 * Overload control for the V3 request manager (DESIGN.md §12): a
 * bounded admission queue with per-tenant deficit-round-robin fair
 * queueing.
 *
 * The paper drives V3 with closed-loop OLTP workers, where offered
 * load self-limits. An open-loop tenant population does not: past
 * saturation, arrivals outpace service no matter how long the queue
 * grows, and an unbounded queue converts overload into unbounded
 * latency (and, through client retransmissions, into extra work —
 * congestion collapse). The admission gate makes the server shed the
 * excess instead: a fixed number of service slots bounds concurrency
 * inside the data path, a bounded queue absorbs bursts, and anything
 * beyond the bound is refused immediately with IoStatus::Busy so the
 * client fails fast rather than retransmitting.
 *
 * Fairness between tenants is deficit round robin (Shreedhar &
 * Varghese): each backlogged tenant holds a byte deficit, topped up
 * by a fixed quantum per scheduling visit, and may dispatch requests
 * while its deficit covers their cost. An aggressive tenant can fill
 * the queue bound, but cannot starve others of service slots: shares
 * converge to quantum-proportional regardless of arrival mix.
 *
 * This class is a *pure* data structure — no simulated time, no
 * coroutines, no randomness — so its invariants (depth bound,
 * exactly-once disposition, share convergence) are directly property-
 * testable. V3Server supplies the determinism discipline around it:
 * all offer()/next() calls happen in final-band passes over
 * contender sets ordered by content keys (DESIGN.md §8.3).
 */

#ifndef V3SIM_STORAGE_ADMISSION_HH
#define V3SIM_STORAGE_ADMISSION_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

namespace v3sim::storage
{

/** Admission-gate knobs (V3ServerConfig::admission). */
struct AdmissionConfig
{
    /** Master switch. Off by default: closed-loop experiments keep
     *  the paper's ungated pipeline (and their artifacts unchanged). */
    bool enabled = false;

    /** Requests concurrently inside the data path. Beyond this,
     *  arrivals queue. Bounds the server's internal concurrency the
     *  way request credits bound one connection's. */
    uint32_t service_slots = 24;

    /** Total queued (admitted-but-waiting) requests across all
     *  tenants. Arrivals beyond this are shed with IoStatus::Busy. */
    uint32_t max_queue_depth = 256;

    /** DRR byte quantum added to a backlogged tenant's deficit per
     *  scheduling visit. Must cover the largest request or a big
     *  request could starve its own tenant; clamped up to 1. */
    uint64_t drr_quantum = 128 * 1024;
};

/**
 * The gate itself: bounded FIFO-per-tenant queue, DRR across
 * tenants, fixed service slots. Tokens are caller-chosen request
 * identities; every token offered is disposed of exactly once —
 * returned as Admit/Shed from offer(), or later from next().
 */
class AdmissionQueue
{
  public:
    enum class Decision : uint8_t
    {
        Admit, ///< a service slot was free; proceed now
        Queue, ///< queued; the token will come back from next()
        Shed,  ///< queue bound hit; refuse with Busy
    };

    explicit AdmissionQueue(AdmissionConfig config);

    /**
     * One arrival of @p cost bytes from @p tenant. Takes a service
     * slot immediately when nothing is queued and a slot is free;
     * otherwise queues behind the tenant's backlog, or sheds at the
     * depth bound.
     */
    Decision offer(uint64_t tenant, uint64_t cost, uint64_t token);

    /**
     * Dispatches the next queued request into a free service slot,
     * chosen by DRR across backlogged tenants. Returns nothing when
     * slots are full or the queue is empty. Call repeatedly to fill
     * all free slots.
     */
    std::optional<uint64_t> next();

    /** A request dispatched earlier left the data path: frees its
     *  service slot. No-op at zero (crash() resets the gate while
     *  in-flight handlers still unwind). */
    void release();

    /** Drops all queued entries and zeroes slots/deficits (node
     *  crash: the waiters are woken as shed by the caller). */
    void reset();

    /** @name Introspection (tests, metrics) @{ */
    uint32_t queuedCount() const { return queued_; }
    uint32_t inServiceCount() const { return in_service_; }
    uint32_t
    queuedForTenant(uint64_t tenant) const
    {
        const auto it = tenants_.find(tenant);
        return it == tenants_.end()
                   ? 0
                   : static_cast<uint32_t>(it->second.items.size());
    }
    const AdmissionConfig &config() const { return config_; }
    /** @} */

  private:
    struct Item
    {
        uint64_t cost = 0;
        uint64_t token = 0;
    };

    /** One backlogged tenant; erased when its queue drains (DRR
     *  resets an idle flow's deficit — no credit hoarding). */
    struct TenantQ
    {
        std::deque<Item> items;
        uint64_t deficit = 0;
    };

    AdmissionConfig config_;
    /** Backlogged tenants, ordered by id: the DRR ring. Ordered
     *  iteration keeps the scan deterministic (DESIGN.md §8). */
    std::map<uint64_t, TenantQ> tenants_;
    /** DRR cursor: the ring position (tenant id) the next scan
     *  resumes from, via lower_bound. */
    uint64_t cursor_ = 0;
    uint32_t queued_ = 0;
    uint32_t in_service_ = 0;
};

} // namespace v3sim::storage

#endif // V3SIM_STORAGE_ADMISSION_HH
