#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace v3sim::util
{

// --- JsonWriter ------------------------------------------------------

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (need_comma_)
        out_ += ',';
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    stack_ += 'o';
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    stack_.pop_back();
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    stack_ += 'a';
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    stack_.pop_back();
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (need_comma_)
        out_ += ',';
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    need_comma_ = false;
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    separate();
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(double number_)
{
    separate();
    out_ += number(number_);
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t number_)
{
    separate();
    out_ += std::to_string(number_);
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t number_)
{
    separate();
    out_ += std::to_string(number_);
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view json)
{
    separate();
    out_ += json;
    need_comma_ = true;
    return *this;
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double value)
{
    if (!std::isfinite(value))
        return "null";
    // Integral values within the exact-double range print as
    // integers so counters stay counters in the artifact.
    if (value == std::floor(value) && std::fabs(value) < 9.0e15)
        return std::to_string(static_cast<int64_t>(value));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

// --- JsonValue parser ------------------------------------------------

namespace
{

struct Parser
{
    std::string_view text;
    size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) == word) {
            pos += word.size();
            return true;
        }
        return false;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return false;
                const char esc = text[pos++];
                switch (esc) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                    uint32_t code = 0;
                    if (!parseHex4(&code))
                        return false;
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        // Surrogate pair.
                        uint32_t low = 0;
                        if (!literal("\\u") || !parseHex4(&low) ||
                            low < 0xDC00 || low > 0xDFFF)
                            return false;
                        code = 0x10000 + ((code - 0xD800) << 10) +
                               (low - 0xDC00);
                    }
                    appendUtf8(out, code);
                    break;
                  }
                  default: return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control char
            } else {
                *out += c;
            }
        }
        return false; // unterminated
    }

    bool
    parseHex4(uint32_t *out)
    {
        if (pos + 4 > text.size())
            return false;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return false;
        }
        *out = v;
        return true;
    }

    static void
    appendUtf8(std::string *out, uint32_t code)
    {
        if (code < 0x80) {
            *out += static_cast<char>(code);
        } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            *out += static_cast<char>(0xF0 | (code >> 18));
            *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > 64)
            return false;
        skipWs();
        if (pos >= text.size())
            return false;
        const char c = text[pos];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"') {
            out->type = JsonValue::Type::String;
            return parseString(&out->string);
        }
        if (literal("true")) {
            out->type = JsonValue::Type::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->type = JsonValue::Type::Bool;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->type = JsonValue::Type::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        consume('{');
        out->type = JsonValue::Type::Object;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string name;
            if (!parseString(&name))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            JsonValue member;
            if (!parseValue(&member, depth + 1))
                return false;
            out->object.emplace(std::move(name), std::move(member));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        consume('[');
        out->type = JsonValue::Type::Array;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue element;
            if (!parseValue(&element, depth + 1))
                return false;
            out->array.push_back(std::move(element));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseNumber(JsonValue *out)
    {
        const size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return false;
        const std::string token(text.substr(start, pos - start));
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return false;
        out->type = JsonValue::Type::Number;
        out->number = v;
        return true;
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

std::optional<JsonValue>
JsonValue::parse(std::string_view text)
{
    Parser parser{text};
    JsonValue root;
    if (!parser.parseValue(&root, 0))
        return std::nullopt;
    parser.skipWs();
    if (parser.pos != text.size())
        return std::nullopt; // trailing garbage
    return root;
}

} // namespace v3sim::util
