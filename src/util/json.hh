/**
 * @file
 * Minimal JSON support for the bench artifact pipeline.
 *
 * JsonWriter is a streaming writer with automatic comma/colon
 * placement, full string escaping, and numeric formatting rules
 * suited to metrics export: integral doubles print as integers,
 * non-finite values print as null (JSON has no NaN/Inf).
 *
 * JsonValue is a small recursive-descent parser used by tests and
 * the quick_bench_smoke validator to prove emitted artifacts parse
 * and contain the required keys. It is not a general-purpose JSON
 * library; it favors strictness and small code over speed.
 */

#ifndef V3SIM_UTIL_JSON_HH
#define V3SIM_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace v3sim::util
{

/** Streaming JSON writer accumulating into a string. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(uint64_t number);
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /** Splices pre-rendered JSON in value position, verbatim. */
    JsonWriter &raw(std::string_view json);

    /** The document so far. */
    const std::string &str() const { return out_; }

    /** Escapes @p text per RFC 8259 (quotes not included). */
    static std::string escape(std::string_view text);

    /** Formats a double: integers without a fraction, non-finite as
     *  "null", everything else round-trippable shortest-ish form. */
    static std::string number(double value);

  private:
    /** Emits the separator a new value/key needs in this context. */
    void separate();

    std::string out_;
    /** One char per open container: 'o' object, 'a' array. */
    std::string stack_;
    bool need_comma_ = false;
    bool after_key_ = false;
};

/** Parsed JSON document (or subtree). */
struct JsonValue
{
    enum class Type : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /**
     * Parses a complete JSON document (trailing whitespace allowed,
     * trailing garbage rejected). @return nullopt on any syntax
     * error.
     */
    static std::optional<JsonValue> parse(std::string_view text);
};

} // namespace v3sim::util

#endif // V3SIM_UTIL_JSON_HH
