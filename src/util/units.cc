#include "units.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace v3sim::util
{

std::optional<uint64_t>
parseSize(const std::string &text)
{
    if (text.empty())
        return std::nullopt;

    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        return std::nullopt;

    uint64_t multiplier = 1;
    if (*end != '\0') {
        switch (std::toupper(static_cast<unsigned char>(*end))) {
          case 'K': multiplier = kKiB; break;
          case 'M': multiplier = kMiB; break;
          case 'G': multiplier = kGiB; break;
          default: return std::nullopt;
        }
        ++end;
        // Allow an optional trailing "B" / "iB".
        if (*end == 'i')
            ++end;
        if (*end == 'B' || *end == 'b')
            ++end;
        if (*end != '\0')
            return std::nullopt;
    }
    return value * multiplier;
}

std::string
formatSize(uint64_t bytes)
{
    char buf[32];
    if (bytes >= kGiB && bytes % kGiB == 0)
        std::snprintf(buf, sizeof(buf), "%lluG",
                      static_cast<unsigned long long>(bytes / kGiB));
    else if (bytes >= kMiB && bytes % kMiB == 0)
        std::snprintf(buf, sizeof(buf), "%lluM",
                      static_cast<unsigned long long>(bytes / kMiB));
    else if (bytes >= kKiB && bytes % kKiB == 0)
        std::snprintf(buf, sizeof(buf), "%lluK",
                      static_cast<unsigned long long>(bytes / kKiB));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

std::string
formatRateMBps(double bytes_per_second)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_second / 1e6);
    return buf;
}

std::string
formatUsecs(int64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f us",
                  static_cast<double>(ns) / 1e3);
    return buf;
}

std::string
formatMsecs(int64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  static_cast<double>(ns) / 1e6);
    return buf;
}

} // namespace v3sim::util
