/**
 * @file
 * Open-addressing hash map for simulator hot paths.
 *
 * std::unordered_map pays a hardware division (prime-modulo bucket
 * policy) plus a node-chain walk on every lookup; on the block-cache
 * paths those lookups are among the hottest instructions in the whole
 * simulator. FlatMap stores slots in one contiguous power-of-two
 * array with linear probing and backward-shift deletion (no
 * tombstones), so a lookup is a multiply, a mask, and a short linear
 * scan over adjacent memory.
 *
 * Deliberate restrictions, sized to the simulator's needs:
 *  - No iteration API. Hot-path maps must never be iterated: the
 *    slot order depends on insertion history, and model code walking
 *    it would tie simulation behavior to hash-table internals (a
 *    determinism hazard the simlint race detector exists to catch).
 *  - find() returns a pointer-like iterator that is invalidated by
 *    any insertion or erasure; call sites use it immediately.
 *  - The mapped type needs only default construction and move
 *    assignment (move-only values like unique_ptr work).
 */

#ifndef V3SIM_UTIL_FLAT_MAP_HH
#define V3SIM_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace v3sim::util
{

template <typename K, typename V, typename Hash>
class FlatMap
{
  public:
    /** Slot layout; exposed so find() results read like pair
     *  iterators (`it->first`, `it->second`). */
    struct Slot
    {
        K first{};
        V second{};
        bool used = false;
    };

    using iterator = Slot *;
    using const_iterator = const Slot *;

    iterator end() { return nullptr; }
    const_iterator end() const { return nullptr; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    iterator
    find(const K &key)
    {
        if (size_ == 0)
            return nullptr;
        std::size_t i = indexOf(key);
        while (slots_[i].used) {
            if (slots_[i].first == key)
                return &slots_[i];
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    const_iterator
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    V &
    operator[](const K &key)
    {
        maybeGrow();
        std::size_t i = indexOf(key);
        while (slots_[i].used) {
            if (slots_[i].first == key)
                return slots_[i].second;
            i = (i + 1) & mask_;
        }
        slots_[i].used = true;
        slots_[i].first = key;
        ++size_;
        return slots_[i].second;
    }

    void
    erase(iterator it)
    {
        eraseAt(static_cast<std::size_t>(it - slots_.data()));
    }

    std::size_t
    erase(const K &key)
    {
        iterator it = find(key);
        if (it == nullptr)
            return 0;
        erase(it);
        return 1;
    }

    void
    clear()
    {
        for (Slot &slot : slots_) {
            if (slot.used) {
                slot.first = K{};
                slot.second = V{};
                slot.used = false;
            }
        }
        size_ = 0;
    }

  private:
    /** Fibonacci-fold the user hash so the masked low bits depend on
     *  every input bit (the user hash may be a raw identity-ish
     *  value, which linear probing would cluster on). */
    std::size_t
    indexOf(const K &key) const
    {
        std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
        h *= 0x9E3779B97F4A7C15ULL;
        h ^= h >> 32;
        return static_cast<std::size_t>(h) & mask_;
    }

    void
    maybeGrow()
    {
        if (slots_.empty()) {
            rehash(kMinSlots);
            return;
        }
        // Grow at 3/4 load so probe sequences stay short.
        if ((size_ + 1) * 4 >= slots_.size() * 3)
            rehash(slots_.size() * 2);
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(new_slots);
        mask_ = new_slots - 1;
        for (Slot &slot : old) {
            if (!slot.used)
                continue;
            std::size_t i = indexOf(slot.first);
            while (slots_[i].used)
                i = (i + 1) & mask_;
            slots_[i].used = true;
            slots_[i].first = slot.first;
            slots_[i].second = std::move(slot.second);
        }
    }

    /** Backward-shift deletion: pull displaced successors into the
     *  hole instead of leaving a tombstone, so probe chains never
     *  grow with churn. A successor at j may move into the hole at i
     *  iff its ideal slot lies at or before i in probe order, i.e.
     *  its probe distance covers the hole. */
    void
    eraseAt(std::size_t i)
    {
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            if (!slots_[j].used)
                break;
            const std::size_t ideal = indexOf(slots_[j].first);
            if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
                slots_[i].first = slots_[j].first;
                slots_[i].second = std::move(slots_[j].second);
                i = j;
            }
        }
        slots_[i].first = K{};
        slots_[i].second = V{};
        slots_[i].used = false;
        --size_;
    }

    static constexpr std::size_t kMinSlots = 64;

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace v3sim::util

#endif // V3SIM_UTIL_FLAT_MAP_HH
