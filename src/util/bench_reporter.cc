#include "bench_reporter.hh"

#include <cstdio>
#include <cstring>

#include "util/json.hh"

namespace v3sim::util
{

BenchReporter::BenchReporter(std::string name, int argc, char **argv)
    : name_(std::move(name))
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick_ = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 < argc) {
                path_ = argv[++i];
            } else {
                std::fprintf(stderr,
                             "BenchReporter: --json needs a path\n");
                bad_args_ = true;
            }
        }
    }
}

void
BenchReporter::note(const std::string &key, const std::string &text)
{
    notes_.emplace_back(key, text);
}

void
BenchReporter::beginRow()
{
    rows_.emplace_back();
}

void
BenchReporter::col(const std::string &key, double value)
{
    if (rows_.empty())
        beginRow();
    rows_.back().emplace_back(key, Cell(value));
}

void
BenchReporter::col(const std::string &key, int64_t value)
{
    if (rows_.empty())
        beginRow();
    rows_.back().emplace_back(key, Cell(value));
}

void
BenchReporter::col(const std::string &key, uint64_t value)
{
    if (rows_.empty())
        beginRow();
    rows_.back().emplace_back(key, Cell(value));
}

void
BenchReporter::col(const std::string &key, const std::string &value)
{
    if (rows_.empty())
        beginRow();
    rows_.back().emplace_back(key, Cell(value));
}

void
BenchReporter::attachMetricsJson(std::string json)
{
    metrics_json_ = std::move(json);
}

std::string
BenchReporter::render() const
{
    JsonWriter w;
    w.beginObject();
    w.key("bench").value(name_);
    w.key("schema").value(int64_t{1});
    w.key("quick").value(quick_);
    w.key("notes").beginObject();
    for (const auto &[key, text] : notes_)
        w.key(key).value(text);
    w.endObject();
    w.key("rows").beginArray();
    for (const Row &row : rows_) {
        w.beginObject();
        for (const auto &[key, cell] : row) {
            w.key(key);
            std::visit([&w](const auto &v) { w.value(v); }, cell);
        }
        w.endObject();
    }
    w.endArray();
    if (!metrics_json_.empty())
        w.key("metrics").raw(metrics_json_);
    w.endObject();
    return w.str();
}

bool
BenchReporter::write() const
{
    if (bad_args_)
        return false;
    if (path_.empty())
        return true;
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "BenchReporter: cannot open %s\n",
                     path_.c_str());
        return false;
    }
    const std::string doc = render();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
        std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok)
        std::fprintf(stderr, "BenchReporter: short write to %s\n",
                     path_.c_str());
    return ok;
}

} // namespace v3sim::util
