#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace v3sim::util
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TextTable::num(int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            if (c == 0) {
                out << cell
                    << std::string(widths[c] - cell.size(), ' ');
            } else {
                out << "  "
                    << std::string(widths[c] - cell.size(), ' ')
                    << cell;
            }
        }
        out << '\n';
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace v3sim::util
