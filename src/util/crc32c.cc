#include "crc32c.hh"

#include <array>

namespace v3sim::util
{

namespace
{

/** 0x1EDC6F41 reflected (CRC32C/Castagnoli). */
constexpr uint32_t kPolynomial = 0x82F63B78u;

constexpr std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
        table[i] = crc;
    }
    return table;
}

constexpr std::array<uint32_t, 256> kTable = makeTable();

} // namespace

uint32_t
crc32c(const void *data, size_t len, uint32_t seed)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
    return ~crc;
}

} // namespace v3sim::util
