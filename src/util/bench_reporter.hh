/**
 * @file
 * Shared bench harness: one BenchReporter per fig/abl bench binary.
 *
 * Every figure/ablation bench keeps printing its paper-style text
 * table, and additionally emits a machine-readable artifact when
 * invoked with `--json <path>` — the BENCH_<name>.json perf
 * trajectory every future PR measures itself against. The reporter
 * also parses `--quick`, which benches use to shrink iteration
 * counts so a smoke test can exercise the full export path in
 * seconds.
 *
 * Artifact shape (schema version 1):
 *   {
 *     "bench": "fig03",
 *     "schema": 1,
 *     "quick": false,
 *     "notes": { "anchors": "..." },
 *     "rows": [ { "size": 512, "kdsa_ms": 0.123, ... }, ... ],
 *     "metrics": { "<dotted path>": { "kind": ..., ... }, ... }
 *   }
 *
 * "rows" mirrors the printed table; "metrics" is a full
 * sim::MetricRegistry snapshot (attached pre-rendered via
 * attachMetricsJson so util does not depend on sim).
 */

#ifndef V3SIM_UTIL_BENCH_REPORTER_HH
#define V3SIM_UTIL_BENCH_REPORTER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace v3sim::util
{

/** Collects one bench run's rows and writes the JSON artifact. */
class BenchReporter
{
  public:
    /**
     * @param name artifact name: writes BENCH_<name>.json content.
     * Parses argv for `--json <path>` and `--quick`; unknown
     * arguments are ignored so benches can grow their own flags.
     */
    BenchReporter(std::string name, int argc, char **argv);

    const std::string &name() const { return name_; }

    /** True when --quick was given: benches shrink their work. */
    bool quick() const { return quick_; }

    /** True when --json was given. */
    bool jsonRequested() const { return !path_.empty(); }

    /** Free-form metadata (anchors, configuration notes). */
    void note(const std::string &key, const std::string &text);

    /** @name Result rows (mirror the printed table) @{ */
    void beginRow();
    void col(const std::string &key, double value);
    void col(const std::string &key, int64_t value);
    void col(const std::string &key, uint64_t value);
    void col(const std::string &key, const std::string &value);
    /** @} */

    /** Attaches a pre-rendered JSON object (typically
     *  sim::MetricRegistry::toJson()) under "metrics". */
    void attachMetricsJson(std::string json);

    /** Renders the artifact document (for tests / inspection). */
    std::string render() const;

    /**
     * Writes the artifact to the --json path. No-op success when
     * --json was not given; prints to stderr and returns false on
     * I/O failure or a dangling `--json` with no path.
     */
    bool write() const;

  private:
    using Cell = std::variant<double, int64_t, uint64_t, std::string>;
    using Row = std::vector<std::pair<std::string, Cell>>;

    std::string name_;
    std::string path_;
    bool quick_ = false;
    bool bad_args_ = false;
    std::vector<std::pair<std::string, std::string>> notes_;
    std::vector<Row> rows_;
    std::string metrics_json_;
};

} // namespace v3sim::util

#endif // V3SIM_UTIL_BENCH_REPORTER_HH
