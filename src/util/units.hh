/**
 * @file
 * Size/time unit helpers shared across the simulator.
 *
 * Sizes are plain byte counts; parsing accepts the "512", "8K", "4M",
 * "1G" forms the paper uses for I/O request sizes. Formatting renders
 * byte counts and rates the way the paper's figures label their axes.
 */

#ifndef V3SIM_UTIL_UNITS_HH
#define V3SIM_UTIL_UNITS_HH

#include <cstdint>
#include <optional>
#include <string>

namespace v3sim::util
{

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;
constexpr uint64_t kGiB = 1024 * kMiB;

/**
 * Parses a size string such as "512", "8K", "64K", "4M", "2G".
 * @return the byte count, or std::nullopt on malformed input.
 */
std::optional<uint64_t> parseSize(const std::string &text);

/** Formats a byte count compactly: 512, 8K, 64K, 1M, 2G. */
std::string formatSize(uint64_t bytes);

/** Formats a byte rate as MB/s with one decimal (decimal megabytes). */
std::string formatRateMBps(double bytes_per_second);

/** Formats nanoseconds as microseconds with one decimal. */
std::string formatUsecs(int64_t ns);

/** Formats nanoseconds as milliseconds with three decimals. */
std::string formatMsecs(int64_t ns);

} // namespace v3sim::util

#endif // V3SIM_UTIL_UNITS_HH
