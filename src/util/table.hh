/**
 * @file
 * Plain-text table printer used by the benchmark harnesses.
 *
 * Every figure/table bench prints its series as an aligned text table
 * so the output can be diffed against EXPERIMENTS.md. Columns are
 * right-aligned except the first, which is left-aligned (row label).
 */

#ifndef V3SIM_UTIL_TABLE_HH
#define V3SIM_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace v3sim::util
{

/** Accumulates rows of strings and prints them column-aligned. */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends one row; missing cells render empty. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats a double with @p decimals digits. */
    static std::string num(double value, int decimals = 2);

    /** Convenience: formats an integer. */
    static std::string num(int64_t value);

    /** Renders the table (headers, separator, rows). */
    std::string render() const;

    /** Renders and writes to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace v3sim::util

#endif // V3SIM_UTIL_TABLE_HH
