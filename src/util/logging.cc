#include "logging.hh"

#include <cstdio>

namespace v3sim::util
{

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

namespace
{

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
Logger::emit(LogLevel level, const std::string &component,
             const std::string &message)
{
    if (!enabled(level))
        return;
    if (timeSource_) {
        const int64_t ns = timeSource_();
        std::fprintf(stderr, "[%12.3f us] %-5s %-10s %s\n",
                     static_cast<double>(ns) / 1e3, levelName(level),
                     component.c_str(), message.c_str());
    } else {
        std::fprintf(stderr, "[         ---] %-5s %-10s %s\n",
                     levelName(level), component.c_str(),
                     message.c_str());
    }
}

} // namespace v3sim::util
