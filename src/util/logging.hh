/**
 * @file
 * Lightweight leveled logging for the simulator.
 *
 * Log lines are prefixed with the current simulated time when a time
 * source has been installed (the simulation engine installs itself on
 * construction). Logging is intentionally minimal: a global level, a
 * printf-like call site, and zero cost when the level is disabled.
 */

#ifndef V3SIM_UTIL_LOGGING_HH
#define V3SIM_UTIL_LOGGING_HH

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace v3sim::util
{

/** Severity levels, ordered from most to least verbose. */
enum class LogLevel : int
{
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
    Off = 5,
};

/**
 * Process-wide logging configuration.
 *
 * The simulation engine registers a time source so log lines carry
 * simulated timestamps; outside a simulation the prefix is omitted.
 */
class Logger
{
  public:
    /** Returns the process-wide logger. */
    static Logger &instance();

    /** Sets the minimum level that will be emitted. */
    void setLevel(LogLevel level) { level_ = level; }

    /** Returns the current minimum level. */
    LogLevel level() const { return level_; }

    /** Returns true if @p level messages would be emitted. */
    bool enabled(LogLevel level) const { return level >= level_; }

    /**
     * Installs a simulated-time source used to prefix log lines.
     * Pass nullptr to clear. Returns the previous source.
     */
    std::function<int64_t()>
    setTimeSource(std::function<int64_t()> source)
    {
        auto prev = std::move(timeSource_);
        timeSource_ = std::move(source);
        return prev;
    }

    /** Emits one formatted line (no trailing newline required). */
    void emit(LogLevel level, const std::string &component,
              const std::string &message);

  private:
    Logger() = default;

    LogLevel level_ = LogLevel::Warn;
    std::function<int64_t()> timeSource_;
};

/** Stream-style log statement builder used by the V3LOG macro. */
class LogStatement
{
  public:
    LogStatement(LogLevel level, std::string component)
        : level_(level), component_(std::move(component))
    {}

    ~LogStatement()
    {
        Logger::instance().emit(level_, component_, stream_.str());
    }

    template <typename T>
    LogStatement &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
};

} // namespace v3sim::util

/**
 * Log macro: V3LOG(Info, "dsa") << "credits exhausted, queueing";
 * The stream expression is only evaluated when the level is enabled.
 */
#define V3LOG(level, component)                                           \
    if (!::v3sim::util::Logger::instance().enabled(                       \
            ::v3sim::util::LogLevel::level)) {                            \
    } else                                                                \
        ::v3sim::util::LogStatement(::v3sim::util::LogLevel::level,       \
                                    (component))

#endif // V3SIM_UTIL_LOGGING_HH
