/**
 * @file
 * CRC32C (Castagnoli) — the end-to-end digest of the integrity
 * subsystem.
 *
 * The polynomial is the one iSCSI standardized for its header and
 * data digests (RFC 3720), the closest real-world analogue to what a
 * VI-era block protocol would have used for end-to-end protection:
 * the link-level CRC only covers one hop and is checked (and
 * discarded) by the NIC, so a bit flipped in a NIC buffer, a DMA
 * engine or a staging copy is invisible to it. DSA therefore carries
 * its own CRC32C digests end to end (dsa/protocol.hh) and the disk
 * path stamps blocks with the same function.
 *
 * Plain table-driven software implementation: the simulator charges
 * digest *time* through the cost models (DsaCosts, V3ServerConfig);
 * this code only needs to be correct and deterministic.
 */

#ifndef V3SIM_UTIL_CRC32C_HH
#define V3SIM_UTIL_CRC32C_HH

#include <cstddef>
#include <cstdint>

namespace v3sim::util
{

/**
 * Extends @p seed over @p len bytes at @p data. Pass the previous
 * return value as @p seed to checksum discontiguous pieces as one
 * logical stream; start with 0.
 */
uint32_t crc32c(const void *data, size_t len, uint32_t seed = 0);

} // namespace v3sim::util

#endif // V3SIM_UTIL_CRC32C_HH
