#include "volume.hh"

#include <algorithm>
#include <cassert>

namespace v3sim::disk
{

sim::Task<bool>
SingleDiskVolume::read(uint64_t offset, uint64_t len,
                       sim::MemorySpace &mem, sim::Addr addr)
{
    if (offset + len > capacity())
        co_return false;
    co_await disk_.read(offset, len);
    co_return disk_.store().readInto(offset, len, mem, addr);
}

sim::Task<bool>
SingleDiskVolume::write(uint64_t offset, uint64_t len,
                        const sim::MemorySpace &mem, sim::Addr addr)
{
    if (offset + len > capacity())
        co_return false;
    co_await disk_.write(offset, len);
    // commitWrite rather than store().writeFrom: the disk applies the
    // torn-write fault (if armed) at the moment data hits the platter.
    co_return disk_.commitWrite(offset, len, mem, addr);
}

ConcatVolume::ConcatVolume(std::vector<Volume *> children)
    : children_(std::move(children)), capacity_(0)
{
    assert(!children_.empty());
    for (Volume *child : children_) {
        starts_.push_back(capacity_);
        capacity_ += child->capacity();
    }
}

std::pair<size_t, uint64_t>
ConcatVolume::locate(uint64_t offset) const
{
    const auto it =
        std::upper_bound(starts_.begin(), starts_.end(), offset);
    const size_t index =
        static_cast<size_t>(it - starts_.begin()) - 1;
    return {index, offset - starts_[index]};
}

sim::Task<bool>
ConcatVolume::read(uint64_t offset, uint64_t len, sim::MemorySpace &mem,
                   sim::Addr addr)
{
    if (offset + len > capacity_)
        co_return false;
    bool ok = true;
    uint64_t done = 0;
    while (done < len) {
        const auto [index, child_off] = locate(offset + done);
        const uint64_t chunk =
            std::min(len - done,
                     children_[index]->capacity() - child_off);
        if (!co_await children_[index]->read(child_off, chunk, mem,
                                             addr + done)) {
            ok = false;
        }
        done += chunk;
    }
    co_return ok;
}

sim::Task<bool>
ConcatVolume::write(uint64_t offset, uint64_t len,
                    const sim::MemorySpace &mem, sim::Addr addr)
{
    if (offset + len > capacity_)
        co_return false;
    bool ok = true;
    uint64_t done = 0;
    while (done < len) {
        const auto [index, child_off] = locate(offset + done);
        const uint64_t chunk =
            std::min(len - done,
                     children_[index]->capacity() - child_off);
        if (!co_await children_[index]->write(child_off, chunk, mem,
                                              addr + done)) {
            ok = false;
        }
        done += chunk;
    }
    co_return ok;
}

bool
ConcatVolume::corrupt(uint64_t offset, uint64_t len) const
{
    if (offset + len > capacity_)
        return false;
    uint64_t done = 0;
    while (done < len) {
        const auto [index, child_off] = locate(offset + done);
        const uint64_t chunk =
            std::min(len - done,
                     children_[index]->capacity() - child_off);
        if (children_[index]->corrupt(child_off, chunk))
            return true;
        done += chunk;
    }
    return false;
}

StripeVolume::StripeVolume(std::vector<Volume *> children,
                           uint64_t stripe_unit)
    : children_(std::move(children)), stripe_unit_(stripe_unit)
{
    assert(!children_.empty());
    assert(stripe_unit_ > 0);
}

uint64_t
StripeVolume::capacity() const
{
    uint64_t min_child = UINT64_MAX;
    for (const Volume *child : children_)
        min_child = std::min(min_child, child->capacity());
    // Whole stripes only.
    const uint64_t stripes = min_child / stripe_unit_;
    return stripes * stripe_unit_ * children_.size();
}

sim::Task<bool>
StripeVolume::run(uint64_t offset, uint64_t len, sim::MemorySpace *mem,
                  sim::Addr addr, bool is_write)
{
    if (offset + len > capacity())
        co_return false;

    sim::WaitGroup group;
    bool all_ok = true;

    // Split into per-stripe-unit chunks and issue them all at once;
    // chunks on different children proceed in parallel.
    uint64_t done = 0;
    while (done < len) {
        const uint64_t pos = offset + done;
        const uint64_t stripe_index = pos / stripe_unit_;
        const uint64_t within = pos % stripe_unit_;
        const size_t child =
            static_cast<size_t>(stripe_index % children_.size());
        const uint64_t child_off =
            (stripe_index / children_.size()) * stripe_unit_ + within;
        const uint64_t chunk =
            std::min(len - done, stripe_unit_ - within);

        group.add();
        sim::spawn([](Volume *target, uint64_t off, uint64_t n,
                      sim::MemorySpace *space, sim::Addr a,
                      bool write_op, sim::WaitGroup &g,
                      bool &ok) -> sim::Task<> {
            const bool result =
                write_op ? co_await target->write(off, n, *space, a)
                         : co_await target->read(off, n, *space, a);
            if (!result)
                ok = false;
            g.done();
        }(children_[child], child_off, chunk, mem, addr + done,
          is_write, group, all_ok));

        done += chunk;
    }

    co_await group.wait();
    co_return all_ok;
}

sim::Task<bool>
StripeVolume::read(uint64_t offset, uint64_t len, sim::MemorySpace &mem,
                   sim::Addr addr)
{
    return run(offset, len, &mem, addr, false);
}

sim::Task<bool>
StripeVolume::write(uint64_t offset, uint64_t len,
                    const sim::MemorySpace &mem, sim::Addr addr)
{
    // The const_cast is confined here: write paths only read from
    // @p mem, but the shared fan-out helper uses one pointer type.
    return run(offset, len, const_cast<sim::MemorySpace *>(&mem), addr,
               true);
}

bool
StripeVolume::corrupt(uint64_t offset, uint64_t len) const
{
    if (offset + len > capacity())
        return false;
    uint64_t done = 0;
    while (done < len) {
        const uint64_t pos = offset + done;
        const uint64_t stripe_index = pos / stripe_unit_;
        const uint64_t within = pos % stripe_unit_;
        const size_t child =
            static_cast<size_t>(stripe_index % children_.size());
        const uint64_t child_off =
            (stripe_index / children_.size()) * stripe_unit_ + within;
        const uint64_t chunk =
            std::min(len - done, stripe_unit_ - within);
        if (children_[child]->corrupt(child_off, chunk))
            return true;
        done += chunk;
    }
    return false;
}

MirrorVolume::MirrorVolume(std::vector<Volume *> children)
    : children_(std::move(children))
{
    assert(!children_.empty());
}

uint64_t
MirrorVolume::capacity() const
{
    uint64_t min_child = UINT64_MAX;
    for (const Volume *child : children_)
        min_child = std::min(min_child, child->capacity());
    return min_child;
}

sim::Task<bool>
MirrorVolume::read(uint64_t offset, uint64_t len, sim::MemorySpace &mem,
                   sim::Addr addr)
{
    // Round-robin across replicas to spread the read load.
    const size_t child = next_read_;
    next_read_ = (next_read_ + 1) % children_.size();
    return children_[child]->read(offset, len, mem, addr);
}

sim::Task<bool>
MirrorVolume::write(uint64_t offset, uint64_t len,
                    const sim::MemorySpace &mem, sim::Addr addr)
{
    sim::WaitGroup group;
    bool all_ok = true;
    for (Volume *child : children_) {
        group.add();
        sim::spawn([](Volume *target, uint64_t off, uint64_t n,
                      const sim::MemorySpace &space, sim::Addr a,
                      sim::WaitGroup &g, bool &ok) -> sim::Task<> {
            if (!co_await target->write(off, n, space, a))
                ok = false;
            g.done();
        }(child, offset, len, mem, addr, group, all_ok));
    }
    co_await group.wait();
    co_return all_ok;
}

bool
MirrorVolume::corrupt(uint64_t offset, uint64_t len) const
{
    for (const Volume *child : children_) {
        if (child->corrupt(offset, len))
            return true;
    }
    return false;
}

} // namespace v3sim::disk
