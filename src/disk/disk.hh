/**
 * @file
 * One physical disk: mechanism timing, command queue, and data store.
 *
 * The disk serves one command at a time. Queued commands are ordered
 * FIFO or C-LOOK (elevator); service time comes from the DiskSpec's
 * seek/rotation/transfer model with the head position tracked across
 * commands, so sequential streams (the database log) are naturally
 * fast and random OLTP I/O is naturally ~5-10 ms.
 *
 * Data is really stored (sector-granular sparse store) unless the
 * attached store is phantom, enabling end-to-end integrity tests
 * through client -> VI -> V3 cache -> disk and back.
 */

#ifndef V3SIM_DISK_DISK_HH
#define V3SIM_DISK_DISK_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "disk/disk_spec.hh"
#include "sim/memory.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "vi/fault_targets.hh"

namespace v3sim::disk
{

/** Queue scheduling policy. */
enum class SchedPolicy : uint8_t
{
    Fifo,
    Elevator, ///< C-LOOK: ascending sweep, wrap to lowest
};

/** Sector-granular sparse data store backing one disk. */
class DiskStore
{
  public:
    static constexpr uint64_t kSectorSize = 512;

    explicit DiskStore(bool phantom) : phantom_(phantom) {}

    bool phantom() const { return phantom_; }

    /** Copies [offset, offset+len) of disk content into host memory.
     *  Unwritten sectors read as zeros. Requires sector alignment. */
    bool readInto(uint64_t offset, uint64_t len,
                  sim::MemorySpace &mem, sim::Addr addr) const;

    /** Copies host memory into [offset, offset+len) of disk content.
     *  Requires sector alignment. Overwriting a sector clears any
     *  corruption mark on it (fresh data is good data). */
    bool writeFrom(uint64_t offset, uint64_t len,
                   const sim::MemorySpace &mem, sim::Addr addr);

    /**
     * Fault injection: silently damages every sector overlapping
     * [offset, offset+len). Real sectors get a byte flipped so reads
     * return genuinely different data; phantom stores track the mark
     * alone. Works on unwritten sectors too (they read back nonzero).
     */
    void markCorrupt(uint64_t offset, uint64_t len);

    /** True when any sector overlapping [offset, offset+len) carries
     *  a corruption mark. This is the *oracle* view — real software
     *  only learns it by checksumming what readInto returns. */
    bool rangeCorrupt(uint64_t offset, uint64_t len) const;

    size_t sectorCount() const { return sectors_.size(); }

    /** Sectors currently marked corrupt (oracle view). */
    size_t corruptSectorCount() const { return corrupt_sectors_.size(); }

  private:
    using Sector = std::array<uint8_t, kSectorSize>;

    bool phantom_;
    std::unordered_map<uint64_t, Sector> sectors_;
    /** Sector indices damaged by markCorrupt and not yet rewritten. */
    std::unordered_set<uint64_t> corrupt_sectors_;
};

/** One spindle with its command queue. Implements the injector's
 *  media-fault interface: latent sector errors and torn writes. */
class Disk : public vi::MediaFaultTarget
{
  public:
    Disk(sim::Simulation &sim, DiskSpec spec, sim::Rng rng,
         std::string name = "disk",
         SchedPolicy policy = SchedPolicy::Elevator,
         bool phantom_store = false);

    Disk(const Disk &) = delete;
    Disk &operator=(const Disk &) = delete;

    const DiskSpec &spec() const { return spec_; }
    const std::string &name() const { return name_; }
    DiskStore &store() { return store_; }
    const DiskStore &store() const { return store_; }

    /**
     * Submits a command; @p done fires when the mechanism finishes.
     * Data movement (if any) is the caller's business via store().
     */
    void submit(uint64_t offset, uint64_t len, bool is_write,
                std::function<void()> done);

    /** Awaitable read: mechanism timing only. */
    sim::Task<> read(uint64_t offset, uint64_t len);

    /** Awaitable write. */
    sim::Task<> write(uint64_t offset, uint64_t len);

    /**
     * Commits data to the store after the mechanism finished — the
     * data half of a volume write. Equivalent to store().writeFrom
     * except that the torn-write fault (if armed) may leave the tail
     * sectors of the range corrupt, exactly as a power cut between
     * platter sectors would.
     */
    bool commitWrite(uint64_t offset, uint64_t len,
                     const sim::MemorySpace &mem, sim::Addr addr);

    /** @name vi::MediaFaultTarget @{ */
    void injectLatentError(uint64_t offset, uint64_t len) override;
    void setTornWriteRate(double p) override;
    /** @} */

    size_t queueDepth() const { return queue_.size(); }
    bool busy() const { return busy_; }

    /** @name Statistics @{ */
    uint64_t completedCount() const { return completed_.value(); }
    const sim::Sampler &serviceStats() const { return service_stats_.raw(); }
    const sim::Sampler &latencyStats() const { return latency_stats_.raw(); }
    uint64_t latentErrorCount() const { return latent_errors_.value(); }
    uint64_t tornWriteCount() const { return torn_writes_.value(); }
    double utilization() const;
    void resetStats();
    /** @} */

  private:
    struct Command
    {
        uint64_t offset;
        uint64_t len;
        bool is_write;
        sim::Tick enqueued;
        std::function<void()> done;
    };

    /** Deterministic order for same-priority commands (arrival tick,
     *  then offset/shape — never queue position, which same-tick
     *  races make unspecified). */
    static bool commandBefore(const Command &a, const Command &b);

    /** Picks the next command index per the scheduling policy. */
    size_t pickNext();

    /** Schedules a zero-delay service-start pop (coalesced), so every
     *  same-tick arrival is queued before the pick. */
    void scheduleStart();

    void startNext();
    sim::Tick serviceTime(const Command &cmd);

    sim::Simulation &sim_;
    DiskSpec spec_;
    sim::Rng rng_; ///< mechanism timing only — never faults
    std::string name_;
    SchedPolicy policy_;
    DiskStore store_;

    double torn_write_rate_ = 0.0;
    /** Forked lazily on the first setTornWriteRate(>0): the timing
     *  stream above must stay untouched and an unarmed disk must not
     *  consume an RNG stream, or arming faults anywhere would perturb
     *  every fault-free run. */
    std::optional<sim::Rng> torn_rng_;

    std::deque<Command> queue_;
    bool busy_ = false;
    bool start_scheduled_ = false;
    uint64_t head_pos_ = 0; ///< byte offset of the head

    /// Registry path prefix ("disk.<name>", uniquified); must precede
    /// the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::CounterHandle completed_;
    sim::SamplerHandle service_stats_; ///< mechanism time per command (ns)
    sim::SamplerHandle latency_stats_; ///< queue wait + service (ns)
    sim::CounterHandle latent_errors_; ///< injected latent sector errors
    sim::CounterHandle torn_writes_;   ///< writes the torn fault damaged
    sim::TimeWeighted busy_integral_;
};

} // namespace v3sim::disk

#endif // V3SIM_DISK_DISK_HH
