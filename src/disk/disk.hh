/**
 * @file
 * One physical disk: mechanism timing, command queue, and data store.
 *
 * The disk serves one command at a time. Queued commands are ordered
 * FIFO or C-LOOK (elevator); service time comes from the DiskSpec's
 * seek/rotation/transfer model with the head position tracked across
 * commands, so sequential streams (the database log) are naturally
 * fast and random OLTP I/O is naturally ~5-10 ms.
 *
 * Data is really stored (sector-granular sparse store) unless the
 * attached store is phantom, enabling end-to-end integrity tests
 * through client -> VI -> V3 cache -> disk and back.
 */

#ifndef V3SIM_DISK_DISK_HH
#define V3SIM_DISK_DISK_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "disk/disk_spec.hh"
#include "sim/memory.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace v3sim::disk
{

/** Queue scheduling policy. */
enum class SchedPolicy : uint8_t
{
    Fifo,
    Elevator, ///< C-LOOK: ascending sweep, wrap to lowest
};

/** Sector-granular sparse data store backing one disk. */
class DiskStore
{
  public:
    static constexpr uint64_t kSectorSize = 512;

    explicit DiskStore(bool phantom) : phantom_(phantom) {}

    bool phantom() const { return phantom_; }

    /** Copies [offset, offset+len) of disk content into host memory.
     *  Unwritten sectors read as zeros. Requires sector alignment. */
    bool readInto(uint64_t offset, uint64_t len,
                  sim::MemorySpace &mem, sim::Addr addr) const;

    /** Copies host memory into [offset, offset+len) of disk content.
     *  Requires sector alignment. */
    bool writeFrom(uint64_t offset, uint64_t len,
                   const sim::MemorySpace &mem, sim::Addr addr);

    size_t sectorCount() const { return sectors_.size(); }

  private:
    using Sector = std::array<uint8_t, kSectorSize>;

    bool phantom_;
    std::unordered_map<uint64_t, Sector> sectors_;
};

/** One spindle with its command queue. */
class Disk
{
  public:
    Disk(sim::Simulation &sim, DiskSpec spec, sim::Rng rng,
         std::string name = "disk",
         SchedPolicy policy = SchedPolicy::Elevator,
         bool phantom_store = false);

    Disk(const Disk &) = delete;
    Disk &operator=(const Disk &) = delete;

    const DiskSpec &spec() const { return spec_; }
    const std::string &name() const { return name_; }
    DiskStore &store() { return store_; }

    /**
     * Submits a command; @p done fires when the mechanism finishes.
     * Data movement (if any) is the caller's business via store().
     */
    void submit(uint64_t offset, uint64_t len, bool is_write,
                std::function<void()> done);

    /** Awaitable read: mechanism timing only. */
    sim::Task<> read(uint64_t offset, uint64_t len);

    /** Awaitable write. */
    sim::Task<> write(uint64_t offset, uint64_t len);

    size_t queueDepth() const { return queue_.size(); }
    bool busy() const { return busy_; }

    /** @name Statistics @{ */
    uint64_t completedCount() const { return completed_.value(); }
    const sim::Sampler &serviceStats() const { return service_stats_; }
    const sim::Sampler &latencyStats() const { return latency_stats_; }
    double utilization() const;
    void resetStats();
    /** @} */

  private:
    struct Command
    {
        uint64_t offset;
        uint64_t len;
        bool is_write;
        sim::Tick enqueued;
        std::function<void()> done;
    };

    /** Picks the next command index per the scheduling policy. */
    size_t pickNext();

    void startNext();
    sim::Tick serviceTime(const Command &cmd);

    sim::Simulation &sim_;
    DiskSpec spec_;
    sim::Rng rng_;
    std::string name_;
    SchedPolicy policy_;
    DiskStore store_;

    std::deque<Command> queue_;
    bool busy_ = false;
    uint64_t head_pos_ = 0; ///< byte offset of the head

    /// Registry path prefix ("disk.<name>", uniquified); must precede
    /// the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::Counter &completed_;
    sim::Sampler &service_stats_; ///< mechanism time per command (ns)
    sim::Sampler &latency_stats_; ///< queue wait + service (ns)
    sim::TimeWeighted busy_integral_;
};

} // namespace v3sim::disk

#endif // V3SIM_DISK_DISK_HH
