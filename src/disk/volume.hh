/**
 * @file
 * Block-volume abstraction over disks.
 *
 * Section 2.1: "Each V3 volume consists of one or more physical
 * disks attached to V3 storage nodes. V3 volumes can span multiple
 * V3 nodes using combinations of RAID, such as concatenation and
 * other disk organizations."
 *
 * A Volume serves byte-addressed reads/writes and moves data to or
 * from host memory. Implementations: single disk, concatenation,
 * striping (RAID-0) and mirroring (RAID-1) — composable, so e.g. a
 * striped volume of mirrored pairs models RAID-10.
 */

#ifndef V3SIM_DISK_VOLUME_HH
#define V3SIM_DISK_VOLUME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "disk/disk.hh"
#include "sim/memory.hh"
#include "sim/task.hh"

namespace v3sim::disk
{

/** Byte-addressed block volume with real data movement. */
class Volume
{
  public:
    virtual ~Volume() = default;

    virtual uint64_t capacity() const = 0;

    /**
     * Reads [offset, offset+len) into host memory at @p addr.
     * Resolves (true on success) once data is in memory.
     */
    virtual sim::Task<bool> read(uint64_t offset, uint64_t len,
                                 sim::MemorySpace &mem,
                                 sim::Addr addr) = 0;

    /** Writes host memory into [offset, offset+len); durable when it
     *  resolves. */
    virtual sim::Task<bool> write(uint64_t offset, uint64_t len,
                                  const sim::MemorySpace &mem,
                                  sim::Addr addr) = 0;

    /**
     * Oracle view of latent corruption: true when any sector backing
     * [offset, offset+len) carries an injected corruption mark. The
     * server's verify-on-read uses this as the phantom-memory stand-in
     * for "the block's CRC32C did not match" — with real memory the
     * damaged bytes are also actually delivered by read().
     */
    virtual bool corrupt(uint64_t offset, uint64_t len) const
    {
        (void)offset;
        (void)len;
        return false;
    }
};

/** Volume over one physical disk. */
class SingleDiskVolume : public Volume
{
  public:
    explicit SingleDiskVolume(Disk &disk) : disk_(disk) {}

    uint64_t
    capacity() const override
    {
        return disk_.spec().capacity_bytes;
    }

    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::MemorySpace &mem,
                         sim::Addr addr) override;

    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          const sim::MemorySpace &mem,
                          sim::Addr addr) override;

    bool
    corrupt(uint64_t offset, uint64_t len) const override
    {
        return disk_.store().rangeCorrupt(offset, len);
    }

    Disk &disk() { return disk_; }

  private:
    Disk &disk_;
};

/** Volumes glued end-to-end. */
class ConcatVolume : public Volume
{
  public:
    explicit ConcatVolume(std::vector<Volume *> children);

    uint64_t capacity() const override { return capacity_; }

    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::MemorySpace &mem,
                         sim::Addr addr) override;

    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          const sim::MemorySpace &mem,
                          sim::Addr addr) override;

    bool corrupt(uint64_t offset, uint64_t len) const override;

  private:
    /** Child index and in-child offset for a volume offset. */
    std::pair<size_t, uint64_t> locate(uint64_t offset) const;

    std::vector<Volume *> children_;
    std::vector<uint64_t> starts_; ///< cumulative start offsets
    uint64_t capacity_;
};

/** RAID-0: fixed stripe unit round-robined across children. */
class StripeVolume : public Volume
{
  public:
    StripeVolume(std::vector<Volume *> children, uint64_t stripe_unit);

    uint64_t capacity() const override;

    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::MemorySpace &mem,
                         sim::Addr addr) override;

    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          const sim::MemorySpace &mem,
                          sim::Addr addr) override;

    bool corrupt(uint64_t offset, uint64_t len) const override;

    uint64_t stripeUnit() const { return stripe_unit_; }

  private:
    /** Runs one striped operation fan-out. */
    sim::Task<bool> run(uint64_t offset, uint64_t len,
                        sim::MemorySpace *mem, sim::Addr addr,
                        bool is_write);

    std::vector<Volume *> children_;
    uint64_t stripe_unit_;
};

/** RAID-1: writes go everywhere, reads round-robin. */
class MirrorVolume : public Volume
{
  public:
    explicit MirrorVolume(std::vector<Volume *> children);

    uint64_t capacity() const override;

    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::MemorySpace &mem,
                         sim::Addr addr) override;

    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          const sim::MemorySpace &mem,
                          sim::Addr addr) override;

    /** True when *any* replica holds damage in the range: the mirror
     *  cannot know which replica a read will hit. */
    bool corrupt(uint64_t offset, uint64_t len) const override;

  private:
    std::vector<Volume *> children_;
    size_t next_read_ = 0;
};

} // namespace v3sim::disk

#endif // V3SIM_DISK_VOLUME_HH
