#include "disk.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace v3sim::disk
{

bool
DiskStore::readInto(uint64_t offset, uint64_t len, sim::MemorySpace &mem,
                    sim::Addr addr) const
{
    if (offset % kSectorSize != 0 || len % kSectorSize != 0)
        return false;
    if (!mem.contains(addr, len))
        return false;
    if (phantom_ || mem.phantom())
        return true;
    for (uint64_t done = 0; done < len; done += kSectorSize) {
        const auto it = sectors_.find((offset + done) / kSectorSize);
        if (it != sectors_.end()) {
            mem.write(addr + done, it->second.data(), kSectorSize);
        } else {
            Sector zeros{};
            mem.write(addr + done, zeros.data(), kSectorSize);
        }
    }
    return true;
}

bool
DiskStore::writeFrom(uint64_t offset, uint64_t len,
                     const sim::MemorySpace &mem, sim::Addr addr)
{
    if (offset % kSectorSize != 0 || len % kSectorSize != 0)
        return false;
    if (!mem.contains(addr, len))
        return false;
    // Overwriting heals corruption marks — even in phantom mode,
    // where the marks are the only record of the damage.
    if (!corrupt_sectors_.empty()) {
        for (uint64_t done = 0; done < len; done += kSectorSize)
            corrupt_sectors_.erase((offset + done) / kSectorSize);
    }
    if (phantom_ || mem.phantom())
        return true;
    for (uint64_t done = 0; done < len; done += kSectorSize) {
        Sector &sector = sectors_[(offset + done) / kSectorSize];
        mem.read(addr + done, sector.data(), kSectorSize);
    }
    return true;
}

void
DiskStore::markCorrupt(uint64_t offset, uint64_t len)
{
    if (len == 0)
        return;
    const uint64_t first = offset / kSectorSize;
    const uint64_t last = (offset + len - 1) / kSectorSize;
    for (uint64_t s = first; s <= last; ++s) {
        corrupt_sectors_.insert(s);
        if (!phantom_) {
            // Flip a byte so readInto really returns damaged data;
            // touching an unwritten sector materializes it as a
            // nonzero sector, which differs from the zeros it would
            // have read as.
            Sector &sector = sectors_[s];
            sector[kSectorSize / 2] ^= 0x40;
        }
    }
}

bool
DiskStore::rangeCorrupt(uint64_t offset, uint64_t len) const
{
    if (len == 0 || corrupt_sectors_.empty())
        return false;
    const uint64_t first = offset / kSectorSize;
    const uint64_t last = (offset + len - 1) / kSectorSize;
    for (uint64_t s = first; s <= last; ++s) {
        if (corrupt_sectors_.count(s))
            return true;
    }
    return false;
}

Disk::Disk(sim::Simulation &sim, DiskSpec spec, sim::Rng rng,
           std::string name, SchedPolicy policy, bool phantom_store)
    : sim_(sim),
      spec_(std::move(spec)),
      rng_(rng),
      name_(std::move(name)),
      policy_(policy),
      store_(phantom_store),
      metric_prefix_(sim.metrics().uniquePrefix("disk." + name_)),
      completed_(sim.metrics().counter(metric_prefix_ + ".completed")),
      service_stats_(
          sim.metrics().sampler(metric_prefix_ + ".service_ns")),
      latency_stats_(
          sim.metrics().sampler(metric_prefix_ + ".latency_ns")),
      latent_errors_(
          sim.metrics().counter(metric_prefix_ + ".latent_errors")),
      torn_writes_(
          sim.metrics().counter(metric_prefix_ + ".torn_writes"))
{
    busy_integral_.reset(sim_.now(), 0.0);
    sim.metrics().gauge(metric_prefix_ + ".utilization",
                        [this] { return utilization(); });
    sim.metrics().gauge(metric_prefix_ + ".queue_depth", [this] {
        return static_cast<double>(queue_.size());
    });
    // The busy integral restarts at the current busy state, not zero:
    // a command in flight at the epoch boundary keeps accruing.
    sim.metrics().onEpochReset([this](sim::Tick at) {
        busy_integral_.reset(at, busy_ ? 1.0 : 0.0);
    });
}

void
Disk::submit(uint64_t offset, uint64_t len, bool is_write,
             std::function<void()> done)
{
    assert(offset + len <= spec_.capacity_bytes);
    queue_.push_back(
        Command{offset, len, is_write, sim_.now(), std::move(done)});
    scheduleStart();
}

void
Disk::scheduleStart()
{
    if (busy_ || start_scheduled_ || queue_.empty())
        return;
    start_scheduled_ = true;
    // Deferred to the tick's final band (same tick, zero cost) so
    // every same-tick arrival — zero-delay submission chains included
    // — is enqueued before the scheduler picks: the pick, and the
    // head movement and rotational-rng draw sequence that follow from
    // it, become a function of the *set* of queued requests, not of
    // their (tie-shuffled) arrival order. See DESIGN.md §8.3.
    sim_.queue().scheduleFinal([this] {
        start_scheduled_ = false;
        if (!busy_)
            startNext();
    });
}

sim::Task<>
Disk::read(uint64_t offset, uint64_t len)
{
    sim::Completion<> completion;
    submit(offset, len, false, [&completion] { completion.set(); });
    co_await completion.wait();
}

sim::Task<>
Disk::write(uint64_t offset, uint64_t len)
{
    sim::Completion<> completion;
    submit(offset, len, true, [&completion] { completion.set(); });
    co_await completion.wait();
}

bool
Disk::commitWrite(uint64_t offset, uint64_t len,
                  const sim::MemorySpace &mem, sim::Addr addr)
{
    const bool ok = store_.writeFrom(offset, len, mem, addr);
    if (ok && torn_write_rate_ > 0.0 &&
        torn_rng_->bernoulli(torn_write_rate_)) {
        // Power-cut model: the leading sectors reached the platter,
        // the tail did not. Damage the tail half (a one-sector write
        // tears whole).
        const uint64_t sectors =
            std::max<uint64_t>(len / DiskStore::kSectorSize, 1);
        const uint64_t good = sectors / 2;
        const uint64_t torn_off =
            offset + good * DiskStore::kSectorSize;
        store_.markCorrupt(torn_off, offset + len - torn_off);
        torn_writes_.increment();
    }
    return ok;
}

void
Disk::injectLatentError(uint64_t offset, uint64_t len)
{
    store_.markCorrupt(offset, len);
    latent_errors_.increment();
}

void
Disk::setTornWriteRate(double p)
{
    torn_write_rate_ = p;
    if (p > 0.0 && !torn_rng_.has_value())
        torn_rng_ = sim_.forkRng();
}

bool
Disk::commandBefore(const Command &a, const Command &b)
{
    // Deterministic same-priority order: arrival tick, then offset,
    // then shape. Same-tick arrivals land in the queue in an order
    // the determinism contract treats as unspecified (tie-shuffle
    // permutes it), so no pick may depend on queue position alone.
    if (a.enqueued != b.enqueued)
        return a.enqueued < b.enqueued;
    if (a.offset != b.offset)
        return a.offset < b.offset;
    if (a.len != b.len)
        return a.len < b.len;
    return a.is_write < b.is_write;
}

size_t
Disk::pickNext()
{
    // FIFO stays strict arrival order: within one event, submission
    // order is causal (program order), and no production path uses
    // FIFO — the determinism contract's shuffled benches all run the
    // Elevator policy below.
    if (policy_ == SchedPolicy::Fifo || queue_.size() == 1)
        return 0;

    // C-LOOK: the lowest offset at or above the head; if none, wrap
    // to the lowest offset overall. Offset ties break via
    // commandBefore, never via queue position.
    auto better = [this](size_t i, size_t best) {
        if (queue_[i].offset != queue_[best].offset)
            return queue_[i].offset < queue_[best].offset;
        return commandBefore(queue_[i], queue_[best]);
    };
    size_t best_up = queue_.size();
    size_t best_wrap = 0;
    for (size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].offset >= head_pos_) {
            if (best_up == queue_.size() || better(i, best_up))
                best_up = i;
        }
        if (i > 0 && better(i, best_wrap))
            best_wrap = i;
    }
    return best_up != queue_.size() ? best_up : best_wrap;
}

sim::Tick
Disk::serviceTime(const Command &cmd)
{
    const double distance =
        std::abs(static_cast<double>(cmd.offset) -
                 static_cast<double>(head_pos_)) /
        static_cast<double>(spec_.capacity_bytes);

    sim::Tick t = spec_.controller_overhead;
    if (distance > 0) {
        t += spec_.seekTime(distance);
        // Rotational latency: uniform in [0, one rotation); with
        // tagged queuing the drive serves the rotationally nearest
        // of the queued commands, shrinking the expectation to
        // roughly rotation/(depth+2).
        double rot = rng_.nextDouble();
        if (spec_.tagged_queuing && !queue_.empty()) {
            rot /= static_cast<double>(queue_.size() + 1);
        }
        t += static_cast<sim::Tick>(
            rot * static_cast<double>(spec_.rotationTime()));
    }
    // Sequential continuation (zero distance) skips seek+rotation.
    t += spec_.transferTime(cmd.len);
    return t;
}

void
Disk::startNext()
{
    if (queue_.empty())
        return;
    busy_ = true;
    busy_integral_.set(sim_.now(), 1.0);

    const size_t index = pickNext();
    Command cmd = std::move(queue_[index]);
    queue_.erase(queue_.begin() +
                 static_cast<std::deque<Command>::difference_type>(
                     index));

    const sim::Tick service = serviceTime(cmd);
    head_pos_ = cmd.offset + cmd.len;
    service_stats_.add(static_cast<double>(service));

    sim_.queue().schedule(service, [this, cmd = std::move(cmd)] {
        latency_stats_.add(
            static_cast<double>(sim_.now() - cmd.enqueued));
        completed_.increment();
        busy_ = false;
        busy_integral_.set(sim_.now(), 0.0);
        // Deferred like submit's kick (see scheduleStart): a
        // completion and new arrivals on the same tick must all be
        // visible before the next pick. done() may enqueue more
        // work this tick; it precedes the pick too.
        scheduleStart();
        cmd.done();
    });
}

double
Disk::utilization() const
{
    return busy_integral_.average(sim_.now());
}

void
Disk::resetStats()
{
    completed_.reset();
    service_stats_.reset();
    latency_stats_.reset();
    busy_integral_.reset(sim_.now(), busy_ ? 1.0 : 0.0);
}

} // namespace v3sim::disk
