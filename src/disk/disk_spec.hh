/**
 * @file
 * Physical disk parameterization.
 *
 * Table 2 of the paper lists the two drive families in play:
 *  - mid-size V3 nodes / local baseline: 18 GB SCSI, 10K RPM behind
 *    UltraSCSI controllers;
 *  - large V3 nodes: 18 GB FC, 15K RPM behind Mylex eXtremeRAID 3000
 *    controllers.
 *
 * Service time = controller overhead + seek + rotational latency +
 * media transfer. The seek curve is the standard concave model
 * t2t + (full - t2t) * sqrt(distance_fraction), which integrates to
 * the quoted average seek for uniformly random targets.
 */

#ifndef V3SIM_DISK_DISK_SPEC_HH
#define V3SIM_DISK_DISK_SPEC_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"
#include "util/units.hh"

namespace v3sim::disk
{

/** Static parameters of one drive model. */
struct DiskSpec
{
    std::string model = "generic";
    uint32_t rpm = 10000;
    sim::Tick track_to_track_seek = sim::msecs(0.6);
    sim::Tick full_stroke_seek = sim::msecs(10.5);
    /** Sustained media rate, bytes/second. */
    double media_rate_bps = 40e6;
    uint64_t capacity_bytes = 18ull * util::kGiB;
    /** Per-command controller/firmware overhead. */
    sim::Tick controller_overhead = sim::msecs(0.20);

    /** Tagged command queuing: the drive reorders queued commands by
     *  rotational position, so expected rotational latency shrinks
     *  roughly as rotation/(depth+1). Both the paper's UltraSCSI and
     *  Mylex FC controllers used TCQ; it is what lets 10-15K RPM
     *  arrays sustain well over 1/(seek+half-rotation) IOPS. */
    bool tagged_queuing = true;

    /** One full rotation. */
    sim::Tick
    rotationTime() const
    {
        return sim::secs(60.0 / static_cast<double>(rpm));
    }

    /** Average rotational latency (half a rotation). */
    sim::Tick avgRotationalLatency() const { return rotationTime() / 2; }

    /**
     * Seek time for a head move spanning @p distance_fraction of the
     * full stroke (0 = no move, 1 = full stroke). Zero for no move.
     */
    sim::Tick seekTime(double distance_fraction) const;

    /**
     * Average seek for uniformly random back-to-back targets
     * (E[sqrt(u)] with u = |a-b| of two uniforms is ~0.514).
     */
    sim::Tick avgSeek() const;

    /** Media transfer time for @p len bytes. */
    sim::Tick
    transferTime(uint64_t len) const
    {
        return sim::transferTime(len, media_rate_bps);
    }

    /** 18 GB 10K RPM SCSI drive (mid-size configuration, Table 2). */
    static DiskSpec scsi10k();

    /** 18 GB 15K RPM FC drive (large configuration, Table 2). */
    static DiskSpec fc15k();
};

} // namespace v3sim::disk

#endif // V3SIM_DISK_DISK_SPEC_HH
