#include "disk_spec.hh"

#include <cmath>

namespace v3sim::disk
{

sim::Tick
DiskSpec::seekTime(double distance_fraction) const
{
    if (distance_fraction <= 0)
        return 0;
    if (distance_fraction > 1)
        distance_fraction = 1;
    const double span = static_cast<double>(full_stroke_seek -
                                            track_to_track_seek);
    return track_to_track_seek +
           static_cast<sim::Tick>(span * std::sqrt(distance_fraction));
}

sim::Tick
DiskSpec::avgSeek() const
{
    // E[sqrt(|U1 - U2|)] for independent uniforms = 8/15 ~= 0.533.
    const double span = static_cast<double>(full_stroke_seek -
                                            track_to_track_seek);
    return track_to_track_seek +
           static_cast<sim::Tick>(span * (8.0 / 15.0));
}

DiskSpec
DiskSpec::scsi10k()
{
    DiskSpec spec;
    spec.model = "SCSI-18GB-10K";
    spec.rpm = 10000;
    spec.track_to_track_seek = sim::msecs(0.6);
    spec.full_stroke_seek = sim::msecs(9.5);
    spec.media_rate_bps = 40e6;
    spec.capacity_bytes = 18ull * util::kGiB;
    spec.controller_overhead = sim::msecs(0.20);
    return spec;
}

DiskSpec
DiskSpec::fc15k()
{
    DiskSpec spec;
    spec.model = "FC-18GB-15K";
    spec.rpm = 15000;
    spec.track_to_track_seek = sim::msecs(0.4);
    spec.full_stroke_seek = sim::msecs(7.0);
    spec.media_rate_bps = 55e6;
    spec.capacity_bytes = 18ull * util::kGiB;
    spec.controller_overhead = sim::msecs(0.15);
    return spec;
}

} // namespace v3sim::disk
