#include "simulation.hh"

#include "util/logging.hh"

namespace v3sim::sim
{

Simulation::Simulation(uint64_t seed)
    : rng_(seed), metrics_([this] { return queue_.now(); })
{
    util::Logger::instance().setTimeSource(
        [this] { return queue_.now(); });
    metrics_.gauge("sim.time_ns",
                   [this] { return static_cast<double>(now()); });
}

Simulation::~Simulation()
{
    util::Logger::instance().setTimeSource(nullptr);
}

} // namespace v3sim::sim
