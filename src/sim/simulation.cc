#include "simulation.hh"

#include "util/logging.hh"

namespace v3sim::sim
{

Simulation::Simulation(uint64_t seed) : rng_(seed)
{
    util::Logger::instance().setTimeSource(
        [this] { return queue_.now(); });
}

Simulation::~Simulation()
{
    util::Logger::instance().setTimeSource(nullptr);
}

} // namespace v3sim::sim
