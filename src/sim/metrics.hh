/**
 * @file
 * MetricRegistry: one observability spine for the whole simulator.
 *
 * Every instrumented component registers its statistics here under a
 * dotted path (`client.cdsa.ios`, `server.v3.0.cache.hits`,
 * `nic.db.nic0.mem_registry.pinned_bytes`, `cpu.db.cpu.category.lock`)
 * instead of hoarding private Counter/Sampler members behind bespoke
 * accessors. One Simulation owns one registry, so:
 *
 *  - benches and tests can snapshot *everything* a run observed and
 *    export it (util::JsonWriter renders the snapshot as the
 *    BENCH_*.json perf artifacts);
 *  - one resetEpoch() call replaces the old per-class resetStats()
 *    fan-out when a harness wants warmup-free measurement windows;
 *  - future sharding/batching/caching work can measure itself against
 *    a uniform, queryable surface.
 *
 * Two registration styles:
 *  - owned metrics: counter()/sampler()/histogram()/timeWeighted()
 *    allocate the metric inside the registry and return a stable
 *    reference the component keeps. Epoch reset and snapshot handle
 *    them automatically, and they stay valid (frozen) even after the
 *    registering component dies.
 *  - gauges + hooks: gauge() registers a lazy callback for derived
 *    values (hit ratio, utilization, live table entries); its owner
 *    must outlive any snapshot. onEpochReset() registers a callback
 *    for window-style state the registry cannot reset by itself
 *    (CpuPool's accounting window, a Disk's busy integral).
 *
 * Paths must be unique; duplicate registration throws. Components
 * whose instance names are not guaranteed unique derive their prefix
 * via uniquePrefix(), which appends "#N" on collision.
 */

#ifndef V3SIM_SIM_METRICS_HH
#define V3SIM_SIM_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace v3sim::sim
{

/** What shape of metric lives at a path. */
enum class MetricKind : uint8_t
{
    Counter,
    Sampler,
    Histogram,
    TimeWeighted,
    Gauge,
};

const char *metricKindName(MetricKind kind);

/** Hierarchical registry of named metrics, one per Simulation. */
class MetricRegistry
{
  public:
    using NowFn = std::function<Tick()>;

    /** @param now clock used for epoch bookkeeping and
     *  time-weighted averages; defaults to a clock stuck at 0. */
    explicit MetricRegistry(NowFn now = {});

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** @name Owned-metric registration (throws std::invalid_argument
     *  on an empty or duplicate path) @{ */
    Counter &counter(const std::string &path);
    Sampler &sampler(const std::string &path);
    Histogram &histogram(const std::string &path);
    TimeWeighted &timeWeighted(const std::string &path);
    /** @} */

    /** Registers a lazy derived value. The callback must stay valid
     *  for as long as snapshots are taken. */
    void gauge(const std::string &path, std::function<double()> fn);

    /** Registers a hook run by resetEpoch() (accounting windows the
     *  registry cannot reset itself). Same lifetime rule as gauges. */
    void onEpochReset(std::function<void(Tick)> hook);

    /**
     * Returns a registry-unique dotted prefix: @p base itself the
     * first time, "base#2", "base#3", ... for later instances of the
     * same base. Components with caller-supplied names use this so
     * two same-named instances in one simulation cannot collide.
     */
    std::string uniquePrefix(const std::string &base);

    /** @name Lookup @{ */
    bool contains(const std::string &path) const;
    /** Kind at @p path; nullopt-style: throws if absent — use
     *  contains() first, or findX below. */
    const Counter *findCounter(const std::string &path) const;
    const Sampler *findSampler(const std::string &path) const;
    const Histogram *findHistogram(const std::string &path) const;
    const TimeWeighted *findTimeWeighted(const std::string &path) const;
    /** Number of registered metrics (gauges included). */
    size_t size() const { return metrics_.size(); }
    /** @} */

    /** Current time per the registry's clock. */
    Tick now() const { return now_ ? now_() : 0; }

    /** Start of the current measurement epoch. */
    Tick epochStart() const { return epoch_start_; }

    /**
     * Starts a new measurement epoch: resets every owned metric
     * (time-weighted values restart their integration at the current
     * value) and runs every onEpochReset hook. Replaces the old
     * scattered per-component resetStats() chains.
     */
    void resetEpoch();

    /** One metric's state at snapshot time. Which fields are
     *  meaningful depends on kind (see toJson for the mapping). */
    struct Value
    {
        MetricKind kind = MetricKind::Counter;
        uint64_t count = 0; ///< counter value / sample count
        double value = 0;   ///< gauge value / time-weighted current
        double sum = 0, mean = 0, min = 0, max = 0, stddev = 0;
        double p50 = 0, p95 = 0, p99 = 0; ///< histogram quantiles
        double average = 0;               ///< time-weighted average
    };

    /** Path -> value for every registered metric (sorted, so JSON
     *  output is deterministic). */
    using Snapshot = std::map<std::string, Value>;
    Snapshot snapshot() const;

    /**
     * Per-path difference @p after - @p before for monotone fields
     * (counter values, sample counts and sums; mean is recomputed
     * from the deltas). Non-subtractable fields (min/max/stddev,
     * quantiles, gauges) keep @p after's reading. Paths absent from
     * @p before pass through unchanged.
     */
    static Snapshot delta(const Snapshot &before,
                          const Snapshot &after);

    /** The full snapshot rendered as one JSON object
     *  { "path": {"kind": ..., ...}, ... }. */
    std::string toJson() const;

    /** @copydoc toJson, for an arbitrary snapshot. */
    static std::string toJson(const Snapshot &snap);

  private:
    using Stored = std::variant<std::unique_ptr<Counter>,
                                std::unique_ptr<Sampler>,
                                std::unique_ptr<Histogram>,
                                std::unique_ptr<TimeWeighted>,
                                std::function<double()>>;

    /** Throws on empty/duplicate path. */
    void checkNewPath(const std::string &path) const;

    std::map<std::string, Stored> metrics_;
    std::vector<std::function<void(Tick)>> hooks_;
    std::map<std::string, uint32_t> prefix_uses_;
    NowFn now_;
    Tick epoch_start_ = 0;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_METRICS_HH
