/**
 * @file
 * MetricRegistry: one observability spine for the whole simulator.
 *
 * Every instrumented component registers its statistics here under a
 * dotted path (`client.cdsa.ios`, `server.v3.0.cache.hits`,
 * `nic.db.nic0.mem_registry.pinned_bytes`, `cpu.db.cpu.category.lock`)
 * instead of hoarding private Counter/Sampler members behind bespoke
 * accessors. One Simulation owns one registry, so:
 *
 *  - benches and tests can snapshot *everything* a run observed and
 *    export it (util::JsonWriter renders the snapshot as the
 *    BENCH_*.json perf artifacts);
 *  - one resetEpoch() call replaces the old per-class resetStats()
 *    fan-out when a harness wants warmup-free measurement windows;
 *  - future sharding/batching/caching work can measure itself against
 *    a uniform, queryable surface.
 *
 * Two registration styles:
 *  - owned metrics: counter()/sampler()/histogram()/timeWeighted()
 *    allocate the metric inside the registry and return a
 *    CounterHandle/SamplerHandle/... the component keeps. The handle
 *    is resolved once at registration — per-event recording through
 *    it is a single pointer dereference, never a string lookup (the
 *    simlint `metric-handle` rule enforces this in hot paths). The
 *    string-keyed map exists only for registration, lookup, and
 *    snapshot/JSON export. Handles stay valid (frozen) even after
 *    the registering component dies, but must not outlive the
 *    registry.
 *  - gauges + hooks: gauge() registers a lazy callback for derived
 *    values (hit ratio, utilization, live table entries); its owner
 *    must outlive any snapshot. onEpochReset() registers a callback
 *    for window-style state the registry cannot reset by itself
 *    (CpuPool's accounting window, a Disk's busy integral).
 *
 * Paths must be unique; duplicate registration throws. Components
 * whose instance names are not guaranteed unique derive their prefix
 * via uniquePrefix(), which appends "#N" on collision.
 */

#ifndef V3SIM_SIM_METRICS_HH
#define V3SIM_SIM_METRICS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace v3sim::sim
{

class MetricRegistry;

/** What shape of metric lives at a path. */
enum class MetricKind : uint8_t
{
    Counter,
    Sampler,
    Histogram,
    TimeWeighted,
    Gauge,
};

const char *metricKindName(MetricKind kind);

/**
 * @name Metric handles
 *
 * Thin stable pointers into registry-owned metric storage, resolved
 * once at registration. Copyable; default-constructed handles are
 * null and must be assigned before use. A handle must not outlive
 * its MetricRegistry (DESIGN.md §10.3).
 * @{
 */

/** Handle to a registry-owned Counter. */
class CounterHandle
{
  public:
    CounterHandle() = default;

    void increment(uint64_t by = 1) { counter_->increment(by); }
    uint64_t value() const { return counter_->value(); }
    void reset() { counter_->reset(); }

    /** The underlying metric, for read-style accessors. */
    const Counter &raw() const { return *counter_; }

  private:
    friend class MetricRegistry;
    explicit CounterHandle(Counter *counter) : counter_(counter) {}
    Counter *counter_ = nullptr;
};

/** Handle to a registry-owned Sampler. */
class SamplerHandle
{
  public:
    SamplerHandle() = default;

    void add(double sample) { sampler_->add(sample); }
    uint64_t count() const { return sampler_->count(); }
    double sum() const { return sampler_->sum(); }
    double mean() const { return sampler_->mean(); }
    double min() const { return sampler_->min(); }
    double max() const { return sampler_->max(); }
    double stddev() const { return sampler_->stddev(); }
    void reset() { sampler_->reset(); }

    /** The underlying metric, for read-style accessors. */
    const Sampler &raw() const { return *sampler_; }

  private:
    friend class MetricRegistry;
    explicit SamplerHandle(Sampler *sampler) : sampler_(sampler) {}
    Sampler *sampler_ = nullptr;
};

/** Handle to a registry-owned Histogram. */
class HistogramHandle
{
  public:
    HistogramHandle() = default;

    void add(double value) { histogram_->add(value); }
    uint64_t count() const { return histogram_->count(); }
    double quantile(double q) const
    {
        return histogram_->quantile(q);
    }
    void reset() { histogram_->reset(); }

    /** The underlying metric, for read-style accessors. */
    const Histogram &raw() const { return *histogram_; }

  private:
    friend class MetricRegistry;
    explicit HistogramHandle(Histogram *histogram)
        : histogram_(histogram)
    {}
    Histogram *histogram_ = nullptr;
};

/** Handle to a registry-owned TimeWeighted. */
class TimeWeightedHandle
{
  public:
    TimeWeightedHandle() = default;

    void set(Tick now, double value) { tw_->set(now, value); }
    void adjust(Tick now, double delta) { tw_->adjust(now, delta); }
    double current() const { return tw_->current(); }
    double average(Tick now) const { return tw_->average(now); }
    void reset(Tick now, double value = 0.0)
    {
        tw_->reset(now, value);
    }

    /** The underlying metric, for read-style accessors. */
    const TimeWeighted &raw() const { return *tw_; }

  private:
    friend class MetricRegistry;
    explicit TimeWeightedHandle(TimeWeighted *tw) : tw_(tw) {}
    TimeWeighted *tw_ = nullptr;
};

/** @} */

/** Hierarchical registry of named metrics, one per Simulation. */
class MetricRegistry
{
  public:
    using NowFn = std::function<Tick()>;

    /** @param now clock used for epoch bookkeeping and
     *  time-weighted averages; defaults to a clock stuck at 0. */
    explicit MetricRegistry(NowFn now = {});

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** @name Owned-metric registration (throws std::invalid_argument
     *  on an empty or duplicate path) @{ */
    CounterHandle counter(const std::string &path);
    SamplerHandle sampler(const std::string &path);
    HistogramHandle histogram(const std::string &path);
    TimeWeightedHandle timeWeighted(const std::string &path);
    /** @} */

    /** Registers a lazy derived value. The callback must stay valid
     *  for as long as snapshots are taken. */
    void gauge(const std::string &path, std::function<double()> fn);

    /** Registers a hook run by resetEpoch() (accounting windows the
     *  registry cannot reset itself). Same lifetime rule as gauges. */
    void onEpochReset(std::function<void(Tick)> hook);

    /**
     * Returns a registry-unique dotted prefix: @p base itself the
     * first time, "base#2", "base#3", ... for later instances of the
     * same base. Components with caller-supplied names use this so
     * two same-named instances in one simulation cannot collide.
     */
    std::string uniquePrefix(const std::string &base);

    /** @name Lookup @{ */
    bool contains(const std::string &path) const;
    const Counter *findCounter(const std::string &path) const;
    const Sampler *findSampler(const std::string &path) const;
    const Histogram *findHistogram(const std::string &path) const;
    const TimeWeighted *findTimeWeighted(const std::string &path) const;
    /** Number of registered metrics (gauges included). */
    size_t size() const { return index_.size(); }
    /** @} */

    /** Current time per the registry's clock. */
    Tick now() const { return now_ ? now_() : 0; }

    /** Start of the current measurement epoch. */
    Tick epochStart() const { return epoch_start_; }

    /**
     * Starts a new measurement epoch: resets every owned metric
     * (time-weighted values restart their integration at the current
     * value) and runs every onEpochReset hook. Replaces the old
     * scattered per-component resetStats() chains.
     */
    void resetEpoch();

    /** One metric's state at snapshot time. Which fields are
     *  meaningful depends on kind (see toJson for the mapping). */
    struct Value
    {
        MetricKind kind = MetricKind::Counter;
        uint64_t count = 0; ///< counter value / sample count
        double value = 0;   ///< gauge value / time-weighted current
        double sum = 0, mean = 0, min = 0, max = 0, stddev = 0;
        double p50 = 0, p95 = 0, p99 = 0, p999 = 0; ///< histogram quantiles
        double average = 0;               ///< time-weighted average
    };

    /** Path -> value for every registered metric (sorted, so JSON
     *  output is deterministic). */
    using Snapshot = std::map<std::string, Value>;
    Snapshot snapshot() const;

    /**
     * Per-path difference @p after - @p before for monotone fields
     * (counter values, sample counts and sums; mean is recomputed
     * from the deltas). Non-subtractable fields (min/max/stddev,
     * quantiles, gauges) keep @p after's reading. Paths absent from
     * @p before pass through unchanged.
     */
    static Snapshot delta(const Snapshot &before,
                          const Snapshot &after);

    /** The full snapshot rendered as one JSON object
     *  { "path": {"kind": ..., ...}, ... }. */
    std::string toJson() const;

    /** @copydoc toJson, for an arbitrary snapshot. */
    static std::string toJson(const Snapshot &snap);

  private:
    /** Where a path's metric lives: which per-kind store, at which
     *  index. Deques never relocate elements, so the raw pointers
     *  handed out as handles stay stable for the registry's life. */
    struct Entry
    {
        MetricKind kind;
        size_t index;
    };

    /** Throws on empty/duplicate path. */
    void checkNewPath(const std::string &path) const;

    const Entry *find(const std::string &path,
                      MetricKind kind) const;

    /** Registration/snapshot map only — never touched by recording. */
    std::map<std::string, Entry> index_;
    std::deque<Counter> counters_;
    std::deque<Sampler> samplers_;
    std::deque<Histogram> histograms_;
    std::deque<TimeWeighted> time_weighted_;
    std::deque<std::function<double()>> gauges_;

    std::vector<std::function<void(Tick)>> hooks_;
    std::map<std::string, uint32_t> prefix_uses_;
    NowFn now_;
    Tick epoch_start_ = 0;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_METRICS_HH
