#include "random.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace v3sim::sim
{

namespace
{

/** SplitMix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::uniformInt(uint64_t lo, uint64_t hi)
{
    assert(lo <= hi);
    const uint64_t span = hi - lo + 1;
    if (span == 0)
        return next(); // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return lo + value % span;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::exponential(double mean)
{
    assert(mean > 0);
    double u;
    do {
        u = nextDouble();
    } while (u == 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev, bool nonneg)
{
    double value;
    if (have_spare_) {
        have_spare_ = false;
        value = mean + stddev * spare_;
    } else {
        double u1;
        do {
            u1 = nextDouble();
        } while (u1 == 0.0);
        const double u2 = nextDouble();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        const double two_pi = 6.283185307179586;
        spare_ = mag * std::sin(two_pi * u2);
        have_spare_ = true;
        value = mean + stddev * mag * std::cos(two_pi * u2);
    }
    if (nonneg && value < 0)
        value = 0;
    return value;
}

bool
Rng::bernoulli(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    assert(n > 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

uint64_t
ZipfGenerator::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
}

} // namespace v3sim::sim
