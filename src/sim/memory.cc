#include "memory.hh"

#include <cstring>

namespace v3sim::sim
{

MemorySpace::MemorySpace(bool phantom, std::string name)
    : phantom_(phantom), name_(std::move(name))
{}

Addr
MemorySpace::allocate(uint64_t len)
{
    if (len == 0)
        return kNullAddr;
    const Addr base = next_;
    // Bump by a page-rounded size so allocations never share pages.
    const uint64_t rounded =
        (len + kPageSize - 1) / kPageSize * kPageSize;
    next_ += rounded;
    Block block;
    block.len = len;
    if (!phantom_)
        block.bytes.assign(len, 0);
    blocks_.emplace(base, std::move(block));
    allocated_bytes_ += len;
    return base;
}

void
MemorySpace::free(Addr base)
{
    auto it = blocks_.find(base);
    if (it == blocks_.end())
        return;
    allocated_bytes_ -= it->second.len;
    blocks_.erase(it);
}

const MemorySpace::Block *
MemorySpace::findBlock(Addr addr, uint64_t len, Addr *base) const
{
    if (addr == kNullAddr || blocks_.empty())
        return nullptr;
    auto it = blocks_.upper_bound(addr);
    if (it == blocks_.begin())
        return nullptr;
    --it;
    const Addr block_base = it->first;
    const Block &block = it->second;
    if (addr < block_base || addr - block_base > block.len ||
        len > block.len - (addr - block_base)) {
        return nullptr;
    }
    if (base)
        *base = block_base;
    return &block;
}

bool
MemorySpace::contains(Addr addr, uint64_t len) const
{
    return findBlock(addr, len, nullptr) != nullptr;
}

bool
MemorySpace::write(Addr addr, const void *src, uint64_t len)
{
    Addr base;
    const Block *block = findBlock(addr, len, &base);
    if (!block)
        return false;
    if (!phantom_ && len > 0) {
        auto *mutable_block = const_cast<Block *>(block);
        std::memcpy(mutable_block->bytes.data() + (addr - base), src,
                    len);
    }
    return true;
}

bool
MemorySpace::read(Addr addr, void *dst, uint64_t len) const
{
    Addr base;
    const Block *block = findBlock(addr, len, &base);
    if (!block)
        return false;
    if (len == 0)
        return true;
    if (phantom_)
        std::memset(dst, 0, len);
    else
        std::memcpy(dst, block->bytes.data() + (addr - base), len);
    return true;
}

bool
MemorySpace::fill(Addr addr, uint8_t value, uint64_t len)
{
    Addr base;
    const Block *block = findBlock(addr, len, &base);
    if (!block)
        return false;
    if (!phantom_ && len > 0) {
        auto *mutable_block = const_cast<Block *>(block);
        std::memset(mutable_block->bytes.data() + (addr - base), value,
                    len);
    }
    return true;
}

bool
MemorySpace::copy(const MemorySpace &src, Addr src_addr,
                  MemorySpace &dst, Addr dst_addr, uint64_t len)
{
    if (!src.contains(src_addr, len) || !dst.contains(dst_addr, len))
        return false;
    if (len == 0 || dst.phantom_)
        return true;
    if (src.phantom_)
        return dst.fill(dst_addr, 0, len);

    // Both real: copy through a bounded stack buffer to avoid a large
    // temporary; ranges never overlap because they are distinct
    // address spaces (or distinct allocations within one space).
    uint8_t chunk[4096];
    uint64_t done = 0;
    while (done < len) {
        const uint64_t n =
            std::min<uint64_t>(sizeof(chunk), len - done);
        src.read(src_addr + done, chunk, n);
        dst.write(dst_addr + done, chunk, n);
        done += n;
    }
    return true;
}

uint64_t
MemorySpace::readU64(Addr addr) const
{
    uint64_t value = 0;
    read(addr, &value, sizeof(value));
    return value;
}

bool
MemorySpace::writeU64(Addr addr, uint64_t value)
{
    return write(addr, &value, sizeof(value));
}

} // namespace v3sim::sim
