/**
 * @file
 * Fundamental simulation types: the simulated clock.
 *
 * Simulated time is a signed 64-bit nanosecond count (`Tick`), giving
 * ~292 simulated years of range — ample for the minutes-long TPC-C
 * runs the paper reports. All model constants are expressed through
 * the unit helpers below so call sites read like the paper's text
 * ("interrupt cost is 5-10 us" becomes `usecs(7)`).
 */

#ifndef V3SIM_SIM_TYPES_HH
#define V3SIM_SIM_TYPES_HH

#include <concepts>
#include <cstdint>

namespace v3sim::sim
{

/** Simulated time in nanoseconds. */
using Tick = int64_t;

/** A Tick value meaning "no deadline / never". */
constexpr Tick kTickNever = INT64_MAX;

/** @name Unit constructors
 *  Convert human units to Ticks. Double overloads round to the
 *  nearest nanosecond.
 *  @{
 */
template <std::integral T>
constexpr Tick nsecs(T n) { return static_cast<Tick>(n); }

template <std::integral T>
constexpr Tick usecs(T n) { return static_cast<Tick>(n) * 1000; }

template <std::integral T>
constexpr Tick msecs(T n) { return static_cast<Tick>(n) * 1000 * 1000; }

template <std::integral T>
constexpr Tick
secs(T n)
{
    return static_cast<Tick>(n) * 1000 * 1000 * 1000;
}

constexpr Tick
usecs(double n)
{
    return static_cast<Tick>(n * 1e3 + (n >= 0 ? 0.5 : -0.5));
}

constexpr Tick
msecs(double n)
{
    return static_cast<Tick>(n * 1e6 + (n >= 0 ? 0.5 : -0.5));
}

constexpr Tick
secs(double n)
{
    return static_cast<Tick>(n * 1e9 + (n >= 0 ? 0.5 : -0.5));
}
/** @} */

/** @name Unit extractors
 *  Convert Ticks back to human units as doubles.
 *  @{
 */
constexpr double toUsecs(Tick t) { return static_cast<double>(t) / 1e3; }
constexpr double toMsecs(Tick t) { return static_cast<double>(t) / 1e6; }
constexpr double toSecs(Tick t) { return static_cast<double>(t) / 1e9; }
/** @} */

/**
 * Ticks needed to move @p bytes at @p bytes_per_second, rounded up.
 * Used by link, DMA, and disk media-rate models.
 */
constexpr Tick
transferTime(uint64_t bytes, double bytes_per_second)
{
    if (bytes == 0 || bytes_per_second <= 0)
        return 0;
    const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_second;
    return static_cast<Tick>(ns + 0.999999);
}

} // namespace v3sim::sim

#endif // V3SIM_SIM_TYPES_HH
