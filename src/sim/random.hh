/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * A xoshiro256++ engine seeded through SplitMix64 gives fast,
 * high-quality, reproducible streams. The distributions cover what
 * the workload models need: uniform (I/O offsets), exponential
 * (arrival/think times), normal (service jitter), Zipf (skewed block
 * popularity for cache studies), and Bernoulli (read/write mix).
 */

#ifndef V3SIM_SIM_RANDOM_HH
#define V3SIM_SIM_RANDOM_HH

#include <cstdint>
#include <vector>

namespace v3sim::sim
{

/** xoshiro256++ PRNG (public-domain algorithm by Blackman/Vigna). */
class Rng
{
  public:
    /** Seeds the stream; identical seeds give identical streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    uint64_t uniformInt(uint64_t lo, uint64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Exponential with the given mean (> 0). */
    double exponential(double mean);

    /** Normal via Box-Muller; clamped at zero when @p nonneg. */
    double normal(double mean, double stddev, bool nonneg = true);

    /** True with probability @p p. */
    bool bernoulli(double p);

    /** Creates an independent substream (for per-component RNGs). */
    Rng fork();

  private:
    uint64_t s_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipf-distributed integers over [0, n). Uses a precomputed inverse
 * CDF table for exact sampling; construction is O(n), sampling is
 * O(log n). theta = 0 degenerates to uniform; typical OLTP block
 * popularity uses theta in [0.5, 1.0].
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(uint64_t n, double theta);

    /** Samples one value in [0, n). */
    uint64_t sample(Rng &rng) const;

    uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    uint64_t n_;
    double theta_;
    std::vector<double> cdf_;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_RANDOM_HH
