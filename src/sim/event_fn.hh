/**
 * @file
 * Move-only callable holder for event callbacks.
 *
 * The simulator's hot-path lambdas capture a `this` pointer plus at
 * most a small command struct, so EventFn keeps an inline buffer
 * sized for them (kInlineBytes) and stores the callable in place —
 * scheduling an event then allocates nothing. Larger, over-aligned,
 * or throwing-move callables fall back to a heap box; behaviour is
 * identical either way. Dispatch goes through a per-type static ops
 * table (invoke/relocate/destroy) instead of a vtable so the holder
 * stays a POD-sized struct that pool-allocated events can embed.
 */

#ifndef V3SIM_SIM_EVENT_FN_HH
#define V3SIM_SIM_EVENT_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace v3sim::sim
{

/** Small-buffer-optimized move-only `void()` callable. */
class EventFn
{
  public:
    /** Inline capture budget: fits a `this` pointer plus a command
     *  struct holding a `std::function` completion (the disk's
     *  service-done callback, the largest hot-path capture), and
     *  keeps the pooled Event at two cache lines. */
    static constexpr size_t kInlineBytes = 80;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventFn(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = inlineOps<Fn>();
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = boxedOps<Fn>();
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Invokes the callable. Precondition: non-empty. */
    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const noexcept
    {
        return ops_ != nullptr;
    }

    /** Destroys the held callable, leaving the holder empty. */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *buf);
        /** Move-constructs dst from src and destroys src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *buf) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(void *) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static Fn *
    as(void *buf) noexcept
    {
        return std::launder(reinterpret_cast<Fn *>(buf));
    }

    template <typename Fn>
    static const Ops *
    inlineOps() noexcept
    {
        static constexpr Ops ops = {
            [](void *buf) { (*as<Fn>(buf))(); },
            [](void *dst, void *src) noexcept {
                ::new (dst) Fn(std::move(*as<Fn>(src)));
                as<Fn>(src)->~Fn();
            },
            [](void *buf) noexcept { as<Fn>(buf)->~Fn(); },
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    boxedOps() noexcept
    {
        static constexpr Ops ops = {
            [](void *buf) { (**as<Fn *>(buf))(); },
            [](void *dst, void *src) noexcept {
                ::new (dst) Fn *(*as<Fn *>(src));
            },
            [](void *buf) noexcept { delete *as<Fn *>(buf); },
        };
        return &ops;
    }

    void
    moveFrom(EventFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(void *) unsigned char buf_[kInlineBytes];
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_EVENT_FN_HH
