#include "resource.hh"

#include <utility>

namespace v3sim::sim
{

ServerPool::ServerPool(EventQueue &queue, int servers, std::string name)
    : queue_(queue), servers_(servers), name_(std::move(name))
{
    assert(servers >= 1);
    busy_integral_.reset(queue_.now(), 0.0);
}

ServerPool::Job *
ServerPool::allocJob()
{
    if (free_jobs_ != nullptr) {
        Job *job = free_jobs_;
        free_jobs_ = job->next_free;
        job->next_free = nullptr;
        return job;
    }
    slab_.emplace_back();
    return &slab_.back();
}

void
ServerPool::releaseJob(Job *job)
{
    job->done.reset();
    job->next_free = free_jobs_;
    free_jobs_ = job;
}

void
ServerPool::submit(Tick service, EventFn done)
{
    Job *job = allocJob();
    job->service = service;
    job->enqueued = queue_.now();
    job->done = std::move(done);
    if (busy_ < servers_) {
        startJob(job);
    } else {
        waiting_.push_back(job);
    }
}

void
ServerPool::startJob(Job *job)
{
    ++busy_;
    busy_integral_.set(queue_.now(), static_cast<double>(busy_));
    wait_stats_.add(static_cast<double>(queue_.now() - job->enqueued));
    queue_.schedule(job->service, [this, job] { onJobDone(job); });
}

void
ServerPool::onJobDone(Job *job)
{
    --busy_;
    busy_integral_.set(queue_.now(), static_cast<double>(busy_));
    ++completed_;
    EventFn done = std::move(job->done);
    releaseJob(job);
    if (!waiting_.empty()) {
        Job *next = waiting_.front();
        waiting_.pop_front();
        startJob(next);
    }
    done();
}

double
ServerPool::utilization() const
{
    return busy_integral_.average(queue_.now()) /
           static_cast<double>(servers_);
}

void
ServerPool::resetStats()
{
    busy_integral_.reset(queue_.now(), static_cast<double>(busy_));
    wait_stats_.reset();
    completed_ = 0;
}

} // namespace v3sim::sim
