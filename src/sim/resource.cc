#include "resource.hh"

#include <utility>

namespace v3sim::sim
{

ServerPool::ServerPool(EventQueue &queue, int servers, std::string name)
    : queue_(queue), servers_(servers), name_(std::move(name))
{
    assert(servers >= 1);
    busy_integral_.reset(queue_.now(), 0.0);
}

void
ServerPool::submit(Tick service, std::function<void()> done)
{
    Job job{service, queue_.now(), std::move(done)};
    if (busy_ < servers_) {
        startJob(std::move(job));
    } else {
        waiting_.push_back(std::move(job));
    }
}

void
ServerPool::startJob(Job job)
{
    ++busy_;
    busy_integral_.set(queue_.now(), static_cast<double>(busy_));
    wait_stats_.add(static_cast<double>(queue_.now() - job.enqueued));
    queue_.schedule(job.service,
                    [this, done = std::move(job.done)]() mutable {
                        onJobDone(std::move(done));
                    });
}

void
ServerPool::onJobDone(std::function<void()> done)
{
    --busy_;
    busy_integral_.set(queue_.now(), static_cast<double>(busy_));
    ++completed_;
    if (!waiting_.empty()) {
        Job next = std::move(waiting_.front());
        waiting_.pop_front();
        startJob(std::move(next));
    }
    done();
}

double
ServerPool::utilization() const
{
    return busy_integral_.average(queue_.now()) /
           static_cast<double>(servers_);
}

void
ServerPool::resetStats()
{
    busy_integral_.reset(queue_.now(), static_cast<double>(busy_));
    wait_stats_.reset();
    completed_ = 0;
}

} // namespace v3sim::sim
