#include "resource.hh"

#include <algorithm>
#include <utility>

namespace v3sim::sim
{

ServerPool::ServerPool(EventQueue &queue, int servers, std::string name)
    : queue_(queue), servers_(servers), name_(std::move(name))
{
    assert(servers >= 1);
    busy_integral_.reset(queue_.now(), 0.0);
}

ServerPool::Job *
ServerPool::allocJob()
{
    if (free_jobs_ != nullptr) {
        Job *job = free_jobs_;
        free_jobs_ = job->next_free;
        job->next_free = nullptr;
        return job;
    }
    slab_.emplace_back();
    return &slab_.back();
}

void
ServerPool::releaseJob(Job *job)
{
    job->done.reset();
    job->next_free = free_jobs_;
    free_jobs_ = job;
}

void
ServerPool::submit(Tick service, EventFn done, uint64_t order_key)
{
    Job *job = allocJob();
    job->service = service;
    job->enqueued = queue_.now();
    job->order_key = order_key;
    job->seq = next_seq_++;
    job->done = std::move(done);
    // Never start in submission order: same-tick submissions race
    // (DESIGN.md §8.3). Gather them and admit in the final band,
    // ordered by (order_key, seq).
    const auto after = [](const Job *a, const Job *b) {
        return a->order_key < b->order_key ||
               (a->order_key == b->order_key && a->seq < b->seq);
    };
    pending_.insert(std::upper_bound(pending_.begin(), pending_.end(),
                                     job, after),
                    job);
    if (!admit_scheduled_) {
        admit_scheduled_ = true;
        queue_.scheduleFinal([this] { admitPending(); });
    }
}

void
ServerPool::admitPending()
{
    admit_scheduled_ = false;
    for (Job *job : pending_) {
        if (busy_ < servers_)
            startJob(job);
        else
            waiting_.push_back(job);
    }
    pending_.clear();
}

void
ServerPool::startJob(Job *job)
{
    ++busy_;
    busy_integral_.set(queue_.now(), static_cast<double>(busy_));
    wait_stats_.add(static_cast<double>(queue_.now() - job->enqueued));
    queue_.schedule(job->service, [this, job] { onJobDone(job); });
}

void
ServerPool::onJobDone(Job *job)
{
    --busy_;
    busy_integral_.set(queue_.now(), static_cast<double>(busy_));
    ++completed_;
    EventFn done = std::move(job->done);
    releaseJob(job);
    if (!waiting_.empty()) {
        Job *next = waiting_.front();
        waiting_.pop_front();
        startJob(next);
    }
    done();
}

double
ServerPool::utilization() const
{
    return busy_integral_.average(queue_.now()) /
           static_cast<double>(servers_);
}

void
ServerPool::resetStats()
{
    busy_integral_.reset(queue_.now(), static_cast<double>(busy_));
    wait_stats_.reset();
    completed_ = 0;
}

} // namespace v3sim::sim
