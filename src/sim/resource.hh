/**
 * @file
 * Queued-resource primitives: ServerPool and Semaphore.
 *
 * ServerPool models m identical servers with queued admission and a
 * caller-supplied service time per job — the workhorse behind NIC DMA
 * engines, network links, disk mechanisms, and the V3 server's
 * pipeline stages. Semaphore is a counted, FIFO-fair gate used for
 * flow-control credits and bounded queues.
 *
 * Determinism (DESIGN.md §8.3): jobs submitted on the same tick are a
 * race — their submission order is unspecified and tie-shuffled, so
 * the pool never starts them in arrival order. Submissions gather
 * over the tick and are admitted in one final-band pass ordered by
 * (order_key, submission); jobs from distinct ticks keep strict FIFO.
 * Callers whose same-tick jobs can interleave pass distinct
 * order_keys (a transfer tag, a source port); same-key jobs keep
 * their relative submission order, which is how multi-fragment
 * transfers stay in order.
 */

#ifndef V3SIM_SIM_RESOURCE_HH
#define V3SIM_SIM_RESOURCE_HH

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace v3sim::sim
{

/**
 * m identical servers with a FIFO queue. Jobs carry their own service
 * time; completion is signalled by callback or by awaiting use().
 */
class ServerPool
{
  public:
    /**
     * @param queue the simulation event queue.
     * @param servers number of parallel servers (>= 1).
     * @param name used in statistics dumps.
     */
    ServerPool(EventQueue &queue, int servers, std::string name = "");

    /**
     * Enqueues a job; @p done fires when its service completes. The
     * job starts in this tick's final band at the earliest; same-tick
     * submissions are ordered by @p order_key, then submission.
     */
    void submit(Tick service, EventFn done, uint64_t order_key = 0);

    /** Awaitable submission: co_await pool.use(service). */
    auto
    use(Tick service, uint64_t order_key = 0)
    {
        struct Awaiter
        {
            ServerPool *pool;
            Tick service;
            uint64_t order_key;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                pool->submit(service, [h] { h.resume(); }, order_key);
            }

            void await_resume() const {}
        };
        return Awaiter{this, service, order_key};
    }

    int servers() const { return servers_; }
    int busy() const { return busy_; }
    size_t queuedCount() const { return waiting_.size(); }
    const std::string &name() const { return name_; }

    /** Fraction of server-capacity busy over the observed window. */
    double utilization() const;

    /** Distribution of time jobs spent waiting for a server (ns). */
    const Sampler &waitStats() const { return wait_stats_; }

    /** Jobs completed so far. */
    uint64_t completedCount() const { return completed_; }

    /** Restarts utilization/wait observation at the current time. */
    void resetStats();

  private:
    /** Pooled job node: completion events capture only {pool, node},
     *  so the service-completion path never heap-allocates no matter
     *  how large the done callback's inline state is. */
    struct Job
    {
        Tick service = 0;
        Tick enqueued = 0;
        uint64_t order_key = 0;
        uint64_t seq = 0; ///< submission tiebreak among equal keys
        EventFn done;
        Job *next_free = nullptr;
    };

    Job *allocJob();
    void releaseJob(Job *job);
    void startJob(Job *job);
    void onJobDone(Job *job);
    /** Final-band pass: moves this tick's submissions, in
     *  (order_key, seq) order, onto servers or the FIFO queue. */
    void admitPending();

    EventQueue &queue_;
    int servers_;
    std::string name_;
    int busy_ = 0;
    std::deque<Job *> waiting_;
    /** Same-tick submissions awaiting the final-band admission. */
    std::vector<Job *> pending_;
    uint64_t next_seq_ = 0;
    bool admit_scheduled_ = false;
    /** Slab owning every Job node (deque: stable addresses). */
    std::deque<Job> slab_;
    Job *free_jobs_ = nullptr;
    TimeWeighted busy_integral_;
    Sampler wait_stats_;
    uint64_t completed_ = 0;
};

/**
 * Counted semaphore with coroutine acquire and final-band granting.
 *
 * Determinism (DESIGN.md §8.3): an inline fast path would hand the
 * last count to whichever same-tick acquirer happened to run first —
 * arrival order, which the tie-shuffle permutes. Every acquire
 * therefore parks, and counts are granted in one final-band pass per
 * tick ordered by (order_key, park order). Acquirers pass a
 * content-derived key (buffer address, request offset); distinct
 * ticks keep strict FIFO because earlier parks carry smaller seqs.
 */
class Semaphore
{
  public:
    Semaphore(EventQueue &queue, int64_t initial)
        : queue_(queue), count_(initial)
    {
        assert(initial >= 0);
    }

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    int64_t available() const { return count_; }
    size_t waiterCount() const { return waiters_.size(); }

    /**
     * Awaitable acquire of one count. Grants happen in this tick's
     * final band at the earliest; same-tick acquirers are ordered by
     * @p order_key (content, never arrival order), then park order.
     */
    auto
    acquire(uint64_t order_key = 0)
    {
        struct Awaiter
        {
            Semaphore *sem;
            uint64_t order_key;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                sem->park(h, order_key);
            }

            void await_resume() const {}
        };
        return Awaiter{this, order_key};
    }

    /** Returns @p n counts; waiters are granted in the final band. */
    void
    release(int64_t n = 1)
    {
        count_ += n;
        if (!waiters_.empty())
            scheduleGrant();
    }

  private:
    struct Waiter
    {
        std::coroutine_handle<> handle;
        uint64_t order_key = 0;
        uint64_t seq = 0; ///< park-order tiebreak among equal keys

        bool
        operator<(const Waiter &other) const
        {
            if (order_key != other.order_key)
                return order_key < other.order_key;
            return seq < other.seq;
        }
    };

    void
    park(std::coroutine_handle<> h, uint64_t order_key)
    {
        const Waiter w{h, order_key, next_seq_++};
        waiters_.insert(
            std::upper_bound(waiters_.begin(), waiters_.end(), w), w);
        scheduleGrant();
    }

    void
    scheduleGrant()
    {
        if (grant_scheduled_)
            return;
        grant_scheduled_ = true;
        queue_.scheduleFinal([this] { grant(); });
    }

    void
    grant()
    {
        // Cleared first: a resumed waiter may release() and re-park.
        grant_scheduled_ = false;
        while (count_ > 0 && !waiters_.empty()) {
            const Waiter w = waiters_.front();
            waiters_.erase(waiters_.begin());
            --count_;
            w.handle.resume();
        }
    }

    EventQueue &queue_;
    int64_t count_;
    std::vector<Waiter> waiters_;
    uint64_t next_seq_ = 0;
    bool grant_scheduled_ = false;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_RESOURCE_HH
