/**
 * @file
 * Queued-resource primitives: ServerPool and Semaphore.
 *
 * ServerPool models m identical servers with FIFO admission and a
 * caller-supplied service time per job — the workhorse behind NIC DMA
 * engines, network links, disk mechanisms, and the V3 server's
 * pipeline stages. Semaphore is a counted, FIFO-fair gate used for
 * flow-control credits and bounded queues.
 */

#ifndef V3SIM_SIM_RESOURCE_HH
#define V3SIM_SIM_RESOURCE_HH

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace v3sim::sim
{

/**
 * m identical servers with a FIFO queue. Jobs carry their own service
 * time; completion is signalled by callback or by awaiting use().
 */
class ServerPool
{
  public:
    /**
     * @param queue the simulation event queue.
     * @param servers number of parallel servers (>= 1).
     * @param name used in statistics dumps.
     */
    ServerPool(EventQueue &queue, int servers, std::string name = "");

    /** Enqueues a job; @p done fires when its service completes. */
    void submit(Tick service, EventFn done);

    /** Awaitable submission: co_await pool.use(service). */
    auto
    use(Tick service)
    {
        struct Awaiter
        {
            ServerPool *pool;
            Tick service;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                pool->submit(service, [h] { h.resume(); });
            }

            void await_resume() const {}
        };
        return Awaiter{this, service};
    }

    int servers() const { return servers_; }
    int busy() const { return busy_; }
    size_t queuedCount() const { return waiting_.size(); }
    const std::string &name() const { return name_; }

    /** Fraction of server-capacity busy over the observed window. */
    double utilization() const;

    /** Distribution of time jobs spent waiting for a server (ns). */
    const Sampler &waitStats() const { return wait_stats_; }

    /** Jobs completed so far. */
    uint64_t completedCount() const { return completed_; }

    /** Restarts utilization/wait observation at the current time. */
    void resetStats();

  private:
    /** Pooled job node: completion events capture only {pool, node},
     *  so the service-completion path never heap-allocates no matter
     *  how large the done callback's inline state is. */
    struct Job
    {
        Tick service = 0;
        Tick enqueued = 0;
        EventFn done;
        Job *next_free = nullptr;
    };

    Job *allocJob();
    void releaseJob(Job *job);
    void startJob(Job *job);
    void onJobDone(Job *job);

    EventQueue &queue_;
    int servers_;
    std::string name_;
    int busy_ = 0;
    std::deque<Job *> waiting_;
    /** Slab owning every Job node (deque: stable addresses). */
    std::deque<Job> slab_;
    Job *free_jobs_ = nullptr;
    TimeWeighted busy_integral_;
    Sampler wait_stats_;
    uint64_t completed_ = 0;
};

/**
 * Counted, FIFO-fair semaphore with coroutine acquire.
 * release() hands counts directly to the oldest waiters.
 */
class Semaphore
{
  public:
    explicit Semaphore(int64_t initial) : count_(initial)
    {
        assert(initial >= 0);
    }

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    int64_t available() const { return count_; }
    size_t waiterCount() const { return waiters_.size(); }

    /** Takes one count without blocking; false if none available. */
    bool
    tryAcquire()
    {
        if (count_ > 0) {
            --count_;
            return true;
        }
        return false;
    }

    /** Awaitable acquire of one count. */
    auto
    acquire()
    {
        struct Awaiter
        {
            Semaphore *sem;

            bool
            await_ready() const
            {
                if (sem->count_ > 0) {
                    --sem->count_;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                sem->waiters_.push_back(h);
            }

            void await_resume() const {}
        };
        return Awaiter{this};
    }

    /** Returns @p n counts, waking up to n waiters (FIFO). */
    void
    release(int64_t n = 1)
    {
        while (n > 0 && !waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            --n;
            h.resume();
        }
        count_ += n;
    }

  private:
    int64_t count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_RESOURCE_HH
