#include "event_queue.hh"

#include <utility>

namespace v3sim::sim
{

namespace
{

/** SplitMix64 finalizer: the same-tick rank under tie-shuffle. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

EventQueue::Handle
EventQueue::schedule(Tick delay, std::function<void()> fn)
{
    if (delay < 0)
        delay = 0;
    return scheduleAt(now_ + delay, std::move(fn));
}

EventQueue::Handle
EventQueue::scheduleAt(Tick when, std::function<void()> fn)
{
    if (when < now_)
        when = now_;
    auto control = std::make_shared<Handle::Control>();
    const uint64_t seq = next_seq_++;
    // Hashed ranks live below 2^63; zero-delay events keep FIFO
    // order above it, after every already-queued same-tick event
    // (see the class comment's tie-shuffle model).
    constexpr uint64_t kSequencedBase = 1ULL << 63;
    uint64_t tie;
    if (!tie_shuffle_)
        tie = seq;
    else if (when <= now_)
        tie = kSequencedBase | seq;
    else
        tie = mix64(tie_seed_ ^ seq) >> 1;
    heap_.push(Event{when, tie, seq, std::move(fn), control});
    ++pending_;
    return Handle(std::move(control));
}

EventQueue::Handle
EventQueue::scheduleFinal(std::function<void()> fn)
{
    auto control = std::make_shared<Handle::Control>();
    const uint64_t seq = next_seq_++;
    // The final band tops both the hashed ranks (< 2^63) and the
    // zero-delay sequenced band (2^63 | seq), in shuffle and FIFO
    // modes alike, so final events always close out their tick.
    constexpr uint64_t kFinalBase = 3ULL << 62;
    heap_.push(Event{now_, kFinalBase | seq, seq, std::move(fn),
                     control});
    ++pending_;
    return Handle(std::move(control));
}

void
EventQueue::fireNext()
{
    // priority_queue::top() is const; the event must be moved out, so
    // const_cast the known-mutable storage before popping.
    Event event = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    --pending_;
    now_ = event.when;
    event.control->fired = true;
    // Counted before the cancellation check so the tally is a pure
    // function of the scheduled ticks, unperturbed by within-tick
    // cancellation order.
    if (event.when == last_fired_at_)
        ++same_tick_fired_;
    last_fired_at_ = event.when;
    if (!event.control->cancelled) {
        ++fired_total_;
        event.fn();
    }
}

size_t
EventQueue::run(size_t max_events)
{
    size_t fired = 0;
    while (!heap_.empty() && fired < max_events) {
        fireNext();
        ++fired;
    }
    return fired;
}

size_t
EventQueue::runUntil(Tick until)
{
    size_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        fireNext();
        ++fired;
    }
    if (now_ < until)
        now_ = until;
    return fired;
}

} // namespace v3sim::sim
