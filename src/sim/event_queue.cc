#include "event_queue.hh"

#include <utility>

namespace v3sim::sim
{

EventQueue::Handle
EventQueue::schedule(Tick delay, std::function<void()> fn)
{
    if (delay < 0)
        delay = 0;
    return scheduleAt(now_ + delay, std::move(fn));
}

EventQueue::Handle
EventQueue::scheduleAt(Tick when, std::function<void()> fn)
{
    if (when < now_)
        when = now_;
    auto control = std::make_shared<Handle::Control>();
    heap_.push(Event{when, next_seq_++, std::move(fn), control});
    ++pending_;
    return Handle(std::move(control));
}

void
EventQueue::fireNext()
{
    // priority_queue::top() is const; the event must be moved out, so
    // const_cast the known-mutable storage before popping.
    Event event = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    --pending_;
    now_ = event.when;
    event.control->fired = true;
    if (!event.control->cancelled) {
        ++fired_total_;
        event.fn();
    }
}

size_t
EventQueue::run(size_t max_events)
{
    size_t fired = 0;
    while (!heap_.empty() && fired < max_events) {
        fireNext();
        ++fired;
    }
    return fired;
}

size_t
EventQueue::runUntil(Tick until)
{
    size_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        fireNext();
        ++fired;
    }
    if (now_ < until)
        now_ = until;
    return fired;
}

} // namespace v3sim::sim
