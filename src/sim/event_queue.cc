#include "event_queue.hh"

#include <algorithm>
#include <utility>

namespace v3sim::sim
{

namespace
{

/** SplitMix64 finalizer: the same-tick rank under tie-shuffle. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
EventQueue::tieRank(Tick when, uint64_t seq) const
{
    // Hashed ranks live below 2^63; zero-delay events keep FIFO
    // order above it, after every already-queued same-tick event
    // (see the class comment's tie-shuffle model).
    if (!tie_shuffle_)
        return seq;
    if (when <= now_)
        return kSequencedBase | seq;
    return mix64(tie_seed_ ^ seq) >> 1;
}

EventQueue::Event *
EventQueue::allocEvent()
{
    if (free_events_ == nullptr) {
        pool_.emplace_back(new Event[kPoolChunk]);
        Event *chunk = pool_.back().get();
        for (size_t i = 0; i < kPoolChunk; ++i) {
            chunk[i].next = free_events_;
            free_events_ = &chunk[i];
        }
    }
    Event *event = free_events_;
    free_events_ = event->next;
    return event;
}

void
EventQueue::releaseEvent(Event *event)
{
    event->fn.reset();
    event->next = free_events_;
    free_events_ = event;
}

uint32_t
EventQueue::allocControl()
{
    if (free_control_ != kNoControl) {
        const uint32_t slot = free_control_;
        free_control_ = controls_[slot].next_free;
        controls_[slot].next_free = kNoControl;
        return slot;
    }
    controls_.push_back(ControlSlot{});
    return static_cast<uint32_t>(controls_.size() - 1);
}

bool
EventQueue::releaseControl(uint32_t slot)
{
    ControlSlot &ctl = controls_[slot];
    const bool cancelled = ctl.cancelled;
    // The generation bump is what retires outstanding handles.
    ++ctl.gen;
    ctl.cancelled = false;
    ctl.next_free = free_control_;
    free_control_ = slot;
    return cancelled;
}

void
EventQueue::place(Event *event)
{
    const uint64_t bucket =
        static_cast<uint64_t>(event->when) >> kBucketShift;
    if (event->when < bottomLimit()) {
        // Sorted insert (descending; earliest at the back). New
        // arrivals here are same-tick or near-past events, which land
        // close to the back — short memmoves on a flat key array beat
        // a heap sift's scattered dereferences.
        const BottomItem item{event->when, event->tie, event->seq,
                              event};
        bottom_.insert(std::lower_bound(bottom_.begin(),
                                        bottom_.end(), item,
                                        LaterItem{}),
                       item);
    } else if (bucket < windowEnd()) {
        Event *&head = buckets_[bucket & (kBucketCount - 1)];
        event->next = head;
        head = event;
        ++in_buckets_;
    } else {
        overflow_.push_back(
            BottomItem{event->when, event->tie, event->seq, event});
        std::push_heap(overflow_.begin(), overflow_.end(),
                       LaterItem{});
    }
}

void
EventQueue::insertNew(Tick when, uint64_t tie, uint64_t seq,
                      EventFn fn, uint32_t control)
{
    Event *event = allocEvent();
    event->when = when;
    event->tie = tie;
    event->seq = seq;
    event->next = nullptr;
    event->control = control;
    event->fn = std::move(fn);
    place(event);
    ++pending_;
}

void
EventQueue::schedule(Tick delay, EventFn fn)
{
    if (delay < 0)
        delay = 0;
    scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    if (when < now_)
        when = now_;
    const uint64_t seq = next_seq_++;
    insertNew(when, tieRank(when, seq), seq, std::move(fn),
              kNoControl);
}

void
EventQueue::scheduleFinal(EventFn fn)
{
    const uint64_t seq = next_seq_++;
    // The final band tops both the hashed ranks (< 2^63) and the
    // zero-delay sequenced band (2^63 | seq), in shuffle and FIFO
    // modes alike, so final events always close out their tick.
    insertNew(now_, kFinalBase | seq, seq, std::move(fn), kNoControl);
}

EventQueue::Handle
EventQueue::scheduleCancelable(Tick delay, EventFn fn)
{
    if (delay < 0)
        delay = 0;
    return scheduleAtCancelable(now_ + delay, std::move(fn));
}

EventQueue::Handle
EventQueue::scheduleAtCancelable(Tick when, EventFn fn)
{
    if (when < now_)
        when = now_;
    const uint32_t slot = allocControl();
    const uint64_t seq = next_seq_++;
    insertNew(when, tieRank(when, seq), seq, std::move(fn), slot);
    return Handle(this, slot, controls_[slot].gen);
}

void
EventQueue::pullFromOverflow(uint64_t limit)
{
    // Adopt the overflow events whose bucket the melt has reached.
    // Pulling lazily — only when `limit` catches up with an event's
    // bucket — keeps far-future timers in the compact heap instead of
    // spreading them across the ring, while advance()'s scan cap
    // guarantees a bucket is never melted past an unpulled event.
    while (!overflow_.empty() &&
           (static_cast<uint64_t>(overflow_.front().when) >>
            kBucketShift) <= limit) {
        Event *event = overflow_.front().event;
        std::pop_heap(overflow_.begin(), overflow_.end(),
                      LaterItem{});
        overflow_.pop_back();
        const uint64_t bucket =
            static_cast<uint64_t>(event->when) >> kBucketShift;
        Event *&head = buckets_[bucket & (kBucketCount - 1)];
        event->next = head;
        head = event;
        ++in_buckets_;
    }
}

bool
EventQueue::advance()
{
    if (!bottom_.empty())
        return true;
    if (in_buckets_ == 0 && overflow_.empty())
        return false;
    const uint64_t overflow_min =
        overflow_.empty()
            ? UINT64_MAX
            : static_cast<uint64_t>(overflow_.front().when) >>
                  kBucketShift;
    // Pick the next bucket to melt: the first non-empty ring bucket,
    // but never past the earliest overflow event — overflow events
    // always sit at or after next_bucket_ (the window never rebases
    // backward), so capping the scan preserves global order.
    uint64_t index;
    if (in_buckets_ == 0) {
        // Ring empty: jump the window straight to the overflow
        // minimum, no scan.
        index = overflow_min;
        next_bucket_ = overflow_min;
    } else {
        index = next_bucket_;
        while (index < overflow_min &&
               buckets_[index & (kBucketCount - 1)] == nullptr)
            ++index;
    }
    if (index >= overflow_min)
        pullFromOverflow(index);
    Event *head = buckets_[index & (kBucketCount - 1)];
    buckets_[index & (kBucketCount - 1)] = nullptr;
    next_bucket_ = index + 1;
    // Melt: bottom_ is empty here, so one sort of the bucket's chain
    // replaces per-event heap maintenance; fireNext then pops from
    // the back for free. Keys are copied into the flat array once so
    // the sort never touches the events again.
    while (head != nullptr) {
        Event *next = head->next;
        bottom_.push_back(
            BottomItem{head->when, head->tie, head->seq, head});
        --in_buckets_;
        head = next;
    }
    if (bottom_.size() > 1)
        std::sort(bottom_.begin(), bottom_.end(), LaterItem{});
    return true;
}

void
EventQueue::fireNext()
{
    Event *event = bottom_.back().event;
    bottom_.pop_back();
    --pending_;
    now_ = event->when;
    // Counted before the cancellation check so the tally is a pure
    // function of the scheduled ticks, unperturbed by within-tick
    // cancellation order.
    if (event->when == last_fired_at_)
        ++same_tick_fired_;
    last_fired_at_ = event->when;
    bool cancelled = false;
    if (event->control != kNoControl)
        cancelled = releaseControl(event->control);
    if (!cancelled) {
        ++fired_total_;
        // The event is already detached from every structure, so the
        // callback may freely schedule (and pool-allocate) more
        // events; its storage is recycled only after it returns.
        event->fn();
    }
    releaseEvent(event);
}

size_t
EventQueue::run(size_t max_events)
{
    size_t fired = 0;
    while (fired < max_events && advance()) {
        fireNext();
        ++fired;
    }
    return fired;
}

size_t
EventQueue::runUntil(Tick until)
{
    size_t fired = 0;
    while (advance() && bottom_.back().when <= until) {
        fireNext();
        ++fired;
    }
    if (now_ < until)
        now_ = until;
    return fired;
}

} // namespace v3sim::sim
