/**
 * @file
 * Per-host memory space: the substrate RDMA and disk DMA move bytes
 * through.
 *
 * Each simulated host owns one MemorySpace. Allocations return stable
 * simulated addresses; reads and writes copy real bytes so
 * integration tests can check end-to-end data integrity through the
 * full client -> VI -> V3 -> disk path. Large workload runs (TPC-C)
 * construct the space in *phantom* mode: addresses and bounds
 * checking behave identically but no bytes are stored, keeping
 * memory use flat.
 *
 * Addresses are allocated from a simple bump allocator with
 * page-granular alignment; free() releases backing storage but never
 * reuses addresses, which makes dangling-handle bugs in higher
 * layers deterministic instead of silently aliasing.
 */

#ifndef V3SIM_SIM_MEMORY_HH
#define V3SIM_SIM_MEMORY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace v3sim::sim
{

/** Simulated physical address. */
using Addr = uint64_t;

constexpr Addr kNullAddr = 0;

/** Page size used for pinning cost accounting (x86 4 KB). */
constexpr uint64_t kPageSize = 4096;

/** Number of pages spanned by [addr, addr+len). */
constexpr uint64_t
pageSpan(Addr addr, uint64_t len)
{
    if (len == 0)
        return 0;
    const Addr first = addr / kPageSize;
    const Addr last = (addr + len - 1) / kPageSize;
    return last - first + 1;
}

/** One host's memory: allocation plus byte-level access. */
class MemorySpace
{
  public:
    /**
     * @param phantom when true, no bytes are backed; reads return
     *        zeros and writes are discarded (bounds still checked).
     */
    explicit MemorySpace(bool phantom = false, std::string name = "");

    MemorySpace(const MemorySpace &) = delete;
    MemorySpace &operator=(const MemorySpace &) = delete;

    bool phantom() const { return phantom_; }
    const std::string &name() const { return name_; }

    /**
     * Allocates @p len bytes, page-aligned. Returns the base address
     * (never kNullAddr). Zero-length allocations are rejected with
     * kNullAddr.
     */
    Addr allocate(uint64_t len);

    /** Releases an allocation made by allocate(). Unknown base
     *  addresses are ignored (idempotent free). */
    void free(Addr base);

    /** True if [addr, addr+len) lies inside one live allocation. */
    bool contains(Addr addr, uint64_t len) const;

    /**
     * Copies @p len bytes from @p src into simulated memory.
     * @return false (and copies nothing) if the range is invalid.
     */
    bool write(Addr addr, const void *src, uint64_t len);

    /** Copies @p len bytes out of simulated memory into @p dst.
     *  Phantom spaces yield zeros. @return false on invalid range. */
    bool read(Addr addr, void *dst, uint64_t len) const;

    /** Fills a range with one byte value (test/pattern helper). */
    bool fill(Addr addr, uint8_t value, uint64_t len);

    /**
     * Copies between two spaces (the DMA primitive). Handles phantom
     * endpoints: phantom-to-real writes zeros, real-to-phantom
     * discards. @return false if either range is invalid.
     */
    static bool copy(const MemorySpace &src, Addr src_addr,
                     MemorySpace &dst, Addr dst_addr, uint64_t len);

    /** Reads an 8-byte little-endian flag (completion-flag helper). */
    uint64_t readU64(Addr addr) const;

    /** Writes an 8-byte little-endian flag. */
    bool writeU64(Addr addr, uint64_t value);

    /** Total bytes currently allocated (live allocations). */
    uint64_t allocatedBytes() const { return allocated_bytes_; }

    /** Number of live allocations. */
    size_t allocationCount() const { return blocks_.size(); }

  private:
    struct Block
    {
        uint64_t len;
        std::vector<uint8_t> bytes; // empty in phantom mode
    };

    /** Finds the block containing [addr, addr+len); nullptr if none. */
    const Block *findBlock(Addr addr, uint64_t len, Addr *base) const;

    bool phantom_;
    std::string name_;
    Addr next_ = kPageSize; // keep kNullAddr unused
    std::map<Addr, Block> blocks_;
    uint64_t allocated_bytes_ = 0;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_MEMORY_HH
