/**
 * @file
 * Simulation context: event queue + root RNG + logging hookup.
 *
 * One Simulation object represents one experiment run. Components
 * receive a reference at construction; there are no globals, so tests
 * can run many simulations in one process.
 */

#ifndef V3SIM_SIM_SIMULATION_HH
#define V3SIM_SIM_SIMULATION_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace v3sim::sim
{

/** One experiment run: clock, events, and deterministic randomness. */
class Simulation
{
  public:
    /** @param seed root seed; all component RNGs fork from it. */
    explicit Simulation(uint64_t seed = 1);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    Tick now() const { return queue_.now(); }

    /** Root RNG; prefer forking per component for stability. */
    Rng &rng() { return rng_; }

    /** Independent RNG substream for a component. */
    Rng forkRng() { return rng_.fork(); }

    /** This run's metric registry (see sim/metrics.hh). */
    MetricRegistry &metrics() { return metrics_; }
    const MetricRegistry &metrics() const { return metrics_; }

    /** Suspends the calling coroutine for @p d. */
    DelayAwaiter sleep(Tick d) { return delay(queue_, d); }

    /** Runs until no events remain. @return events fired. */
    size_t run() { return queue_.run(); }

    /** Runs events up to and including time @p until. */
    size_t runUntil(Tick until) { return queue_.runUntil(until); }

  private:
    EventQueue queue_;
    Rng rng_;
    MetricRegistry metrics_;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_SIMULATION_HH
