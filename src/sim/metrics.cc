#include "metrics.hh"

#include <stdexcept>

#include "util/json.hh"

namespace v3sim::sim
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Sampler: return "sampler";
      case MetricKind::Histogram: return "histogram";
      case MetricKind::TimeWeighted: return "timeweighted";
      case MetricKind::Gauge: return "gauge";
    }
    return "?";
}

MetricRegistry::MetricRegistry(NowFn now) : now_(std::move(now)) {}

void
MetricRegistry::checkNewPath(const std::string &path) const
{
    if (path.empty())
        throw std::invalid_argument("metric path must not be empty");
    if (metrics_.count(path)) {
        throw std::invalid_argument("duplicate metric path: " +
                                    path);
    }
}

Counter &
MetricRegistry::counter(const std::string &path)
{
    checkNewPath(path);
    auto owned = std::make_unique<Counter>();
    Counter &ref = *owned;
    metrics_.emplace(path, std::move(owned));
    return ref;
}

Sampler &
MetricRegistry::sampler(const std::string &path)
{
    checkNewPath(path);
    auto owned = std::make_unique<Sampler>();
    Sampler &ref = *owned;
    metrics_.emplace(path, std::move(owned));
    return ref;
}

Histogram &
MetricRegistry::histogram(const std::string &path)
{
    checkNewPath(path);
    auto owned = std::make_unique<Histogram>();
    Histogram &ref = *owned;
    metrics_.emplace(path, std::move(owned));
    return ref;
}

TimeWeighted &
MetricRegistry::timeWeighted(const std::string &path)
{
    checkNewPath(path);
    auto owned = std::make_unique<TimeWeighted>();
    owned->reset(now(), 0.0);
    TimeWeighted &ref = *owned;
    metrics_.emplace(path, std::move(owned));
    return ref;
}

void
MetricRegistry::gauge(const std::string &path,
                      std::function<double()> fn)
{
    checkNewPath(path);
    if (!fn)
        throw std::invalid_argument("gauge callback must be set");
    metrics_.emplace(path, std::move(fn));
}

void
MetricRegistry::onEpochReset(std::function<void(Tick)> hook)
{
    if (hook)
        hooks_.push_back(std::move(hook));
}

std::string
MetricRegistry::uniquePrefix(const std::string &base)
{
    const uint32_t uses = ++prefix_uses_[base];
    if (uses == 1)
        return base;
    return base + "#" + std::to_string(uses);
}

bool
MetricRegistry::contains(const std::string &path) const
{
    return metrics_.count(path) != 0;
}

const Counter *
MetricRegistry::findCounter(const std::string &path) const
{
    const auto it = metrics_.find(path);
    if (it == metrics_.end())
        return nullptr;
    const auto *owned =
        std::get_if<std::unique_ptr<Counter>>(&it->second);
    return owned ? owned->get() : nullptr;
}

const Sampler *
MetricRegistry::findSampler(const std::string &path) const
{
    const auto it = metrics_.find(path);
    if (it == metrics_.end())
        return nullptr;
    const auto *owned =
        std::get_if<std::unique_ptr<Sampler>>(&it->second);
    return owned ? owned->get() : nullptr;
}

const Histogram *
MetricRegistry::findHistogram(const std::string &path) const
{
    const auto it = metrics_.find(path);
    if (it == metrics_.end())
        return nullptr;
    const auto *owned =
        std::get_if<std::unique_ptr<Histogram>>(&it->second);
    return owned ? owned->get() : nullptr;
}

const TimeWeighted *
MetricRegistry::findTimeWeighted(const std::string &path) const
{
    const auto it = metrics_.find(path);
    if (it == metrics_.end())
        return nullptr;
    const auto *owned =
        std::get_if<std::unique_ptr<TimeWeighted>>(&it->second);
    return owned ? owned->get() : nullptr;
}

void
MetricRegistry::resetEpoch()
{
    const Tick at = now();
    for (auto &[path, stored] : metrics_) {
        std::visit(
            [at](auto &metric) {
                using T = std::decay_t<decltype(metric)>;
                if constexpr (std::is_same_v<
                                  T, std::unique_ptr<Counter>> ||
                              std::is_same_v<
                                  T, std::unique_ptr<Sampler>> ||
                              std::is_same_v<
                                  T, std::unique_ptr<Histogram>>) {
                    metric->reset();
                } else if constexpr (std::is_same_v<
                                         T, std::unique_ptr<
                                                TimeWeighted>>) {
                    metric->reset(at, metric->current());
                }
                // Gauges are derived; nothing to reset.
            },
            stored);
    }
    for (const auto &hook : hooks_)
        hook(at);
    epoch_start_ = at;
}

MetricRegistry::Snapshot
MetricRegistry::snapshot() const
{
    const Tick at = now();
    Snapshot snap;
    for (const auto &[path, stored] : metrics_) {
        Value v;
        std::visit(
            [&v, at](const auto &metric) {
                using T = std::decay_t<decltype(metric)>;
                if constexpr (std::is_same_v<
                                  T, std::unique_ptr<Counter>>) {
                    v.kind = MetricKind::Counter;
                    v.count = metric->value();
                } else if constexpr (std::is_same_v<
                                         T,
                                         std::unique_ptr<Sampler>>) {
                    v.kind = MetricKind::Sampler;
                    v.count = metric->count();
                    v.sum = metric->sum();
                    v.mean = metric->mean();
                    v.min = metric->min();
                    v.max = metric->max();
                    v.stddev = metric->stddev();
                } else if constexpr (std::is_same_v<
                                         T, std::unique_ptr<
                                                Histogram>>) {
                    v.kind = MetricKind::Histogram;
                    v.count = metric->count();
                    v.p50 = metric->quantile(0.50);
                    v.p95 = metric->quantile(0.95);
                    v.p99 = metric->quantile(0.99);
                } else if constexpr (std::is_same_v<
                                         T, std::unique_ptr<
                                                TimeWeighted>>) {
                    v.kind = MetricKind::TimeWeighted;
                    v.value = metric->current();
                    v.average = metric->average(at);
                } else {
                    v.kind = MetricKind::Gauge;
                    v.value = metric();
                }
            },
            stored);
        snap.emplace(path, v);
    }
    return snap;
}

MetricRegistry::Snapshot
MetricRegistry::delta(const Snapshot &before, const Snapshot &after)
{
    Snapshot out;
    for (const auto &[path, a] : after) {
        Value v = a;
        const auto it = before.find(path);
        if (it != before.end() && it->second.kind == a.kind) {
            const Value &b = it->second;
            switch (a.kind) {
              case MetricKind::Counter:
                v.count = a.count - b.count;
                break;
              case MetricKind::Sampler:
                v.count = a.count - b.count;
                v.sum = a.sum - b.sum;
                v.mean = v.count
                             ? v.sum / static_cast<double>(v.count)
                             : 0.0;
                break;
              case MetricKind::Histogram:
                v.count = a.count - b.count;
                break;
              case MetricKind::TimeWeighted:
              case MetricKind::Gauge:
                break; // point-in-time readings: keep `after`
            }
        }
        out.emplace(path, v);
    }
    return out;
}

std::string
MetricRegistry::toJson() const
{
    return toJson(snapshot());
}

std::string
MetricRegistry::toJson(const Snapshot &snap)
{
    util::JsonWriter w;
    w.beginObject();
    for (const auto &[path, v] : snap) {
        w.key(path).beginObject();
        w.key("kind").value(metricKindName(v.kind));
        switch (v.kind) {
          case MetricKind::Counter:
            w.key("count").value(v.count);
            break;
          case MetricKind::Sampler:
            w.key("count").value(v.count);
            w.key("sum").value(v.sum);
            w.key("mean").value(v.mean);
            w.key("min").value(v.min);
            w.key("max").value(v.max);
            w.key("stddev").value(v.stddev);
            break;
          case MetricKind::Histogram:
            w.key("count").value(v.count);
            w.key("p50").value(v.p50);
            w.key("p95").value(v.p95);
            w.key("p99").value(v.p99);
            break;
          case MetricKind::TimeWeighted:
            w.key("value").value(v.value);
            w.key("average").value(v.average);
            break;
          case MetricKind::Gauge:
            w.key("value").value(v.value);
            break;
        }
        w.endObject();
    }
    w.endObject();
    return w.str();
}

} // namespace v3sim::sim
