#include "metrics.hh"

#include <stdexcept>

#include "util/json.hh"

namespace v3sim::sim
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Sampler: return "sampler";
      case MetricKind::Histogram: return "histogram";
      case MetricKind::TimeWeighted: return "timeweighted";
      case MetricKind::Gauge: return "gauge";
    }
    return "?";
}

MetricRegistry::MetricRegistry(NowFn now) : now_(std::move(now)) {}

void
MetricRegistry::checkNewPath(const std::string &path) const
{
    if (path.empty())
        throw std::invalid_argument("metric path must not be empty");
    if (index_.count(path)) {
        throw std::invalid_argument("duplicate metric path: " +
                                    path);
    }
}

const MetricRegistry::Entry *
MetricRegistry::find(const std::string &path, MetricKind kind) const
{
    const auto it = index_.find(path);
    if (it == index_.end() || it->second.kind != kind)
        return nullptr;
    return &it->second;
}

CounterHandle
MetricRegistry::counter(const std::string &path)
{
    checkNewPath(path);
    counters_.emplace_back();
    index_.emplace(path,
                   Entry{MetricKind::Counter, counters_.size() - 1});
    return CounterHandle(&counters_.back());
}

SamplerHandle
MetricRegistry::sampler(const std::string &path)
{
    checkNewPath(path);
    samplers_.emplace_back();
    index_.emplace(path,
                   Entry{MetricKind::Sampler, samplers_.size() - 1});
    return SamplerHandle(&samplers_.back());
}

HistogramHandle
MetricRegistry::histogram(const std::string &path)
{
    checkNewPath(path);
    histograms_.emplace_back();
    index_.emplace(path, Entry{MetricKind::Histogram,
                               histograms_.size() - 1});
    return HistogramHandle(&histograms_.back());
}

TimeWeightedHandle
MetricRegistry::timeWeighted(const std::string &path)
{
    checkNewPath(path);
    time_weighted_.emplace_back();
    time_weighted_.back().reset(now(), 0.0);
    index_.emplace(path, Entry{MetricKind::TimeWeighted,
                               time_weighted_.size() - 1});
    return TimeWeightedHandle(&time_weighted_.back());
}

void
MetricRegistry::gauge(const std::string &path,
                      std::function<double()> fn)
{
    checkNewPath(path);
    if (!fn)
        throw std::invalid_argument("gauge callback must be set");
    gauges_.push_back(std::move(fn));
    index_.emplace(path,
                   Entry{MetricKind::Gauge, gauges_.size() - 1});
}

void
MetricRegistry::onEpochReset(std::function<void(Tick)> hook)
{
    if (hook)
        hooks_.push_back(std::move(hook));
}

std::string
MetricRegistry::uniquePrefix(const std::string &base)
{
    const uint32_t uses = ++prefix_uses_[base];
    if (uses == 1)
        return base;
    return base + "#" + std::to_string(uses);
}

bool
MetricRegistry::contains(const std::string &path) const
{
    return index_.count(path) != 0;
}

const Counter *
MetricRegistry::findCounter(const std::string &path) const
{
    const Entry *entry = find(path, MetricKind::Counter);
    return entry ? &counters_[entry->index] : nullptr;
}

const Sampler *
MetricRegistry::findSampler(const std::string &path) const
{
    const Entry *entry = find(path, MetricKind::Sampler);
    return entry ? &samplers_[entry->index] : nullptr;
}

const Histogram *
MetricRegistry::findHistogram(const std::string &path) const
{
    const Entry *entry = find(path, MetricKind::Histogram);
    return entry ? &histograms_[entry->index] : nullptr;
}

const TimeWeighted *
MetricRegistry::findTimeWeighted(const std::string &path) const
{
    const Entry *entry = find(path, MetricKind::TimeWeighted);
    return entry ? &time_weighted_[entry->index] : nullptr;
}

void
MetricRegistry::resetEpoch()
{
    const Tick at = now();
    // Reset order is irrelevant (each metric is independent), so the
    // per-kind stores are walked directly instead of via the index.
    for (auto &counter : counters_)
        counter.reset();
    for (auto &sampler : samplers_)
        sampler.reset();
    for (auto &histogram : histograms_)
        histogram.reset();
    for (auto &tw : time_weighted_)
        tw.reset(at, tw.current());
    // Gauges are derived; nothing to reset.
    for (const auto &hook : hooks_)
        hook(at);
    epoch_start_ = at;
}

MetricRegistry::Snapshot
MetricRegistry::snapshot() const
{
    const Tick at = now();
    Snapshot snap;
    for (const auto &[path, entry] : index_) {
        Value v;
        v.kind = entry.kind;
        switch (entry.kind) {
          case MetricKind::Counter:
            v.count = counters_[entry.index].value();
            break;
          case MetricKind::Sampler: {
            const Sampler &s = samplers_[entry.index];
            v.count = s.count();
            v.sum = s.sum();
            v.mean = s.mean();
            v.min = s.min();
            v.max = s.max();
            v.stddev = s.stddev();
            break;
          }
          case MetricKind::Histogram: {
            const Histogram &h = histograms_[entry.index];
            v.count = h.count();
            v.p50 = h.quantile(0.50);
            v.p95 = h.quantile(0.95);
            v.p99 = h.quantile(0.99);
            v.p999 = h.quantile(0.999);
            break;
          }
          case MetricKind::TimeWeighted: {
            const TimeWeighted &tw = time_weighted_[entry.index];
            v.value = tw.current();
            v.average = tw.average(at);
            break;
          }
          case MetricKind::Gauge:
            v.value = gauges_[entry.index]();
            break;
        }
        snap.emplace(path, v);
    }
    return snap;
}

MetricRegistry::Snapshot
MetricRegistry::delta(const Snapshot &before, const Snapshot &after)
{
    Snapshot out;
    for (const auto &[path, a] : after) {
        Value v = a;
        const auto it = before.find(path);
        if (it != before.end() && it->second.kind == a.kind) {
            const Value &b = it->second;
            switch (a.kind) {
              case MetricKind::Counter:
                v.count = a.count - b.count;
                break;
              case MetricKind::Sampler:
                v.count = a.count - b.count;
                v.sum = a.sum - b.sum;
                v.mean = v.count
                             ? v.sum / static_cast<double>(v.count)
                             : 0.0;
                break;
              case MetricKind::Histogram:
                v.count = a.count - b.count;
                break;
              case MetricKind::TimeWeighted:
              case MetricKind::Gauge:
                break; // point-in-time readings: keep `after`
            }
        }
        out.emplace(path, v);
    }
    return out;
}

std::string
MetricRegistry::toJson() const
{
    return toJson(snapshot());
}

std::string
MetricRegistry::toJson(const Snapshot &snap)
{
    util::JsonWriter w;
    w.beginObject();
    for (const auto &[path, v] : snap) {
        w.key(path).beginObject();
        w.key("kind").value(metricKindName(v.kind));
        switch (v.kind) {
          case MetricKind::Counter:
            w.key("count").value(v.count);
            break;
          case MetricKind::Sampler:
            w.key("count").value(v.count);
            w.key("sum").value(v.sum);
            w.key("mean").value(v.mean);
            w.key("min").value(v.min);
            w.key("max").value(v.max);
            w.key("stddev").value(v.stddev);
            break;
          case MetricKind::Histogram:
            w.key("count").value(v.count);
            w.key("p50").value(v.p50);
            w.key("p95").value(v.p95);
            w.key("p99").value(v.p99);
            w.key("p999").value(v.p999);
            break;
          case MetricKind::TimeWeighted:
            w.key("value").value(v.value);
            w.key("average").value(v.average);
            break;
          case MetricKind::Gauge:
            w.key("value").value(v.value);
            break;
        }
        w.endObject();
    }
    w.endObject();
    return w.str();
}

} // namespace v3sim::sim
