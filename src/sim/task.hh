/**
 * @file
 * C++20 coroutine support for the simulator.
 *
 * Model code (DSA protocol paths, the V3 server pipeline, database
 * workers) is written as coroutines so multi-step interactions read
 * as straight-line code while the engine remains a plain event queue.
 *
 * Types:
 *  - Task<T>: a lazy coroutine; `co_await`ing it starts it and
 *    resumes the awaiter with the result when it finishes (symmetric
 *    transfer, no stack growth across chains).
 *  - spawn(): starts a Task<> as a detached root activity whose frame
 *    frees itself on completion.
 *  - delay(): suspends the current coroutine for simulated time.
 *  - Completion<T>: a one-shot box bridging callback APIs into
 *    `co_await` (set() resumes the waiter synchronously).
 *  - CondEvent: a broadcast wakeup with manual state (flow-control
 *    "credits available" style waits).
 *
 * Exceptions escaping a coroutine terminate the process: simulation
 * models report errors through return values, never by throwing
 * across scheduling boundaries.
 */

#ifndef V3SIM_SIM_TASK_HH
#define V3SIM_SIM_TASK_HH

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/frame_arena.hh"
#include "sim/types.hh"

namespace v3sim::sim
{

template <typename T>
class Task;

namespace detail
{

/** Final awaiter: transfers control back to whoever awaited us. */
template <typename Promise>
struct FinalAwaiter
{
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) const noexcept
    {
        auto continuation = h.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

struct PromiseBase
{
    std::coroutine_handle<> continuation;

    /** Frames come from the arena; only the sized form is declared,
     *  so the compiler must (and does) call it on frame destruction. */
    void *operator new(size_t size) { return FrameArena::allocate(size); }

    void
    operator delete(void *ptr, size_t size) noexcept
    {
        FrameArena::deallocate(ptr, size);
    }

    std::suspend_always initial_suspend() const noexcept { return {}; }

    [[noreturn]] void
    unhandled_exception() const noexcept
    {
        std::fputs("v3sim: exception escaped a simulation coroutine\n",
                   stderr);
        std::terminate();
    }
};

} // namespace detail

/**
 * A lazy coroutine returning T. Move-only; owns the coroutine frame.
 * Await it exactly once. A Task must be driven to completion (or
 * never started) before destruction; destroying a started-but-
 * suspended task is a programming error checked by assertion.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        detail::FinalAwaiter<promise_type>
        final_suspend() const noexcept
        {
            return {};
        }

        void return_value(T v) { value.emplace(std::move(v)); }
    };

    Task() = default;

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr)),
          started_(std::exchange(other.started_, false))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
            started_ = std::exchange(other.started_, false);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    /** Awaiting starts the task and yields its result. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            Task *task;

            bool await_ready() const { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> continuation)
            {
                task->started_ = true;
                task->handle_.promise().continuation = continuation;
                return task->handle_;
            }

            T
            await_resume()
            {
                return std::move(*task->handle_.promise().value);
            }
        };
        assert(handle_ && !started_ && "task must be awaited once");
        return Awaiter{this};
    }

  private:
    explicit Task(std::coroutine_handle<promise_type> handle)
        : handle_(handle)
    {}

    void
    destroy()
    {
        if (handle_) {
            assert((!started_ || handle_.done()) &&
                   "destroying a suspended in-flight task");
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
    bool started_ = false;
};

/** Task specialization for void results. */
template <>
class [[nodiscard]] Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        detail::FinalAwaiter<promise_type>
        final_suspend() const noexcept
        {
            return {};
        }

        void return_void() const {}
    };

    Task() = default;

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr)),
          started_(std::exchange(other.started_, false))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
            started_ = std::exchange(other.started_, false);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            Task *task;

            bool await_ready() const { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> continuation)
            {
                task->started_ = true;
                task->handle_.promise().continuation = continuation;
                return task->handle_;
            }

            void await_resume() const {}
        };
        assert(handle_ && !started_ && "task must be awaited once");
        return Awaiter{this};
    }

  private:
    explicit Task(std::coroutine_handle<promise_type> handle)
        : handle_(handle)
    {}

    void
    destroy()
    {
        if (handle_) {
            assert((!started_ || handle_.done()) &&
                   "destroying a suspended in-flight task");
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
    bool started_ = false;
};

namespace detail
{

/** Eager, self-destroying coroutine used to root detached tasks. */
struct DetachedTask
{
    struct promise_type
    {
        void *
        operator new(size_t size)
        {
            return FrameArena::allocate(size);
        }

        void
        operator delete(void *ptr, size_t size) noexcept
        {
            FrameArena::deallocate(ptr, size);
        }

        DetachedTask get_return_object() const { return {}; }
        std::suspend_never initial_suspend() const noexcept { return {}; }
        std::suspend_never final_suspend() const noexcept { return {}; }
        void return_void() const {}

        [[noreturn]] void
        unhandled_exception() const noexcept
        {
            std::fputs(
                "v3sim: exception escaped a detached coroutine\n",
                stderr);
            std::terminate();
        }
    };
};

inline DetachedTask
spawnImpl(Task<void> task)
{
    co_await std::move(task);
}

} // namespace detail

/**
 * Starts @p task as a detached root activity. The coroutine frame
 * lives until the task completes, then frees itself.
 */
inline void
spawn(Task<void> task)
{
    detail::spawnImpl(std::move(task));
}

/** Awaitable that suspends the current coroutine for @p d ticks. */
struct DelayAwaiter
{
    EventQueue &queue;
    Tick d;

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        queue.schedule(d, [h] { h.resume(); });
    }

    void await_resume() const {}
};

/** co_await delay(queue, usecs(5)); */
inline DelayAwaiter
delay(EventQueue &queue, Tick d)
{
    return DelayAwaiter{queue, d};
}

/**
 * One-shot value box bridging callback APIs to coroutines.
 *
 * Exactly one producer calls set() exactly once; exactly one consumer
 * awaits wait() at most once. If the value is already set, wait()
 * completes immediately; otherwise set() resumes the waiter
 * synchronously.
 */
template <typename T = void>
class Completion
{
  public:
    Completion() = default;
    Completion(const Completion &) = delete;
    Completion &operator=(const Completion &) = delete;

    bool ready() const { return value_.has_value(); }

    void
    set(T value)
    {
        assert(!value_.has_value() && "Completion set twice");
        value_.emplace(std::move(value));
        if (waiter_) {
            auto w = std::exchange(waiter_, nullptr);
            w.resume();
        }
    }

    auto
    wait()
    {
        struct Awaiter
        {
            Completion *completion;

            bool await_ready() const { return completion->ready(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                assert(!completion->waiter_ && "single waiter only");
                completion->waiter_ = h;
            }

            T await_resume() { return std::move(*completion->value_); }
        };
        return Awaiter{this};
    }

  private:
    std::optional<T> value_;
    std::coroutine_handle<> waiter_;
};

/** Completion specialization carrying no value. */
template <>
class Completion<void>
{
  public:
    Completion() = default;
    Completion(const Completion &) = delete;
    Completion &operator=(const Completion &) = delete;

    bool ready() const { return done_; }

    void
    set()
    {
        assert(!done_ && "Completion set twice");
        done_ = true;
        if (waiter_) {
            auto w = std::exchange(waiter_, nullptr);
            w.resume();
        }
    }

    auto
    wait()
    {
        struct Awaiter
        {
            Completion *completion;

            bool await_ready() const { return completion->done_; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                assert(!completion->waiter_ && "single waiter only");
                completion->waiter_ = h;
            }

            void await_resume() const {}
        };
        return Awaiter{this};
    }

  private:
    bool done_ = false;
    std::coroutine_handle<> waiter_;
};

/**
 * Counts outstanding sub-activities and wakes one waiter when the
 * count reaches zero (fan-out/fan-in, e.g. a RAID stripe issuing to
 * several disks). add() before spawning, done() in each activity,
 * then co_await wait().
 */
class WaitGroup
{
  public:
    WaitGroup() = default;
    WaitGroup(const WaitGroup &) = delete;
    WaitGroup &operator=(const WaitGroup &) = delete;

    void add(int n = 1) { count_ += n; }

    void
    done()
    {
        assert(count_ > 0);
        if (--count_ == 0 && waiter_) {
            auto w = std::exchange(waiter_, nullptr);
            w.resume();
        }
    }

    int pending() const { return count_; }

    auto
    wait()
    {
        struct Awaiter
        {
            WaitGroup *group;

            bool await_ready() const { return group->count_ == 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                assert(!group->waiter_ && "single waiter only");
                group->waiter_ = h;
            }

            void await_resume() const {}
        };
        return Awaiter{this};
    }

  private:
    int count_ = 0;
    std::coroutine_handle<> waiter_;
};

/**
 * Broadcast wakeup: any number of coroutines block in wait() until
 * notifyAll() resumes every current waiter. Waiters added during a
 * notification round are not woken by that round (classic condition-
 * variable semantics). Callers must re-check their predicate.
 */
class CondEvent
{
  public:
    CondEvent() = default;
    CondEvent(const CondEvent &) = delete;
    CondEvent &operator=(const CondEvent &) = delete;

    size_t waiterCount() const { return waiters_.size(); }

    void
    notifyAll()
    {
        std::vector<std::coroutine_handle<>> batch;
        batch.swap(waiters_);
        for (auto h : batch)
            h.resume();
    }

    auto
    wait()
    {
        struct Awaiter
        {
            CondEvent *event;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                event->waiters_.push_back(h);
            }

            void await_resume() const {}
        };
        return Awaiter{this};
    }

  private:
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_TASK_HH
