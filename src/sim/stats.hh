/**
 * @file
 * Statistics primitives used throughout the simulator.
 *
 * Four shapes cover everything the experiments need:
 *  - Counter: monotone event counts (I/Os issued, interrupts taken).
 *  - Sampler: scalar samples with mean/min/max/stddev (latencies).
 *  - Histogram: fixed log2 buckets with percentile queries.
 *  - TimeWeighted: a value integrated over simulated time
 *    (queue depths, utilizations).
 */

#ifndef V3SIM_SIM_STATS_HH
#define V3SIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "sim/types.hh"

namespace v3sim::sim
{

/** Monotone event counter. */
class Counter
{
  public:
    void increment(uint64_t by = 1) { value_ += by; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * Scalar sample accumulator: mean, min, max, stddev.
 *
 * Variance uses Welford's online algorithm: the naive
 * sum-of-squares form cancels catastrophically (variance can even
 * go negative) when samples are large relative to their spread —
 * exactly the regime of nanosecond-scale latencies over long runs.
 */
class Sampler
{
  public:
    void add(double sample);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population standard deviation. */
    double stddev() const;

    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0; ///< sum of squared deviations from the mean
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over non-negative values with 64 log2 buckets
 * (bucket b holds values in [2^b, 2^(b+1)); values < 1 go to bucket
 * 0). Percentiles are answered at bucket midpoints, which is plenty
 * for latency-distribution shape checks.
 */
class Histogram
{
  public:
    void add(double value);

    uint64_t count() const { return count_; }

    /** Approximate value at quantile @p q in [0, 1]. */
    double quantile(double q) const;

    void reset();

  private:
    static constexpr int kBuckets = 64;
    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
};

/**
 * Integrates a piecewise-constant value over simulated time.
 * Typical uses: average queue depth, busy-fraction of a resource.
 */
class TimeWeighted
{
  public:
    /** Records that the value changed to @p value at time @p now. */
    void set(Tick now, double value);

    /** Adds @p delta to the current value at time @p now. */
    void adjust(Tick now, double delta) { set(now, current_ + delta); }

    double current() const { return current_; }

    /** Time-average of the value over [start, now]. */
    double average(Tick now) const;

    /** Resets integration to start at @p now with value @p value. */
    void reset(Tick now, double value = 0.0);

  private:
    double current_ = 0.0;
    double integral_ = 0.0;
    Tick start_ = 0;
    Tick last_ = 0;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_STATS_HH
