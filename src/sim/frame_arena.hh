/**
 * @file
 * Size-bucketed freelist arena for coroutine frames.
 *
 * Every simulated IO walks several short-lived coroutine frames
 * (issue path, completion bridge, server pipeline stages); with the
 * general-purpose allocator those frames are the hottest malloc/free
 * traffic in the whole simulator. The arena recycles freed frames on
 * per-size freelists, so after warm-up the steady state performs no
 * heap calls at all on the coroutine path.
 *
 * Properties:
 *  - Sizes are rounded up to 64-byte granules; classes up to 4 KiB
 *    are pooled, larger frames fall through to ::operator new.
 *  - Freed frames are retained for reuse, never returned to the
 *    heap: the retained set is bounded by the peak number of live
 *    frames per size class, which the workload bounds by its
 *    concurrency (outstanding IOs x pipeline depth).
 *  - Single-threaded by design, like the simulator itself.
 *  - Recycling affects only host memory addresses, which no model
 *    code observes, so simulation results are bit-identical with or
 *    without the arena.
 */

#ifndef V3SIM_SIM_FRAME_ARENA_HH
#define V3SIM_SIM_FRAME_ARENA_HH

#include <cstddef>
#include <new>

namespace v3sim::sim
{

class FrameArena
{
  public:
    static void *
    allocate(std::size_t size)
    {
        const std::size_t cls = classOf(size);
        if (cls >= kClasses)
            return ::operator new(size);
        FreeNode *&head = lists()[cls];
        if (head != nullptr) {
            FreeNode *node = head;
            head = node->next;
            return node;
        }
        return ::operator new((cls + 1) * kGranule);
    }

    static void
    deallocate(void *ptr, std::size_t size) noexcept
    {
        const std::size_t cls = classOf(size);
        if (cls >= kClasses) {
            ::operator delete(ptr);
            return;
        }
        auto *node = static_cast<FreeNode *>(ptr);
        node->next = lists()[cls];
        lists()[cls] = node;
    }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kClasses = 64; // pools up to 4 KiB

    static std::size_t
    classOf(std::size_t size)
    {
        return (size + kGranule - 1) / kGranule - 1;
    }

    /** Freelist heads; function-local so header-only use is safe. */
    static FreeNode **
    lists()
    {
        static FreeNode *heads[kClasses] = {};
        return heads;
    }
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_FRAME_ARENA_HH
