/**
 * @file
 * The discrete-event queue at the core of the simulator.
 *
 * Events are (time, callback) pairs ordered by time with FIFO
 * tie-breaking via a monotonically increasing sequence number, which
 * makes runs fully deterministic for a given seed. Events can be
 * cancelled through the Handle returned at scheduling time (used by
 * DSA retransmission timers, cDSA poll-timeout fallbacks, etc.).
 *
 * Tie-shuffle debug mode (DESIGN.md §8): setTieShuffle(seed)
 * randomizes the ordering of *independently scheduled* events that
 * land on the same tick — the sim-domain analog of a data-race
 * detector. Any simulation state whose final value depends on the
 * unspecified same-timestamp tiebreak shows up as a metrics diff
 * between runs with different shuffle seeds (see abl_determinism).
 * Zero-delay events keep their documented ordering ("fires this
 * tick, after already-queued same-time events") so intra-operation
 * continuation chains stay causally sequenced; only events scheduled
 * for a then-future tick — true cross-source races — are permuted.
 */

#ifndef V3SIM_SIM_EVENT_QUEUE_HH
#define V3SIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace v3sim::sim
{

/** Min-heap of timed callbacks with deterministic ordering. */
class EventQueue
{
  public:
    /**
     * Cancellation handle for a scheduled event. Default-constructed
     * handles are inert. Cancelling an already-fired event is a
     * harmless no-op.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** Prevents the event from firing if it has not fired yet. */
        void
        cancel()
        {
            if (auto ctl = control_.lock())
                ctl->cancelled = true;
        }

        /** True if the event is still scheduled and not cancelled. */
        bool
        pending() const
        {
            auto ctl = control_.lock();
            return ctl && !ctl->cancelled && !ctl->fired;
        }

      private:
        friend class EventQueue;

        struct Control
        {
            bool cancelled = false;
            bool fired = false;
        };

        explicit Handle(std::shared_ptr<Control> control)
            : control_(std::move(control))
        {}

        std::weak_ptr<Control> control_;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedules @p fn to run @p delay after now. Negative delays clamp
     *  to zero (fires this tick, after already-queued same-time events).
     */
    Handle schedule(Tick delay, std::function<void()> fn);

    /** Schedules @p fn at absolute time @p when (>= now, else clamped). */
    Handle scheduleAt(Tick when, std::function<void()> fn);

    /**
     * Schedules @p fn in the current tick's *final band*: it fires
     * after every other event of this tick — already queued or yet to
     * be scheduled, zero-delay chains included — with FIFO order
     * among final events themselves. Zero-delay events spawned *by* a
     * final event still precede the remaining final events of the
     * tick, so an arbitration callback sees the effects of the chains
     * it races with.
     *
     * This is the hook for contention arbitration points (disk queue
     * pick, SimLock batch grant): deciding in the final band makes
     * the decision a function of the *set* of same-tick contenders
     * rather than of their (unspecified, tie-shuffled) arrival order.
     * See DESIGN.md §8.3.
     */
    Handle scheduleFinal(std::function<void()> fn);

    /** Number of events scheduled but not yet fired or cancelled. */
    size_t pendingCount() const { return pending_; }

    /** True when no runnable events remain. */
    bool empty() const { return pending_ == 0; }

    /**
     * Runs events until the queue drains or @p max_events fire.
     * @return the number of events fired.
     */
    size_t run(size_t max_events = SIZE_MAX);

    /**
     * Runs all events with time <= @p until; afterwards now() == until
     * (unless the queue drained past it first, in which case now() is
     * still advanced to @p until).
     * @return the number of events fired.
     */
    size_t runUntil(Tick until);

    /** Total events fired over the queue's lifetime. */
    uint64_t firedCount() const { return fired_total_; }

    /** Popped events (cancelled included) that shared their tick with
     *  the previously popped event — the same-tick ties whose order
     *  tie-shuffle permutes. A function of the multiset of scheduled
     *  ticks only, so invariant across shuffle seeds; abl_determinism
     *  reports it as evidence the shuffled runs had races to
     *  permute. */
    uint64_t sameTickFired() const { return same_tick_fired_; }

    /**
     * Enables tie-shuffle mode: events scheduled for a future tick
     * get a seed-derived pseudo-random same-tick rank instead of the
     * FIFO sequence rank. Deterministic for a given seed. Affects
     * events scheduled after the call; zero-delay events (when <=
     * now) always keep FIFO ordering after already-queued same-tick
     * events. Debug/CI feature — see DESIGN.md §8.
     */
    void setTieShuffle(uint64_t seed)
    {
        tie_shuffle_ = true;
        tie_seed_ = seed;
    }

    /** Returns to pure-FIFO tie-breaking for future events. */
    void clearTieShuffle() { tie_shuffle_ = false; }

    bool tieShuffleEnabled() const { return tie_shuffle_; }

  private:
    struct Event
    {
        Tick when;
        /** Same-tick rank: FIFO sequence number, or a seed-derived
         *  hash under tie-shuffle (always < 2^63 for hashed ranks,
         *  >= 2^63 for zero-delay events so they stay last). */
        uint64_t tie;
        uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<Handle::Control> control;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.tie != b.tie)
                return a.tie > b.tie;
            return a.seq > b.seq;
        }
    };

    /** Pops and fires the next event. Precondition: !heap_.empty(). */
    void fireNext();

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    uint64_t next_seq_ = 0;
    size_t pending_ = 0;
    uint64_t fired_total_ = 0;
    uint64_t same_tick_fired_ = 0;
    Tick last_fired_at_ = -1;
    bool tie_shuffle_ = false;
    uint64_t tie_seed_ = 0;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_EVENT_QUEUE_HH
