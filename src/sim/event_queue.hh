/**
 * @file
 * The discrete-event queue at the core of the simulator.
 *
 * Events are (time, callback) pairs ordered by time with FIFO
 * tie-breaking via a monotonically increasing sequence number, which
 * makes runs fully deterministic for a given seed. The total order
 * is (when, tie, seq) — identical to the original binary-heap
 * implementation — but the storage is a two-tier ladder queue tuned
 * for the simulator's near-future-heavy schedule mix:
 *
 *  - a small sorted "bottom" region of events below the drained-
 *    bucket horizon (the events that can still fire before the next
 *    bucket is touched); sorted once per bucket melt, popped from
 *    the back,
 *  - a ring of fixed-width buckets (unsorted intrusive lists)
 *    covering the near future; a bucket is sorted only when it
 *    becomes the next to fire, by melting it into the bottom heap,
 *  - an overflow min-heap for events beyond the bucket window,
 *    pulled into buckets when the window rebases past them.
 *
 * Every region orders (or defers ordering of) events by the same
 * (when, tie, seq) key and region boundaries are pure functions of
 * `when`, so the queue pops the exact sequence the single heap did —
 * see DESIGN.md §10 for the invariants. Events themselves are
 * pool-allocated and intrusive (the bucket link lives in the event),
 * and callbacks are stored inline via sim::EventFn, so the
 * `schedule()` fast path performs no allocation at all once the pool
 * is warm. Cancellation handles are opt-in (`scheduleCancelable`)
 * and use generation-counted slots instead of shared_ptr control
 * blocks.
 *
 * Tie-shuffle debug mode (DESIGN.md §8): setTieShuffle(seed)
 * randomizes the ordering of *independently scheduled* events that
 * land on the same tick — the sim-domain analog of a data-race
 * detector. Any simulation state whose final value depends on the
 * unspecified same-timestamp tiebreak shows up as a metrics diff
 * between runs with different shuffle seeds (see abl_determinism).
 * Zero-delay events keep their documented ordering ("fires this
 * tick, after already-queued same-time events") so intra-operation
 * continuation chains stay causally sequenced; only events scheduled
 * for a then-future tick — true cross-source races — are permuted.
 */

#ifndef V3SIM_SIM_EVENT_QUEUE_HH
#define V3SIM_SIM_EVENT_QUEUE_HH

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/types.hh"

namespace v3sim::sim
{

/** Deterministic ladder queue of timed callbacks. */
class EventQueue
{
  public:
    /**
     * Cancellation handle for an event scheduled through one of the
     * *Cancelable entry points. Default-constructed handles are
     * inert; copies all refer to the same event. Cancelling an
     * already-fired event is a harmless no-op: the handle carries a
     * generation counter and goes stale the moment its event pops
     * (or its slot is reused), so no shared control block exists.
     *
     * Lifetime rule: a Handle must not outlive its EventQueue (it
     * holds a plain pointer back to it). Every in-tree holder is a
     * component owned by the same Simulation, which satisfies this
     * by construction; see DESIGN.md §10.3.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** Prevents the event from firing if it has not fired yet. */
        void
        cancel()
        {
            if (queue_ != nullptr)
                queue_->cancelSlot(slot_, gen_);
        }

        /** True if the event is still scheduled and not cancelled. */
        bool
        pending() const
        {
            return queue_ != nullptr &&
                   queue_->slotPending(slot_, gen_);
        }

      private:
        friend class EventQueue;

        Handle(EventQueue *queue, uint32_t slot, uint32_t gen)
            : queue_(queue), slot_(slot), gen_(gen)
        {}

        EventQueue *queue_ = nullptr;
        uint32_t slot_ = 0;
        uint32_t gen_ = 0;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedules @p fn to run @p delay after now. Negative delays
     * clamp to zero (fires this tick, after already-queued same-time
     * events). Fire-and-forget: no cancellation handle, no control
     * slot, and — for callables within EventFn's inline budget — no
     * allocation.
     */
    void schedule(Tick delay, EventFn fn);

    /** Schedules @p fn at absolute time @p when (>= now, else
     *  clamped). Fire-and-forget, like schedule(). */
    void scheduleAt(Tick when, EventFn fn);

    /**
     * Schedules @p fn in the current tick's *final band*: it fires
     * after every other event of this tick — already queued or yet to
     * be scheduled, zero-delay chains included — with FIFO order
     * among final events themselves. Zero-delay events spawned *by* a
     * final event still precede the remaining final events of the
     * tick, so an arbitration callback sees the effects of the chains
     * it races with.
     *
     * This is the hook for contention arbitration points (disk queue
     * pick, SimLock batch grant): deciding in the final band makes
     * the decision a function of the *set* of same-tick contenders
     * rather than of their (unspecified, tie-shuffled) arrival order.
     * See DESIGN.md §8.3.
     */
    void scheduleFinal(EventFn fn);

    /**
     * Awaitable form of scheduleFinal(): resumes the coroutine in the
     * current tick's final band. Lets a level-sensitive check — "is
     * the receive queue really empty before I re-arm?" — defer its
     * decision until every same-tick event has run, so the answer is
     * a function of the tick's full event set rather than of the
     * shuffled order between the check and a same-tick arrival
     * (DESIGN.md §8.3).
     */
    auto
    finalBand()
    {
        struct Awaiter
        {
            EventQueue *queue;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                queue->scheduleFinal([h] { h.resume(); });
            }

            void await_resume() const {}
        };
        return Awaiter{this};
    }

    /** Like schedule(), but returns a cancellation Handle (this is
     *  the only path that touches a control slot). */
    Handle scheduleCancelable(Tick delay, EventFn fn);

    /** Like scheduleAt(), but returns a cancellation Handle. */
    Handle scheduleAtCancelable(Tick when, EventFn fn);

    /** Number of events scheduled but not yet fired or cancelled. */
    size_t pendingCount() const { return pending_; }

    /** True when no runnable events remain. */
    bool empty() const { return pending_ == 0; }

    /**
     * Runs events until the queue drains or @p max_events fire.
     * @return the number of events fired.
     */
    size_t run(size_t max_events = SIZE_MAX);

    /**
     * Runs all events with time <= @p until; afterwards now() == until
     * (unless the queue drained past it first, in which case now() is
     * still advanced to @p until).
     * @return the number of events fired.
     */
    size_t runUntil(Tick until);

    /** Total events fired over the queue's lifetime. */
    uint64_t firedCount() const { return fired_total_; }

    /** Popped events (cancelled included) that shared their tick with
     *  the previously popped event — the same-tick ties whose order
     *  tie-shuffle permutes. A function of the multiset of scheduled
     *  ticks only, so invariant across shuffle seeds; abl_determinism
     *  reports it as evidence the shuffled runs had races to
     *  permute. */
    uint64_t sameTickFired() const { return same_tick_fired_; }

    /**
     * Enables tie-shuffle mode: events scheduled for a future tick
     * get a seed-derived pseudo-random same-tick rank instead of the
     * FIFO sequence rank. Deterministic for a given seed. Affects
     * events scheduled after the call; zero-delay events (when <=
     * now) always keep FIFO ordering after already-queued same-tick
     * events. Debug/CI feature — see DESIGN.md §8.
     */
    void setTieShuffle(uint64_t seed)
    {
        tie_shuffle_ = true;
        tie_seed_ = seed;
    }

    /** Returns to pure-FIFO tie-breaking for future events. */
    void clearTieShuffle() { tie_shuffle_ = false; }

    bool tieShuffleEnabled() const { return tie_shuffle_; }

    /** Control slots ever created — grows only on scheduleCancelable
     *  (slots are recycled), never on the fire-and-forget path. Test
     *  introspection backing the "schedule() allocates no control
     *  block" guarantee. */
    size_t controlSlotCount() const { return controls_.size(); }

    /** Events currently parked in the far-future overflow heap.
     *  Test introspection for ladder<->overflow migration. */
    size_t overflowCount() const { return overflow_.size(); }

  private:
    /** Pooled intrusive event: two cache lines including the inline
     *  callback buffer. Never relocated once allocated. */
    struct Event
    {
        Tick when;
        /** Same-tick rank: FIFO sequence number, or a seed-derived
         *  hash under tie-shuffle (always < 2^63 for hashed ranks,
         *  >= 2^63 for zero-delay events so they stay last). */
        uint64_t tie;
        uint64_t seq;
        /** Bucket chain / free-list link. */
        Event *next;
        /** Index into controls_, or kNoControl (fast path). */
        uint32_t control;
        EventFn fn;
    };

    /** Generation-counted cancellation slot. The generation bumps
     *  every time the slot's event pops (fired or cancelled), so
     *  outstanding handles with the old generation go inert. */
    struct ControlSlot
    {
        uint32_t gen = 0;
        uint32_t next_free = kNoControl;
        bool cancelled = false;
    };

    static constexpr uint32_t kNoControl = UINT32_MAX;

    /** Bucket geometry: 8192 buckets x 8.192us ≈ a 67ms window. Wide
     *  enough that transaction think times and retransmit/poll
     *  timeouts land directly in the ring; only failure injections
     *  and end-of-run timers pay the overflow-heap double transit.
     *  (The ring is 64KiB of pointers — still cache-friendly because
     *  the melt scan only touches the populated stretch.) */
    static constexpr int kBucketShift = 13;
    static constexpr Tick kBucketWidth = Tick(1) << kBucketShift;
    static constexpr size_t kBucketCount = size_t(1) << 13;

    /** Events per pool chunk. */
    static constexpr size_t kPoolChunk = 256;

    /** Tie-rank band bases (see tie-shuffle model above). */
    static constexpr uint64_t kSequencedBase = 1ULL << 63;
    static constexpr uint64_t kFinalBase = 3ULL << 62;

    /** Bottom/overflow element: the sort key copied out of the
     *  event, so melt sorts, sorted inserts and heap sifts compare
     *  locally instead of dereferencing scattered pool storage. */
    struct BottomItem
    {
        Tick when;
        uint64_t tie;
        uint64_t seq;
        Event *event;
    };

    /** Later-than on the inlined keys: the (when, tie, seq) total
     *  order, inverted so descending-sorted vectors (bottom_) keep
     *  the earliest event at the back and min-heaps (overflow_) at
     *  the front. seq is unique, so this is a strict total order and
     *  unstable sorts cannot reorder equals. */
    struct LaterItem
    {
        bool
        operator()(const BottomItem &a, const BottomItem &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.tie != b.tie)
                return a.tie > b.tie;
            return a.seq > b.seq;
        }
    };

    /** First absolute tick that is NOT in the bottom heap's region:
     *  everything below has either fired or sits sorted in bottom_. */
    Tick
    bottomLimit() const
    {
        return static_cast<Tick>(next_bucket_) << kBucketShift;
    }

    /** One-past-the-last absolute bucket index the window covers. */
    uint64_t
    windowEnd() const
    {
        return next_bucket_ + kBucketCount;
    }

    uint64_t tieRank(Tick when, uint64_t seq) const;

    Event *allocEvent();
    void releaseEvent(Event *event);
    uint32_t allocControl();
    /** Frees the slot and bumps its generation; returns whether the
     *  event had been cancelled. */
    bool releaseControl(uint32_t slot);

    void insertNew(Tick when, uint64_t tie, uint64_t seq, EventFn fn,
                   uint32_t control);
    /** Region dispatch: bottom heap / bucket ring / overflow. */
    void place(Event *event);
    /** Moves overflow events with bucket index <= @p limit into the
     *  ring. Called by advance() when the melt reaches the overflow
     *  minimum, so far-future events stay in the compact heap until
     *  they are actually due. */
    void pullFromOverflow(uint64_t limit);
    /** Ensures bottom_ holds the global minimum (melting buckets and
     *  pulling overflow as needed). @return false iff no events. */
    bool advance();
    /** Pops and fires the next event. Precondition: advance(). */
    void fireNext();

    bool
    slotPending(uint32_t slot, uint32_t gen) const
    {
        return slot < controls_.size() &&
               controls_[slot].gen == gen &&
               !controls_[slot].cancelled;
    }

    void
    cancelSlot(uint32_t slot, uint32_t gen)
    {
        if (slot < controls_.size() && controls_[slot].gen == gen)
            controls_[slot].cancelled = true;
    }

    /** Chunked arena owning every Event; chunks never move. */
    std::vector<std::unique_ptr<Event[]>> pool_;
    Event *free_events_ = nullptr;

    std::vector<ControlSlot> controls_;
    uint32_t free_control_ = kNoControl;

    /** Sorted region: events with when < bottomLimit(), descending
     *  (earliest at the back — fireNext pops from the back). */
    std::vector<BottomItem> bottom_;
    /** Near-future ring; slot = absolute bucket index mod size. */
    std::vector<Event *> buckets_ =
        std::vector<Event *>(kBucketCount, nullptr);
    size_t in_buckets_ = 0;
    /** Lowest absolute bucket index not yet melted into bottom_. */
    uint64_t next_bucket_ = 0;
    /** Far region: min-heap of events at/after the window end.
     *  Keys are inlined (BottomItem) so heap sifts compare locally. */
    std::vector<BottomItem> overflow_;

    Tick now_ = 0;
    uint64_t next_seq_ = 0;
    size_t pending_ = 0;
    uint64_t fired_total_ = 0;
    uint64_t same_tick_fired_ = 0;
    Tick last_fired_at_ = -1;
    bool tie_shuffle_ = false;
    uint64_t tie_seed_ = 0;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_EVENT_QUEUE_HH
