/**
 * @file
 * The discrete-event queue at the core of the simulator.
 *
 * Events are (time, callback) pairs ordered by time with FIFO
 * tie-breaking via a monotonically increasing sequence number, which
 * makes runs fully deterministic for a given seed. Events can be
 * cancelled through the Handle returned at scheduling time (used by
 * DSA retransmission timers, cDSA poll-timeout fallbacks, etc.).
 */

#ifndef V3SIM_SIM_EVENT_QUEUE_HH
#define V3SIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace v3sim::sim
{

/** Min-heap of timed callbacks with deterministic ordering. */
class EventQueue
{
  public:
    /**
     * Cancellation handle for a scheduled event. Default-constructed
     * handles are inert. Cancelling an already-fired event is a
     * harmless no-op.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** Prevents the event from firing if it has not fired yet. */
        void
        cancel()
        {
            if (auto ctl = control_.lock())
                ctl->cancelled = true;
        }

        /** True if the event is still scheduled and not cancelled. */
        bool
        pending() const
        {
            auto ctl = control_.lock();
            return ctl && !ctl->cancelled && !ctl->fired;
        }

      private:
        friend class EventQueue;

        struct Control
        {
            bool cancelled = false;
            bool fired = false;
        };

        explicit Handle(std::shared_ptr<Control> control)
            : control_(std::move(control))
        {}

        std::weak_ptr<Control> control_;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedules @p fn to run @p delay after now. Negative delays clamp
     *  to zero (fires this tick, after already-queued same-time events).
     */
    Handle schedule(Tick delay, std::function<void()> fn);

    /** Schedules @p fn at absolute time @p when (>= now, else clamped). */
    Handle scheduleAt(Tick when, std::function<void()> fn);

    /** Number of events scheduled but not yet fired or cancelled. */
    size_t pendingCount() const { return pending_; }

    /** True when no runnable events remain. */
    bool empty() const { return pending_ == 0; }

    /**
     * Runs events until the queue drains or @p max_events fire.
     * @return the number of events fired.
     */
    size_t run(size_t max_events = SIZE_MAX);

    /**
     * Runs all events with time <= @p until; afterwards now() == until
     * (unless the queue drained past it first, in which case now() is
     * still advanced to @p until).
     * @return the number of events fired.
     */
    size_t runUntil(Tick until);

    /** Total events fired over the queue's lifetime. */
    uint64_t firedCount() const { return fired_total_; }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<Handle::Control> control;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pops and fires the next event. Precondition: !heap_.empty(). */
    void fireNext();

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    uint64_t next_seq_ = 0;
    size_t pending_ = 0;
    uint64_t fired_total_ = 0;
};

} // namespace v3sim::sim

#endif // V3SIM_SIM_EVENT_QUEUE_HH
