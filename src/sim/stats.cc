#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace v3sim::sim
{

void
Sampler::add(double sample)
{
    ++count_;
    sum_ += sample;
    const double d = sample - mean_;
    mean_ += d / static_cast<double>(count_);
    m2_ += d * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

double
Sampler::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double var = m2_ / static_cast<double>(count_);
    return var > 0 ? std::sqrt(var) : 0.0;
}

void
Sampler::reset()
{
    *this = Sampler();
}

void
Histogram::add(double value)
{
    int bucket = 0;
    if (value >= 1.0) {
        bucket = static_cast<int>(std::floor(std::log2(value)));
        bucket = std::clamp(bucket, 0, kBuckets - 1);
    }
    ++buckets_[static_cast<size_t>(bucket)];
    ++count_;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t target =
        static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[static_cast<size_t>(b)];
        if (seen > target) {
            // Bucket midpoint: [2^b, 2^(b+1)) -> 1.5 * 2^b.
            return b == 0 ? 1.0 : 1.5 * std::exp2(b);
        }
    }
    return std::exp2(kBuckets - 1);
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
}

void
TimeWeighted::set(Tick now, double value)
{
    if (now > last_) {
        integral_ += current_ * static_cast<double>(now - last_);
        last_ = now;
    }
    current_ = value;
}

double
TimeWeighted::average(Tick now) const
{
    const Tick span = now - start_;
    if (span <= 0)
        return current_;
    double integral = integral_;
    if (now > last_)
        integral += current_ * static_cast<double>(now - last_);
    return integral / static_cast<double>(span);
}

void
TimeWeighted::reset(Tick now, double value)
{
    current_ = value;
    integral_ = 0.0;
    start_ = now;
    last_ = now;
}

} // namespace v3sim::sim
