#include "local_backend.hh"

namespace v3sim::dsa
{

using osmodel::CpuCat;
using osmodel::CpuLease;

LocalBackend::LocalBackend(osmodel::Node &node, disk::Volume &volume,
                           HbaCosts costs)
    : node_(node), volume_(volume), costs_(costs),
      metric_prefix_(node.sim().metrics().uniquePrefix("client.local")),
      ios_(node.sim().metrics().counter(metric_prefix_ + ".ios")),
      interrupts_(node.sim().metrics().counter(metric_prefix_ +
                                               ".interrupts")),
      latency_(node.sim().metrics().sampler(metric_prefix_ +
                                            ".latency_ns")),
      latency_hist_(node.sim().metrics().histogram(
          metric_prefix_ + ".latency_hist_ns"))
{}

sim::Task<bool>
LocalBackend::read(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return submit(false, offset, len, buffer);
}

sim::Task<bool>
LocalBackend::write(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return submit(true, offset, len, buffer);
}

sim::Task<bool>
LocalBackend::submit(bool is_write, uint64_t offset, uint64_t len,
                     sim::Addr buffer)
{
    const sim::Tick start = node_.sim().now();
    const uint64_t pages = sim::pageSpan(buffer, len);

    {
        CpuLease lease = co_await node_.cpus().acquire();
        co_await node_.ioManager().issueRequest(lease, pages,
                                                /*pin_buffer=*/true);
        co_await lease.run(costs_.issue, CpuCat::Kernel);
        node_.cpus().release();
    }

    // The mechanism (controller + spindles) runs without the CPU.
    sim::Completion<bool> completion;
    sim::spawn([](LocalBackend *backend, bool write_op, uint64_t off,
                  uint64_t n, sim::Addr buf,
                  sim::Completion<bool> *done,
                  uint64_t buf_pages) -> sim::Task<> {
        const bool ok =
            write_op
                ? co_await backend->volume_.write(
                      off, n, backend->node_.memory(), buf)
                : co_await backend->volume_.read(
                      off, n, backend->node_.memory(), buf);
        backend->onMechanismDone(done, ok, buf_pages);
    }(this, is_write, offset, len, buffer, &completion, pages));

    const bool ok = co_await completion.wait();
    ios_.increment();
    const double lat =
        static_cast<double>(node_.sim().now() - start);
    latency_.add(lat);
    latency_hist_.add(lat);
    co_return ok;
}

void
LocalBackend::onMechanismDone(sim::Completion<bool> *completion,
                              bool ok, uint64_t pages)
{
    done_queue_.push_back(Done{completion, ok, pages});
    // Interrupt coalescing: completions arriving while an interrupt
    // is pending (or within the controller's coalescing window) are
    // drained by that interrupt's handler.
    if (interrupt_pending_)
        return;
    interrupt_pending_ = true;
    node_.sim().queue().schedule(costs_.coalesce_window, [this] {
        interrupts_.increment();
        node_.interrupts().raise([this](CpuLease lease) {
            return interruptHandler(lease);
        });
    });
}

sim::Task<>
LocalBackend::interruptHandler(CpuLease lease)
{
    interrupt_pending_ = false;
    while (!done_queue_.empty()) {
        Done done = done_queue_.front();
        done_queue_.pop_front();
        co_await lease.run(costs_.complete, CpuCat::Kernel);
        co_await node_.ioManager().completeRequest(
            lease, done.pages, /*unpin_buffer=*/true);
        done.completion->set(done.ok);
    }
}

void
LocalBackend::resetStats()
{
    ios_.reset();
    interrupts_.reset();
    latency_.reset();
    latency_hist_.reset();
}

} // namespace v3sim::dsa
