/**
 * @file
 * Client-side registration policy: per-I/O vs batched deregistration.
 *
 * Section 3.1: pre-registering everything is impossible (database
 * caches exceed the NIC's 1 GB limit), so DSA registers each I/O
 * buffer dynamically and optimizes *deregistration*: the NIC table
 * is divided into regions of 1000 consecutive entries (4 MB of host
 * memory) and a region is deregistered with one operation once every
 * buffer in it has completed — "one deregistration every one
 * thousand I/O operations".
 *
 * This class is policy over vi::MemoryRegistry's mechanism. Costs
 * are returned for the caller to charge (CpuCat::Vi).
 */

#ifndef V3SIM_DSA_REG_CACHE_HH
#define V3SIM_DSA_REG_CACHE_HH

#include <cstdint>
#include <map>
#include <optional>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "vi/memory_registry.hh"

namespace v3sim::dsa
{

/** Registration policy wrapper for one client NIC. */
class RegCache
{
  public:
    /**
     * @param pre_pinned whether buffers arrive already pinned (kDSA:
     *        the I/O manager pinned them; cDSA: AWE memory).
     * @param batched enables region-batched deregistration.
     */
    RegCache(vi::MemoryRegistry &registry, bool pre_pinned,
             bool batched)
        : registry_(registry),
          pre_pinned_(pre_pinned),
          batched_(batched)
    {}

    RegCache(const RegCache &) = delete;
    RegCache &operator=(const RegCache &) = delete;

    struct Result
    {
        vi::MemHandle handle;
        /** Host CPU time to charge (CpuCat::Vi). */
        sim::Tick cost = 0;
    };

    /**
     * Registers an I/O buffer. On NIC-capacity failure, flushes every
     * fully-released batched region and retries once.
     * @return nullopt only if the NIC is still out of resources.
     */
    std::optional<Result>
    acquire(sim::Addr addr, uint64_t len)
    {
        auto reg = registry_.registerMemory(addr, len, pre_pinned_);
        if (!reg.has_value()) {
            forced_flushes_.increment();
            const sim::Tick flush_cost = flushReleased();
            reg = registry_.registerMemory(addr, len, pre_pinned_);
            if (!reg.has_value())
                return std::nullopt;
            reg->cost += flush_cost;
        }
        if (batched_)
            ++regions_[reg->region].allocated;
        return Result{reg->handle, reg->cost};
    }

    /**
     * Releases an I/O buffer after completion. Unbatched: immediate
     * deregistration. Batched: bookkeeping only, until the buffer's
     * region is fully allocated and fully released — then one region
     * deregistration covers all of it.
     * @return host CPU time to charge (often 0 in batched mode).
     */
    sim::Tick
    release(vi::MemHandle handle)
    {
        if (!batched_) {
            auto cost = registry_.deregister(handle);
            return cost.value_or(0);
        }
        const uint32_t region = registry_.regionOf(handle);
        auto it = regions_.find(region);
        if (it == regions_.end())
            return 0; // already flushed (stale handle)
        ++it->second.released;
        if (it->second.allocated >= registry_.regionEntries() &&
            it->second.released >= it->second.allocated) {
            const auto result = registry_.deregisterRegion(region);
            regions_.erase(it);
            return result.cost;
        }
        return 0;
    }

    /** Deregisters all fully-released regions (capacity pressure). */
    sim::Tick
    flushReleased()
    {
        sim::Tick cost = 0;
        for (auto it = regions_.begin(); it != regions_.end();) {
            if (it->second.released >= it->second.allocated &&
                it->second.allocated > 0) {
                cost += registry_.deregisterRegion(it->first).cost;
                it = regions_.erase(it);
            } else {
                ++it;
            }
        }
        return cost;
    }

    bool batched() const { return batched_; }
    bool prePinned() const { return pre_pinned_; }
    uint64_t forcedFlushCount() const { return forced_flushes_.value(); }

  private:
    struct RegionState
    {
        uint32_t allocated = 0;
        uint32_t released = 0;
    };

    vi::MemoryRegistry &registry_;
    bool pre_pinned_;
    bool batched_;
    /// Ordered by region id: flushReleased() iterates (and charges
    /// deregistration costs) in a deterministic order.
    std::map<uint32_t, RegionState> regions_;
    sim::Counter forced_flushes_;
};

} // namespace v3sim::dsa

#endif // V3SIM_DSA_REG_CACHE_HH
