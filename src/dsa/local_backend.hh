/**
 * @file
 * The local-disk baseline: "the same disks ... connected directly to
 * the database server (in the local case)" behind a well-tuned
 * Fibre-Channel/SCSI host-bus-adapter driver.
 *
 * Per section 7, such drivers are "optimized to reduce the number of
 * interrupts on the receive path, and to impose very little overhead
 * on the send path" by offloading to controller hardware — but the
 * path still crosses the kernel (I/O manager) both ways, which is
 * exactly the cost structure VI/DSA attacks.
 *
 * Path model, per request:
 *  issue:     I/O manager (syscall + IRP + probe-and-lock + two sync
 *             pairs) + a small HBA driver cost;
 *  mechanism: the local Volume (same disk models as a V3 node);
 *  complete:  controller interrupt (with natural coalescing: one
 *             interrupt drains all completions pending at that
 *             moment), HBA completion cost, I/O manager completion
 *             (sync pairs, unpin, wake thread).
 */

#ifndef V3SIM_DSA_LOCAL_BACKEND_HH
#define V3SIM_DSA_LOCAL_BACKEND_HH

#include <deque>
#include <memory>

#include "disk/volume.hh"
#include "dsa/block_device.hh"
#include "osmodel/node.hh"
#include "sim/stats.hh"

namespace v3sim::dsa
{

/** Tuned HBA driver cost model. */
struct HbaCosts
{
    /** Send-path driver work ("very little overhead"). */
    sim::Tick issue = sim::usecs(0.6);
    /** Receive-path driver work per completion. */
    sim::Tick complete = sim::usecs(0.6);
    /** Hardware interrupt-coalescing window: completions arriving
     *  within it share one interrupt (section 7: controllers
     *  "optimized to reduce the number of interrupts on the receive
     *  path"). */
    sim::Tick coalesce_window = sim::usecs(15);
};

/** Locally attached storage through the kernel driver stack. */
class LocalBackend : public BlockDevice
{
  public:
    LocalBackend(osmodel::Node &node, disk::Volume &volume,
                 HbaCosts costs = {});

    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::Addr buffer) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          sim::Addr buffer) override;
    uint64_t capacity() const override { return volume_.capacity(); }

    uint64_t ioCount() const { return ios_.value(); }
    uint64_t interruptCount() const { return interrupts_.value(); }
    const sim::Sampler &latency() const { return latency_.raw(); }
    /** End-to-end I/O latency distribution (ns), for p50/p95/p99. */
    const sim::Histogram &latencyHistogram() const
    {
        return latency_hist_.raw();
    }
    /** Zeroes this backend's registry-owned metrics. Prefer
     *  `MetricRegistry::resetEpoch()` for stack-wide measurement
     *  windows. */
    void resetStats();

  private:
    struct Done
    {
        sim::Completion<bool> *completion;
        bool ok;
        uint64_t pages;
    };

    sim::Task<bool> submit(bool is_write, uint64_t offset,
                           uint64_t len, sim::Addr buffer);

    /** Controller completion: queue + coalesced interrupt. */
    void onMechanismDone(sim::Completion<bool> *completion, bool ok,
                         uint64_t pages);

    sim::Task<> interruptHandler(osmodel::CpuLease lease);

    osmodel::Node &node_;
    disk::Volume &volume_;
    HbaCosts costs_;
    std::deque<Done> done_queue_;
    bool interrupt_pending_ = false;

    /// Registry path prefix ("client.local", uniquified); must
    /// precede the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::CounterHandle ios_;
    sim::CounterHandle interrupts_;
    sim::SamplerHandle latency_;
    sim::HistogramHandle latency_hist_;
};

} // namespace v3sim::dsa

#endif // V3SIM_DSA_LOCAL_BACKEND_HH
