#include "mirrored_device.hh"

#include <algorithm>
#include <cassert>

#include "dsa/dsa_client.hh"
#include "util/logging.hh"

namespace v3sim::dsa
{

MirrorReplica
MirrorReplica::forClient(DsaClient &client)
{
    MirrorReplica replica;
    replica.device = &client;
    replica.revive = [&client] { return client.revive(); };
    replica.integrity_errors = [&client] {
        return client.integrityErrorCount();
    };
    return replica;
}

MirroredDevice::MirroredDevice(sim::Simulation &sim,
                               sim::MemorySpace &memory,
                               std::vector<MirrorReplica> replicas,
                               MirrorConfig config)
    : sim_(sim),
      memory_(memory),
      config_(std::move(config)),
      metric_prefix_(
          sim.metrics().uniquePrefix("mirror." + config_.name)),
      failovers_(sim.metrics().counter(metric_prefix_ + ".failovers")),
      readmits_(sim.metrics().counter(metric_prefix_ + ".readmits")),
      resyncs_(sim.metrics().counter(metric_prefix_ + ".resyncs")),
      resync_bytes_(
          sim.metrics().counter(metric_prefix_ + ".resync_bytes")),
      degraded_reads_(
          sim.metrics().counter(metric_prefix_ + ".degraded_reads")),
      degraded_writes_(
          sim.metrics().counter(metric_prefix_ + ".degraded_writes")),
      integrity_repairs_(sim.metrics().counter(metric_prefix_ +
                                               ".integrity_repairs")),
      unrecoverable_(
          sim.metrics().counter(metric_prefix_ + ".unrecoverable")),
      scrubbed_bytes_(
          sim.metrics().counter(metric_prefix_ + ".scrubbed_bytes")),
      scrub_passes_(
          sim.metrics().counter(metric_prefix_ + ".scrub_passes")),
      resync_time_ns_(
          sim.metrics().sampler(metric_prefix_ + ".resync_time_ns")),
      degraded_replicas_(sim.metrics().timeWeighted(
          metric_prefix_ + ".degraded_replicas"))
{
    assert(replicas.size() >= 2 && "a mirror needs at least two legs");
    assert(config_.resync_chunk > 0 && config_.resync_parallel > 0);
    replicas_.reserve(replicas.size());
    for (MirrorReplica &leg : replicas) {
        Replica replica;
        replica.leg = std::move(leg);
        replicas_.push_back(std::move(replica));
    }
    scratch_ = memory_.allocate(config_.resync_chunk *
                                config_.resync_parallel);
    sim.metrics().gauge(metric_prefix_ + ".dirty_bytes", [this] {
        return static_cast<double>(dirtyBytes());
    });
    // The scrubber is strictly opt-in: with the default rate of 0 no
    // task is ever spawned and fault-free runs stay bit-identical.
    // Even when enabled it starts lazily on the first I/O (see
    // maybeStartScrub): spawning the infinite walk here would keep
    // connect-time Simulation::run() drains from ever terminating.
    assert(config_.scrub_rate_bytes_per_sec == 0 ||
           config_.scrub_chunk > 0);
}

void
MirroredDevice::maybeStartScrub()
{
    if (scrub_started_ || config_.scrub_rate_bytes_per_sec == 0)
        return;
    scrub_started_ = true;
    sim::spawn(scrubTask());
}

uint64_t
MirroredDevice::capacity() const
{
    uint64_t min_cap = UINT64_MAX;
    for (const Replica &replica : replicas_)
        min_cap = std::min(min_cap, replica.leg.device->capacity());
    return min_cap == UINT64_MAX ? 0 : min_cap;
}

size_t
MirroredDevice::activeReplicas() const
{
    size_t count = 0;
    for (const Replica &replica : replicas_)
        count += replica.active ? 1 : 0;
    return count;
}

bool
MirroredDevice::degraded() const
{
    return activeReplicas() < replicas_.size();
}

uint64_t
MirroredDevice::legDirtyBytes(size_t idx) const
{
    uint64_t total = 0;
    for (const auto &[offset, len] : replicas_[idx].dirty)
        total += len;
    return total;
}

uint64_t
MirroredDevice::dirtyBytes() const
{
    uint64_t total = 0;
    for (const Replica &replica : replicas_) {
        for (const auto &[offset, len] : replica.dirty)
            total += len;
    }
    return total;
}

size_t
MirroredDevice::pickReader()
{
    for (size_t i = 0; i < replicas_.size(); ++i) {
        const size_t idx = (rr_cursor_ + i) % replicas_.size();
        if (replicas_[idx].active) {
            rr_cursor_ = (idx + 1) % replicas_.size();
            return idx;
        }
    }
    return replicas_.size();
}

size_t
MirroredDevice::fallbackSource(size_t idx) const
{
    // Double fault: every leg is failed out, so pickReader() has no
    // source and naively both resync tasks would wait on each other
    // forever. A failed leg that failed *strictly later* than this
    // one is still a safe source: while no leg is active no write can
    // commit (the write path fails fast), so the latest-failed leg
    // holds every write committed before the mirror went dark, and
    // its own dirty regions are only residue of writes that were
    // *reported failed* — copying either their old or new content is
    // within the contract for an unacknowledged write. Ties (legs
    // failed in the same tick both hold all committed data) break by
    // replica index — a content key, so the choice is tie-shuffle
    // invariant. The earliest-failed leg therefore drains first,
    // readmits, and becomes an ordinary active source for the rest.
    const Replica &mine = replicas_[idx];
    size_t best = replicas_.size();
    for (size_t i = 0; i < replicas_.size(); ++i) {
        if (i == idx)
            continue;
        const Replica &cand = replicas_[i];
        if (cand.active || cand.inflight_missing > 0 ||
            !cand.replaying.empty()) {
            continue;
        }
        if (cand.failed_at < mine.failed_at ||
            (cand.failed_at == mine.failed_at && i > idx)) {
            continue; // not strictly later in (failed_at, idx) order
        }
        if (best == replicas_.size() ||
            cand.failed_at > replicas_[best].failed_at ||
            (cand.failed_at == replicas_[best].failed_at &&
             i < best)) {
            best = i;
        }
    }
    return best;
}

void
MirroredDevice::failLeg(size_t idx)
{
    assert(idx < replicas_.size());
    failReplica(idx);
}

sim::Task<bool>
MirroredDevice::read(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    if (len == 0 || offset + len > capacity())
        co_return false;
    maybeStartScrub();

    // Each active replica gets at most one try; a failed read is the
    // signal the DSA client exhausted retransmission *and*
    // reconnection against that node, so the replica fails over and
    // the survivor serves the retry. One exception: a read the
    // server failed with IntegrityError means the *data* is rotten
    // (latent sector error, torn write), not the node — the replica
    // stays in the mirror and the range is repaired from a peer.
    for (size_t tries = replicas_.size(); tries > 0; --tries) {
        const size_t idx = pickReader();
        if (idx == replicas_.size())
            break; // every replica failed out
        Replica &replica = replicas_[idx];
        const uint64_t errors_before =
            replica.leg.integrity_errors
                ? replica.leg.integrity_errors()
                : 0;
        const bool ok = co_await replica.leg.device->read(
            offset, len, buffer);
        if (ok) {
            if (degraded())
                degraded_reads_.increment();
            co_return true;
        }
        if (replica.leg.integrity_errors &&
            replica.leg.integrity_errors() > errors_before) {
            if (co_await repairRange(idx, offset, len, buffer))
                co_return true;
            // No replica holds a good copy of this range.
            unrecoverable_.increment();
            co_return false;
        }
        failReplica(idx);
    }
    co_return false;
}

sim::Task<bool>
MirroredDevice::write(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    if (len == 0 || offset + len > capacity())
        co_return false;
    maybeStartScrub();

    // Targets: active replicas (the write must reach one of them) and
    // catching-up replicas (duplicating to them now is what lets the
    // dirty log drain under a sustained write load).
    std::vector<size_t> targets;
    size_t required = 0;
    for (size_t i = 0; i < replicas_.size(); ++i) {
        if (replicas_[i].active) {
            targets.push_back(i);
            ++required;
        }
    }
    if (required == 0)
        co_return false;
    for (size_t i = 0; i < replicas_.size(); ++i) {
        if (!replicas_[i].active && replicas_[i].catching_up)
            targets.push_back(i);
    }

    // Replicas down at issue miss this write entirely; count it
    // against them so readmission can wait for the completion-time
    // dirty logging below.
    std::vector<size_t> missing;
    for (size_t i = 0; i < replicas_.size(); ++i) {
        if (!replicas_[i].active && !replicas_[i].catching_up) {
            missing.push_back(i);
            ++replicas_[i].inflight_missing;
        }
    }

    // Duplicate to every target concurrently.
    sim::WaitGroup group;
    std::vector<uint8_t> ok(targets.size(), 0);
    for (size_t t = 0; t < targets.size(); ++t) {
        group.add();
        sim::spawn([](BlockDevice *device, uint64_t off, uint64_t n,
                      sim::Addr buf, sim::WaitGroup &g,
                      uint8_t &flag) -> sim::Task<> {
            flag = (co_await device->write(off, n, buf)) ? 1 : 0;
            g.done();
        }(replicas_[targets[t]].leg.device, offset, len, buffer,
          group, ok[t]));
    }
    co_await group.wait();

    // Everything from here to co_return is synchronous, so the
    // inflight_missing decrement and the dirty logging below are one
    // atomic step as far as the resync readmission gate can observe.
    for (size_t idx : missing)
        --replicas_[idx].inflight_missing;

    size_t ok_count = 0;
    for (uint8_t flag : ok)
        ok_count += flag;
    if (ok_count == 0) {
        // Every target rejected it — a plain I/O error (bad
        // arguments, out of range), not a node fault: nothing
        // happened anywhere, so no failover and nothing to log.
        co_return false;
    }

    bool missed = !missing.empty();
    bool ok_active = false;
    for (size_t t = 0; t < targets.size(); ++t) {
        Replica &replica = replicas_[targets[t]];
        const bool was_required = t < required;
        if (ok[t]) {
            // The write only counts if a replica that was active at
            // issue took it; data held solely by a catching-up
            // replica is not readable yet.
            ok_active |= was_required;
        } else if (was_required) {
            failReplica(targets[t]);
            logDirty(replica, offset, len);
            missed = true;
        } else {
            // A catching-up replica missed it: back into the log; if
            // the node died again the resync write will notice.
            logDirty(replica, offset, len);
        }
    }

    // Log the region for every replica that was down at issue.
    // Logging at *completion*, together with the inflight_missing
    // gate in resyncTask, guarantees a readmitted replica observed
    // every completed write (no await separates the gate checks
    // there, and this logging runs before the application sees the
    // completion).
    for (size_t idx : missing)
        logDirty(replicas_[idx], offset, len);

    // A catching-up replica took the write directly, but if the
    // region overlaps a replay chunk in flight the replayed snapshot
    // may land after this data, so re-log the overlap.
    for (Replica &replica : replicas_) {
        if (!replica.catching_up)
            continue;
        for (const auto &[roff, rlen] : replica.replaying) {
            if (offset < roff + rlen && roff < offset + len) {
                logDirty(replica, offset, len);
                break;
            }
        }
    }
    if (missed)
        degraded_writes_.increment();
    co_return ok_active;
}

void
MirroredDevice::failReplica(size_t idx)
{
    Replica &replica = replicas_[idx];
    if (!replica.active)
        return;
    replica.active = false;
    replica.failed_at = sim_.now();
    failovers_.increment();
    degraded_replicas_.set(
        sim_.now(),
        static_cast<double>(replicas_.size() - activeReplicas()));
    V3LOG(Warn, "mirror")
        << config_.name << ": replica " << idx
        << " failed over, mirror degraded ("
        << activeReplicas() << "/" << replicas_.size() << " active)";
    if (replica.leg.revive && !replica.resyncing) {
        replica.resyncing = true;
        sim::spawn(resyncTask(idx));
    }
}

void
MirroredDevice::logDirty(Replica &replica, uint64_t offset,
                         uint64_t len)
{
    if (len == 0)
        return;
    uint64_t end = offset + len;
    auto it = replica.dirty.upper_bound(offset);
    if (it != replica.dirty.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second >= offset) {
            offset = prev->first;
            end = std::max(end, prev->first + prev->second);
            it = replica.dirty.erase(prev);
        }
    }
    while (it != replica.dirty.end() && it->first <= end) {
        end = std::max(end, it->first + it->second);
        it = replica.dirty.erase(it);
    }
    replica.dirty[offset] = end - offset;
}

sim::Task<bool>
MirroredDevice::repairRange(size_t idx, uint64_t offset, uint64_t len,
                            sim::Addr buffer)
{
    for (size_t peer = 0; peer < replicas_.size(); ++peer) {
        if (peer == idx || !replicas_[peer].active)
            continue;
        if (!co_await replicas_[peer].leg.device->read(offset, len,
                                                       buffer)) {
            continue; // peer unreachable or also rotten; try another
        }
        // The caller's buffer now holds a verified copy; rewrite the
        // damaged leg from it (overwriting clears the latent marks).
        if (co_await replicas_[idx].leg.device->write(offset, len,
                                                      buffer)) {
            integrity_repairs_.increment();
            V3LOG(Info, "mirror")
                << config_.name << ": repaired " << len
                << " bytes at " << offset << " on replica " << idx
                << " from replica " << peer;
        } else {
            // The rewrite failed (node died mid-repair, or the range
            // does not meet the server's write alignment): remember
            // it so a later resync replays it.
            logDirty(replicas_[idx], offset, len);
        }
        co_return true;
    }
    co_return false;
}

sim::Task<>
MirroredDevice::scrubTask()
{
    // Replica capacities are learned from the servers' Hello acks;
    // wait for the clients to connect.
    while (capacity() == 0)
        co_await sim_.sleep(config_.probe_interval);

    const sim::Addr buf = memory_.allocate(config_.scrub_chunk);
    for (uint32_t pass = 0; config_.scrub_pass_limit == 0 ||
                            pass < config_.scrub_pass_limit;
         ++pass) {
        const uint64_t cap = capacity();
        for (uint64_t off = 0; off < cap;
             off += config_.scrub_chunk) {
            const uint64_t n = std::min(config_.scrub_chunk, cap - off);
            // Pace the walk so the scrub costs a bounded slice of
            // the cluster's bandwidth.
            co_await sim_.sleep(sim::usecs(
                1e6 * static_cast<double>(n) /
                static_cast<double>(config_.scrub_rate_bytes_per_sec)));
            // Every replica is checked directly (the round-robin
            // read path would only ever sample one leg per chunk).
            for (size_t idx = 0; idx < replicas_.size(); ++idx) {
                Replica &replica = replicas_[idx];
                if (!replica.active)
                    continue; // resync will rebuild it anyway
                const uint64_t errors_before =
                    replica.leg.integrity_errors
                        ? replica.leg.integrity_errors()
                        : 0;
                if (co_await replica.leg.device->read(off, n, buf))
                    continue;
                if (replica.leg.integrity_errors &&
                    replica.leg.integrity_errors() > errors_before) {
                    if (!co_await repairRange(idx, off, n, buf))
                        unrecoverable_.increment();
                }
                // A plain failure is left alone: the foreground path
                // owns the failover decision.
            }
            scrubbed_bytes_.increment(n);
        }
        scrub_passes_.increment();
    }
    memory_.free(buf);
}

sim::Task<>
MirroredDevice::resyncTask(size_t idx)
{
    Replica &replica = replicas_[idx];
    for (;;) {
        // Probe phase: wait for the node to answer a fresh
        // connection attempt. Failed probes back off
        // binary-exponentially up to probe_max_interval so a node
        // that stays down costs geometrically fewer reconnection
        // attempts; the delay is re-initialized per outage, which is
        // the "reset on success" half of the RTO rule.
        const sim::Tick down_since = sim_.now();
        sim::Tick probe_delay = config_.probe_interval;
        for (;;) {
            co_await sim_.sleep(probe_delay);
            if (co_await replica.leg.revive())
                break;
            probe_delay = std::min(probe_delay * 2,
                                   config_.probe_max_interval);
        }
        resyncs_.increment();
        // Catch-up: from here on, new writes are duplicated to this
        // replica directly, so the dirty log is bounded by what was
        // missed while the node was down and the replay converges
        // even under a sustained write load.
        replica.catching_up = true;
        V3LOG(Info, "mirror")
            << config_.name << ": replica " << idx
            << " reachable again, resync starting";

        // Replay phase: drain the dirty-region log in bounded chunks
        // (each chunk is one ordinary DSA read from a survivor and
        // one DSA write to the revived node — the write must fit the
        // server's staging slot). In-flight writes issued while the
        // node was still down log their regions on completion;
        // readmission waits for those via the inflight gate.
        bool lost_again = false;
        for (;;) {
            if (!replica.dirty.empty()) {
                // Pull a batch of regions off the log and replay them
                // concurrently (one scratch slot each).
                struct Piece
                {
                    uint64_t off;
                    uint64_t len;
                };
                std::vector<Piece> batch;
                while (batch.size() < config_.resync_parallel &&
                       !replica.dirty.empty()) {
                    auto it = replica.dirty.begin();
                    const uint64_t off = it->first;
                    const uint64_t len =
                        std::min(it->second, config_.resync_chunk);
                    if (len == it->second) {
                        replica.dirty.erase(it);
                    } else {
                        const uint64_t rest_off = off + len;
                        const uint64_t rest_len = it->second - len;
                        replica.dirty.erase(it);
                        replica.dirty[rest_off] = rest_len;
                    }
                    batch.push_back(Piece{off, len});
                }

                size_t src = pickReader();
                if (src == replicas_.size())
                    src = fallbackSource(idx);
                if (src == replicas_.size()) {
                    // No usable source right now; put the regions
                    // back and wait for one.
                    for (const Piece &piece : batch)
                        logDirty(replica, piece.off, piece.len);
                    co_await sim_.sleep(config_.probe_interval);
                    continue;
                }

                // Mark the chunks in flight: concurrent application
                // writes overlapping one re-log themselves so the
                // snapshots below can't leave them stale.
                for (const Piece &piece : batch)
                    replica.replaying[piece.off] = piece.len;

                enum : uint8_t { kReadFail, kWriteFail, kOk };
                std::vector<uint8_t> result(batch.size(), kReadFail);
                sim::WaitGroup group;
                for (size_t p = 0; p < batch.size(); ++p) {
                    group.add();
                    const sim::Addr slot =
                        scratch_ + p * config_.resync_chunk;
                    sim::spawn([](BlockDevice *from, BlockDevice *to,
                                  Piece piece, sim::Addr buf,
                                  sim::WaitGroup &g,
                                  uint8_t &res) -> sim::Task<> {
                        if (co_await from->read(piece.off, piece.len,
                                                buf)) {
                            res = (co_await to->write(piece.off,
                                                      piece.len, buf))
                                      ? kOk
                                      : kWriteFail;
                        }
                        g.done();
                    }(replicas_[src].leg.device, replica.leg.device,
                      batch[p], slot, group, result[p]));
                }
                co_await group.wait();

                for (const Piece &piece : batch)
                    replica.replaying.erase(piece.off);
                bool progressed = false;
                for (size_t p = 0; p < batch.size(); ++p) {
                    if (result[p] == kOk) {
                        resync_bytes_.increment(batch[p].len);
                        progressed = true;
                        continue;
                    }
                    logDirty(replica, batch[p].off, batch[p].len);
                    if (result[p] == kReadFail)
                        failReplica(src);
                    else
                        lost_again = true;
                }
                if (!progressed && !lost_again) {
                    // Every read failed. When the source was active,
                    // failReplica just demoted it and the next pass
                    // re-picks; but a *fallback* source stays where
                    // it is (already inactive), and its dead client
                    // fails reads without consuming simulated time —
                    // so back off before retrying or this loop spins
                    // forever in a single tick.
                    co_await sim_.sleep(config_.probe_interval);
                }
                if (lost_again) {
                    // The node died again mid-resync: back to the
                    // probe phase with the regions still logged.
                    replica.catching_up = false;
                    break;
                }
            } else if (replica.inflight_missing > 0) {
                // Writes issued while the node was down are still in
                // flight; they will log their regions on completion.
                co_await sim_.sleep(config_.probe_interval);
            } else {
                break; // log drained, nothing missing: caught up
            }
        }
        if (lost_again)
            continue;

        // Readmit: the replica serves reads again.
        replica.active = true;
        replica.catching_up = false;
        replica.resyncing = false;
        readmits_.increment();
        degraded_replicas_.set(
            sim_.now(),
            static_cast<double>(replicas_.size() - activeReplicas()));
        resync_time_ns_.add(
            static_cast<double>(sim_.now() - down_since));
        V3LOG(Info, "mirror")
            << config_.name << ": replica " << idx
            << " resynced and readmitted";
        co_return;
    }
}

} // namespace v3sim::dsa
