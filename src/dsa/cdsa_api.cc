#include "cdsa_api.hh"

namespace v3sim::dsa
{

sim::Task<std::unique_ptr<CdsaApi>>
CdsaApi::open(osmodel::Node &node, vi::ViNic &nic,
              net::PortId server_port, uint32_t volume,
              DsaConfig config)
{
    auto client = std::make_unique<DsaClient>(
        DsaImpl::Cdsa, node, nic, server_port, volume, config);
    if (!co_await client->connect())
        co_return nullptr;
    co_return std::unique_ptr<CdsaApi>(new CdsaApi(std::move(client)));
}

void
CdsaApi::close()
{
    // The underlying endpoint dies with the client object; nothing
    // further to flush because every API call completes its I/O
    // before returning ownership of the buffer.
}

sim::Task<bool>
CdsaApi::read(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return client_->read(offset, len, buffer);
}

sim::Task<bool>
CdsaApi::write(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return client_->write(offset, len, buffer);
}

CdsaIoHandle
CdsaApi::readAsync(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    auto handle = std::make_shared<CdsaIo>();
    sim::spawn([](DsaClient *client, uint64_t off, uint64_t n,
                  sim::Addr buf, CdsaIoHandle h) -> sim::Task<> {
        const bool ok = co_await client->read(off, n, buf);
        h->ok_ = ok;
        h->done_ = true;
        h->completion_.set(ok);
    }(client_.get(), offset, len, buffer, handle));
    return handle;
}

CdsaIoHandle
CdsaApi::writeAsync(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    auto handle = std::make_shared<CdsaIo>();
    sim::spawn([](DsaClient *client, uint64_t off, uint64_t n,
                  sim::Addr buf, CdsaIoHandle h) -> sim::Task<> {
        const bool ok = co_await client->write(off, n, buf);
        h->ok_ = ok;
        h->done_ = true;
        h->completion_.set(ok);
    }(client_.get(), offset, len, buffer, handle));
    return handle;
}

sim::Task<bool>
CdsaApi::readGather(const std::vector<CdsaSegment> &segs)
{
    bool all_ok = true;
    std::vector<CdsaIoHandle> handles;
    handles.reserve(segs.size());
    for (const CdsaSegment &seg : segs)
        handles.push_back(readAsync(seg.offset, seg.len, seg.buffer));
    for (auto &handle : handles) {
        if (!co_await wait(handle))
            all_ok = false;
    }
    co_return all_ok;
}

sim::Task<bool>
CdsaApi::writeScatter(const std::vector<CdsaSegment> &segs)
{
    bool all_ok = true;
    std::vector<CdsaIoHandle> handles;
    handles.reserve(segs.size());
    for (const CdsaSegment &seg : segs)
        handles.push_back(writeAsync(seg.offset, seg.len, seg.buffer));
    for (auto &handle : handles) {
        if (!co_await wait(handle))
            all_ok = false;
    }
    co_return all_ok;
}

sim::Task<bool>
CdsaApi::wait(CdsaIoHandle handle)
{
    if (!handle)
        co_return false;
    if (handle->done_)
        co_return handle->ok_;
    const bool ok = co_await handle->completion_.wait();
    co_return ok;
}

void
CdsaApi::hint(CdsaHint kind, uint64_t offset, uint64_t len)
{
    ++hints_issued_;
    HintKind wire_kind = HintKind::Sequential;
    switch (kind) {
      case CdsaHint::WillNeed: wire_kind = HintKind::WillNeed; break;
      case CdsaHint::DontNeed: wire_kind = HintKind::DontNeed; break;
      case CdsaHint::Sequential:
        wire_kind = HintKind::Sequential;
        break;
    }
    sim::spawn([](DsaClient *client, HintKind k, uint64_t off,
                  uint64_t n) -> sim::Task<> {
        co_await client->hint(k, off, n);
    }(client_.get(), wire_kind, offset, len));
}

CdsaVolumeInfo
CdsaApi::volumeInfo() const
{
    CdsaVolumeInfo info;
    info.capacity_bytes = client_->capacity();
    info.connected = client_->connected();
    return info;
}

CdsaStats
CdsaApi::stats() const
{
    CdsaStats stats;
    stats.ios = client_->ioCount();
    stats.retransmits = client_->retransmitCount();
    stats.reconnects = client_->reconnectCount();
    stats.polled_completions = client_->polledCompletions();
    stats.interrupt_completions = client_->interruptCompletions();
    return stats;
}

} // namespace v3sim::dsa
