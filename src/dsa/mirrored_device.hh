/**
 * @file
 * Block-level mirroring across two (or more) V3 replicas — RAID-1
 * over storage nodes, composable under StripedDevice for RAID-10.
 *
 * The paper presents V3 as a storage *cluster* (§1, Table 1/2: 4 and
 * 8 nodes) whose DSA layer supplies the reliability VI lacks (§2.2);
 * this device extends that reliability story from link faults to
 * whole-node faults, the redundancy baseline commodity-storage
 * follow-ups assume. Semantics:
 *
 *  - writes are duplicated to every active replica and succeed while
 *    at least one replica accepts them;
 *  - reads round-robin across active replicas (doubling read
 *    bandwidth when healthy) and retry on the survivor when a
 *    replica fails mid-read;
 *  - a replica whose client gave up (DSA retransmission and
 *    reconnection exhausted — the node is *down*, not just lossy)
 *    is failed over: it stops receiving I/O and every write it
 *    misses is recorded in a dirty-region log;
 *  - a background resync task probes the failed node; once its
 *    client revives, the replica enters *catch-up*: new writes are
 *    duplicated to it directly again (so the dirty log stops
 *    growing and resync converges even under sustained writes),
 *    while the resync task replays the regions missed during the
 *    down window from a surviving replica in bounded chunks;
 *  - the replica is readmitted for reads only when the log is
 *    drained and no write is still in flight, so a readmitted
 *    replica has observed every completed write.
 *
 * Exactly-once across the failover is inherited from the DSA layer:
 * the server's per-connection dedup filter absorbs duplicate
 * retransmissions, and the mirror completes each application I/O
 * once regardless of how many replicas acknowledged it.
 */

#ifndef V3SIM_DSA_MIRRORED_DEVICE_HH
#define V3SIM_DSA_MIRRORED_DEVICE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dsa/block_device.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace v3sim::dsa
{

class DsaClient;

/** Mirror configuration. */
struct MirrorConfig
{
    std::string name = "mirror";

    /**
     * Initial delay before the resync task's first revive probe of a
     * down replica. Failed probes back off binary-exponentially up
     * to probe_max_interval (the TcpStream RTO rule): a node that
     * stays down costs geometrically fewer connection attempts, and
     * a successful revive resets the next outage to this base. The
     * bounded waits inside the replay phase (no surviving source,
     * straggler writes in flight) poll at this fixed interval — they
     * wait on local state, not on a dead node.
     */
    sim::Tick probe_interval = sim::msecs(10);

    /** Backoff cap for the revive probe. */
    sim::Tick probe_max_interval = sim::msecs(80);

    /**
     * Bytes replayed per resync I/O. Must not exceed the server's
     * staging_slot_bytes (default 128 K): the replay path is ordinary
     * DSA writes, and oversized writes fail server validation.
     */
    uint64_t resync_chunk = 128 * 1024;

    /**
     * Chunk replays in flight at once. The dirty log of a random
     * write load is many scattered small regions; replaying them one
     * at a time is bounded by a single disk's write latency, so the
     * resync pipelines a small batch (still far below the server's
     * staging-slot budget).
     */
    uint32_t resync_parallel = 8;

    /**
     * Background scrubber rate in bytes per simulated second; 0 (the
     * default) disables scrubbing, which keeps fault-free runs
     * bit-identical to builds without the scrubber. When enabled, a
     * background task walks every active replica at this rate,
     * reading each chunk so the server's verify-on-read surfaces
     * latent sector errors, and repairs damaged ranges from a peer
     * replica — catching rot in cold data before an application read
     * trips over it. The walk starts lazily with the mirror's first
     * I/O, so connect-time Simulation::run() drains still terminate.
     */
    uint64_t scrub_rate_bytes_per_sec = 0;

    /** Bytes per scrub read (must fit the server staging slot so the
     *  repair write is valid). */
    uint64_t scrub_chunk = 64 * 1024;

    /** Full passes the scrubber makes before stopping; 0 = unbounded
     *  (callers driving the sim with runUntil). A bounded pass count
     *  lets Simulation::run() terminate. */
    uint32_t scrub_pass_limit = 0;
};

/**
 * One leg of the mirror: the device I/O goes to, plus an optional
 * revive hook the resync prober calls to test whether a failed
 * replica's node is reachable again. Without a revive hook a failed
 * replica stays failed (no automatic readmission).
 */
struct MirrorReplica
{
    BlockDevice *device = nullptr;
    std::function<sim::Task<bool>()> revive;

    /**
     * Monotone count of IntegrityError completions from this leg
     * (the server found a block damaged on disk). The mirror
     * snapshots it around each read to tell "the node is dead"
     * (failover) from "the data is rotten" (repair from the peer and
     * keep the replica). Optional: without it every read failure is
     * treated as a node fault.
     */
    std::function<uint64_t()> integrity_errors;

    /** Wires all fields to a DsaClient (device + revive() +
     *  integrityErrorCount()). */
    static MirrorReplica forClient(DsaClient &client);
};

/** RAID-1 across V3 replicas with failover and background resync. */
class MirroredDevice : public BlockDevice
{
  public:
    /**
     * @param memory host memory for the resync bounce buffer.
     * @param replicas at least two legs, all the same capacity class
     *        (effective capacity is the minimum).
     */
    MirroredDevice(sim::Simulation &sim, sim::MemorySpace &memory,
                   std::vector<MirrorReplica> replicas,
                   MirrorConfig config = {});

    MirroredDevice(const MirroredDevice &) = delete;
    MirroredDevice &operator=(const MirroredDevice &) = delete;

    /** BlockDevice API. @{ */
    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::Addr buffer) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          sim::Addr buffer) override;
    uint64_t capacity() const override;
    /** @} */

    /**
     * Fails a leg out of the mirror proactively (idempotent). The
     * mirror learns about a dead node reactively — the first I/O
     * whose DSA client exhausts retransmission and reconnection —
     * which costs a full client-death timeout ladder per victim. A
     * cluster-level failure detector (heartbeats, src/cluster) that
     * already knows the node is down calls this instead, so I/O
     * stops targeting the dead leg immediately and the resync task
     * takes over; when the node was in fact healthy, the next revive
     * probe readmits it after an empty replay.
     */
    void failLeg(size_t idx);

    /** @name Statistics @{ */
    size_t replicaCount() const { return replicas_.size(); }
    size_t activeReplicas() const;
    /** True when leg @p idx currently serves I/O. */
    bool legActive(size_t idx) const { return replicas_[idx].active; }
    /** True while leg @p idx is reachable again but still replaying
     *  missed writes (duplicated-to, not yet readable). */
    bool
    legCatchingUp(size_t idx) const
    {
        return replicas_[idx].catching_up;
    }
    /** True while any replica is failed out of the mirror. */
    bool degraded() const;
    uint64_t failoverCount() const { return failovers_.value(); }
    uint64_t readmitCount() const { return readmits_.value(); }
    uint64_t resyncBytes() const { return resync_bytes_.value(); }
    /** Total bytes currently in dirty-region logs. */
    uint64_t dirtyBytes() const;
    /** Dirty-log bytes of one leg. */
    uint64_t legDirtyBytes(size_t idx) const;
    /** Writes in flight that miss leg @p idx (issued while it was
     *  down); readmission waits for this to reach zero. */
    uint64_t
    legInflightMissing(size_t idx) const
    {
        return replicas_[idx].inflight_missing;
    }
    /** Damaged ranges rewritten from a peer replica (foreground
     *  reads and scrub passes both land here). */
    uint64_t
    integrityRepairCount() const
    {
        return integrity_repairs_.value();
    }
    /** Reads that failed verify-on-read on every replica: data loss
     *  the mirror could not mask. */
    uint64_t
    unrecoverableCount() const
    {
        return unrecoverable_.value();
    }
    uint64_t scrubbedBytes() const { return scrubbed_bytes_.value(); }
    uint64_t scrubPassCount() const { return scrub_passes_.value(); }
    /** @} */

  private:
    struct Replica
    {
        MirrorReplica leg;
        bool active = true;
        bool resyncing = false;
        /** Tick of the most recent failover; orders the legs of a
         *  fully-failed mirror so resync can pick a safe fallback
         *  source (see fallbackSource). */
        sim::Tick failed_at = 0;
        /** Node reachable again, replay in progress: new writes are
         *  duplicated to this replica, reads still avoid it. */
        bool catching_up = false;
        /** Dirty-region log: offset -> length, merged intervals. */
        std::map<uint64_t, uint64_t> dirty;
        /** Writes in flight that do not target this replica (it was
         *  down when they were issued). They log their region on
         *  completion, so readmission waits for this to reach zero
         *  rather than for *all* writes to drain — the latter never
         *  happens under a sustained closed-loop load. */
        uint64_t inflight_missing = 0;
        /** Replay chunks currently in flight (offset -> length):
         *  application writes overlapping one are re-logged, since
         *  the replayed snapshot may land after their data. */
        std::map<uint64_t, uint64_t> replaying;
    };

    /** Fails a replica out of the mirror (idempotent) and starts its
     *  resync task when a revive hook is available. */
    void failReplica(size_t idx);

    /** Merges [offset, offset+len) into the replica's dirty log. */
    static void logDirty(Replica &replica, uint64_t offset,
                         uint64_t len);

    /** Probe -> replay -> readmit loop for one failed replica. */
    sim::Task<> resyncTask(size_t idx);

    /**
     * Repairs [offset, offset+len) on replica @p idx: reads the good
     * copy from another active replica into @p buffer (so the caller
     * gets valid data either way), then rewrites the damaged leg
     * from it. Returns true when a good copy was obtained; the
     * rewrite failing (node just died, unaligned range) only defers
     * the repair to the dirty log.
     */
    sim::Task<bool> repairRange(size_t idx, uint64_t offset,
                                uint64_t len, sim::Addr buffer);

    /** Spawns the scrubber on the first I/O (not at construction:
     *  an infinite background task would keep connect-time
     *  Simulation::run() drains from terminating). */
    void maybeStartScrub();

    /** Paced background walk over all replicas (scrub_rate > 0). */
    sim::Task<> scrubTask();

    /** Index of an active replica to read from, or replicas_.size()
     *  when none is left. Advances the round-robin cursor. */
    size_t pickReader();

    /**
     * Resync source of last resort when *no* leg is active (double
     * fault): the failed leg with the strictly latest
     * (failed_at, index) rank that is quiescent (no in-flight missed
     * writes, no replay chunks). Returns replicas_.size() when
     * replica @p idx is itself the latest-failed leg — it waits
     * until an earlier-failed leg readmits and serves as an active
     * source.
     */
    size_t fallbackSource(size_t idx) const;

    sim::Simulation &sim_;
    sim::MemorySpace &memory_;
    MirrorConfig config_;
    std::vector<Replica> replicas_;

    /** Resync bounce buffers, resync_parallel chunks. */
    sim::Addr scratch_ = 0;

    size_t rr_cursor_ = 0;
    bool scrub_started_ = false;

    // Prefix member must precede the metric references (init order).
    std::string metric_prefix_;
    sim::CounterHandle failovers_;
    sim::CounterHandle readmits_;
    sim::CounterHandle resyncs_;
    sim::CounterHandle resync_bytes_;
    sim::CounterHandle degraded_reads_;
    sim::CounterHandle degraded_writes_;
    sim::CounterHandle integrity_repairs_;
    sim::CounterHandle unrecoverable_;
    sim::CounterHandle scrubbed_bytes_;
    sim::CounterHandle scrub_passes_;
    sim::SamplerHandle resync_time_ns_;
    sim::TimeWeightedHandle degraded_replicas_;
};

} // namespace v3sim::dsa

#endif // V3SIM_DSA_MIRRORED_DEVICE_HH
