#include "protocol.hh"

#include <algorithm>
#include <cstring>

#include "util/crc32c.hh"

namespace v3sim::dsa
{

uint64_t
flagValue(IoStatus status, uint32_t payload_digest)
{
    uint64_t flag = kFlagDone;
    switch (status) {
      case IoStatus::Ok:
        flag |= kFlagOk;
        break;
      case IoStatus::Error:
        break;
      case IoStatus::BadDigest:
        flag |= kFlagBadDigest;
        break;
      case IoStatus::IntegrityError:
        flag |= kFlagIntegrity;
        break;
      case IoStatus::Busy:
        flag |= kFlagBusy;
        break;
    }
    return flag | (static_cast<uint64_t>(payload_digest) << 32);
}

IoStatus
statusFromFlag(uint64_t flag)
{
    if (flag & kFlagOk)
        return IoStatus::Ok;
    if (flag & kFlagBadDigest)
        return IoStatus::BadDigest;
    if (flag & kFlagIntegrity)
        return IoStatus::IntegrityError;
    if (flag & kFlagBusy)
        return IoStatus::Busy;
    return IoStatus::Error;
}

uint32_t
payloadDigest(const sim::MemorySpace &mem, sim::Addr addr, uint64_t len,
              uint32_t seed)
{
    if (mem.phantom())
        return 0;
    uint8_t chunk[4096];
    uint32_t crc = seed;
    uint64_t done = 0;
    while (done < len) {
        const uint64_t n = std::min<uint64_t>(sizeof(chunk), len - done);
        if (!mem.read(addr + done, chunk, n))
            return 0;
        crc = util::crc32c(chunk, n, crc);
        done += n;
    }
    return crc;
}

uint32_t
headerDigest(const RequestMsg &req)
{
    // The fields a serialized request header would carry, packed in a
    // fixed order. The digest fields themselves are excluded (iSCSI
    // header-digest style).
    uint8_t buf[48];
    std::memset(buf, 0, sizeof(buf));
    size_t at = 0;
    auto put = [&buf, &at](const void *src, size_t n) {
        std::memcpy(buf + at, src, n);
        at += n;
    };
    const uint8_t op = static_cast<uint8_t>(req.op);
    put(&op, sizeof(op));
    put(&req.request_id, sizeof(req.request_id));
    put(&req.seq, sizeof(req.seq));
    put(&req.volume, sizeof(req.volume));
    put(&req.offset, sizeof(req.offset));
    put(&req.len, sizeof(req.len));
    put(&req.tenant, sizeof(req.tenant));
    put(&req.staging_slot, sizeof(req.staging_slot));
    const uint8_t hint = static_cast<uint8_t>(req.hint);
    put(&hint, sizeof(hint));
    return util::crc32c(buf, at);
}

} // namespace v3sim::dsa
