#include "dsa_client.hh"

#include <algorithm>
#include <cassert>

#include "util/logging.hh"

namespace v3sim::dsa
{

using osmodel::CpuCat;
using osmodel::CpuLease;

const char *
dsaImplName(DsaImpl impl)
{
    switch (impl) {
      case DsaImpl::Kdsa: return "kDSA";
      case DsaImpl::Wdsa: return "wDSA";
      case DsaImpl::Cdsa: return "cDSA";
    }
    return "?";
}

namespace
{

/** Registry path segment: lowercase impl + volume, e.g. "cdsa0". */
std::string
clientPathSegment(DsaImpl impl, uint32_t volume)
{
    const char *impl_path = "?";
    switch (impl) {
      case DsaImpl::Kdsa: impl_path = "kdsa"; break;
      case DsaImpl::Wdsa: impl_path = "wdsa"; break;
      case DsaImpl::Cdsa: impl_path = "cdsa"; break;
    }
    return std::string("client.") + impl_path + std::to_string(volume);
}

/** CPU ticks to CRC32C @p len bytes at @p per_kb. */
sim::Tick
digestTicks(uint64_t len, sim::Tick per_kb)
{
    return static_cast<sim::Tick>((len + 1023) / 1024) * per_kb;
}

} // namespace

DsaClient::DsaClient(DsaImpl impl, osmodel::Node &node, vi::ViNic &nic,
                     net::PortId server_port, uint32_t volume,
                     DsaConfig config)
    : impl_(impl),
      node_(node),
      nic_(nic),
      server_port_(server_port),
      volume_(volume),
      config_(config),
      own_lock_(node.sim(), node.costs(),
                std::string(dsaImplName(impl)) + ".lock"),
      vi_send_lock_(node.sim(), node.costs(), "vi.send"),
      vi_recv_lock_(node.sim(), node.costs(), "vi.recv"),
      metric_prefix_(node.sim().metrics().uniquePrefix(
          clientPathSegment(impl, volume))),
      ios_(node.sim().metrics().counter(metric_prefix_ + ".ios")),
      retransmits_(node.sim().metrics().counter(metric_prefix_ +
                                                ".retransmits")),
      reconnects_(node.sim().metrics().counter(metric_prefix_ +
                                               ".reconnects")),
      abandoned_reconnects_(node.sim().metrics().counter(
          metric_prefix_ + ".abandoned_reconnects")),
      revives_(node.sim().metrics().counter(metric_prefix_ +
                                            ".revives")),
      intr_completions_(node.sim().metrics().counter(
          metric_prefix_ + ".intr_completions")),
      polled_completions_(node.sim().metrics().counter(
          metric_prefix_ + ".polled_completions")),
      digest_mismatches_(node.sim().metrics().counter(
          metric_prefix_ + ".integrity_digest_mismatches")),
      integrity_errors_(node.sim().metrics().counter(
          metric_prefix_ + ".integrity_errors")),
      busy_(node.sim().metrics().counter(metric_prefix_ + ".busy")),
      latency_(node.sim().metrics().sampler(metric_prefix_ +
                                            ".latency_ns")),
      latency_hist_(node.sim().metrics().histogram(metric_prefix_ +
                                                   ".latency_hist_ns"))
{
    // wDSA cannot apply the section-3 optimizations: it is bound to
    // exact Win32 semantics (section 3: "opportunities for
    // optimizations are severely limited").
    if (impl_ == DsaImpl::Wdsa)
        config_.opts = DsaOptimizations::none();

    // cDSA's interrupt optimization *is* the polled-flag completion
    // mode; without it completions arrive as messages + interrupts.
    mode_ = (impl_ == DsaImpl::Cdsa && config_.opts.interrupt_batching)
                ? CompletionMode::RdmaFlag
                : CompletionMode::Message;

    // kDSA buffers are pinned by the I/O manager before the driver
    // sees them; cDSA uses always-pinned AWE memory; wDSA registers
    // raw user memory and pays pinning itself (section 3.1).
    const bool pre_pinned = impl_ != DsaImpl::Wdsa;
    reg_cache_ = std::make_unique<RegCache>(
        nic_.registry(), pre_pinned, config_.opts.batched_dereg);

    recv_cq_ = std::make_unique<vi::CompletionQueue>(
        std::string(dsaImplName(impl)) + ".rcq");

    // Client-side buffers: one request scratch (contents ride the
    // control sidecar), a response-recv pool, and the completion
    // flag array.
    sim::MemorySpace &mem = node_.memory();
    msg_buf_ = mem.allocate(kRequestWireBytes);
    auto msg_reg =
        nic_.registry().registerMemory(msg_buf_, kRequestWireBytes,
                                       true);
    assert(msg_reg.has_value());
    msg_handle_ = msg_reg->handle;

    const uint32_t slots = responseSlots();
    resp_buf_base_ = mem.allocate(
        static_cast<uint64_t>(slots) * kResponseWireBytes);
    auto resp_reg = nic_.registry().registerMemory(
        resp_buf_base_, static_cast<uint64_t>(slots) *
                            kResponseWireBytes,
        true);
    assert(resp_reg.has_value());
    resp_handle_ = resp_reg->handle;

    flag_base_ = mem.allocate(static_cast<uint64_t>(slots) * 8);
    auto flag_reg = nic_.registry().registerMemory(
        flag_base_, static_cast<uint64_t>(slots) * 8, true);
    assert(flag_reg.has_value());
    flag_handle_ = flag_reg->handle;
    for (uint32_t i = 0; i < slots; ++i)
        free_flags_.push_back(slots - 1 - i);

    // Observe inbound RDMA writes so flag completions work even with
    // phantom memory, and so damaged fragments taint the buffers
    // they land in.
    nic_.setRdmaObserver([this](const vi::ViNic::RdmaEvent &event) {
        onRdmaEvent(event);
    });
}

DsaClient::~DsaClient() = default;

uint64_t
DsaClient::ackBelow() const
{
    return outstanding_seqs_.empty() ? next_seq_
                                     : *outstanding_seqs_.begin();
}

int
DsaClient::ownSyncPairs() const
{
    if (impl_ == DsaImpl::Wdsa)
        return 3; // fixed: Win32 semantics force the long path
    if (config_.opts.reduced_sync)
        return 1;
    // cDSA owns the whole path between database and VI, so the
    // unoptimized variant has more of its own locks to shed
    // (section 3.3: reducing sync has "the largest performance
    // impact in cDSA").
    return impl_ == DsaImpl::Cdsa ? 5 : 3;
}

sim::Task<bool>
DsaClient::connect()
{
    const bool ok = co_await establish();
    if (ok)
        ready_ = true;
    co_return ok;
}

sim::Task<bool>
DsaClient::revive()
{
    if (ready_ && !dead_)
        co_return true;
    if (reconnecting_)
        co_return false; // automatic reconnection still in progress
    // One attempt per call: the prober retries on its own schedule,
    // so a dead server just means this probe fails cheaply. dead_
    // stays set until the connection is actually up: clearing it
    // before establish() would open a window in which submit() puts
    // fresh I/O into pending_ with nobody left to fail it if the
    // probe loses the race (give-up already ran, and the retransmit
    // timer treats a dead client as terminal).
    const bool ok = co_await establish();
    if (ok) {
        dead_ = false;
        ready_ = true;
        revives_.increment();
    }
    co_return ok;
}

sim::Task<bool>
DsaClient::establish()
{
    // If the old endpoint is still connected (spurious retransmission
    // exhaustion under load, not an actual failure), disconnect it
    // first so the server learns the connection is abandoned and can
    // release its staging registration. Silently walking away would
    // leak server NIC capacity on every reconnection.
    if (ep_ && ep_->state() == vi::EndpointState::Connected) {
        ep_->setStateHandler(nullptr);
        nic_.disconnect(*ep_);
    }

    // Fresh endpoint each time: VI endpoints do not survive errors.
    ep_ = &nic_.createEndpoint(nullptr, recv_cq_.get());

    sim::Completion<bool> connected;
    connect_waiter_ = &connected;
    ep_->setStateHandler([this](vi::EndpointState state) {
        if (state == vi::EndpointState::Connected) {
            if (connect_waiter_) {
                auto *w = connect_waiter_;
                connect_waiter_ = nullptr;
                w->set(true);
            }
        } else if (state == vi::EndpointState::Error) {
            if (connect_waiter_) {
                auto *w = connect_waiter_;
                connect_waiter_ = nullptr;
                w->set(false);
            } else if (ready_ && !reconnecting_) {
                sim::spawn(reconnect());
            }
        }
    });

    // Guard the handshake with a timeout: the ConnectReq or its Ack
    // can be lost, and VI gives no notification.
    auto connect_timer = node_.sim().queue().scheduleCancelable(
        config_.connect_timeout, [this] {
            if (connect_waiter_) {
                auto *w = connect_waiter_;
                connect_waiter_ = nullptr;
                w->set(false);
            }
        });
    nic_.connect(*ep_, server_port_);
    const bool connected_ok = co_await connected.wait();
    connect_timer.cancel();
    if (!connected_ok)
        co_return false;

    // Post response receives and arm for the HelloAck. The pool is
    // oversized relative to the credit budget so duplicate responses
    // (to spurious retransmissions) never exhaust posted receives.
    const uint32_t slots = responseSlots();
    for (uint32_t i = 0; i < slots; ++i) {
        vi::WorkDescriptor desc;
        desc.cookie = i;
        desc.local_addr =
            resp_buf_base_ + static_cast<uint64_t>(i) *
                                 kResponseWireBytes;
        desc.len = kResponseWireBytes;
        nic_.postRecv(*ep_, desc, resp_handle_);
    }
    recv_cq_->setInterruptSink([this] {
        // Interrupts from this CQ are ordered against same-tick
        // interrupts from other devices by NIC port (content).
        node_.interrupts().raise(
            [this](CpuLease lease) {
                return drainRecvCq(lease, /*interrupt_context=*/true);
            },
            nic_.port());
    });
    recv_cq_->arm();

    // Hello: learn credits, staging geometry, volume capacity.
    sim::Completion<bool> hello_done;
    hello_waiter_ = &hello_done;
    {
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority, nic_.port());
        co_await lease.run(config_.costs.request_build, CpuCat::Dsa);
        auto hello = std::make_shared<RequestMsg>();
        hello->op = DsaOp::Hello;
        hello->volume = volume_;
        hello->completion = CompletionMode::Message;
        vi::WorkDescriptor desc;
        desc.local_addr = msg_buf_;
        desc.len = kRequestWireBytes;
        desc.control = std::move(hello);
        co_await lease.run(nic_.costs().doorbell, CpuCat::Vi);
        nic_.postSend(*ep_, desc, msg_handle_);
        cpus().release();
    }
    auto hello_timer = node_.sim().queue().scheduleCancelable(
        config_.connect_timeout, [this] {
            if (hello_waiter_) {
                auto *w = hello_waiter_;
                hello_waiter_ = nullptr;
                w->set(false);
            }
        });
    const bool hello_ok = co_await hello_done.wait();
    hello_timer.cancel();
    co_return hello_ok;
}

void
DsaClient::onRdmaEvent(const vi::ViNic::RdmaEvent &event)
{
    const uint32_t slots = responseSlots();
    const bool in_flags =
        event.addr >= flag_base_ &&
        event.addr < flag_base_ + static_cast<uint64_t>(slots) * 8;

    if (!in_flags) {
        // Read data landing in an I/O buffer: track taint per I/O so
        // damaged fragments are detected even when memory is phantom
        // (no bytes to CRC). A (re)transfer starts at the buffer
        // base, which clears taint from an earlier damaged attempt.
        for (auto &[id, io] : pending_) {
            if (io->buffer == sim::kNullAddr ||
                event.addr < io->buffer ||
                event.addr >= io->buffer + io->msg.len) {
                continue;
            }
            if (event.addr == io->buffer)
                io->tainted = false;
            if (event.corrupted)
                io->tainted = true;
            break;
        }
        return;
    }

    if (!event.last)
        return;
    if (event.corrupted) {
        // The completion flag word itself was damaged: treat it as
        // lost; the retransmission timer recovers and the server
        // replays the completion.
        digest_mismatches_.increment();
        return;
    }
    const uint32_t index =
        static_cast<uint32_t>((event.addr - flag_base_) / 8);
    auto it = flag_to_io_.find(index);
    if (it == flag_to_io_.end())
        return;
    auto pending = pending_.find(it->second);
    if (pending == pending_.end())
        return;
    PendingIo *io = pending->second;
    if (io->done)
        return;

    io->flag_set = true;
    IoStatus status;
    uint64_t flag;
    if (node_.memory().phantom()) {
        // Flag bytes are not stored; the sender mirrors the flag
        // word into the descriptor's meta sidecar.
        flag = event.meta;
    } else {
        flag = node_.memory().readU64(io->msg.flag_addr);
    }
    status = statusFromFlag(flag);

    // Flag-mode read verification: the flag's upper half carries the
    // server's payload digest, so a damaged or stale buffer (e.g. a
    // duplicate delivery from a spurious retransmission trampling a
    // reused buffer) is caught exactly like in Message mode.
    bool digest_bad = false;
    if (status == IoStatus::Ok && io->msg.op == DsaOp::Read &&
        !node_.memory().phantom() && digestFromFlag(flag) != 0) {
        digest_bad = payloadDigest(node_.memory(), io->buffer,
                                   io->msg.len) != digestFromFlag(flag);
    }

    if (status == IoStatus::BadDigest || digest_bad ||
        (status == IoStatus::Ok && io->tainted)) {
        // The write payload failed the server's check, or our read
        // data arrived damaged: recover like a loss, but retransmit
        // immediately instead of waiting out the timer.
        digest_mismatches_.increment();
        io->tainted = false;
        io->retx_timer.cancel();
        sim::spawn(retransmit(io->id));
        return;
    }
    if (status == IoStatus::IntegrityError)
        integrity_errors_.increment();
    if (status == IoStatus::Busy) {
        // Deliberate shed by the server's admission gate: fail the
        // I/O now. Retransmitting would re-feed the overload.
        busy_.increment();
    }
    io->ok = status == IoStatus::Ok;
    io->done = true;
    io->completion.set(io->ok);
}

sim::Task<bool>
DsaClient::read(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return submit(false, offset, len, buffer, 0);
}

sim::Task<bool>
DsaClient::write(uint64_t offset, uint64_t len, sim::Addr buffer)
{
    return submit(true, offset, len, buffer, 0);
}

sim::Task<bool>
DsaClient::read(uint64_t offset, uint64_t len, sim::Addr buffer,
                uint64_t tenant)
{
    return submit(false, offset, len, buffer, tenant);
}

sim::Task<bool>
DsaClient::write(uint64_t offset, uint64_t len, sim::Addr buffer,
                 uint64_t tenant)
{
    return submit(true, offset, len, buffer, tenant);
}

sim::Task<bool>
DsaClient::hint(HintKind kind, uint64_t offset, uint64_t len)
{
    assert(impl_ == DsaImpl::Cdsa &&
           "hints are part of the cDSA API");
    if (dead_ || !ready_)
        co_return false;

    co_await credits_->acquire(offset);

    PendingIo io;
    io.id = next_id_++;
    io.flag_index = free_flags_.back();
    free_flags_.pop_back();
    io.issued_at = node_.sim().now();
    io.msg.op = DsaOp::Hint;
    io.msg.hint = kind;
    io.msg.request_id = io.id;
    io.msg.seq = next_seq_++;
    io.msg.volume = volume_;
    io.msg.offset = offset;
    io.msg.len = static_cast<uint32_t>(len);
    io.msg.completion = mode_;
    io.msg.flag_addr =
        flag_base_ + static_cast<uint64_t>(io.flag_index) * 8;
    io.msg.header_digest = headerDigest(io.msg);

    outstanding_seqs_.insert(io.msg.seq);
    pending_[io.id] = &io;
    flag_to_io_[io.flag_index] = io.id;
    if (!node_.memory().phantom())
        node_.memory().writeU64(io.msg.flag_addr, 0);

    {
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority, io.msg.offset);
        co_await lease.run(config_.costs.request_build +
                               config_.costs.cdsa_issue,
                           CpuCat::Dsa);
        co_await lease.run(nic_.costs().doorbell, CpuCat::Vi);
        postRequest(io);
        cpus().release();
    }
    scheduleRetransmit(io);
    const bool ok = co_await awaitCompletion(io);

    io.retx_timer.cancel();
    pending_.erase(io.id);
    flag_to_io_.erase(io.flag_index);
    outstanding_seqs_.erase(io.msg.seq);
    free_flags_.push_back(io.flag_index);
    credits_->release();
    co_return ok;
}

sim::Task<bool>
DsaClient::submit(bool is_write, uint64_t offset, uint64_t len,
                  sim::Addr buffer, uint64_t tenant)
{
    if (dead_)
        co_return false;

    // Flow control gates first, holding no CPU; keyed by the I/O
    // buffer so saturated-credit grants stay content-ordered
    // (DESIGN.md §8.3). Re-check dead_ after every wait: an I/O
    // parked here while the reconnect ladder gives up would
    // otherwise proceed onto the dead connection, where nothing can
    // ever complete it (the give-up path fails only I/Os already in
    // pending_, and the retransmit timer no-ops once dead_ is set).
    co_await credits_->acquire(buffer);
    if (dead_) {
        credits_->release();
        co_return false;
    }
    uint32_t staging_slot = UINT32_MAX;
    if (is_write) {
        co_await staging_sem_->acquire(buffer);
        if (dead_) {
            staging_sem_->release();
            credits_->release();
            co_return false;
        }
        staging_slot = free_staging_.back();
        free_staging_.pop_back();
    }

    PendingIo io;
    io.id = next_id_++;
    io.buffer = buffer;
    io.staging_slot = staging_slot;
    io.flag_index = free_flags_.back();
    free_flags_.pop_back();
    io.issued_at = node_.sim().now();

    io.msg.op = is_write ? DsaOp::Write : DsaOp::Read;
    io.msg.request_id = io.id;
    io.msg.seq = next_seq_++;
    io.msg.volume = volume_;
    io.msg.offset = offset;
    io.msg.len = static_cast<uint32_t>(len);
    io.msg.client_buffer = buffer;
    io.msg.staging_slot = staging_slot;
    io.msg.tenant = tenant;
    io.msg.completion = mode_;
    io.msg.flag_addr =
        flag_base_ + static_cast<uint64_t>(io.flag_index) * 8;
    if (is_write && !node_.memory().phantom()) {
        io.msg.payload_digest =
            payloadDigest(node_.memory(), buffer, len);
        io.msg.digest_valid = true;
    }
    io.msg.header_digest = headerDigest(io.msg);

    outstanding_seqs_.insert(io.msg.seq);
    pending_[io.id] = &io;
    flag_to_io_[io.flag_index] = io.id;
    if (!node_.memory().phantom())
        node_.memory().writeU64(io.msg.flag_addr, 0);

    {
        // Arbitration key: the I/O buffer — unique per concurrent
        // submitter, pure content (DESIGN.md §8.3).
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority, io.buffer);
        co_await issuePath(lease, io);
        cpus().release();
    }
    scheduleRetransmit(io);

    const bool ok = co_await awaitCompletion(io);

    // Epilogue: return resources, record stats.
    io.retx_timer.cancel();
    pending_.erase(io.id);
    flag_to_io_.erase(io.flag_index);
    outstanding_seqs_.erase(io.msg.seq);
    free_flags_.push_back(io.flag_index);
    if (is_write) {
        free_staging_.push_back(staging_slot);
        staging_sem_->release();
    }
    credits_->release();
    ios_.increment();
    const double lat =
        static_cast<double>(node_.sim().now() - io.issued_at);
    latency_.add(lat);
    latency_hist_.add(lat);
    co_return ok;
}

sim::Task<>
DsaClient::issuePath(CpuLease &lease, PendingIo &io)
{
    const DsaClientCosts &costs = config_.costs;
    const uint64_t pages = sim::pageSpan(io.buffer, io.msg.len);

    co_await lease.run(costs.request_build, CpuCat::Dsa);
    // Write payloads are digested before staging (charged whether or
    // not real bytes back the buffer; see dsa::payloadDigest).
    if (io.msg.op == DsaOp::Write) {
        co_await lease.run(digestTicks(io.msg.len, costs.digest_per_kb),
                           CpuCat::Dsa);
    }

    switch (impl_) {
      case DsaImpl::Kdsa:
        // Standard kernel storage API: the I/O manager runs first
        // (syscall, IRP, probe-and-lock, two sync pairs), then any
        // stacked driver layers (class/miniport), then the thin
        // kDSA driver itself.
        co_await node_.ioManager().issueRequest(lease, pages,
                                                /*pin_buffer=*/true);
        for (int layer = 0; layer < config_.kdsa_extra_layers;
             ++layer) {
            co_await lease.run(config_.driver_layer_cost,
                               CpuCat::Kernel);
            co_await node_.ioManager().dispatchLock().syncPair(
                lease, CpuCat::Kernel);
        }
        co_await lease.run(costs.kdsa_issue, CpuCat::Dsa);
        break;
      case DsaImpl::Wdsa:
        // kernel32.dll replacement: no kernel on the issue side, but
        // heavy Win32-semantics emulation.
        co_await lease.run(costs.wdsa_issue, CpuCat::Dsa);
        break;
      case DsaImpl::Cdsa:
        co_await lease.run(costs.cdsa_issue, CpuCat::Dsa);
        break;
    }

    {
        const sim::Tick hold =
            impl_ == DsaImpl::Wdsa ? costs.wdsa_lock_hold
                                   : sim::Tick{-1};
        for (int i = 0; i < ownSyncPairs(); ++i)
            co_await own_lock_.syncPair(lease, CpuCat::Dsa, hold);
    }

    // Register the I/O buffer (dynamic, per section 3.1).
    auto reg = reg_cache_->acquire(io.buffer, io.msg.len);
    if (reg.has_value()) {
        io.handle = reg->handle;
        co_await lease.run(reg->cost, CpuCat::Vi);
    }
    co_await vi_send_lock_.syncPair(lease, CpuCat::Vi);
    co_await vi_recv_lock_.syncPair(lease, CpuCat::Vi);

    // kDSA posts from kernel context through the kernel VI provider.
    if (impl_ == DsaImpl::Kdsa) {
        co_await lease.run(nic_.costs().kernel_transition, CpuCat::Vi);
    }
    if (io.msg.op == DsaOp::Write) {
        // Stage the payload into the server's granted slot first;
        // in-order delivery puts it there before the request lands.
        co_await lease.run(nic_.costs().doorbell, CpuCat::Vi);
    }
    co_await lease.run(nic_.costs().doorbell, CpuCat::Vi);
    postRequest(io);

    // kDSA interrupt batching: while completion interrupts are off,
    // the issue path drains completions synchronously (section 3.2).
    if (impl_ == DsaImpl::Kdsa && config_.opts.interrupt_batching &&
        !recv_cq_->armed()) {
        co_await drainRecvCq(lease, /*interrupt_context=*/false);
    }
}

void
DsaClient::postRequest(PendingIo &io)
{
    if (!ep_ || ep_->state() != vi::EndpointState::Connected)
        return; // reconnection will replay

    // NIC arbitration key for everything this I/O transmits: the
    // client buffer (content; unique per concurrent submitter).
    const uint64_t tx_key = io.buffer != sim::kNullAddr
                                ? io.buffer
                                : io.msg.offset;
    if (io.msg.op == DsaOp::Write && io.msg.len > 0) {
        vi::WorkDescriptor data;
        data.local_addr = io.buffer;
        data.len = io.msg.len;
        data.remote_addr =
            staging_base_ + static_cast<uint64_t>(io.msg.staging_slot) *
                                staging_slot_bytes_;
        data.order_key = tx_key;
        nic_.postRdmaWrite(*ep_, data, io.handle);
    }

    io.msg.ack_below = ackBelow();
    auto control = std::make_shared<RequestMsg>(io.msg);
    vi::WorkDescriptor desc;
    desc.local_addr = msg_buf_;
    desc.len = kRequestWireBytes;
    desc.control = std::move(control);
    desc.order_key = tx_key;
    nic_.postSend(*ep_, desc, msg_handle_);
}

void
DsaClient::applyArmPolicy()
{
    if (mode_ != CompletionMode::Message)
        return;
    if (impl_ != DsaImpl::Kdsa || !config_.opts.interrupt_batching) {
        recv_cq_->arm();
        return;
    }
    const size_t outstanding = pending_.size();
    if (outstanding >= config_.intr_high_watermark) {
        recv_cq_->disarm();
        if (!backup_poller_active_)
            sim::spawn(backupPoller());
    } else if (outstanding < config_.intr_low_watermark ||
               outstanding == 0) {
        recv_cq_->arm();
    } else if (!recv_cq_->armed() && !backup_poller_active_) {
        sim::spawn(backupPoller());
    }
}

sim::Task<>
DsaClient::backupPoller()
{
    backup_poller_active_ = true;
    while (mode_ == CompletionMode::Message && !recv_cq_->armed() &&
           !pending_.empty()) {
        co_await node_.sim().sleep(config_.backup_poll_period);
        if (recv_cq_->armed())
            break;
        if (recv_cq_->empty())
            continue;
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority,
            (uint64_t{1} << 40) | nic_.port());
        co_await drainRecvCq(lease, /*interrupt_context=*/false);
        cpus().release();
    }
    backup_poller_active_ = false;
    applyArmPolicy();
}

sim::Task<>
DsaClient::drainRecvCq(CpuLease lease, bool interrupt_context)
{
    if (draining_) {
        if (interrupt_context)
            applyArmPolicy();
        co_return;
    }
    draining_ = true;
    for (;;) {
        auto completion = recv_cq_->poll();
        if (!completion) {
            // The "CQ is empty" decision is re-taken from the tick's
            // final band: whether a completion lands just before or
            // just after the poll above is a tie-shuffled race, and
            // the interrupt count must not depend on it (§8.3).
            co_await node_.sim().queue().finalBand();
            completion = recv_cq_->poll();
            if (!completion)
                break;
        }
        co_await lease.run(nic_.costs().cq_poll, CpuCat::Vi);
        if (completion->status != vi::WorkStatus::Ok)
            continue; // flushed by teardown; recvs reposted on
                      // reconnect
        if (completion->corrupted) {
            // Response or HelloAck damaged in flight: its digest
            // fails, so it is dropped like a lost packet and the
            // request-level machinery (retransmit / Hello timeout)
            // recovers.
            digest_mismatches_.increment();
        } else if (completion->control) {
            auto msg = std::static_pointer_cast<ServerMsg>(
                completion->control);
            if (msg->kind == ServerMsg::Kind::HelloAck) {
                const HelloAckMsg &ack = msg->hello;
                granted_credits_ = std::min(config_.max_outstanding,
                                            ack.request_credits);
                if (!credits_) {
                    credits_ = std::make_unique<sim::Semaphore>(
                        node_.sim().queue(), granted_credits_);
                    staging_sem_ = std::make_unique<sim::Semaphore>(
                        node_.sim().queue(), ack.staging_slots);
                    for (uint32_t i = 0; i < ack.staging_slots; ++i)
                        free_staging_.push_back(
                            ack.staging_slots - 1 - i);
                }
                staging_base_ = ack.staging_base;
                staging_slot_bytes_ = ack.staging_slot_bytes;
                capacity_ = ack.volume_capacity;
                if (hello_waiter_) {
                    auto *waiter = hello_waiter_;
                    hello_waiter_ = nullptr;
                    waiter->set(true);
                }
            } else {
                co_await completeFromResponse(lease, msg->response);
            }
        }
        // Return the response buffer to the endpoint.
        if (ep_ && ep_->state() == vi::EndpointState::Connected) {
            vi::WorkDescriptor desc;
            desc.cookie = completion->cookie;
            desc.local_addr =
                resp_buf_base_ + completion->cookie *
                                     kResponseWireBytes;
            desc.len = kResponseWireBytes;
            nic_.postRecv(*ep_, desc, resp_handle_);
        }
    }
    draining_ = false;
    applyArmPolicy();
}

sim::Task<>
DsaClient::deregisterBuffer(CpuLease &lease, PendingIo &io)
{
    if (!io.handle.valid())
        co_return; // buffer-less request (hint)
    if (config_.opts.batched_dereg) {
        // Bookkeeping only until a whole region retires; the
        // amortized region operation needs no page locking because
        // the entries' pages were never pinned by the VI layer (or
        // are unpinned wholesale).
        co_await lease.run(reg_cache_->release(io.handle),
                           CpuCat::Vi);
        co_return;
    }
    // Per-I/O deregistration: the NIC-table removal (and, for
    // self-pinned buffers, the unpin) run on this CPU; unwiring the
    // pages from the NIC's translation serializes on the host-global
    // memory-manager lock (section 3.1: "deregistration requires
    // locking pages, which becomes more expensive at larger
    // processor counts"). At high I/O rates on many CPUs that lock
    // saturates — the mechanism behind the batched-deregistration
    // gains of Figures 9/12.
    const sim::Tick dereg_cost = reg_cache_->release(io.handle);
    co_await lease.run(dereg_cost, CpuCat::Vi);
    const uint64_t pages = sim::pageSpan(io.buffer, io.msg.len);
    sim::Tick page_lock = static_cast<sim::Tick>(pages) *
                          node_.costs().probe_lock_page * 3;
    // Buffers the VI layer pinned itself (wDSA) also unpin their
    // pages under the same lock.
    if (!reg_cache_->prePinned()) {
        page_lock += static_cast<sim::Tick>(pages) *
                     node_.costs().probe_lock_page;
    }
    co_await node_.memoryLock().syncPair(lease, CpuCat::Vi,
                                         page_lock);
}

sim::Task<>
DsaClient::completeFromResponse(CpuLease &lease,
                                const ResponseMsg &response)
{
    auto it = pending_.find(response.request_id);
    if (it == pending_.end() || it->second->done)
        co_return; // stale duplicate (retransmission crossing)
    PendingIo *io = it->second;

    // End-to-end verification before the completion is accepted.
    IoStatus status = response.status;
    if (status == IoStatus::Ok && io->msg.op == DsaOp::Read) {
        co_await lease.run(
            digestTicks(io->msg.len, config_.costs.digest_per_kb),
            CpuCat::Dsa);
        bool good = !io->tainted;
        if (good && response.digest_valid &&
            !node_.memory().phantom()) {
            good = payloadDigest(node_.memory(), io->buffer,
                                 io->msg.len) ==
                   response.payload_digest;
        }
        if (!good)
            status = IoStatus::BadDigest;
    }
    if (status == IoStatus::BadDigest) {
        // Write payload rejected by the server, or read data damaged
        // on the way back: recover like a loss, retransmitting
        // immediately instead of waiting out the timer.
        digest_mismatches_.increment();
        io->tainted = false;
        io->retx_timer.cancel();
        sim::spawn(retransmit(io->id));
        co_return;
    }
    if (status == IoStatus::IntegrityError)
        integrity_errors_.increment();
    if (status == IoStatus::Busy) {
        // Deliberate shed by the server's admission gate: fail the
        // I/O now instead of retransmitting into the overload.
        busy_.increment();
    }

    io->done = true;
    io->ok = status == IoStatus::Ok;
    io->retx_timer.cancel();
    intr_completions_.increment();

    const DsaClientCosts &costs = config_.costs;
    const osmodel::HostCosts &host = node_.costs();
    const uint64_t pages = sim::pageSpan(io->buffer, io->msg.len);

    switch (impl_) {
      case DsaImpl::Kdsa:
        co_await lease.run(costs.kdsa_complete, CpuCat::Dsa);
        // Completions unwind back up through any stacked layers.
        for (int layer = 0; layer < config_.kdsa_extra_layers;
             ++layer) {
            co_await lease.run(config_.driver_layer_cost,
                               CpuCat::Kernel);
            co_await node_.ioManager().dispatchLock().syncPair(
                lease, CpuCat::Kernel);
        }
        for (int i = 0; i < ownSyncPairs(); ++i)
            co_await own_lock_.syncPair(lease, CpuCat::Dsa);
        co_await deregisterBuffer(lease, *io);
        co_await vi_recv_lock_.syncPair(lease, CpuCat::Vi);
        co_await node_.ioManager().completeRequest(
            lease, pages, /*unpin_buffer=*/true);
        break;
      case DsaImpl::Wdsa:
        co_await lease.run(costs.wdsa_complete, CpuCat::Dsa);
        for (int i = 0; i < ownSyncPairs(); ++i)
            co_await own_lock_.syncPair(lease, CpuCat::Dsa,
                                        costs.wdsa_lock_hold);
        co_await deregisterBuffer(lease, *io);
        co_await vi_recv_lock_.syncPair(lease, CpuCat::Vi);
        // Win32 completion: signal the app's event through the
        // kernel and switch to the waiting thread; satisfying
        // kernel32 semantics costs extra system calls (section 2.2:
        // "Support for these mechanisms may involve extra system
        // calls").
        co_await lease.run(2 * host.syscall, CpuCat::Kernel);
        co_await lease.run(host.event_signal, CpuCat::Kernel);
        co_await lease.run(host.context_switch, CpuCat::Kernel);
        break;
      case DsaImpl::Cdsa:
        // Message-mode cDSA (interrupt batching disabled).
        co_await lease.run(costs.cdsa_complete, CpuCat::Dsa);
        for (int i = 0; i < ownSyncPairs(); ++i)
            co_await own_lock_.syncPair(lease, CpuCat::Dsa);
        co_await deregisterBuffer(lease, *io);
        co_await vi_recv_lock_.syncPair(lease, CpuCat::Vi);
        co_await lease.run(host.context_switch, CpuCat::Kernel);
        break;
    }
    if (!config_.opts.reduced_sync && impl_ != DsaImpl::Wdsa) {
        co_await lease.run(node_.costs().sync_restructure,
                           CpuCat::Dsa);
    }
    io->completion.set(io->ok);
}

sim::Task<bool>
DsaClient::awaitCompletion(PendingIo &io)
{
    if (mode_ == CompletionMode::Message) {
        const bool ok = co_await io.completion.wait();
        co_return ok;
    }

    // cDSA polled flags (section 3.2): the application polls the
    // completion flag every poll_interval for up to poll_timeout,
    // then goes to sleep; waking from sleep costs an interrupt plus
    // a context switch. Modelled in closed form to keep the event
    // count at one per I/O: wait for the flag (the RDMA observer
    // fires the completion), then charge exactly the polls the loop
    // would have made and delay to the poll tick that would have
    // noticed the flag.
    const sim::Tick posted = node_.sim().now();
    const bool ok_result = co_await io.completion.wait();
    (void)ok_result;
    const sim::Tick waited = node_.sim().now() - posted;

    if (waited <= config_.poll_timeout) {
        polled_completions_.increment();
        // Detection happens at the next poll boundary.
        const sim::Tick into_interval =
            config_.poll_interval > 0 ? waited % config_.poll_interval
                                      : 0;
        const sim::Tick detect_delay =
            into_interval == 0 ? 0
                               : config_.poll_interval - into_interval;
        if (detect_delay > 0)
            co_await node_.sim().sleep(detect_delay);
        // The scheduler checks each pending flag once per pass; as
        // waits lengthen its pass interval stretches with the run
        // queue, so charged polls are capped rather than linear.
        const int64_t polls = std::min<int64_t>(
            config_.poll_interval > 0
                ? waited / config_.poll_interval + 1
                : 1,
            64);
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority, io.buffer);
        co_await lease.run(polls * config_.costs.poll_check,
                           CpuCat::Dsa);
        cpus().release();
    } else {
        // Poll window expired before the flag landed: the app slept
        // and the completion woke it the expensive way.
        intr_completions_.increment();
        const int64_t polls = std::min<int64_t>(
            config_.poll_interval > 0
                ? config_.poll_timeout / config_.poll_interval
                : 0,
            64);
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority, io.buffer);
        co_await lease.run(polls * config_.costs.poll_check,
                           CpuCat::Dsa);
        co_await lease.run(node_.costs().interrupt, CpuCat::Kernel);
        co_await lease.run(node_.costs().context_switch,
                           CpuCat::Kernel);
        cpus().release();
    }
    io.retx_timer.cancel();

    // Completion-side path in the application's context: no kernel.
    {
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority, io.buffer);
        // Read-payload digest verification (the compare itself runs
        // in the flag observer; its time is charged here, on the
        // application path, identically for phantom and real runs).
        if (io.msg.op == DsaOp::Read && io.ok) {
            co_await lease.run(
                digestTicks(io.msg.len, config_.costs.digest_per_kb),
                CpuCat::Dsa);
        }
        co_await lease.run(config_.costs.cdsa_complete, CpuCat::Dsa);
        for (int i = 0; i < ownSyncPairs(); ++i)
            co_await own_lock_.syncPair(lease, CpuCat::Dsa);
        if (!config_.opts.reduced_sync) {
            co_await lease.run(node_.costs().sync_restructure,
                               CpuCat::Dsa);
        }
        co_await deregisterBuffer(lease, io);
        co_await vi_recv_lock_.syncPair(lease, CpuCat::Vi);
        cpus().release();
    }
    co_return io.ok;
}

void
DsaClient::scheduleRetransmit(PendingIo &io)
{
    const uint64_t id = io.id;
    io.retx_timer = node_.sim().queue().scheduleCancelable(
        config_.retransmit_timeout,
        [this, id] { sim::spawn(retransmit(id)); });
}

sim::Task<>
DsaClient::retransmit(uint64_t io_id)
{
    auto it = pending_.find(io_id);
    if (it == pending_.end() || it->second->done)
        co_return;
    PendingIo *io = it->second;

    if (dead_) {
        // The client died while this I/O was outstanding. The
        // give-up sweep normally failed it already, but an I/O that
        // slipped into pending_ between death and a later revive
        // would otherwise hang forever (nothing completes I/O on a
        // dead connection); fail it here so its timer is the
        // backstop.
        io->done = true;
        io->ok = false;
        io->completion.set(false);
        co_return;
    }
    if (reconnecting_) {
        scheduleRetransmit(*io);
        co_return;
    }
    if (io->retx_count >= config_.max_retransmits) {
        V3LOG(Info, "dsa") << dsaImplName(impl_)
                           << ": request " << io->id
                           << " exhausted retransmits; reconnecting";
        if (!reconnecting_)
            sim::spawn(reconnect());
        co_return;
    }
    ++io->retx_count;
    retransmits_.increment();
    io->msg.retransmit = true;

    CpuLease lease = co_await cpus().acquire(
        osmodel::CpuPool::kNormalPriority, io->buffer);
    co_await lease.run(config_.costs.request_build, CpuCat::Dsa);
    co_await lease.run(nic_.costs().doorbell, CpuCat::Vi);
    postRequest(*io);
    cpus().release();
    scheduleRetransmit(*io);
}

sim::Task<>
DsaClient::reconnect()
{
    if (reconnecting_)
        co_return;
    reconnecting_ = true;
    reconnects_.increment();
    ready_ = false;

    int attempts = 0;
    for (;;) {
        co_await node_.sim().sleep(config_.reconnect_delay);
        if (co_await establish())
            break;
        V3LOG(Info, "dsa") << dsaImplName(impl_)
                           << ": reconnect attempt failed, retrying";
        if (++attempts >= config_.max_reconnect_attempts) {
            // Volume unreachable: fail everything outstanding so
            // the application sees errors instead of hanging.
            V3LOG(Warn, "dsa")
                << dsaImplName(impl_)
                << ": giving up after " << attempts
                << " reconnect attempts";
            abandoned_reconnects_.increment();
            dead_ = true;
            reconnecting_ = false;
            std::vector<PendingIo *> doomed;
            for (auto &[id, io] : pending_) {
                if (!io->done)
                    doomed.push_back(io);
            }
            for (PendingIo *io : doomed) {
                io->done = true;
                io->ok = false;
                io->retx_timer.cancel();
                io->completion.set(false);
            }
            co_return;
        }
    }
    ready_ = true;

    // Replay every outstanding request in sequence order. The new
    // server-side connection starts a fresh dedup filter, so writes
    // re-stage their data and re-execute (idempotent block writes).
    std::vector<PendingIo *> replay;
    replay.reserve(pending_.size());
    for (auto &[id, io] : pending_) {
        if (!io->done)
            replay.push_back(io);
    }
    std::sort(replay.begin(), replay.end(),
              [](const PendingIo *a, const PendingIo *b) {
                  return a->msg.seq < b->msg.seq;
              });
    for (PendingIo *io : replay) {
        io->msg.retransmit = true;
        io->retx_timer.cancel();
        CpuLease lease = co_await cpus().acquire(
            osmodel::CpuPool::kNormalPriority, io->buffer);
        co_await lease.run(config_.costs.request_build, CpuCat::Dsa);
        co_await lease.run(nic_.costs().doorbell, CpuCat::Vi);
        postRequest(*io);
        cpus().release();
        scheduleRetransmit(*io);
    }
    reconnecting_ = false;
}

void
DsaClient::resetStats()
{
    ios_.reset();
    retransmits_.reset();
    reconnects_.reset();
    abandoned_reconnects_.reset();
    revives_.reset();
    intr_completions_.reset();
    polled_completions_.reset();
    digest_mismatches_.reset();
    integrity_errors_.reset();
    busy_.reset();
    latency_.reset();
    latency_hist_.reset();
}

} // namespace v3sim::dsa
