/**
 * @file
 * The DSA wire protocol between database clients and V3 servers.
 *
 * DSA layers a custom block-I/O protocol over VI (section 2.2). The
 * protocol is deliberately small:
 *
 *  - Hello / HelloAck: per-connection setup, exchanging the credit
 *    budget and the server's write-staging buffer addresses;
 *  - ReadReq: server RDMA-writes the block data straight into the
 *    client's (registered) buffer, then completes;
 *  - WriteReq: the client first RDMA-writes the payload into a
 *    server staging buffer its credits own, then sends the request;
 *    the server commits to disk before completing ("in database
 *    systems writes have to commit to disk", section 5.2);
 *  - completion is either a Response message (consumes a client
 *    receive descriptor, interrupt-driven — the kDSA/wDSA path) or an
 *    RDMA flag write into client memory (invisible to the CPU until
 *    polled — the cDSA path, section 2.2/3.2).
 *
 * Every request carries a per-connection sequence number; the server
 * keeps the highest completed sequence per connection so DSA's
 * request-level retransmission never re-executes a write (exactly-
 * once effect on top of VI's best-effort delivery).
 *
 * Messages travel as VI sends whose modelled wire size is
 * kRequestWireBytes/kResponseWireBytes; the typed structs ride the
 * descriptor's control sidecar (see vi::WorkDescriptor::control).
 *
 * End-to-end integrity (iSCSI-style header/data digests): requests
 * and responses carry CRC32C digests over the message header and the
 * RDMA-staged payload. The link-level CRC only protects one hop, so
 * these digests are what catches NIC-buffer, DMA and staging-copy
 * corruption. A digest mismatch is handled like a lost packet — the
 * request-level retransmission machinery recovers — while a server
 * verify-on-read failure surfaces as IoStatus::IntegrityError so the
 * mirrored layer above can repair from the peer replica.
 */

#ifndef V3SIM_DSA_PROTOCOL_HH
#define V3SIM_DSA_PROTOCOL_HH

#include <cstdint>

#include "sim/memory.hh"

namespace v3sim::dsa
{

/** Modelled wire size of a request message. */
constexpr uint64_t kRequestWireBytes = 64;

/** Modelled wire size of a response / credit message. */
constexpr uint64_t kResponseWireBytes = 64;

/** Outcome of one DSA request, carried in the response. */
enum class IoStatus : uint8_t
{
    Ok,
    /** Request failed server-side (validation, disk error). */
    Error,
    /**
     * A digest check failed in transit (request payload damaged on
     * the way to the server, or response data damaged on the way
     * back). Transient: retransmitting re-stages the data.
     */
    BadDigest,
    /**
     * The server's verify-on-read found the block damaged *on disk*
     * (latent sector error / torn write). Retransmitting will not
     * help; only a redundant replica can.
     */
    IntegrityError,
    /**
     * The admission gate shed the request under overload (DESIGN.md
     * §12). Deliberate backpressure, not loss: the client fails the
     * I/O immediately instead of retransmitting, so the open-loop
     * driver above can count it as shed and move on.
     */
    Busy,
};

/** How the server signals request completion to this client. */
enum class CompletionMode : uint8_t
{
    /** VI send consuming a posted receive; interrupt-capable. */
    Message,
    /** Plain RDMA write of the request's completion flag. */
    RdmaFlag,
};

/** Request operation codes. */
enum class DsaOp : uint8_t
{
    Hello,
    Read,
    Write,
    /** Caching/prefetching hint (a cDSA advanced feature, section
     *  2.2: "cDSA also supports more advanced features, such as
     *  caching and prefetching hints for the storage server"). */
    Hint,
};

/** Hint kinds carried by DsaOp::Hint. */
enum class HintKind : uint8_t
{
    /** Prefetch the range into the server cache. */
    WillNeed,
    /** Drop the range from the server cache. */
    DontNeed,
    /** Expect sequential access (accepted; advisory). */
    Sequential,
};

/** Client-to-server request (control sidecar of a VI send). */
struct RequestMsg
{
    DsaOp op = DsaOp::Read;
    /** Client-chosen id echoed in the completion. */
    uint64_t request_id = 0;
    /** Per-connection sequence for retransmission dedup. */
    uint64_t seq = 0;
    /** True when this is a retransmission of an earlier send. */
    bool retransmit = false;
    /** Piggybacked ack: every sequence below this has completed at
     *  the client, so the server may prune its dedup filter. */
    uint64_t ack_below = 0;

    uint32_t volume = 0;
    uint64_t offset = 0;
    uint32_t len = 0;

    /** Originating tenant (open-loop multiplexing; 0 = untagged).
     *  The server's admission gate fair-queues by this id. */
    uint64_t tenant = 0;

    /** Read: RDMA target in client memory for the data. */
    sim::Addr client_buffer = sim::kNullAddr;
    /** Write: server staging slot already filled via RDMA. */
    uint32_t staging_slot = 0;

    CompletionMode completion = CompletionMode::Message;
    /** RdmaFlag mode: address of the request's completion flag. */
    sim::Addr flag_addr = sim::kNullAddr;
    /** DsaOp::Hint only. */
    HintKind hint = HintKind::WillNeed;

    /** CRC32C over the request header fields (headerDigest). */
    uint32_t header_digest = 0;
    /** Write: CRC32C over the RDMA-staged payload the client sent.
     *  Meaningful only when digest_valid. */
    uint32_t payload_digest = 0;
    /** False when client memory is phantom: there were no real bytes
     *  to checksum, so the receiver must rely on corruption taint
     *  flags instead of recomputing the CRC. Digest *time* is charged
     *  either way so phantom and real runs cost the same. */
    bool digest_valid = false;
};

/** Server-to-client response (control sidecar, Message mode). */
struct ResponseMsg
{
    uint64_t request_id = 0;
    IoStatus status = IoStatus::Ok;

    /** Read: CRC32C over the data the server RDMA-wrote into the
     *  client buffer. Meaningful only when digest_valid. */
    uint32_t payload_digest = 0;
    /** See RequestMsg::digest_valid. */
    bool digest_valid = false;

    [[nodiscard]] bool ok() const { return status == IoStatus::Ok; }
};

/** Server-to-client hello acknowledgement. */
struct HelloAckMsg
{
    /** Request credits: max outstanding requests on the connection
     *  (matches the receive descriptors the server posted). */
    uint32_t request_credits = 0;
    /** Write-staging slots granted to this client. */
    uint32_t staging_slots = 0;
    /** Size of each staging slot in bytes. */
    uint32_t staging_slot_bytes = 0;
    /** Base addresses of the staging slots in server memory. */
    sim::Addr staging_base = sim::kNullAddr;
    /** Capacity of the volume named in the Hello request. */
    uint64_t volume_capacity = 0;
};

/**
 * Tagged server-to-client message (control sidecar): either a
 * request completion or the Hello acknowledgement. The tag keeps the
 * sidecar cast type-safe.
 */
struct ServerMsg
{
    enum class Kind : uint8_t
    {
        Response,
        HelloAck,
    };

    Kind kind = Kind::Response;
    ResponseMsg response;
    HelloAckMsg hello;
};

/** Value the server writes into a completion flag (RdmaFlag mode):
 *  low bit = done, next bit = ok; the two integrity bits distinguish
 *  the retryable digest failure from on-disk damage; the busy bit is
 *  the admission gate's shed signal (fail fast, do not retransmit). */
constexpr uint64_t kFlagDone = 1;
constexpr uint64_t kFlagOk = 2;
constexpr uint64_t kFlagIntegrity = 4;
constexpr uint64_t kFlagBadDigest = 8;
constexpr uint64_t kFlagBusy = 16;

/** Flag word encoding @p status (always includes kFlagDone). The
 *  upper 32 bits carry @p payload_digest so RdmaFlag completions get
 *  the same end-to-end read verification Message completions get
 *  from ResponseMsg::payload_digest (0 = no digest, phantom runs). */
[[nodiscard]] uint64_t flagValue(IoStatus status,
                                 uint32_t payload_digest = 0);

/** Inverse of flagValue; assumes kFlagDone is set. */
[[nodiscard]] IoStatus statusFromFlag(uint64_t flag);

/** The payload digest packed into a completion flag (0 = none). */
[[nodiscard]] constexpr uint32_t
digestFromFlag(uint64_t flag)
{
    return static_cast<uint32_t>(flag >> 32);
}

/**
 * CRC32C over [addr, addr+len) of @p mem. Returns 0 with no bytes
 * read when the space is phantom — pair with digest_valid=false. Pass
 * the previous return value as @p seed to digest discontiguous pieces
 * (e.g. cache frames feeding one response) as a single stream. The
 * *time* a real implementation would spend is charged separately by
 * the caller (DsaClientCosts::digest_per_kb and the server's
 * equivalent), keeping phantom and real runs cost-identical.
 */
uint32_t payloadDigest(const sim::MemorySpace &mem, sim::Addr addr,
                       uint64_t len, uint32_t seed = 0);

/** CRC32C over the semantic header fields of @p req (excludes the
 *  digest fields themselves, like iSCSI's header digest). */
uint32_t headerDigest(const RequestMsg &req);

} // namespace v3sim::dsa

#endif // V3SIM_DSA_PROTOCOL_HH
