/**
 * @file
 * Client-side DSA cost and policy knobs.
 *
 * The per-implementation path costs reflect the structural findings
 * of sections 2.2, 3 and 5.1:
 *  - cDSA has the leanest paths: a new API with no Win32 semantics
 *    to satisfy ("up to 15% better than kDSA, and up to 30% than
 *    wDSA", "wDSA incurring nearly three times more [CPU] overhead
 *    than cDSA");
 *  - kDSA is a thin monolithic kernel driver: cheap itself, but it
 *    rides the I/O-manager path (osmodel::IoManager) and completes
 *    through interrupts;
 *  - wDSA must emulate kernel32.dll semantics at user level and
 *    signal completions back through kernel events.
 *
 * The optimization switches correspond one-to-one to Figures 9/12:
 * batched deregistration, interrupt batching, and reduced lock
 * synchronization, each individually toggleable so the benches can
 * reproduce the stacked bars.
 */

#ifndef V3SIM_DSA_DSA_COSTS_HH
#define V3SIM_DSA_DSA_COSTS_HH

#include <cstdint>

#include "sim/types.hh"

namespace v3sim::dsa
{

/** The three optimizations of section 3, individually toggleable. */
struct DsaOptimizations
{
    /** Section 3.1: region-batched deregistration. */
    bool batched_dereg = true;
    /** Section 3.2: interrupt batching (kDSA thresholds / cDSA
     *  polled flags). */
    bool interrupt_batching = true;
    /** Section 3.3: one sync pair per path instead of three. */
    bool reduced_sync = true;

    static DsaOptimizations
    none()
    {
        return DsaOptimizations{false, false, false};
    }

    static DsaOptimizations all() { return DsaOptimizations{}; }
};

/** Per-implementation client path costs. */
struct DsaClientCosts
{
    /** Common request marshalling: build the 64 B request and CRC32C
     *  its header (the headerDigest of protocol.hh — small enough to
     *  be folded into the marshalling cost rather than metered per
     *  byte like the payload digest below). */
    sim::Tick request_build = sim::usecs(0.4);

    /**
     * End-to-end payload digest cost per KiB (CRC32C over the block
     * data: computed on write before staging, verified on read after
     * the RDMA lands). ~0.32 us for an 8 K block — table-driven
     * software CRC at a few GB/s on era-appropriate hardware. Charged
     * whenever digests are enabled, in phantom and real runs alike.
     */
    sim::Tick digest_per_kb = sim::usecs(0.04);

    /** kDSA driver work per request, issue / completion side. */
    sim::Tick kdsa_issue = sim::usecs(0.9);
    sim::Tick kdsa_complete = sim::usecs(1.2);

    /** wDSA kernel32-semantics emulation per request (handle-table
     *  and OVERLAPPED bookkeeping in the kernel32 shim). */
    sim::Tick wdsa_issue = sim::usecs(3.0);
    sim::Tick wdsa_complete = sim::usecs(5.0);

    /** Critical-section length of the shim's process-wide lock: the
     *  kernel32 emulation serializes on shared handle state, which
     *  is what makes wDSA collapse first under 32-way load (the
     *  uncontended cost is modest; the queueing is not). */
    sim::Tick wdsa_lock_hold = sim::usecs(1.5);

    /** cDSA library work per request. */
    sim::Tick cdsa_issue = sim::usecs(0.7);
    sim::Tick cdsa_complete = sim::usecs(0.6);

    /** One completion-flag poll check (cDSA polling mode). */
    sim::Tick poll_check = sim::usecs(0.2);
};

/** DSA client configuration. */
struct DsaConfig
{
    DsaOptimizations opts;
    DsaClientCosts costs;

    /** Upper bound on outstanding requests per connection; the
     *  effective bound is min(this, server-granted credits). */
    uint32_t max_outstanding = 64;

    /** Request-level retransmission timer (section 2.2). Sized well
     *  above worst-case storage latency so it only fires on real
     *  loss: a spurious retransmit costs a duplicate response, which
     *  consumes an extra client receive descriptor. */
    sim::Tick retransmit_timeout = sim::msecs(500);

    /** Retransmissions before the connection is declared dead and
     *  reconnection starts. */
    int max_retransmits = 4;

    /** Backoff before a reconnection attempt. */
    sim::Tick reconnect_delay = sim::msecs(5);

    /** Reconnection attempts before the client declares the volume
     *  unreachable and fails outstanding I/O. */
    int max_reconnect_attempts = 10;

    /** Handshake timeout: a ConnectReq or Hello whose answer never
     *  arrives (lost packet, dead server) fails the establish
     *  attempt instead of hanging it. */
    sim::Tick connect_timeout = sim::msecs(20);

    /**
     * Extra kernel driver layers stacked above kDSA (0 = the paper's
     * thin monolithic driver). Section 2.2: "kDSA is built as a thin
     * monolithic driver to reduce the overhead of going through
     * multiple layers of software. Alternative implementations ...
     * can layer existing kernel modules, such as SCSI miniport
     * drivers, on top of kDSA." Each layer adds dispatch work and a
     * synchronization pair on both the issue and completion paths
     * (see abl_miniport).
     */
    int kdsa_extra_layers = 0;

    /** Per-layer dispatch cost (IRP forwarding, stack location). */
    sim::Tick driver_layer_cost = sim::usecs(1.8);

    /** cDSA polling-mode parameters (section 3.2): check the flag
     *  every poll_interval; after poll_timeout fall back to sleeping
     *  until woken (interrupt-equivalent cost). */
    sim::Tick poll_interval = sim::usecs(10);
    sim::Tick poll_timeout = sim::usecs(400);

    /** kDSA interrupt batching thresholds (section 3.2): disable
     *  completion interrupts above the high watermark; re-enable
     *  below the low watermark. */
    uint32_t intr_high_watermark = 4;
    uint32_t intr_low_watermark = 2;

    /** Backup completion-drain period while interrupts are disabled
     *  (guards the batching scheme against idle stalls). */
    sim::Tick backup_poll_period = sim::usecs(50);
};

} // namespace v3sim::dsa

#endif // V3SIM_DSA_DSA_COSTS_HH
