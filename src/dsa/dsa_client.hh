/**
 * @file
 * The DSA client: kDSA, wDSA and cDSA over one V3 connection.
 *
 * DSA (Direct Storage Access) is the paper's client-side block-I/O
 * module between the application and VI (section 2.2). This class
 * implements the full protocol machinery the paper says VI lacks —
 *
 *  - credit-based flow control sized by the server's Hello grant
 *    (never overruns the server's posted receives);
 *  - request-level retransmission with per-connection sequence
 *    numbers (the server deduplicates, so writes stay exactly-once);
 *  - reconnection: on a dead VI, a fresh endpoint is connected,
 *    Hello re-run, and every outstanding request re-staged and
 *    re-sent;
 *
 * — plus the three optimizations of section 3 (batched
 * deregistration, interrupt batching, reduced lock synchronization),
 * and the three implementation flavors that differ in where their
 * paths run and what semantics they must honor:
 *
 *  kDSA  kernel driver under the standard storage API: every I/O
 *        rides the I/O manager (syscall, IRP, probe-and-lock, its
 *        sync pairs) and completes through an interrupt; buffers
 *        reach the driver pre-pinned. Interrupt batching disables
 *        completion interrupts above a threshold of outstanding
 *        I/Os and drains completions on the issue path instead.
 *  wDSA  user-level kernel32.dll replacement: issue avoids the
 *        kernel, but Win32 completion semantics force an interrupt,
 *        a kernel event signal and a context switch per I/O, plus
 *        costly semantics emulation; no section-3 optimizations
 *        apply (the paper: "opportunities for optimizations are
 *        severely limited").
 *  cDSA  the new 15-call API: issue is a doorbell from user space
 *        on AWE (pre-pinned) buffers; completion is a server RDMA
 *        flag the application polls, falling back to a sleep that
 *        costs an interrupt when polling times out (section 3.2).
 *
 * CPU time is charged to the categories of Figure 11 as each path
 * executes, so utilization breakdowns and lock contention are
 * emergent rather than dialed in.
 */

#ifndef V3SIM_DSA_DSA_CLIENT_HH
#define V3SIM_DSA_DSA_CLIENT_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsa/block_device.hh"
#include "dsa/dsa_costs.hh"
#include "dsa/protocol.hh"
#include "dsa/reg_cache.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "osmodel/sim_lock.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "vi/vi_nic.hh"

namespace v3sim::dsa
{

/** Which DSA implementation this client instance models. */
enum class DsaImpl : uint8_t
{
    Kdsa,
    Wdsa,
    Cdsa,
};

const char *dsaImplName(DsaImpl impl);

/** One DSA connection: client NIC endpoint to one V3 volume. */
class DsaClient : public BlockDevice
{
  public:
    /**
     * @param node the database host.
     * @param nic the client NIC this connection rides (the paper's
     *        configurations pair one NIC with one V3 node).
     * @param server_port fabric port of the V3 server.
     * @param volume volume id at that server.
     */
    DsaClient(DsaImpl impl, osmodel::Node &node, vi::ViNic &nic,
              net::PortId server_port, uint32_t volume,
              DsaConfig config = {});

    ~DsaClient() override;

    /**
     * Connects, runs Hello, and sizes flow control from the server's
     * grant. Must complete before the first read/write.
     */
    sim::Task<bool> connect();

    /** BlockDevice API. The tenant-tagged overloads stamp the
     *  request so the server's admission gate can fair-queue by
     *  tenant (DESIGN.md §12); the untagged ones send tenant 0. @{ */
    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::Addr buffer) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          sim::Addr buffer) override;
    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::Addr buffer, uint64_t tenant) override;
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          sim::Addr buffer, uint64_t tenant) override;
    uint64_t capacity() const override { return capacity_; }
    /** @} */

    /**
     * Sends a caching/prefetch hint for [offset, offset+len) to the
     * storage server (cDSA only — the advanced feature of section
     * 2.2). Resolves true once the server acknowledged it; WillNeed
     * prefetching proceeds asynchronously on the server.
     */
    sim::Task<bool> hint(HintKind kind, uint64_t offset,
                         uint64_t len);

    DsaImpl impl() const { return impl_; }
    const DsaConfig &config() const { return config_; }
    bool connected() const { return ready_; }
    /** True once reconnection has been abandoned. */
    bool dead() const { return dead_; }

    /**
     * One fresh connection attempt after the client declared the
     * volume dead (reconnection exhausted). Used by MirroredDevice's
     * resync prober to test whether a crashed node is back. Returns
     * true when the connection is live again; false leaves the
     * client dead for the next probe. No-op true if already
     * connected.
     */
    sim::Task<bool> revive();

    /** @name Statistics @{ */
    uint64_t ioCount() const { return ios_.value(); }
    uint64_t retransmitCount() const { return retransmits_.value(); }
    uint64_t reconnectCount() const { return reconnects_.value(); }
    /** Reconnection ladders that exhausted max_reconnect_attempts
     *  and declared the volume dead (the failover trigger upstream
     *  layers — MirroredDevice, the cluster directory — key on). */
    uint64_t
    abandonedReconnectCount() const
    {
        return abandoned_reconnects_.value();
    }
    /** Successful post-death revivals (resync probes that landed). */
    uint64_t reviveCount() const { return revives_.value(); }
    /** Interrupt-path completions (vs polled). */
    uint64_t interruptCompletions() const
    {
        return intr_completions_.value();
    }
    uint64_t polledCompletions() const
    {
        return polled_completions_.value();
    }
    /** Completions rejected by the end-to-end digest/taint check and
     *  recovered via retransmission (transient wire damage). */
    uint64_t
    digestMismatchCount() const
    {
        return digest_mismatches_.value();
    }
    /** I/Os the server failed with IntegrityError: the block is
     *  damaged on its disk, and only a replica can help (this is the
     *  signal dsa::MirroredDevice repairs on). */
    uint64_t
    integrityErrorCount() const
    {
        return integrity_errors_.value();
    }
    /** I/Os the server's admission gate refused with Busy. The
     *  client fails them immediately (deliberate backpressure, not
     *  loss — retransmitting would re-feed the overload). */
    uint64_t busyCount() const { return busy_.value(); }
    /** End-to-end I/O latency (ns). */
    const sim::Sampler &latency() const { return latency_.raw(); }
    /** End-to-end I/O latency distribution (ns), for p50/p95/p99. */
    const sim::Histogram &latencyHistogram() const
    {
        return latency_hist_.raw();
    }
    const RegCache &regCache() const { return *reg_cache_; }
    /** Zeroes this client's registry-owned metrics. Prefer
     *  `MetricRegistry::resetEpoch()` to open a measurement window
     *  across the whole stack; this is the per-component escape
     *  hatch. */
    void resetStats();
    /** @} */

  private:
    struct PendingIo
    {
        uint64_t id = 0;
        RequestMsg msg;
        sim::Addr buffer = sim::kNullAddr;
        vi::MemHandle handle;
        uint32_t staging_slot = UINT32_MAX;
        uint32_t flag_index = UINT32_MAX;
        bool flag_set = false;
        bool ok = false;
        bool done = false;
        /** A damaged RDMA fragment landed in this I/O's buffer (set
         *  by the NIC observer; how phantom runs detect read-data
         *  corruption). Reset when a fresh transfer starts. */
        bool tainted = false;
        int retx_count = 0;
        sim::Tick issued_at = 0;
        sim::Completion<bool> completion;
        sim::EventQueue::Handle retx_timer;
    };

    /** Submits one request and waits for its completion. */
    sim::Task<bool> submit(bool is_write, uint64_t offset,
                           uint64_t len, sim::Addr buffer,
                           uint64_t tenant);

    /** The implementation-specific issue-side path. */
    sim::Task<> issuePath(osmodel::CpuLease &lease, PendingIo &io);

    /** Per-implementation count of DSA-layer sync pairs per path. */
    int ownSyncPairs() const;

    /** Posts the request message (and write data first). */
    void postRequest(PendingIo &io);

    /** Waits for the request to complete (mode-specific). */
    sim::Task<bool> awaitCompletion(PendingIo &io);

    /** Interrupt-side: drains the receive CQ, completing requests. */
    sim::Task<> drainRecvCq(osmodel::CpuLease lease,
                            bool interrupt_context);

    /** Completion-side costs for one response (Message mode). */
    sim::Task<> completeFromResponse(osmodel::CpuLease &lease,
                                     const ResponseMsg &response);

    /** Releases the I/O buffer's registration: batched bookkeeping,
     *  or a per-I/O deregistration under the global memory lock. */
    sim::Task<> deregisterBuffer(osmodel::CpuLease &lease,
                                 PendingIo &io);

    /** Applies the kDSA interrupt-(re)arming policy. */
    void applyArmPolicy();

    /** Keeps draining while interrupts are disabled (safety net). */
    sim::Task<> backupPoller();

    /** Arms the request's retransmission timer. */
    void scheduleRetransmit(PendingIo &io);

    /** Retransmission timer body. */
    sim::Task<> retransmit(uint64_t io_id);

    /** Tears down and re-establishes the connection, then replays
     *  every outstanding request. */
    sim::Task<> reconnect();

    /** Establishes endpoint + Hello; shared by connect/reconnect. */
    sim::Task<bool> establish();

    /** RDMA observer: taints I/O buffers hit by damaged fragments
     *  and marks completion flags as they land. */
    void onRdmaEvent(const vi::ViNic::RdmaEvent &event);

    /** Lowest outstanding sequence (piggybacked ack watermark). */
    uint64_t ackBelow() const;

    osmodel::CpuPool &cpus() { return node_.cpus(); }

    /** Response-receive / flag slots: oversized vs credits so
     *  duplicate responses to retransmissions never overrun. */
    uint32_t
    responseSlots() const
    {
        return 2 * config_.max_outstanding + 8;
    }

    DsaImpl impl_;
    osmodel::Node &node_;
    vi::ViNic &nic_;
    net::PortId server_port_;
    uint32_t volume_;
    DsaConfig config_;
    CompletionMode mode_;

    std::unique_ptr<vi::CompletionQueue> send_cq_;
    std::unique_ptr<vi::CompletionQueue> recv_cq_;
    vi::ViEndpoint *ep_ = nullptr;

    std::unique_ptr<RegCache> reg_cache_;

    /** DSA-layer and VI-layer locks (the section 3.3 sync pairs). */
    osmodel::SimLock own_lock_;
    osmodel::SimLock vi_send_lock_;
    osmodel::SimLock vi_recv_lock_;

    /** Registered message/response/flag buffers. */
    sim::Addr msg_buf_ = sim::kNullAddr;
    vi::MemHandle msg_handle_;
    sim::Addr resp_buf_base_ = sim::kNullAddr;
    vi::MemHandle resp_handle_;
    sim::Addr flag_base_ = sim::kNullAddr;
    vi::MemHandle flag_handle_;

    /** Flow control (sized by HelloAck). */
    std::unique_ptr<sim::Semaphore> credits_;
    std::unique_ptr<sim::Semaphore> staging_sem_;
    std::vector<uint32_t> free_staging_;
    std::vector<uint32_t> free_flags_;
    sim::Addr staging_base_ = sim::kNullAddr;
    uint64_t staging_slot_bytes_ = 0;
    uint32_t granted_credits_ = 0;

    uint64_t capacity_ = 0;
    bool ready_ = false;
    bool dead_ = false;
    bool reconnecting_ = false;
    bool draining_ = false;
    bool backup_poller_active_ = false;

    uint64_t next_id_ = 1;
    uint64_t next_seq_ = 0;
    /// Ordered by io id (issue order): reconnect replay collection
    /// and RDMA-taint scans iterate it, so order must be
    /// deterministic (DESIGN.md §8).
    std::map<uint64_t, PendingIo *> pending_;
    std::set<uint64_t> outstanding_seqs_;
    /// Point lookups only (flag index -> io id); never iterated.
    std::unordered_map<uint32_t, uint64_t> flag_to_io_;
    sim::Completion<bool> *connect_waiter_ = nullptr;
    sim::Completion<bool> *hello_waiter_ = nullptr;

    /// Registry path prefix ("client.<impl><volume>", uniquified);
    /// must precede the metric references so it is initialised first.
    std::string metric_prefix_;

    sim::CounterHandle ios_;
    sim::CounterHandle retransmits_;
    sim::CounterHandle reconnects_;
    sim::CounterHandle abandoned_reconnects_;
    sim::CounterHandle revives_;
    sim::CounterHandle intr_completions_;
    sim::CounterHandle polled_completions_;
    sim::CounterHandle digest_mismatches_;
    sim::CounterHandle integrity_errors_;
    sim::CounterHandle busy_;
    sim::SamplerHandle latency_;
    sim::HistogramHandle latency_hist_;
};

} // namespace v3sim::dsa

#endif // V3SIM_DSA_DSA_CLIENT_HH
