/**
 * @file
 * The cDSA application API.
 *
 * Section 2.2: "The new API consists primarily of 15 calls to handle
 * synchronous or asynchronous read/write operations, I/O
 * completions, and scatter/gather I/Os" with "an application-
 * controlled I/O completion mode" — polling or interrupts. This
 * header is that public surface, a thin facade over DsaClient
 * (constructed with DsaImpl::Cdsa). SQL Server's modification in the
 * paper amounts to calling these instead of Win32 file I/O.
 *
 * The fifteen calls:
 *   open, close,
 *   read, write                      (synchronous),
 *   readAsync, writeAsync            (asynchronous),
 *   readGather, writeScatter         (scatter/gather),
 *   poll, wait, cancel               (completions),
 *   setCompletionMode, volumeInfo,
 *   hint                             (caching/prefetch hints),
 *   stats.
 */

#ifndef V3SIM_DSA_CDSA_API_HH
#define V3SIM_DSA_CDSA_API_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dsa/dsa_client.hh"

namespace v3sim::dsa
{

/** One scatter/gather segment. */
struct CdsaSegment
{
    uint64_t offset = 0;
    uint64_t len = 0;
    sim::Addr buffer = sim::kNullAddr;
};

/** Completion handle for asynchronous cDSA I/O. The `done` flag is
 *  the application-visible completion flag the paper's server sets
 *  via RDMA; poll() inspects it without kernel involvement. */
class CdsaIo
{
  public:
    bool done() const { return done_; }
    bool ok() const { return ok_; }

  private:
    friend class CdsaApi;
    bool done_ = false;
    bool ok_ = false;
    sim::Completion<bool> completion_;
};

using CdsaIoHandle = std::shared_ptr<CdsaIo>;

/** Completion mode, switchable at runtime (section 2.2). */
enum class CdsaCompletionMode : uint8_t
{
    Polling,
    Interrupt,
};

/** Volume metadata returned by volumeInfo(). */
struct CdsaVolumeInfo
{
    uint64_t capacity_bytes = 0;
    uint32_t block_size = 8192;
    bool connected = false;
};

/** Storage-server hint kinds (accepted and recorded; the paper's
 *  experiments do not use them: "beyond the scope of this paper"). */
enum class CdsaHint : uint8_t
{
    WillNeed,
    DontNeed,
    Sequential,
};

/** Aggregate statistics exposed to the application. */
struct CdsaStats
{
    uint64_t ios = 0;
    uint64_t retransmits = 0;
    uint64_t reconnects = 0;
    uint64_t polled_completions = 0;
    uint64_t interrupt_completions = 0;
};

/** The 15-call cDSA interface over one volume connection. */
class CdsaApi
{
  public:
    /** (1) open: connects the underlying DSA client. */
    static sim::Task<std::unique_ptr<CdsaApi>>
    open(osmodel::Node &node, vi::ViNic &nic, net::PortId server_port,
         uint32_t volume, DsaConfig config = {});

    /** (2) close: tears the connection down. */
    void close();

    /** (3) synchronous read. */
    sim::Task<bool> read(uint64_t offset, uint64_t len,
                         sim::Addr buffer);

    /** (4) synchronous write. */
    sim::Task<bool> write(uint64_t offset, uint64_t len,
                          sim::Addr buffer);

    /** (5) asynchronous read: returns immediately with a handle. */
    CdsaIoHandle readAsync(uint64_t offset, uint64_t len,
                           sim::Addr buffer);

    /** (6) asynchronous write. */
    CdsaIoHandle writeAsync(uint64_t offset, uint64_t len,
                            sim::Addr buffer);

    /** (7) gather read: several segments, completes when all do. */
    sim::Task<bool> readGather(const std::vector<CdsaSegment> &segs);

    /** (8) scatter write. */
    sim::Task<bool> writeScatter(const std::vector<CdsaSegment> &segs);

    /** (9) poll: non-blocking completion check (the polling mode). */
    bool poll(const CdsaIoHandle &handle) const
    {
        return handle && handle->done();
    }

    /** (10) wait: blocks the caller until the I/O completes. */
    sim::Task<bool> wait(CdsaIoHandle handle);

    /** (11) cancel: best-effort; a completed I/O stays completed.
     *  Returns true if the request had not completed yet (the
     *  caller must still not reuse the buffer until completion). */
    bool cancel(const CdsaIoHandle &handle) const
    {
        return handle && !handle->done();
    }

    /** (12) completion-mode switch (section 2.2: "An application can
     *  switch from polling to interrupt mode before going to
     *  sleep"). */
    void setCompletionMode(CdsaCompletionMode mode) { mode_ = mode; }

    CdsaCompletionMode completionMode() const { return mode_; }

    /** (13) volume metadata. */
    CdsaVolumeInfo volumeInfo() const;

    /** (14) caching/prefetch hint to the storage server.
     *  Fire-and-forget: the server acknowledges asynchronously and,
     *  for WillNeed, prefetches the range into its cache. */
    void hint(CdsaHint kind, uint64_t offset, uint64_t len);

    /** Hints issued so far (acknowledged or in flight). */
    uint64_t hintsIssued() const { return hints_issued_; }

    /** (15) statistics snapshot. */
    CdsaStats stats() const;

    DsaClient &client() { return *client_; }

  private:
    explicit CdsaApi(std::unique_ptr<DsaClient> client)
        : client_(std::move(client))
    {}

    std::unique_ptr<DsaClient> client_;
    CdsaCompletionMode mode_ = CdsaCompletionMode::Polling;
    uint64_t hints_issued_ = 0;
};

} // namespace v3sim::dsa

#endif // V3SIM_DSA_CDSA_API_HH
