/**
 * @file
 * Application-facing block-device abstraction.
 *
 * Database code (and the micro-benchmarks) issue block I/O through
 * this interface; the concrete device is one of the three DSA
 * implementations over a V3 server, the local-disk baseline, or a
 * composition across several V3 nodes: StripedDevice (RAID-0, the
 * multi-node configurations of Tables 1/2 attach one NIC per
 * storage node) and MirroredDevice (RAID-1 with failover and
 * resync), stackable into RAID-10.
 *
 * Calls are coroutines invoked from application workers that hold no
 * CPU lease: the device models the full issue/completion path,
 * including every CPU acquisition the real stack would make.
 */

#ifndef V3SIM_DSA_BLOCK_DEVICE_HH
#define V3SIM_DSA_BLOCK_DEVICE_HH

#include <cstdint>
#include <vector>

#include "sim/memory.hh"
#include "sim/task.hh"

namespace v3sim::dsa
{

/** Async block I/O endpoint as seen by the application. */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    /**
     * Reads [offset, offset+len) into the caller's buffer at
     * @p buffer. Resolves true when the data is in memory and the
     * request fully completed.
     */
    virtual sim::Task<bool> read(uint64_t offset, uint64_t len,
                                 sim::Addr buffer) = 0;

    /** Writes the caller's buffer to [offset, offset+len); resolves
     *  true once durable at the storage back-end. */
    virtual sim::Task<bool> write(uint64_t offset, uint64_t len,
                                  sim::Addr buffer) = 0;

    /** @name Tenant-tagged I/O (open-loop multiplexing)
     * As read/write above, but stamps the request with the issuing
     * tenant id so the server's admission gate can fair-queue by
     * tenant (DESIGN.md §12). Devices that do not plumb the tag
     * (local disk, mirrors) fall back to the untagged path; a shed
     * request (IoStatus::Busy) surfaces as `false` here, like any
     * other failed I/O.
     * @{ */
    virtual sim::Task<bool>
    read(uint64_t offset, uint64_t len, sim::Addr buffer,
         uint64_t tenant)
    {
        (void)tenant;
        return read(offset, len, buffer);
    }

    virtual sim::Task<bool>
    write(uint64_t offset, uint64_t len, sim::Addr buffer,
          uint64_t tenant)
    {
        (void)tenant;
        return write(offset, len, buffer);
    }
    /** @} */

    /** Device size in bytes. */
    virtual uint64_t capacity() const = 0;
};

/**
 * Block-granular striping across several devices — how a database
 * volume spans multiple V3 nodes (section 2.1: "V3 volumes can span
 * multiple V3 nodes").
 */
class StripedDevice : public BlockDevice
{
  public:
    StripedDevice(std::vector<BlockDevice *> children,
                  uint64_t stripe_unit)
        : children_(std::move(children)), stripe_unit_(stripe_unit)
    {}

    uint64_t
    capacity() const override
    {
        uint64_t min_cap = UINT64_MAX;
        for (const BlockDevice *child : children_)
            min_cap = std::min(min_cap, child->capacity());
        return (min_cap / stripe_unit_) * stripe_unit_ *
               children_.size();
    }

    sim::Task<bool>
    read(uint64_t offset, uint64_t len, sim::Addr buffer) override
    {
        return run(offset, len, buffer, false, 0);
    }

    sim::Task<bool>
    write(uint64_t offset, uint64_t len, sim::Addr buffer) override
    {
        return run(offset, len, buffer, true, 0);
    }

    sim::Task<bool>
    read(uint64_t offset, uint64_t len, sim::Addr buffer,
         uint64_t tenant) override
    {
        return run(offset, len, buffer, false, tenant);
    }

    sim::Task<bool>
    write(uint64_t offset, uint64_t len, sim::Addr buffer,
          uint64_t tenant) override
    {
        return run(offset, len, buffer, true, tenant);
    }

  private:
    sim::Task<bool>
    run(uint64_t offset, uint64_t len, sim::Addr buffer, bool is_write,
        uint64_t tenant)
    {
        if (offset + len > capacity())
            co_return false;
        sim::WaitGroup group;
        bool all_ok = true;
        uint64_t done = 0;
        while (done < len) {
            const uint64_t pos = offset + done;
            const uint64_t unit = pos / stripe_unit_;
            const uint64_t within = pos % stripe_unit_;
            const size_t child =
                static_cast<size_t>(unit % children_.size());
            const uint64_t child_off =
                (unit / children_.size()) * stripe_unit_ + within;
            const uint64_t chunk =
                std::min(len - done, stripe_unit_ - within);

            group.add();
            sim::spawn([](BlockDevice *device, uint64_t off,
                          uint64_t n, sim::Addr buf, bool write_op,
                          uint64_t who, sim::WaitGroup &g,
                          bool &ok) -> sim::Task<> {
                const bool result =
                    write_op
                        ? co_await device->write(off, n, buf, who)
                        : co_await device->read(off, n, buf, who);
                if (!result)
                    ok = false;
                g.done();
            }(children_[child], child_off, chunk, buffer + done,
              is_write, tenant, group, all_ok));
            done += chunk;
        }
        co_await group.wait();
        co_return all_ok;
    }

    std::vector<BlockDevice *> children_;
    uint64_t stripe_unit_;
};

} // namespace v3sim::dsa

#endif // V3SIM_DSA_BLOCK_DEVICE_HH
