#include "workload.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace v3sim::tpcc
{

namespace
{

/** Standard TPC-C mix with relative CPU / I/O demands. Delivery and
 *  Stock-Level are the heavy transactions; Payment is light. */
const std::array<TxnProfile, kTxnTypeCount> kProfiles = {{
    {TxnType::NewOrder, 45.0, 1.0, 1.0},
    {TxnType::Payment, 43.0, 0.55, 0.5},
    {TxnType::OrderStatus, 4.0, 0.5, 0.6},
    {TxnType::Delivery, 4.0, 1.9, 2.2},
    {TxnType::StockLevel, 4.0, 2.1, 2.6},
}};

} // namespace

const char *
txnTypeName(TxnType type)
{
    switch (type) {
      case TxnType::NewOrder: return "New-Order";
      case TxnType::Payment: return "Payment";
      case TxnType::OrderStatus: return "Order-Status";
      case TxnType::Delivery: return "Delivery";
      case TxnType::StockLevel: return "Stock-Level";
    }
    return "?";
}

const TxnProfile &
Workload::profile(TxnType type)
{
    return kProfiles[static_cast<size_t>(type)];
}

Workload::Workload(TpccConfig config, uint64_t device_capacity,
                   sim::Rng rng)
    : config_(config), rng_(rng)
{
    working_set_ =
        std::min(config_.workingSetBytes(), device_capacity);
    working_set_ =
        working_set_ / config_.page_size * config_.page_size;
    assert(working_set_ >= config_.page_size);
    hot_bytes_ = static_cast<uint64_t>(
        static_cast<double>(working_set_) *
        config_.hot_space_fraction);
    hot_bytes_ = std::max(hot_bytes_ / config_.page_size,
                          uint64_t{1}) *
                 config_.page_size;
}

TxnType
Workload::sampleType()
{
    double total = 0;
    for (const TxnProfile &profile : kProfiles)
        total += profile.mix_weight;
    double pick = rng_.uniformReal(0, total);
    for (const TxnProfile &profile : kProfiles) {
        if (pick < profile.mix_weight)
            return profile.type;
        pick -= profile.mix_weight;
    }
    return TxnType::NewOrder;
}

uint32_t
Workload::sampleIoCount(TxnType type)
{
    const double mean = config_.ios_per_txn * profile(type).io_mult;
    // Normal around the mean with modest spread, at least one I/O.
    const double sampled = rng_.normal(mean, mean * 0.25);
    return static_cast<uint32_t>(std::max(1.0, std::round(sampled)));
}

sim::Tick
Workload::cpuDemand(TxnType type) const
{
    return static_cast<sim::Tick>(
        static_cast<double>(config_.cpu_per_txn) *
        profile(type).cpu_mult);
}

bool
Workload::sampleIsRead()
{
    return rng_.bernoulli(config_.read_fraction);
}

uint64_t
Workload::sampleOffset()
{
    const uint64_t pages_hot = hot_bytes_ / config_.page_size;
    const uint64_t pages_total = working_set_ / config_.page_size;
    uint64_t page;
    if (rng_.bernoulli(config_.hot_access_fraction) && pages_hot > 0) {
        page = rng_.uniformInt(0, pages_hot - 1);
    } else if (pages_total > pages_hot) {
        page = rng_.uniformInt(pages_hot, pages_total - 1);
    } else {
        page = rng_.uniformInt(0, pages_total - 1);
    }
    return page * config_.page_size;
}

Workload
Workload::fork()
{
    Workload child(*this);
    child.rng_ = rng_.fork();
    return child;
}

} // namespace v3sim::tpcc
