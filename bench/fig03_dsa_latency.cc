/**
 * @file
 * Figure 3: "Latency of raw VI and DSA for various request sizes."
 *
 * Paper series: raw VI, kDSA, wDSA, cDSA over request sizes 512 B to
 * 16 KB, single outstanding cached read. Expected shape: VI lowest;
 * V3/DSA adds 15-50 us; cDSA up to 15% better than kDSA; wDSA up to
 * 20% above kDSA; everything within ~0.05-0.3 ms.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig03", argc, argv);
    const int vi_iters = reporter.quick() ? 10 : 60;
    const int dsa_iters = reporter.quick() ? 12 : 80;

    std::printf("Figure 3: latency of raw VI and DSA "
                "(ms, single outstanding cached read)\n\n");

    const uint64_t sizes[] = {512, 1024, 2048, 4096, 8192, 16384};
    util::TextTable table(
        {"size", "VI", "kDSA", "wDSA", "cDSA", "kDSA-VI(us)"});

    std::vector<double> vi_ms;
    for (const uint64_t size : sizes)
        vi_ms.push_back(rawViLatencyUs(size, vi_iters) / 1e3);

    struct Column
    {
        Backend backend;
        std::vector<double> ms;
    };
    std::vector<Column> columns = {{Backend::Kdsa, {}},
                                   {Backend::Wdsa, {}},
                                   {Backend::Cdsa, {}}};
    for (size_t c = 0; c < columns.size(); ++c) {
        Column &column = columns[c];
        MicroRig::Config config;
        config.backend = column.backend;
        MicroRig rig(config);
        for (const uint64_t size : sizes) {
            const auto r =
                rig.measureLatency(size, true, dsa_iters, true);
            column.ms.push_back(r.mean_us / 1e3);
        }
        // The artifact's "metrics" section: one full registry
        // snapshot, taken from the last rig constructed.
        if (c + 1 == columns.size())
            reporter.attachMetricsJson(rig.sim().metrics().toJson());
    }

    for (size_t i = 0; i < std::size(sizes); ++i) {
        table.addRow({util::formatSize(sizes[i]),
                      util::TextTable::num(vi_ms[i], 3),
                      util::TextTable::num(columns[0].ms[i], 3),
                      util::TextTable::num(columns[1].ms[i], 3),
                      util::TextTable::num(columns[2].ms[i], 3),
                      util::TextTable::num(
                          (columns[0].ms[i] - vi_ms[i]) * 1e3, 1)});
        reporter.beginRow();
        reporter.col("size", static_cast<int64_t>(sizes[i]));
        reporter.col("vi_ms", vi_ms[i]);
        reporter.col("kdsa_ms", columns[0].ms[i]);
        reporter.col("wdsa_ms", columns[1].ms[i]);
        reporter.col("cdsa_ms", columns[2].ms[i]);
        reporter.col("kdsa_minus_vi_us",
                     (columns[0].ms[i] - vi_ms[i]) * 1e3);
    }
    table.print();

    std::printf("\npaper anchors: VI@8K ~0.09-0.13ms; DSA adds "
                "15-50us; order cDSA < kDSA < wDSA\n");
    reporter.note("anchors", "VI@8K ~0.09-0.13ms; DSA adds 15-50us; "
                             "order cDSA < kDSA < wDSA");
    return reporter.write() ? 0 : 1;
}
