/**
 * @file
 * Rival transport, TPC-C: the Figure 10/13 experiment re-run with
 * all four network backends — kDSA, wDSA, cDSA and software
 * iSCSI/TCP — in one process on the mid-size platform (DESIGN.md
 * §11).
 *
 * Reported per backend: tpmC, I/O rate, and the host CPU overhead
 * per I/O (all non-SQL busy time, i.e. what the transport and OS
 * cost the database). For iSCSI the overhead gap is decomposed per
 * layer from the iscsi.init.cpu.*_ns attribution counters:
 * interrupts, protocol work, socket copies, checksums/digests,
 * syscall crossings — each a cost the VI transport architecture
 * removes or bypasses (the paper's Table: per-layer cost map).
 *
 * Exit-code contract (CI gate): iSCSI host CPU overhead per I/O
 * must be strictly above every DSA flavor's, and the per-layer
 * decomposition must be non-trivial (interrupt, copy and checksum
 * layers all nonzero).
 *
 * `--tie-seed N` arms EventQueue tie-shuffle for every run; as in
 * abl_determinism the seed is NOT recorded in the artifact, and the
 * ctest `rival_tpmc_determinism_diff` requires byte-identical
 * artifacts across two seeds.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/crc32c.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

/** Sums the "count" of every metric whose path starts with @p prefix
 *  and ends with @p suffix (per-session metric prefixes are
 *  uniquified, so a sum over all sessions is wanted). */
double
sumMetrics(const util::JsonValue &root, const std::string &prefix,
           const std::string &suffix)
{
    double total = 0;
    for (const auto &[path, value] : root.object) {
        if (path.rfind(prefix, 0) != 0 ||
            path.size() < suffix.size() ||
            path.compare(path.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        if (const util::JsonValue *count = value.find("count");
            count && count->isNumber())
            total += count->number;
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("rival_tpmc", argc, argv);

    uint64_t tie_seed = 0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--tie-seed") == 0)
            tie_seed = std::strtoull(argv[i + 1], nullptr, 0);
    }

    std::printf("Rival transport: TPC-C on the mid-size platform, "
                "all four network backends\n\n");

    const Backend backends[] = {Backend::Kdsa, Backend::Wdsa,
                                Backend::Cdsa, Backend::Iscsi};
    const int host_cpus = HostParams::midSize().cpus;

    util::TextTable table({"backend", "tpmC", "IO/s", "cpu us/IO",
                           "cache hit%", "interrupts"});
    double overhead_us[std::size(backends)] = {};
    std::string iscsi_metrics;
    double iscsi_ios = 0;

    for (size_t b = 0; b < std::size(backends); ++b) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = backends[b];
        config.tie_seed = tie_seed;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);

        // Host CPU overhead per I/O: every non-SQL busy cycle on the
        // database host, normalized by the I/O rate. cpu_breakdown
        // entries are shares of total host capacity, so scale by the
        // CPU count to get busy CPU-seconds per wall second.
        double busy_share = 0;
        for (size_t c = 0; c < osmodel::kCpuCatCount; ++c)
            busy_share += result.oltp.cpu_breakdown[c];
        const double sql_share =
            result.oltp.cpu_breakdown[static_cast<size_t>(
                osmodel::CpuCat::Sql)];
        overhead_us[b] =
            result.oltp.io_per_second > 0
                ? (busy_share - sql_share) * host_cpus /
                      result.oltp.io_per_second * 1e6
                : 0.0;

        table.addRow(
            {backendName(backends[b]),
             util::TextTable::num(result.oltp.tpmc, 0),
             util::TextTable::num(result.oltp.io_per_second, 0),
             util::TextTable::num(overhead_us[b], 1),
             util::TextTable::num(result.server_cache_hit * 100, 1),
             util::TextTable::num(
                 static_cast<int64_t>(result.host_interrupts))});
        reporter.beginRow();
        reporter.col("backend",
                     std::string(backendName(backends[b])));
        reporter.col("tpmc", result.oltp.tpmc);
        reporter.col("io_per_second", result.oltp.io_per_second);
        reporter.col("host_cpu_overhead_us_per_io", overhead_us[b]);
        reporter.col("cache_hit_pct", result.server_cache_hit * 100);
        reporter.col("host_interrupts",
                     static_cast<int64_t>(result.host_interrupts));
        reporter.col("retransmits",
                     static_cast<int64_t>(result.retransmits));
        // Determinism coverage: the full snapshot digest per backend
        // (the iSCSI snapshot additionally rides along verbatim).
        reporter.col("metrics_crc32c",
                     static_cast<int64_t>(util::crc32c(
                         result.metrics_json.data(),
                         result.metrics_json.size())));

        if (backends[b] == Backend::Iscsi) {
            iscsi_metrics = result.metrics_json;
            iscsi_ios = result.oltp.io_per_second *
                        sim::toSecs(config.window);
        }
    }
    table.print();

    // Per-layer decomposition of the iSCSI gap, from the host-side
    // (initiator) attribution counters.
    const auto parsed = util::JsonValue::parse(iscsi_metrics);
    bool layers_ok = false;
    if (parsed && parsed->isObject() && iscsi_ios > 0) {
        struct Layer
        {
            const char *key;
            const char *suffix;
            const char *vi_counterpart;
        };
        const Layer layers[] = {
            {"intr", ".cpu.intr_ns",
             "one-shot armed completion interrupts + polling"},
            {"proto", ".cpu.proto_ns",
             "descriptor-based work queues (no PDU build/parse, no "
             "segmentation)"},
            {"copy", ".cpu.copy_ns",
             "RDMA direct data placement (zero-copy)"},
            {"crc", ".cpu.crc_ns",
             "NIC-level CRC (no software checksum or digest)"},
            {"syscall", ".cpu.syscall_ns",
             "user-level doorbells (no kernel crossing)"},
        };
        std::printf("\niSCSI host-side overhead per I/O, by layer "
                    "(what VI removes):\n");
        util::TextTable layer_table(
            {"layer", "us/IO", "VI counterpart"});
        double intr = 0, copy = 0, crc = 0;
        reporter.beginRow();
        reporter.col("backend", std::string("iSCSI(layers)"));
        for (const Layer &layer : layers) {
            const double ns =
                sumMetrics(*parsed, "iscsi.init", layer.suffix);
            const double us_per_io = ns / 1e3 / iscsi_ios;
            layer_table.addRow({layer.key,
                                util::TextTable::num(us_per_io, 2),
                                layer.vi_counterpart});
            reporter.col(std::string(layer.key) + "_us_per_io",
                         us_per_io);
            if (std::strcmp(layer.key, "intr") == 0)
                intr = ns;
            if (std::strcmp(layer.key, "copy") == 0)
                copy = ns;
            if (std::strcmp(layer.key, "crc") == 0)
                crc = ns;
        }
        layer_table.print();
        layers_ok = intr > 0 && copy > 0 && crc > 0;
    }

    const size_t iscsi_idx = std::size(backends) - 1;
    bool gap = true;
    for (size_t b = 0; b < iscsi_idx; ++b)
        gap = gap && overhead_us[iscsi_idx] > overhead_us[b];

    std::printf("\ncheck: iSCSI host CPU overhead/IO strictly above "
                "every DSA flavor: %s; interrupt/copy/checksum "
                "layers all charged: %s\n",
                gap ? "yes" : "NO", layers_ok ? "yes" : "NO");
    reporter.note("anchors",
                  "iSCSI host overhead/IO above kDSA, wDSA and cDSA; "
                  "gap decomposes into interrupts, protocol work, "
                  "copies, checksums and syscalls");
    reporter.attachMetricsJson(iscsi_metrics);
    const bool wrote = reporter.write();
    return (wrote && gap && layers_ok) ? 0 : 1;
}
