/**
 * @file
 * Ablation A10: open-loop overload and admission control
 * (DESIGN.md §12).
 *
 * The paper's experiments drive V3 closed-loop, where offered load
 * self-limits at saturation. This harness asks the question a
 * consolidated storage service faces instead: what happens when a
 * million-tenant open-loop population pushes offered load through
 * and past saturation? db::OpenLoopDriver generates the arrivals
 * (Zipf-popular tenants over bounded connections); the sweep runs
 * each backend (cDSA, kDSA, and the iSCSI/TCP rival) at rising
 * offered IOPS, with the server-side admission gate off and on.
 *
 * Expected shape, checked by the exit code at the top load point:
 * with the gate OFF the system collapses — queues absorb the excess,
 * every completion blows the deadline, goodput falls toward zero.
 * With the gate ON the server sheds the excess fast (Busy, no
 * retransmission), admitted requests keep completing inside the
 * deadline, and goodput plateaus near capacity with bounded p99.9 —
 * graceful degradation instead of collapse. Two extra phases
 * exercise the bursty and diurnal arrival shapes under the gate.
 *
 * Determinism: phase results and the per-phase metric-snapshot
 * CRCs must be invariant under the event-tie shuffle seed (ctest
 * `abl_overload_determinism_diff` byte-compares two artifacts).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "db/open_loop.hh"
#include "scenarios/testbed.hh"
#include "util/bench_reporter.hh"
#include "util/crc32c.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

struct RunTimes
{
    sim::Tick window;
    sim::Tick drain_cap; ///< hard bound on the post-window drain
};

struct Phase
{
    Backend backend;
    db::ArrivalProcess process;
    double offered_iops;
    bool admission;
};

struct PhaseResult
{
    uint64_t offered = 0;
    uint64_t goodput = 0;
    uint64_t late = 0;
    uint64_t failed = 0;
    uint64_t overflow = 0;
    uint64_t shed = 0;    ///< server-side gate refusals
    bool drained = false; ///< every in-system request completed
    double p99_ms = 0;
    double p999_ms = 0;
    uint32_t metrics_crc = 0;
};

constexpr sim::Tick kDeadline = sim::msecs(100);

bool
runPhase(const Phase &phase, const RunTimes &times, uint64_t tenants,
         uint64_t tie_seed, PhaseResult &out)
{
    HostParams host_params = HostParams::midSize();
    StorageParams storage_params;
    storage_params.v3_nodes = 2;
    storage_params.disks_per_node = 4;
    storage_params.disk_spec = disk::DiskSpec::scsi10k();
    storage_params.cache_bytes_per_node = 4 * util::kMiB;
    storage_params.admission.enabled = phase.admission;
    // Sized against the transport's credit window (64 requests per
    // connection): the gate must be the *narrower* bound, so excess
    // arrivals inside the window are shed rather than parked, and a
    // full admission queue still drains well inside the deadline at
    // disk-bound capacity.
    storage_params.admission.service_slots = 16;
    storage_params.admission.max_queue_depth = 16;
    storage_params.admission.drr_quantum = 64 * util::kKiB;

    Testbed bed(phase.backend, host_params, storage_params, {},
                /*seed=*/7);
    sim::Simulation &sim = bed.sim();
    sim.queue().setTieShuffle(tie_seed);
    if (!bed.connectAll()) {
        std::fprintf(stderr, "abl_overload: %s connect failed\n",
                     backendName(phase.backend));
        return false;
    }

    db::OpenLoopConfig load;
    load.tenants = tenants;
    load.process = phase.process;
    load.offered_iops = phase.offered_iops;
    load.deadline = kDeadline;
    db::OpenLoopDriver driver(bed.host(), bed.device(), load,
                              sim.forkRng());
    // No warmup: counting from the first arrival keeps the
    // disposition balance exact (offered == overflow + failed +
    // late + goodput once drained), which the exit code checks.
    bed.resetStats();
    driver.start();
    const sim::Tick t_end = sim.now() + times.window;
    sim.runUntil(t_end);
    driver.stop();

    // Drain what is in the system (finite: the client queue is
    // bounded), under a hard cap so a collapse phase cannot stall
    // the harness.
    const sim::Tick t_cap = t_end + times.drain_cap;
    while (driver.inSystem() > 0 && sim.now() < t_cap)
        sim.runUntil(sim.now() + sim::msecs(20));
    out.drained = driver.inSystem() == 0;

    out.offered = driver.offeredCount();
    out.goodput = driver.goodputCount();
    out.late = driver.lateCount();
    out.failed = driver.failedCount();
    out.overflow = driver.overflowCount();
    out.shed = 0;
    for (const auto &server : bed.servers())
        out.shed += server->shedCount();
    for (const auto &target : bed.iscsiTargets())
        out.shed += target->shedCount();
    out.p99_ms =
        driver.latencyHistogram().quantile(0.99) / 1.0e6;
    out.p999_ms =
        driver.latencyHistogram().quantile(0.999) / 1.0e6;
    const std::string metrics = sim.metrics().toJson();
    out.metrics_crc = util::crc32c(metrics.data(), metrics.size());
    return true;
}

std::string
phaseName(const Phase &phase)
{
    return std::string(backendName(phase.backend)) + "_" +
           db::arrivalProcessName(phase.process) + "_" +
           std::to_string(static_cast<uint64_t>(
               phase.offered_iops)) +
           (phase.admission ? "_gate" : "_nogate");
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_overload", argc, argv);

    uint64_t tie_seed = 1;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--tie-seed") == 0)
            tie_seed = std::strtoull(argv[i + 1], nullptr, 0);
    }

    const RunTimes times =
        reporter.quick()
            ? RunTimes{sim::msecs(300), sim::msecs(4000)}
            : RunTimes{sim::msecs(600), sim::msecs(8000)};
    const uint64_t tenants = reporter.quick() ? 50'000 : 1'000'000;
    const std::vector<double> loads =
        reporter.quick() ? std::vector<double>{1'000, 20'000}
                         : std::vector<double>{1'000, 4'000, 20'000,
                                               40'000};
    const std::vector<Backend> backends = {Backend::Cdsa,
                                           Backend::Kdsa,
                                           Backend::Iscsi};

    std::vector<Phase> phases;
    for (Backend backend : backends)
        for (double iops : loads)
            for (bool admission : {false, true})
                phases.push_back({backend,
                                  db::ArrivalProcess::Poisson, iops,
                                  admission});
    // The modulated arrival shapes, under the gate at the top load:
    // bursts and diurnal swings must degrade as gracefully as the
    // steady stream.
    phases.push_back({Backend::Cdsa, db::ArrivalProcess::Bursty,
                      loads.back() / 2, true});
    phases.push_back({Backend::Cdsa, db::ArrivalProcess::Diurnal,
                      loads.back() / 2, true});

    std::printf("Ablation A10: open-loop overload, %llu tenants, "
                "deadline %.0f ms (gate off: collapse; gate on: "
                "shed + plateau)\n",
                static_cast<unsigned long long>(tenants),
                static_cast<double>(kDeadline) / 1e6);

    util::TextTable table({"phase", "offered", "goodput", "late",
                           "failed", "overflow", "shed", "p99_ms",
                           "p999_ms"});

    // For the exit-code check: goodput and p99.9 at the top Poisson
    // load point, gate off vs on, per backend.
    struct TopLoad
    {
        uint64_t goodput_off = 0, goodput_on = 0, shed_on = 0;
        double p999_on = 0;
    };
    std::vector<TopLoad> top(backends.size());
    bool accounted = true; // exactly-once disposition, every phase

    for (const Phase &phase : phases) {
        PhaseResult result;
        if (!runPhase(phase, times, tenants, tie_seed, result))
            return 1;
        const std::string name = phaseName(phase);
        const bool balanced =
            result.drained &&
            result.overflow + result.failed + result.late +
                    result.goodput ==
                result.offered;
        accounted = accounted && balanced;
        table.addRow(
            {name,
             util::TextTable::num(static_cast<int64_t>(result.offered)),
             util::TextTable::num(static_cast<int64_t>(result.goodput)),
             util::TextTable::num(static_cast<int64_t>(result.late)),
             util::TextTable::num(static_cast<int64_t>(result.failed)),
             util::TextTable::num(
                 static_cast<int64_t>(result.overflow)),
             util::TextTable::num(static_cast<int64_t>(result.shed)),
             util::TextTable::num(result.p99_ms, 2),
             util::TextTable::num(result.p999_ms, 2)});

        reporter.beginRow();
        reporter.col("phase", name);
        reporter.col("backend", backendName(phase.backend));
        reporter.col("process",
                     db::arrivalProcessName(phase.process));
        reporter.col("offered_iops", phase.offered_iops);
        reporter.col("admission",
                     static_cast<int64_t>(phase.admission ? 1 : 0));
        reporter.col("offered", static_cast<int64_t>(result.offered));
        reporter.col("goodput", static_cast<int64_t>(result.goodput));
        reporter.col("late", static_cast<int64_t>(result.late));
        reporter.col("failed", static_cast<int64_t>(result.failed));
        reporter.col("overflow",
                     static_cast<int64_t>(result.overflow));
        reporter.col("shed", static_cast<int64_t>(result.shed));
        reporter.col("drained",
                     static_cast<int64_t>(result.drained ? 1 : 0));
        reporter.col("p99_ms", result.p99_ms);
        reporter.col("p999_ms", result.p999_ms);
        reporter.col("metrics_crc32c",
                     static_cast<int64_t>(result.metrics_crc));

        if (phase.process == db::ArrivalProcess::Poisson &&
            phase.offered_iops == loads.back()) {
            for (size_t b = 0; b < backends.size(); ++b) {
                if (backends[b] != phase.backend)
                    continue;
                if (phase.admission) {
                    top[b].goodput_on = result.goodput;
                    top[b].shed_on = result.shed;
                    top[b].p999_on = result.p999_ms;
                } else {
                    top[b].goodput_off = result.goodput;
                }
            }
        }
    }
    table.print();

    reporter.note("shape",
                  "per backend at the top offered load: admission "
                  "off collapses (goodput toward zero, unbounded "
                  "tail), admission on sheds (shed > 0) and keeps "
                  "goodput and p99.9 bounded; columns and "
                  "metrics_crc32c are invariant under --tie-seed");

    std::printf("check: every arrival disposed exactly once "
                "(overflow + failed + late + goodput == offered, "
                "all phases drained): %s\n",
                accounted ? "yes" : "NO");
    bool ok = accounted;
    for (size_t b = 0; b < backends.size(); ++b) {
        const bool plateau =
            top[b].goodput_on > top[b].goodput_off &&
            top[b].shed_on > 0;
        std::printf("check[%s]: goodput on/off %llu/%llu, shed %llu, "
                    "p99.9 on %.2f ms: %s\n",
                    backendName(backends[b]),
                    static_cast<unsigned long long>(
                        top[b].goodput_on),
                    static_cast<unsigned long long>(
                        top[b].goodput_off),
                    static_cast<unsigned long long>(top[b].shed_on),
                    top[b].p999_on, plateau ? "yes" : "NO");
        ok = ok && plateau;
    }
    const bool wrote = reporter.write();
    return (wrote && ok) ? 0 : 1;
}
