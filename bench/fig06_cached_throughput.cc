/**
 * @file
 * Figure 6: "V3 read throughput for cached blocks" — request size
 * sweep (512 B - 128 KB) at 1/2/4/8/16 outstanding requests.
 *
 * Expected shape: one outstanding peaks ~90 MB/s at 128 KB; more
 * outstanding reach the ~110 MB/s VI ceiling at smaller sizes; four
 * outstanding saturate the link even at 8 KB.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig06", argc, argv);
    const sim::Tick window =
        reporter.quick() ? sim::msecs(20) : sim::msecs(120);

    std::printf("Figure 6: V3 cached read throughput (MB/s), kDSA\n\n");

    const uint64_t sizes[] = {512,   2048,  8192,
                              32768, 65536, 131072};
    const int outstanding_counts[] = {1, 2, 4, 8, 16};

    std::vector<std::string> headers = {"size"};
    for (const int n : outstanding_counts)
        headers.push_back(std::to_string(n) + " I/O");
    util::TextTable table(headers);

    MicroRig::Config config;
    config.backend = Backend::Kdsa;
    // Plenty of cache so even 128K sweeps stay resident.
    config.cache_bytes = 512ull * util::kMiB;
    MicroRig rig(config);

    for (const uint64_t size : sizes) {
        std::vector<std::string> row = {util::formatSize(size)};
        reporter.beginRow();
        reporter.col("size", static_cast<int64_t>(size));
        for (const int n : outstanding_counts) {
            const auto r =
                rig.measureThroughput(size, true, n, window, true);
            row.push_back(util::TextTable::num(r.mbps, 1));
            reporter.col("mbps_" + std::to_string(n), r.mbps);
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\npaper anchors: ~90 MB/s @128K with 1 outstanding; "
                "~110 MB/s ceiling; saturated at 8K with 4 "
                "outstanding\n");
    reporter.note("anchors", "~90 MB/s @128K with 1 outstanding; "
                             "~110 MB/s ceiling; saturated at 8K "
                             "with 4 outstanding");
    reporter.attachMetricsJson(rig.sim().metrics().toJson());
    return reporter.write() ? 0 : 1;
}
