/**
 * @file
 * Ablation A7: thin monolithic kDSA vs layered driver stacks.
 *
 * Section 2.2: "kDSA is built as a thin monolithic driver to reduce
 * the overhead of going through multiple layers of software.
 * Alternative implementations, where performance is not the primary
 * concern, can layer existing kernel modules, such as SCSI miniport
 * drivers, on top of kDSA." This sweep quantifies the choice: each
 * stacked layer adds dispatch work and a synchronization pair per
 * path.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_miniport", argc, argv);

    std::printf("Ablation A7: kDSA driver stacking (mid-size "
                "TPC-C + cached-read latency)\n\n");
    util::TextTable table({"extra layers", "tpmC(norm)",
                           "latency 8K (ms)", "kernel share%"});

    double base = 0;
    const int lat_iters = reporter.quick() ? 12 : 60;
    std::string last_metrics;
    for (const int layers : {0, 1, 2, 4}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Kdsa;
        config.window = sim::msecs(800);
        config.kdsa_extra_layers = layers;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        if (base == 0)
            base = result.oltp.tpmc;

        MicroRig::Config rig_config;
        rig_config.backend = Backend::Kdsa;
        rig_config.dsa.kdsa_extra_layers = layers;
        MicroRig rig(rig_config);
        const auto latency =
            rig.measureLatency(8192, true, lat_iters, true);

        const double kernel_share =
            result.oltp.cpu_breakdown[static_cast<size_t>(
                osmodel::CpuCat::Kernel)] /
            std::max(result.oltp.cpu_utilization, 1e-9) * 100;
        table.addRow(
            {util::TextTable::num(static_cast<int64_t>(layers)),
             util::TextTable::num(result.oltp.tpmc / base * 100, 1),
             util::TextTable::num(latency.mean_us / 1e3, 3),
             util::TextTable::num(kernel_share, 1)});
        reporter.beginRow();
        reporter.col("extra_layers", static_cast<int64_t>(layers));
        reporter.col("tpmc_norm", result.oltp.tpmc / base * 100);
        reporter.col("latency_8k_ms", latency.mean_us / 1e3);
        reporter.col("kernel_share_pct", kernel_share);
        last_metrics = result.metrics_json;
    }
    table.print();
    std::printf("\nshape: every stacked layer costs throughput and "
                "latency — the paper's case for the thin monolithic "
                "driver\n");
    reporter.note("shape", "every stacked layer costs throughput and "
                           "latency — the paper's case for the thin "
                           "monolithic driver");
    reporter.attachMetricsJson(std::move(last_metrics));
    return reporter.write() ? 0 : 1;
}
