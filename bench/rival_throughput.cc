/**
 * @file
 * Rival transport, throughput: the Figure 6 cached-read scaling
 * sweep re-run VI-vs-iSCSI (DESIGN.md §11).
 *
 * Request sizes x outstanding counts over the same 110 MB/s fabric.
 * Both transports can eventually fill the wire — the paper's point
 * is the *price*: iSCSI reaches a given MB/s burning far more host
 * CPU per I/O (per-segment interrupts, socket copies, Internet
 * checksum), so the host CPU-per-I/O column is reported next to the
 * bandwidth.
 *
 * Expected shape: at deep queues both transports approach the VI
 * ceiling; iSCSI needs more outstanding requests to get there and
 * its cpu_us/IO stays a multiple of kDSA's at every point.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("rival_throughput", argc, argv);
    const sim::Tick window =
        reporter.quick() ? sim::msecs(20) : sim::msecs(120);

    std::printf("Rival transport: cached read throughput (MB/s) and "
                "host CPU per I/O (us)\n\n");

    const uint64_t all_sizes[] = {8192, 65536};
    const int all_outstanding[] = {1, 2, 4, 8, 16};
    const int quick_outstanding[] = {1, 4, 16};
    const Backend backends[] = {Backend::Kdsa, Backend::Cdsa,
                                Backend::Iscsi};

    const auto sizes =
        reporter.quick() ? std::vector<uint64_t>{8192}
                         : std::vector<uint64_t>(
                               all_sizes,
                               all_sizes + std::size(all_sizes));
    const auto outstanding =
        reporter.quick()
            ? std::vector<int>(quick_outstanding,
                               quick_outstanding +
                                   std::size(quick_outstanding))
            : std::vector<int>(all_outstanding,
                               all_outstanding +
                                   std::size(all_outstanding));

    util::TextTable table({"backend", "size", "I/Os", "MB/s",
                           "cpu us/IO"});
    for (const Backend backend : backends) {
        MicroRig::Config config;
        config.backend = backend;
        config.cache_bytes = 512ull * util::kMiB;
        MicroRig rig(config);
        for (const uint64_t size : sizes) {
            for (const int n : outstanding) {
                const auto r = rig.measureThroughput(size, true, n,
                                                     window, true);
                const double cpu_us = r.cpu_us_per_io;
                table.addRow(
                    {backendName(backend), util::formatSize(size),
                     util::TextTable::num(static_cast<int64_t>(n)),
                     util::TextTable::num(r.mbps, 1),
                     util::TextTable::num(cpu_us, 1)});
                reporter.beginRow();
                reporter.col("backend",
                             std::string(backendName(backend)));
                reporter.col("size", static_cast<int64_t>(size));
                reporter.col("outstanding",
                             static_cast<int64_t>(n));
                reporter.col("mbps", r.mbps);
                reporter.col("cpu_us_per_io", cpu_us);
            }
        }
        if (backend == Backend::Iscsi)
            reporter.attachMetricsJson(rig.sim().metrics().toJson());
    }
    table.print();

    std::printf("\npaper anchors: both transports can approach the "
                "~110 MB/s VI ceiling; iSCSI pays a multiple of the "
                "host CPU per I/O to get there\n");
    reporter.note("anchors",
                  "bandwidth parity at depth, host CPU/IO gap stays");
    return reporter.write() ? 0 : 1;
}
