/**
 * @file
 * Tables 1 and 2: the database-host and V3-server configuration
 * summaries, printed from the very objects the simulation runs with
 * (so the tables and the experiments cannot drift apart).
 */

#include <cstdio>

#include "scenarios/testbed.hh"
#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Table 1: database host configuration summary\n\n");
    {
        const HostParams mid = HostParams::midSize();
        const HostParams large = HostParams::large();
        const tpcc::TpccConfig mid_wl =
            platformWorkload(Platform::MidSize);
        const tpcc::TpccConfig large_wl =
            platformWorkload(Platform::Large);

        util::TextTable table({"Component", "Mid-size", "Large"});
        table.addRow({"CPUs", "4 x 700 MHz PIII",
                      "32 x 800 MHz PIII"});
        table.addRow({"CPUs (model)", std::to_string(mid.cpus),
                      std::to_string(large.cpus)});
        table.addRow(
            {"lock pair (us)",
             util::TextTable::num(
                 sim::toUsecs(mid.costs.lock_acquire +
                              mid.costs.lock_release), 2),
             util::TextTable::num(
                 sim::toUsecs(large.costs.lock_acquire +
                              large.costs.lock_release), 2)});
        table.addRow(
            {"interrupt (us)",
             util::TextTable::num(sim::toUsecs(mid.costs.interrupt),
                                  1),
             util::TextTable::num(
                 sim::toUsecs(large.costs.interrupt), 1)});
        table.addRow({"# warehouses",
                      std::to_string(mid_wl.warehouses),
                      std::to_string(large_wl.warehouses)});
        table.addRow(
            {"working set (model)",
             util::formatSize(mid_wl.workingSetBytes()),
             util::formatSize(large_wl.workingSetBytes())});
        table.addRow({"(paper working set)", "~100 GB", "~1 TB"});
        table.print();
        std::printf("\n(model working set = paper / %llu; see "
                    "DESIGN.md scaling note)\n",
                    static_cast<unsigned long long>(kTpccScale));
    }

    std::printf("\nTable 2: V3 server configuration summary\n\n");
    {
        const StorageParams mid = StorageParams::midSize();
        const StorageParams large = StorageParams::large();
        util::TextTable table({"Component", "Mid-size", "Large"});
        table.addRow({"# V3 nodes", std::to_string(mid.v3_nodes),
                      std::to_string(large.v3_nodes)});
        table.addRow({"CPUs/node", "2 x 700 MHz PIII",
                      "2 x 700 MHz PIII"});
        table.addRow({"disks/node",
                      std::to_string(mid.disks_per_node),
                      std::to_string(large.disks_per_node)});
        table.addRow({"total disks",
                      std::to_string(mid.v3_nodes *
                                     mid.disks_per_node),
                      std::to_string(large.v3_nodes *
                                     large.disks_per_node)});
        table.addRow({"disk type", mid.disk_spec.model,
                      large.disk_spec.model});
        table.addRow(
            {"disk RPM", std::to_string(mid.disk_spec.rpm),
             std::to_string(large.disk_spec.rpm)});
        table.addRow(
            {"V3 cache/node (model)",
             util::formatSize(mid.cache_bytes_per_node),
             util::formatSize(large.cache_bytes_per_node)});
        table.addRow({"(paper cache/node)", "1.6 GB", "2.4 GB"});
        table.addRow({"total disk space",
                      util::formatSize(
                          static_cast<uint64_t>(mid.v3_nodes) *
                          mid.disks_per_node *
                          mid.disk_spec.capacity_bytes),
                      util::formatSize(
                          static_cast<uint64_t>(large.v3_nodes) *
                          large.disks_per_node *
                          large.disk_spec.capacity_bytes)});
        table.print();
    }

    std::printf("\nNetwork: Giganet cLan model — %.0f MB/s link, "
                "64-byte one-way ~7 us, max packet 64K-64 B\n",
                net::FabricConfig{}.bandwidth_bps / 1e6);
    return 0;
}
