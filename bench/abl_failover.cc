/**
 * @file
 * Ablation A7: availability through a V3 node crash.
 *
 * The paper argues DSA supplies the reliability VI lacks (section
 * 2.2); this bench measures what that buys at the *cluster* level
 * when a whole storage node fail-stops. Two V3 nodes form a
 * dsa::MirroredDevice; closed-loop workers run a random 8K
 * read/write mix while the fault injector crashes one node
 * mid-run and restarts it later. The output is the
 * throughput-vs-time curve across the fault window: the dip while
 * DSA burns its retransmission/reconnection budget against the dead
 * node, degraded-mode operation on the survivor, background resync
 * after restart, and the return to two active replicas.
 *
 * Expected shape: throughput dips at the crash but never reaches
 * zero (the survivor keeps serving), recovers to degraded steady
 * state within the client's failure-detection latency, and the
 * restarted node is resynced and readmitted before the run ends.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "scenarios/testbed.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

struct RunTimes
{
    sim::Tick crash;
    sim::Tick restart;
    sim::Tick end;
    sim::Tick bucket;
};

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_failover", argc, argv);

    // Determinism harness hook: the run must be byte-identical for
    // any tie-shuffle seed (DESIGN.md §8).
    uint64_t tie_seed = 1;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--tie-seed") == 0)
            tie_seed = std::strtoull(argv[i + 1], nullptr, 0);
    }

    const RunTimes times =
        reporter.quick()
            ? RunTimes{sim::msecs(200), sim::msecs(500),
                       sim::msecs(1000), sim::msecs(100)}
            : RunTimes{sim::msecs(400), sim::msecs(1000),
                       sim::msecs(2000), sim::msecs(100)};
    const uint64_t io_bytes = 8192;
    const uint64_t span =
        reporter.quick() ? 8 * util::kMiB : 32 * util::kMiB;
    const int workers = 12;

    // Failure detection tuned for the run length: patient enough
    // that disk-bound tails don't trip it (three 20 ms retransmit
    // windows), but the full exhaust-reconnect-die sequence (~90 ms)
    // still completes well before the node restarts, so the mirror
    // genuinely fails over rather than riding out the outage.
    dsa::DsaConfig dsa_config;
    dsa_config.retransmit_timeout = sim::msecs(20);
    dsa_config.max_retransmits = 2;
    dsa_config.reconnect_delay = sim::msecs(2);
    dsa_config.max_reconnect_attempts = 3;
    dsa_config.connect_timeout = sim::msecs(8);

    HostParams host_params = HostParams::midSize();
    StorageParams storage_params;
    storage_params.v3_nodes = 2;
    storage_params.disks_per_node = 6;
    storage_params.cache_bytes_per_node = 16 * util::kMiB;
    storage_params.mirrored = true;
    storage_params.mirror.probe_interval = sim::msecs(5);

    Testbed bed(Backend::Cdsa, host_params, storage_params,
                dsa_config, /*seed=*/7);
    bed.sim().queue().setTieShuffle(tie_seed);
    if (!bed.connectAll()) {
        std::fprintf(stderr, "abl_failover: connect failed\n");
        return 1;
    }

    sim::Simulation &sim = bed.sim();
    dsa::MirroredDevice &mirror = *bed.mirrors().front();
    storage::V3Server &victim = *bed.servers().front();

    bed.faults().scheduleNodeOutage(times.crash, times.restart,
                                    victim);

    const size_t nbuckets =
        static_cast<size_t>(times.end / times.bucket);
    std::vector<uint64_t> completions(nbuckets, 0);
    std::vector<uint64_t> failures(nbuckets, 0);
    std::vector<size_t> active_at(nbuckets, 0);
    std::vector<uint64_t> dirty_at(nbuckets, 0);
    sim::Tick failover_at = 0, readmit_at = 0;

    // Closed-loop workers: random 8K I/O, 75 % reads.
    for (int w = 0; w < workers; ++w) {
        const sim::Addr buf = bed.host().memory().allocate(io_bytes);
        sim::spawn([](sim::Simulation &s, dsa::BlockDevice &device,
                      sim::Rng rng, sim::Addr buffer, uint64_t bytes,
                      uint64_t range, const RunTimes &t,
                      std::vector<uint64_t> &done,
                      std::vector<uint64_t> &bad) -> sim::Task<> {
            while (s.now() < t.end) {
                const uint64_t offset =
                    rng.uniformInt(0, range / bytes - 1) * bytes;
                const bool is_read = rng.bernoulli(0.75);
                const bool ok =
                    is_read
                        ? co_await device.read(offset, bytes, buffer)
                        : co_await device.write(offset, bytes,
                                                buffer);
                const size_t bucket = std::min(
                    static_cast<size_t>(s.now() / t.bucket),
                    done.size() - 1);
                (ok ? done : bad)[bucket]++;
            }
        }(sim, bed.device(), sim.forkRng(), buf, io_bytes, span,
          times, completions, failures));
    }

    // Bucket-boundary sampler for mirror state.
    sim::spawn([](sim::Simulation &s, dsa::MirroredDevice &m,
                  const RunTimes &t, std::vector<size_t> &active,
                  std::vector<uint64_t> &dirty) -> sim::Task<> {
        // Sample one tick before each absolute bucket boundary
        // (connectAll() already advanced the clock, so relative
        // sleeps would shift the grid past t.end).
        for (size_t b = 0; b < active.size(); ++b) {
            const sim::Tick when =
                static_cast<sim::Tick>(b + 1) * t.bucket - 1;
            if (when > s.now())
                co_await s.sleep(when - s.now());
            // Sample in the final band: mirror state changes landing
            // in this same tick are then always observed, not raced
            // against under tie-shuffle (DESIGN.md §8.3).
            co_await s.queue().finalBand();
            active[b] = m.activeReplicas();
            dirty[b] = m.dirtyBytes();
        }
    }(sim, mirror, times, active_at, dirty_at));

    // Fine-grained watcher for the failover/readmit instants.
    sim::spawn([](sim::Simulation &s, dsa::MirroredDevice &m,
                  const RunTimes &t, sim::Tick &failover,
                  sim::Tick &readmit) -> sim::Task<> {
        while (s.now() < t.end) {
            co_await s.sleep(sim::msecs(1));
            // Final band for the same reason as the bucket sampler:
            // a failover in this exact tick must not be a coin flip.
            co_await s.queue().finalBand();
            if (failover == 0 && m.degraded())
                failover = s.now();
            if (failover != 0 && readmit == 0 &&
                m.readmitCount() > 0) {
                readmit = s.now();
            }
        }
    }(sim, mirror, times, failover_at, readmit_at));

    sim.runUntil(times.end);

    std::printf("Ablation A7: throughput through a V3 node crash "
                "(2-node mirror, cDSA, %d workers, 8K mix)\n",
                workers);
    std::printf("crash @%llu ms, restart @%llu ms\n\n",
                static_cast<unsigned long long>(
                    sim::toMsecs(times.crash)),
                static_cast<unsigned long long>(
                    sim::toMsecs(times.restart)));
    util::TextTable table(
        {"t(ms)", "iops", "failed", "active", "dirty(KiB)"});

    uint64_t min_iops_in_outage = UINT64_MAX;
    const double bucket_s =
        static_cast<double>(times.bucket) / 1e9;
    for (size_t b = 0; b < nbuckets; ++b) {
        const sim::Tick t_end =
            static_cast<sim::Tick>(b + 1) * times.bucket;
        const double iops =
            static_cast<double>(completions[b]) / bucket_s;
        if (t_end > times.crash && t_end <= times.restart) {
            min_iops_in_outage =
                std::min(min_iops_in_outage, completions[b]);
        }
        table.addRow({util::TextTable::num(static_cast<int64_t>(
                          sim::toMsecs(t_end))),
                      util::TextTable::num(iops, 0),
                      util::TextTable::num(
                          static_cast<int64_t>(failures[b])),
                      util::TextTable::num(
                          static_cast<int64_t>(active_at[b])),
                      util::TextTable::num(
                          static_cast<int64_t>(dirty_at[b] / 1024))});
        reporter.beginRow();
        reporter.col("t_ms", static_cast<int64_t>(
                                 sim::toMsecs(t_end)));
        reporter.col("iops", iops);
        reporter.col("failed_ios",
                     static_cast<int64_t>(failures[b]));
        reporter.col("active_replicas",
                     static_cast<int64_t>(active_at[b]));
        reporter.col("dirty_bytes",
                     static_cast<int64_t>(dirty_at[b]));
    }
    table.print();

    const bool never_zero = min_iops_in_outage > 0;
    const bool recovered = mirror.readmitCount() >= 1 &&
                           mirror.activeReplicas() == 2;
    std::printf("\nfailover detected @%llu ms, readmitted @%llu ms, "
                "resynced %llu KiB\n",
                static_cast<unsigned long long>(
                    sim::toMsecs(failover_at)),
                static_cast<unsigned long long>(
                    sim::toMsecs(readmit_at)),
                static_cast<unsigned long long>(
                    mirror.resyncBytes() / 1024));
    std::printf("check: iops never zero during outage: %s; node "
                "resynced and readmitted: %s\n",
                never_zero ? "yes" : "NO",
                recovered ? "yes" : "NO");

    reporter.note("shape",
                  "throughput dips at the crash but never reaches "
                  "zero; survivor serves degraded; restarted node "
                  "resyncs and is readmitted");
    reporter.note("crash_ms", std::to_string(static_cast<long long>(
                                  sim::toMsecs(times.crash))));
    reporter.note("restart_ms",
                  std::to_string(static_cast<long long>(
                      sim::toMsecs(times.restart))));
    reporter.note("failover_ms",
                  std::to_string(static_cast<long long>(
                      sim::toMsecs(failover_at))));
    reporter.note("readmit_ms",
                  std::to_string(static_cast<long long>(
                      sim::toMsecs(readmit_at))));
    reporter.note("failovers",
                  std::to_string(mirror.failoverCount()));
    reporter.note("readmits",
                  std::to_string(mirror.readmitCount()));
    reporter.note("resync_bytes",
                  std::to_string(mirror.resyncBytes()));
    reporter.attachMetricsJson(sim.metrics().toJson());

    const bool wrote = reporter.write();
    return (wrote && never_zero && recovered) ? 0 : 1;
}
