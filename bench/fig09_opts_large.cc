/**
 * @file
 * Figure 9: "Effect of optimizations on tpmC for the large
 * configuration" — kDSA and cDSA, optimizations stacked:
 * unoptimized, +batched deregistration, +interrupt batching,
 * +reduced lock synchronization. Normalized to the unoptimized case.
 *
 * Paper anchors: batched dereg +15% (kDSA) / +10% (cDSA); interrupt
 * batching +7% / +14%; lock-sync reduction +12% / +24% cumulative
 * steps.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig09", argc, argv);

    std::printf("Figure 9: optimization stack vs tpmC, large "
                "configuration (normalized to unoptimized)\n\n");

    struct Step
    {
        const char *label;
        dsa::DsaOptimizations opts;
    };
    const Step steps[] = {
        {"unoptimized", dsa::DsaOptimizations::none()},
        {"+dereg", {true, false, false}},
        {"+dereg+intrpt", {true, true, false}},
        {"+dereg+intrpt+sync", {true, true, true}},
    };

    util::TextTable table({"optimizations", "kDSA", "cDSA"});
    double base[2] = {0, 0};
    std::string last_metrics;
    for (const Step &step : steps) {
        std::vector<std::string> row = {step.label};
        reporter.beginRow();
        reporter.col("optimizations", std::string(step.label));
        int column = 0;
        for (const Backend backend :
             {Backend::Kdsa, Backend::Cdsa}) {
            TpccRunConfig config;
            config.platform = Platform::Large;
            config.backend = backend;
            config.opts = step.opts;
            if (reporter.quick()) {
                config.warmup = sim::msecs(60);
                config.window = sim::msecs(250);
            }
            const TpccRunResult result = runTpcc(config);
            if (base[column] == 0)
                base[column] = result.oltp.tpmc;
            row.push_back(util::TextTable::num(
                result.oltp.tpmc / base[column] * 100, 1));
            const char *key =
                backend == Backend::Kdsa ? "kdsa_norm" : "cdsa_norm";
            reporter.col(key,
                         result.oltp.tpmc / base[column] * 100);
            last_metrics = result.metrics_json;
            ++column;
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\npaper anchors (cumulative): dereg +15/+10%%; "
                "intrpt +7/+14%%; sync +12/+24%%\n");
    reporter.note("anchors", "cumulative: dereg +15/+10%; intrpt "
                             "+7/+14%; sync +12/+24%");
    reporter.attachMetricsJson(std::move(last_metrics));
    return reporter.write() ? 0 : 1;
}
