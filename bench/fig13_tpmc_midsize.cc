/**
 * @file
 * Figure 13: "Normalized TPC-C transaction rate for the mid-size
 * configuration" — the local curve swept over disk counts, with
 * kDSA/wDSA/cDSA points at 60 disks (4 V3 nodes x 15 disks plus
 * 6.4 GB of server cache).
 *
 * Paper anchors: local rises with disks and flattens near its CPU
 * limit; at 60 disks the V3 backends land near the local@176 value
 * (kDSA ~98, cDSA ~103, wDSA ~90) with a 40-45% server cache hit
 * ratio.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig13", argc, argv);

    std::printf("Figure 13: normalized TPC-C rate vs disk count, "
                "mid-size configuration\n\n");

    // Local curve over the paper's x-axis.
    util::TextTable local_table({"local disks", "tpmC(norm)"});
    double local176 = 0;
    std::vector<std::pair<int, double>> curve;
    for (const int disks : {30, 60, 90, 120, 150, 176, 210}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Local;
        config.local_disks = disks;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        curve.emplace_back(disks, result.oltp.tpmc);
        if (disks == 176)
            local176 = result.oltp.tpmc;
    }
    for (const auto &[disks, tpmc] : curve) {
        local_table.addRow(
            {util::TextTable::num(static_cast<int64_t>(disks)),
             util::TextTable::num(tpmc / local176 * 100, 1)});
        reporter.beginRow();
        reporter.col("series", std::string("local"));
        reporter.col("local_disks", static_cast<int64_t>(disks));
        reporter.col("tpmc_norm", tpmc / local176 * 100);
    }
    local_table.print();

    std::printf("\nV3 backends at 60 disks (4 nodes x 15):\n");
    util::TextTable v3_table(
        {"backend", "tpmC(norm)", "cache hit%", "disk util%"});
    for (const Backend backend :
         {Backend::Kdsa, Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = backend;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        v3_table.addRow(
            {backendName(backend),
             util::TextTable::num(result.oltp.tpmc / local176 * 100,
                                  1),
             util::TextTable::num(result.server_cache_hit * 100, 1),
             util::TextTable::num(result.disk_utilization * 100,
                                  1)});
        reporter.beginRow();
        reporter.col("series", std::string("v3"));
        reporter.col("backend", std::string(backendName(backend)));
        reporter.col("tpmc_norm",
                     result.oltp.tpmc / local176 * 100);
        reporter.col("cache_hit_pct", result.server_cache_hit * 100);
        reporter.col("disk_util_pct",
                     result.disk_utilization * 100);
        if (backend == Backend::Cdsa)
            reporter.attachMetricsJson(result.metrics_json);
    }
    v3_table.print();
    std::printf("\npaper anchors: kDSA ~98, wDSA ~90, cDSA ~103 (of "
                "local@176); hit ratio 40-45%%\n");
    reporter.note("anchors", "kDSA ~98, wDSA ~90, cDSA ~103 (of "
                             "local@176); hit ratio 40-45%");
    return reporter.write() ? 0 : 1;
}
