/**
 * @file
 * Figure 4: "Response time breakdown for a read I/O request."
 *
 * Paper: single uncontended cached read at 2 KB and 8 KB, broken
 * into CPU overhead / node-to-node latency / V3 storage server time.
 * Expected shape: server ~20% of total at 2 KB, ~9% at 8 KB; cDSA
 * lowest CPU overhead, wDSA nearly 3x cDSA.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig04", argc, argv);
    const int iters = reporter.quick() ? 12 : 80;

    std::printf("Figure 4: response-time breakdown for a read "
                "(milliseconds)\n\n");
    util::TextTable table({"config", "total", "cpu", "node-to-node",
                           "server", "server%"});

    for (const uint64_t size : {2048ull, 8192ull}) {
        for (const Backend backend :
             {Backend::Kdsa, Backend::Wdsa, Backend::Cdsa}) {
            MicroRig::Config config;
            config.backend = backend;
            MicroRig rig(config);
            const auto r = rig.measureLatency(size, true, iters, true);
            char label[64];
            std::snprintf(label, sizeof(label), "%s @ %s",
                          backendName(backend),
                          util::formatSize(size).c_str());
            table.addRow(
                {label, util::TextTable::num(r.mean_us / 1e3, 3),
                 util::TextTable::num(r.cpu_overhead_us / 1e3, 3),
                 util::TextTable::num(r.wireUs() / 1e3, 3),
                 util::TextTable::num(r.server_us / 1e3, 3),
                 util::TextTable::num(
                     r.server_us / r.mean_us * 100, 1)});
            reporter.beginRow();
            reporter.col("backend", std::string(backendName(backend)));
            reporter.col("size", static_cast<int64_t>(size));
            reporter.col("total_ms", r.mean_us / 1e3);
            reporter.col("cpu_ms", r.cpu_overhead_us / 1e3);
            reporter.col("node_to_node_ms", r.wireUs() / 1e3);
            reporter.col("server_ms", r.server_us / 1e3);
            reporter.col("server_pct", r.server_us / r.mean_us * 100);
            if (size == 8192 && backend == Backend::Cdsa) {
                reporter.attachMetricsJson(
                    rig.sim().metrics().toJson());
            }
        }
    }
    table.print();
    std::printf("\npaper anchors: server ~20%% of total at 2K, ~9%% "
                "at 8K; wDSA CPU ~3x cDSA; cDSA lowest CPU\n");
    reporter.note("anchors", "server ~20% of total at 2K, ~9% at 8K; "
                             "wDSA CPU ~3x cDSA; cDSA lowest CPU");
    return reporter.write() ? 0 : 1;
}
