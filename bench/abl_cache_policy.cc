/**
 * @file
 * Ablation A4: V3 cache replacement policy — the authors' Multi-
 * Queue algorithm vs plain LRU, on the mid-size TPC-C run and on a
 * synthetic second-level trace.
 *
 * MQ was designed for exactly this cache position (below the
 * database's own buffer pool); the TPC-C sweep shows the end-to-end
 * effect, the synthetic sweep isolates the policy.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "sim/random.hh"
#include "storage/mq_cache.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

void
syntheticSweep(util::BenchReporter &reporter)
{
    const int touches = reporter.quick() ? 50000 : 400000;
    std::printf("Synthetic second-level trace (frequency-skewed, "
                "recency-poor):\n");
    util::TextTable table(
        {"cache blocks", "LRU hit%", "MQ hit%"});
    sim::Rng rng(31);
    for (const uint64_t capacity : {128u, 256u, 512u, 1024u}) {
        sim::MemorySpace mem_a, mem_b;
        storage::LruCache lru(mem_a, 8192, capacity);
        storage::MqCache mq(mem_b, 8192, capacity);
        auto touch = [](storage::BlockCache &cache, uint64_t block) {
            const storage::CacheKey key{0, block};
            if (cache.lookupAndPin(key)) {
                cache.unpin(key);
                return;
            }
            if (cache.insertAndPin(key))
                cache.unpin(key);
        };
        for (int i = 0; i < touches; ++i) {
            uint64_t block;
            if (rng.bernoulli(0.5))
                block = rng.uniformInt(0, capacity / 2);
            else
                block = capacity + rng.uniformInt(0, 16384);
            touch(lru, block);
            touch(mq, block);
        }
        table.addRow(
            {util::TextTable::num(static_cast<int64_t>(capacity)),
             util::TextTable::num(lru.hitRatio() * 100, 1),
             util::TextTable::num(mq.hitRatio() * 100, 1)});
        reporter.beginRow();
        reporter.col("series", std::string("synthetic"));
        reporter.col("cache_blocks",
                     static_cast<int64_t>(capacity));
        reporter.col("lru_hit_pct", lru.hitRatio() * 100);
        reporter.col("mq_hit_pct", mq.hitRatio() * 100);
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_cache_policy", argc, argv);
    std::printf("Ablation A4: V3 cache policy (MQ vs LRU)\n\n");
    syntheticSweep(reporter);

    std::printf("\nMid-size TPC-C (kDSA):\n");
    util::TextTable table({"policy", "tpmC(norm)", "hit%"});
    double base = 0;
    for (const storage::CachePolicy policy :
         {storage::CachePolicy::Lru, storage::CachePolicy::Mq}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Kdsa;
        config.cache_policy = policy;
        config.window = sim::msecs(800);
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        if (base == 0)
            base = result.oltp.tpmc;
        const char *name =
            policy == storage::CachePolicy::Mq ? "MQ" : "LRU";
        table.addRow(
            {name,
             util::TextTable::num(result.oltp.tpmc / base * 100, 1),
             util::TextTable::num(result.server_cache_hit * 100,
                                  1)});
        reporter.beginRow();
        reporter.col("series", std::string("tpcc"));
        reporter.col("policy", std::string(name));
        reporter.col("tpmc_norm", result.oltp.tpmc / base * 100);
        reporter.col("hit_pct", result.server_cache_hit * 100);
        if (policy == storage::CachePolicy::Mq)
            reporter.attachMetricsJson(result.metrics_json);
    }
    table.print();
    return reporter.write() ? 0 : 1;
}
