/**
 * @file
 * Calibration harness (not a paper figure): prints the key
 * quantities every figure depends on so model constants can be tuned
 * against the paper's anchors. Safe to run any time; EXPERIMENTS.md
 * records the anchored values.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

void
microSection()
{
    std::printf("== Raw VI latency (paper: 64B one-way ~7us; "
                "8K RTT ~0.09-0.13ms) ==\n");
    for (const uint64_t size : {512ull, 2048ull, 8192ull, 16384ull}) {
        std::printf("  VI %6llu B : %8.1f us\n",
                    static_cast<unsigned long long>(size),
                    rawViLatencyUs(size, 40));
    }

    std::printf("\n== DSA cached-read latency (Fig 3: ~0.1-0.25ms; "
                "cDSA < kDSA < wDSA; V3 adds 15-50us over VI) ==\n");
    for (const Backend backend :
         {Backend::Kdsa, Backend::Wdsa, Backend::Cdsa}) {
        MicroRig::Config config;
        config.backend = backend;
        MicroRig rig(config);
        for (const uint64_t size : {2048ull, 8192ull}) {
            const auto r = rig.measureLatency(size, true, 60, true);
            std::printf(
                "  %-5s %6llu B : total %7.1f us  cpu %6.1f  "
                "server %6.1f  wire %6.1f\n",
                backendName(backend),
                static_cast<unsigned long long>(size), r.mean_us,
                r.cpu_overhead_us, r.server_us, r.wireUs());
        }
    }

    std::printf("\n== Cached throughput, 8K (Fig 6: saturates "
                "~110MB/s at >=4 outstanding) ==\n");
    {
        MicroRig::Config config;
        config.backend = Backend::Kdsa;
        MicroRig rig(config);
        for (const int outstanding : {1, 2, 4, 8}) {
            const auto r = rig.measureThroughput(
                8192, true, outstanding, sim::msecs(200), true);
            std::printf("  outstanding %2d : %7.1f MB/s  resp %7.1f us\n",
                        outstanding, r.mbps, r.mean_response_us);
        }
    }

    std::printf("\n== Uncached random 8K read (Fig 7: V3 within ~3%% "
                "of local) ==\n");
    {
        MicroRig::Config v3c;
        v3c.backend = Backend::Kdsa;
        v3c.cache_bytes = 0;
        MicroRig v3(v3c);
        const auto rv = v3.measureLatency(8192, true, 100, false);
        MicroRig::Config lc;
        lc.backend = Backend::Local;
        MicroRig local(lc);
        const auto rl = local.measureLatency(8192, true, 100, false);
        std::printf("  V3 %0.2f ms   local %0.2f ms   (+%0.1f%%)\n",
                    rv.mean_us / 1e3, rl.mean_us / 1e3,
                    (rv.mean_us / rl.mean_us - 1) * 100);
    }
}

void
tpccSection(Platform platform, const char *label)
{
    std::printf("\n== TPC-C %s (Fig 10/13: local=100; kDSA ~98-100, "
                "wDSA ~78-90, cDSA ~103-118) ==\n",
                label);
    double local_tpmc = 0;
    for (const Backend backend : {Backend::Local, Backend::Kdsa,
                                  Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.backend = backend;
        config.platform = platform;
        const TpccRunResult result = runTpcc(config);
        if (backend == Backend::Local)
            local_tpmc = result.oltp.tpmc;
        std::printf(
            "  %-5s tpmC %8.0f (%5.1f%%)  cpu %4.1f%%  hit %4.1f%%  "
            "disk %4.1f%%  intr/s %8.0f  iops %8.0f\n",
            backendName(backend), result.oltp.tpmc,
            local_tpmc > 0 ? result.oltp.tpmc / local_tpmc * 100 : 0.0,
            result.oltp.cpu_utilization * 100,
            result.server_cache_hit * 100,
            result.disk_utilization * 100,
            static_cast<double>(result.host_interrupts) /
                sim::toSecs(sim::msecs(1500)),
            result.oltp.io_per_second);
        std::printf("        breakdown:");
        for (size_t c = 0; c < osmodel::kCpuCatCount; ++c) {
            std::printf(" %s %4.1f%%",
                        osmodel::cpuCatName(
                            static_cast<osmodel::CpuCat>(c)),
                        result.oltp.cpu_breakdown[c] /
                            std::max(result.oltp.cpu_utilization,
                                     1e-9) *
                            100);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    microSection();
    tpccSection(Platform::MidSize, "mid-size (4 CPU)");
    if (!quick)
        tpccSection(Platform::Large, "large (32 CPU)");
    return 0;
}
