/**
 * @file
 * Figure 5: "V3 read response time for cached blocks (8 KB
 * requests)" versus the number of outstanding I/Os.
 *
 * Expected shape: response grows slowly below ~4 outstanding, then
 * linearly — a function of network queuing once the VI link
 * saturates.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig05", argc, argv);
    const sim::Tick window =
        reporter.quick() ? sim::msecs(25) : sim::msecs(150);

    std::printf("Figure 5: V3 cached 8K read response time vs "
                "outstanding I/Os (kDSA)\n\n");
    util::TextTable table({"outstanding", "response(ms)", "MB/s",
                           "p95(ms)", "p99(ms)"});

    MicroRig::Config config;
    config.backend = Backend::Kdsa;
    MicroRig rig(config);
    for (const int outstanding : {1, 2, 4, 8, 16, 32}) {
        const auto r = rig.measureThroughput(8192, true, outstanding,
                                             window, true);
        // Tail latency over the same window, from the DSA client's
        // histogram, looked up by its registry path.
        const sim::Histogram *hist = rig.sim().metrics().findHistogram(
            "client.kdsa0.latency_hist_ns");
        const double p95_ms =
            hist ? hist->quantile(0.95) / 1e6 : 0.0;
        const double p99_ms =
            hist ? hist->quantile(0.99) / 1e6 : 0.0;
        table.addRow({util::TextTable::num(
                          static_cast<int64_t>(outstanding)),
                      util::TextTable::num(
                          r.mean_response_us / 1e3, 3),
                      util::TextTable::num(r.mbps, 1),
                      util::TextTable::num(p95_ms, 3),
                      util::TextTable::num(p99_ms, 3)});
        reporter.beginRow();
        reporter.col("outstanding",
                     static_cast<int64_t>(outstanding));
        reporter.col("response_ms", r.mean_response_us / 1e3);
        reporter.col("mbps", r.mbps);
        reporter.col("p95_ms", p95_ms);
        reporter.col("p99_ms", p99_ms);
    }
    table.print();
    std::printf("\npaper anchors: slow growth below ~4 outstanding, "
                "then linear (network queuing)\n");
    reporter.note("anchors", "slow growth below ~4 outstanding, then "
                             "linear (network queuing)");
    reporter.attachMetricsJson(rig.sim().metrics().toJson());
    return reporter.write() ? 0 : 1;
}
