/**
 * @file
 * Figure 5: "V3 read response time for cached blocks (8 KB
 * requests)" versus the number of outstanding I/Os.
 *
 * Expected shape: response grows slowly below ~4 outstanding, then
 * linearly — a function of network queuing once the VI link
 * saturates.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Figure 5: V3 cached 8K read response time vs "
                "outstanding I/Os (kDSA)\n\n");
    util::TextTable table({"outstanding", "response(ms)", "MB/s"});

    MicroRig::Config config;
    config.backend = Backend::Kdsa;
    MicroRig rig(config);
    for (const int outstanding : {1, 2, 4, 8, 16, 32}) {
        const auto r = rig.measureThroughput(
            8192, true, outstanding, sim::msecs(150), true);
        table.addRow({util::TextTable::num(
                          static_cast<int64_t>(outstanding)),
                      util::TextTable::num(
                          r.mean_response_us / 1e3, 3),
                      util::TextTable::num(r.mbps, 1)});
    }
    table.print();
    std::printf("\npaper anchors: slow growth below ~4 outstanding, "
                "then linear (network queuing)\n");
    return 0;
}
