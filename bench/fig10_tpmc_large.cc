/**
 * @file
 * Figure 10: "Normalized TPC-C transaction rates for the large
 * configuration" — Local (tuned FC), kDSA, wDSA, cDSA, normalized to
 * Local = 100.
 *
 * Paper anchors: kDSA competitive with local; cDSA +18%; wDSA 22%
 * below kDSA.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig10", argc, argv);

    std::printf("Figure 10: normalized TPC-C transaction rate, "
                "large configuration\n\n");
    util::TextTable table({"backend", "tpmC(norm)", "cpu%", "hit%",
                           "disk%", "intr/s"});

    double local = 0;
    for (const Backend backend : {Backend::Local, Backend::Kdsa,
                                  Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.platform = Platform::Large;
        config.backend = backend;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        if (backend == Backend::Local)
            local = result.oltp.tpmc;
        const double intr_per_sec =
            static_cast<double>(result.host_interrupts) /
            sim::toSecs(config.window + config.warmup);
        table.addRow(
            {backendName(backend),
             util::TextTable::num(result.oltp.tpmc / local * 100, 1),
             util::TextTable::num(result.oltp.cpu_utilization * 100,
                                  1),
             util::TextTable::num(result.server_cache_hit * 100, 1),
             util::TextTable::num(result.disk_utilization * 100, 1),
             util::TextTable::num(
                 static_cast<int64_t>(intr_per_sec))});
        reporter.beginRow();
        reporter.col("backend", std::string(backendName(backend)));
        reporter.col("tpmc_norm", result.oltp.tpmc / local * 100);
        reporter.col("tpmc", result.oltp.tpmc);
        reporter.col("cpu_pct", result.oltp.cpu_utilization * 100);
        reporter.col("hit_pct", result.server_cache_hit * 100);
        reporter.col("disk_pct", result.disk_utilization * 100);
        reporter.col("intr_per_sec", intr_per_sec);
        if (backend == Backend::Cdsa)
            reporter.attachMetricsJson(result.metrics_json);
    }
    table.print();
    std::printf("\npaper anchors: local=100; kDSA ~100; wDSA ~78 "
                "(22%% below kDSA); cDSA ~118\n");
    reporter.note("anchors", "local=100; kDSA ~100; wDSA ~78 (22% "
                             "below kDSA); cDSA ~118");
    return reporter.write() ? 0 : 1;
}
