/**
 * @file
 * Figure 10: "Normalized TPC-C transaction rates for the large
 * configuration" — Local (tuned FC), kDSA, wDSA, cDSA, normalized to
 * Local = 100.
 *
 * Paper anchors: kDSA competitive with local; cDSA +18%; wDSA 22%
 * below kDSA.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Figure 10: normalized TPC-C transaction rate, "
                "large configuration\n\n");
    util::TextTable table({"backend", "tpmC(norm)", "cpu%", "hit%",
                           "disk%", "intr/s"});

    double local = 0;
    for (const Backend backend : {Backend::Local, Backend::Kdsa,
                                  Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.platform = Platform::Large;
        config.backend = backend;
        const TpccRunResult result = runTpcc(config);
        if (backend == Backend::Local)
            local = result.oltp.tpmc;
        table.addRow(
            {backendName(backend),
             util::TextTable::num(result.oltp.tpmc / local * 100, 1),
             util::TextTable::num(result.oltp.cpu_utilization * 100,
                                  1),
             util::TextTable::num(result.server_cache_hit * 100, 1),
             util::TextTable::num(result.disk_utilization * 100, 1),
             util::TextTable::num(
                 static_cast<int64_t>(
                     static_cast<double>(result.host_interrupts) /
                     sim::toSecs(config.window + config.warmup)))});
    }
    table.print();
    std::printf("\npaper anchors: local=100; kDSA ~100; wDSA ~78 "
                "(22%% below kDSA); cDSA ~118\n");
    return 0;
}
