/**
 * @file
 * Ablation A8: end-to-end data integrity under injected corruption.
 *
 * The paper's reliability argument (section 2.2) is that DSA supplies
 * the guarantees VI lacks; this bench extends that argument from
 * *loss* to *corruption*. A 2-node mirrored cDSA testbed runs a
 * closed-loop 8K read/write mix whose every block carries an
 * offset-derived stamp, while the fault injector damages the system
 * three ways at once:
 *
 *  - wire corruption: each delivered packet is damaged with
 *    probability p (the sweep variable) — request messages arrive
 *    broken (dropped by the server's receive check), write payloads
 *    arrive broken in staging (rejected by the staging digest),
 *    read payloads arrive broken in the client buffer (rejected by
 *    the response digest) — all recovered by retransmission;
 *  - latent sector errors: blocks rot silently on one replica's
 *    disks, detected only by the server's verify-on-read and
 *    repaired by the mirror from the healthy peer;
 *  - a background scrubber walks both replicas so cold rot is found
 *    without waiting for an application read.
 *
 * The application-level oracle is the stamp: a read that completes
 * "ok" with wrong bytes is an *undetected* corruption, and the bench
 * fails if it ever sees one. The artifact records injected vs
 * detected vs repaired counts plus the goodput/latency cost of the
 * digest machinery (the rate-0 row is the in-artifact baseline).
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "scenarios/testbed.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

struct RunTimes
{
    sim::Tick fill_cap; ///< budget for the pre-stamp phase
    sim::Tick run;      ///< measured window under injection
    sim::Tick drain;    ///< post-window settle (retransmits, repairs)
};

/** One sweep point's outcome. */
struct Point
{
    double rate = 0.0;
    bool filled = false;
    uint64_t completions = 0;
    uint64_t failures = 0;
    uint64_t undetected = 0;
    double read_us = 0.0;
    double write_us = 0.0;
    uint64_t injected_wire = 0;
    uint64_t injected_latent = 0;
    uint64_t client_digest_mismatches = 0;
    uint64_t server_digest_mismatches = 0;
    uint64_t server_bad_requests = 0;
    uint64_t verify_failures = 0;
    uint64_t repairs = 0;
    uint64_t unrecoverable = 0;
    uint64_t scrubbed_bytes = 0;
    bool latent_clean = false;
    std::string metrics_json;
};

constexpr uint64_t kIoBytes = 8192;
constexpr uint64_t kSpanBase = 1 * util::kMiB;
constexpr int kWorkers = 8;

/** Offset-derived block stamp: every 8-byte word is a mix of its own
 *  address, so any displaced/damaged byte is detectable. */
void
stampBlock(std::vector<uint64_t> &words, uint64_t offset)
{
    for (size_t i = 0; i < words.size(); ++i) {
        words[i] = (offset + i * 8) * 0x9E3779B97F4A7C15ull +
                   0x2545F4914F6CDD1Dull;
    }
}

bool
verifyBlock(const sim::MemorySpace &mem, sim::Addr addr,
            uint64_t offset, uint64_t len)
{
    std::vector<uint64_t> got(len / 8);
    mem.read(addr, got.data(), len);
    std::vector<uint64_t> want(len / 8);
    stampBlock(want, offset);
    return got == want;
}

bool
runPoint(double rate, const RunTimes &times, uint64_t span,
         bool attach_metrics, Point &out)
{
    out.rate = rate;

    // The retransmit timer must sit above the true service-time tail
    // (disk-bound writes on this small testbed run ~15 ms): a timer
    // below it fires spurious retransmits whose duplicate read
    // deliveries trample reused buffers. 100 ms keeps recovery from a
    // corrupted (dropped) request reasonably quick while the digest
    // paths handle damaged payloads at wire speed; a generous retry
    // budget keeps p=1e-2 from ever escalating to node death.
    dsa::DsaConfig dsa_config;
    dsa_config.retransmit_timeout = sim::msecs(100);
    dsa_config.max_retransmits = 8;
    dsa_config.reconnect_delay = sim::msecs(2);
    dsa_config.max_reconnect_attempts = 3;
    dsa_config.connect_timeout = sim::msecs(8);

    HostParams host_params = HostParams::midSize();
    StorageParams storage_params;
    storage_params.v3_nodes = 2;
    storage_params.disks_per_node = 4;
    storage_params.disk_spec = disk::DiskSpec::scsi10k();
    // Shrink the media so a scrub pass is feasible inside the run.
    storage_params.disk_spec.capacity_bytes = 4 * util::kMiB;
    storage_params.cache_bytes_per_node = 4 * util::kMiB;
    storage_params.mirrored = true;
    storage_params.mirror.probe_interval = sim::msecs(5);
    storage_params.mirror.scrub_rate_bytes_per_sec =
        32 * util::kMiB;
    storage_params.mirror.scrub_chunk = 64 * util::kKiB;

    Testbed bed(Backend::Cdsa, host_params, storage_params,
                dsa_config, /*seed=*/11);
    if (!bed.connectAll()) {
        std::fprintf(stderr, "abl_integrity: connect failed\n");
        return false;
    }

    sim::Simulation &sim = bed.sim();
    sim::MemorySpace &mem = bed.host().memory();
    dsa::MirroredDevice &mirror = *bed.mirrors().front();
    const uint64_t stripe_unit = storage_params.stripe_unit;
    const uint64_t blocks = span / kIoBytes;

    std::vector<sim::Addr> bufs;
    for (int w = 0; w < kWorkers; ++w)
        bufs.push_back(mem.allocate(kIoBytes));

    // --- Fill phase: stamp every block in the span (clean wire). ---
    uint64_t filled = 0;
    for (int w = 0; w < kWorkers; ++w) {
        sim::spawn([](dsa::MirroredDevice &device,
                      sim::MemorySpace &space, sim::Addr buffer,
                      uint64_t first, uint64_t stride,
                      uint64_t nblocks,
                      uint64_t &done) -> sim::Task<> {
            std::vector<uint64_t> words(kIoBytes / 8);
            for (uint64_t b = first; b < nblocks; b += stride) {
                const uint64_t offset = kSpanBase + b * kIoBytes;
                stampBlock(words, offset);
                space.write(buffer, words.data(), kIoBytes);
                co_await device.write(offset, kIoBytes, buffer);
                ++done;
            }
        }(mirror, mem, bufs[w], static_cast<uint64_t>(w), kWorkers,
          blocks, filled));
    }
    while (filled < blocks && sim.now() < times.fill_cap)
        sim.runUntil(sim.now() + sim::msecs(20));
    out.filled = filled == blocks;
    if (!out.filled) {
        std::fprintf(stderr, "abl_integrity: fill incomplete "
                             "(%llu/%llu blocks)\n",
                     static_cast<unsigned long long>(filled),
                     static_cast<unsigned long long>(blocks));
        return false;
    }

    // Fresh measurement epoch, then arm the faults: wire corruption
    // at the sweep rate plus six 8K latent sector errors on node 0,
    // all inside the first stripe row ([0, 4*64K), below kSpanBase)
    // so the application load never overwrites them — only
    // verify-on-read and the scrubber can find them.
    bed.resetStats();
    if (rate > 0.0)
        bed.faults().setCorruptRate(rate);
    const std::vector<uint64_t> latent_offsets = {
        0,
        8 * util::kKiB,
        stripe_unit,
        stripe_unit + 8 * util::kKiB,
        2 * stripe_unit,
        3 * stripe_unit,
    };
    storage::V3Server &rotten = *bed.servers().front();
    for (uint64_t off : latent_offsets) {
        bed.faults().injectLatentError(
            rotten.diskManager().disk(off / stripe_unit),
            off % stripe_unit, kIoBytes);
    }
    const disk::Volume *vol0 = rotten.volumeManager().volume(0);
    const disk::Volume *vol1 =
        bed.servers()[1]->volumeManager().volume(0);

    const sim::Tick t_end = sim.now() + times.run;
    const double run_s = static_cast<double>(times.run) / 1e9;

    // --- Timed phase: stamped 8K mix, 75 % reads, verify on read. ---
    sim::Sampler read_lat, write_lat;
    for (int w = 0; w < kWorkers; ++w) {
        sim::spawn([](sim::Simulation &s, dsa::MirroredDevice &device,
                      sim::MemorySpace &space, sim::Rng rng,
                      sim::Addr buffer, uint64_t nblocks,
                      sim::Tick end, Point &point,
                      sim::Sampler &rd,
                      sim::Sampler &wr) -> sim::Task<> {
            std::vector<uint64_t> words(kIoBytes / 8);
            while (s.now() < end) {
                const uint64_t offset =
                    kSpanBase +
                    rng.uniformInt(0, nblocks - 1) * kIoBytes;
                const bool is_read = rng.bernoulli(0.75);
                const sim::Tick started = s.now();
                bool ok;
                if (is_read) {
                    ok = co_await device.read(offset, kIoBytes,
                                              buffer);
                    rd.add(static_cast<double>(s.now() - started));
                    if (ok && !verifyBlock(space, buffer, offset,
                                           kIoBytes)) {
                        ++point.undetected;
                    }
                } else {
                    stampBlock(words, offset);
                    space.write(buffer, words.data(), kIoBytes);
                    ok = co_await device.write(offset, kIoBytes,
                                               buffer);
                    wr.add(static_cast<double>(s.now() - started));
                }
                (ok ? point.completions : point.failures)++;
            }
        }(sim, mirror, mem, sim.forkRng(), bufs[w], blocks, t_end,
          out, read_lat, write_lat));
    }

    // Foreground reader over the rotten region: retries each damaged
    // block until the mirror's read path has repaired it (round-robin
    // legs mean a retry soon lands on the damaged replica). Races
    // benignly with the scrubber — whoever reads the rotten leg
    // first triggers the repair.
    const sim::Addr probe_buf = mem.allocate(kIoBytes);
    sim::spawn([](sim::Simulation &s, dsa::MirroredDevice &device,
                  const disk::Volume *oracle,
                  std::vector<uint64_t> offsets, sim::Addr buffer,
                  sim::Tick deadline) -> sim::Task<> {
        for (uint64_t off : offsets) {
            int attempts = 0;
            while (oracle->corrupt(off, kIoBytes) &&
                   s.now() < deadline) {
                co_await device.read(off, kIoBytes, buffer);
                if (++attempts % 4 == 0)
                    co_await s.sleep(sim::msecs(5));
            }
        }
    }(sim, mirror, vol0, latent_offsets, probe_buf,
      t_end + times.drain / 2));

    sim.runUntil(t_end);
    bed.faults().setCorruptRate(0.0);
    sim.runUntil(t_end + times.drain);

    // --- Harvest. ---
    out.read_us = read_lat.mean() / 1e3;
    out.write_us = write_lat.mean() / 1e3;
    out.injected_wire = bed.faults().corruptedCount();
    out.injected_latent = bed.faults().latentErrorCount();
    for (auto &client : bed.clients()) {
        out.client_digest_mismatches += client->digestMismatchCount();
    }
    for (auto &server : bed.servers()) {
        out.server_digest_mismatches += server->digestMismatchCount();
        out.server_bad_requests += server->badRequestCount();
        out.verify_failures += server->integrityErrorCount();
    }
    out.repairs = mirror.integrityRepairCount();
    out.unrecoverable = mirror.unrecoverableCount();
    out.scrubbed_bytes = mirror.scrubbedBytes();
    const uint64_t rotten_span =
        latent_offsets.back() + kIoBytes;
    out.latent_clean = !vol0->corrupt(0, rotten_span) &&
                       !vol1->corrupt(0, rotten_span);
    if (attach_metrics)
        out.metrics_json = sim.metrics().toJson();

    std::printf("rate %.0e: %.0f io/s, %llu undetected, "
                "%llu wire injected, %llu+%llu+%llu detected, "
                "%llu latent -> %llu repairs, clean=%s\n",
                rate, static_cast<double>(out.completions) / run_s,
                static_cast<unsigned long long>(out.undetected),
                static_cast<unsigned long long>(out.injected_wire),
                static_cast<unsigned long long>(
                    out.client_digest_mismatches),
                static_cast<unsigned long long>(
                    out.server_digest_mismatches),
                static_cast<unsigned long long>(
                    out.server_bad_requests),
                static_cast<unsigned long long>(out.injected_latent),
                static_cast<unsigned long long>(out.repairs),
                out.latent_clean ? "yes" : "NO");

    mem.free(probe_buf);
    for (sim::Addr buf : bufs)
        mem.free(buf);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_integrity", argc, argv);

    const RunTimes times =
        reporter.quick()
            ? RunTimes{sim::msecs(2000), sim::msecs(800),
                       sim::msecs(400)}
            : RunTimes{sim::msecs(4000), sim::msecs(1500),
                       sim::msecs(500)};
    const uint64_t span =
        reporter.quick() ? 4 * util::kMiB : 8 * util::kMiB;
    const std::vector<double> rates =
        reporter.quick() ? std::vector<double>{0.0, 1e-3}
                         : std::vector<double>{0.0, 1e-4, 1e-3, 1e-2};

    std::printf("Ablation A8: integrity under corruption injection "
                "(2-node mirror, cDSA, %d workers, 8K stamped mix)\n",
                kWorkers);

    std::vector<Point> points;
    for (size_t i = 0; i < rates.size(); ++i) {
        Point point;
        if (!runPoint(rates[i], times, span,
                      /*attach_metrics=*/i + 1 == rates.size(),
                      point)) {
            return 1;
        }
        points.push_back(std::move(point));
    }

    const double run_s = static_cast<double>(times.run) / 1e9;
    util::TextTable table({"rate", "iops", "failed", "undetected",
                           "read(us)", "write(us)", "wire_inj",
                           "detected", "latent", "repairs",
                           "clean"});
    bool accept = true;
    for (const Point &p : points) {
        const uint64_t detected = p.client_digest_mismatches +
                                  p.server_digest_mismatches +
                                  p.server_bad_requests;
        const double iops =
            static_cast<double>(p.completions) / run_s;
        table.addRow(
            {util::TextTable::num(p.rate, 4),
             util::TextTable::num(iops, 0),
             util::TextTable::num(static_cast<int64_t>(p.failures)),
             util::TextTable::num(
                 static_cast<int64_t>(p.undetected)),
             util::TextTable::num(p.read_us, 1),
             util::TextTable::num(p.write_us, 1),
             util::TextTable::num(
                 static_cast<int64_t>(p.injected_wire)),
             util::TextTable::num(static_cast<int64_t>(detected)),
             util::TextTable::num(
                 static_cast<int64_t>(p.injected_latent)),
             util::TextTable::num(static_cast<int64_t>(p.repairs)),
             p.latent_clean ? "yes" : "NO"});
        reporter.beginRow();
        reporter.col("corrupt_rate", p.rate);
        reporter.col("iops", iops);
        reporter.col("failed_ios", static_cast<int64_t>(p.failures));
        reporter.col("undetected_corruptions",
                     static_cast<int64_t>(p.undetected));
        reporter.col("read_us", p.read_us);
        reporter.col("write_us", p.write_us);
        reporter.col("injected_wire",
                     static_cast<int64_t>(p.injected_wire));
        reporter.col("injected_latent",
                     static_cast<int64_t>(p.injected_latent));
        reporter.col("client_digest_mismatches",
                     static_cast<int64_t>(
                         p.client_digest_mismatches));
        reporter.col("server_digest_mismatches",
                     static_cast<int64_t>(
                         p.server_digest_mismatches));
        reporter.col("server_bad_requests",
                     static_cast<int64_t>(p.server_bad_requests));
        reporter.col("verify_on_read_hits",
                     static_cast<int64_t>(p.verify_failures));
        reporter.col("mirror_repairs",
                     static_cast<int64_t>(p.repairs));
        reporter.col("unrecoverable",
                     static_cast<int64_t>(p.unrecoverable));
        reporter.col("scrubbed_bytes",
                     static_cast<int64_t>(p.scrubbed_bytes));
        reporter.col("latent_clean",
                     static_cast<int64_t>(p.latent_clean ? 1 : 0));

        // Acceptance: never an undetected corrupt block or data
        // loss; every latent error repaired; and at injection rates
        // of 1e-3+ the detection machinery visibly fired.
        accept = accept && p.undetected == 0 && p.unrecoverable == 0;
        accept = accept && p.latent_clean && p.repairs >= 1;
        if (p.rate >= 1e-3)
            accept = accept && p.injected_wire > 0 && detected > 0;
    }
    table.print();

    const Point &base = points.front();
    const Point &worst = points.back();
    std::printf("\ncheck: zero undetected corruptions, all latent "
                "errors repaired, detection fired at 1e-3+: %s\n",
                accept ? "yes" : "NO");
    std::printf("digest overhead at rate 0: read %.1f us, write "
                "%.1f us; at worst rate: read %.1f us, write %.1f "
                "us\n",
                base.read_us, base.write_us, worst.read_us,
                worst.write_us);

    reporter.note("shape",
                  "goodput degrades gracefully with corruption rate; "
                  "every injected fault is detected (digest or "
                  "verify-on-read) and repaired (retransmit or "
                  "mirror rewrite); undetected corruptions are "
                  "always zero");
    reporter.note("latent_injected_per_point",
                  std::to_string(points.front().injected_latent));
    reporter.note("baseline_read_us",
                  std::to_string(base.read_us));
    reporter.note("baseline_write_us",
                  std::to_string(base.write_us));
    if (!points.back().metrics_json.empty())
        reporter.attachMetricsJson(points.back().metrics_json);

    const bool wrote = reporter.write();
    return (wrote && accept) ? 0 : 1;
}
