/**
 * @file
 * Ablation A3: cDSA completion-flag poll interval.
 *
 * Section 3.2: the application polls its completion flags; the
 * interval trades detection latency (and hence response time)
 * against polling CPU. Sweeping it on the mid-size TPC-C run shows
 * the knee the paper's design sits on.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Ablation A3: cDSA poll interval (mid-size "
                "TPC-C)\n\n");
    util::TextTable table({"interval(us)", "tpmC(norm)",
                           "DSA share%", "txn lat(ms)"});

    double base = 0;
    for (const int interval_us : {5, 10, 25, 50, 100, 250}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Cdsa;
        config.window = sim::msecs(800);
        config.poll_interval = sim::usecs(interval_us);
        const TpccRunResult result = runTpcc(config);
        if (base == 0)
            base = result.oltp.tpmc;
        table.addRow(
            {util::TextTable::num(
                 static_cast<int64_t>(interval_us)),
             util::TextTable::num(result.oltp.tpmc / base * 100, 1),
             util::TextTable::num(
                 result.oltp.cpu_breakdown[static_cast<size_t>(
                     osmodel::CpuCat::Dsa)] /
                     std::max(result.oltp.cpu_utilization, 1e-9) *
                     100,
                 1),
             util::TextTable::num(
                 result.oltp.mean_txn_latency_us / 1e3, 1)});
    }
    table.print();
    std::printf("\nshape: very short intervals burn DSA CPU; very "
                "long ones add detection latency\n");
    return 0;
}
