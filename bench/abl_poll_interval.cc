/**
 * @file
 * Ablation A3: cDSA completion-flag poll interval.
 *
 * Section 3.2: the application polls its completion flags; the
 * interval trades detection latency (and hence response time)
 * against polling CPU. Sweeping it on the mid-size TPC-C run shows
 * the knee the paper's design sits on.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_poll_interval", argc, argv);

    std::printf("Ablation A3: cDSA poll interval (mid-size "
                "TPC-C)\n\n");
    util::TextTable table({"interval(us)", "tpmC(norm)",
                           "DSA share%", "txn lat(ms)"});

    double base = 0;
    std::string last_metrics;
    for (const int interval_us : {5, 10, 25, 50, 100, 250}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Cdsa;
        config.window = sim::msecs(800);
        config.poll_interval = sim::usecs(interval_us);
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        if (base == 0)
            base = result.oltp.tpmc;
        const double dsa_share =
            result.oltp.cpu_breakdown[static_cast<size_t>(
                osmodel::CpuCat::Dsa)] /
            std::max(result.oltp.cpu_utilization, 1e-9) * 100;
        table.addRow(
            {util::TextTable::num(
                 static_cast<int64_t>(interval_us)),
             util::TextTable::num(result.oltp.tpmc / base * 100, 1),
             util::TextTable::num(dsa_share, 1),
             util::TextTable::num(
                 result.oltp.mean_txn_latency_us / 1e3, 1)});
        reporter.beginRow();
        reporter.col("interval_us",
                     static_cast<int64_t>(interval_us));
        reporter.col("tpmc_norm", result.oltp.tpmc / base * 100);
        reporter.col("dsa_share_pct", dsa_share);
        reporter.col("txn_lat_ms",
                     result.oltp.mean_txn_latency_us / 1e3);
        last_metrics = result.metrics_json;
    }
    table.print();
    std::printf("\nshape: very short intervals burn DSA CPU; very "
                "long ones add detection latency\n");
    reporter.note("shape", "very short intervals burn DSA CPU; very "
                           "long ones add detection latency");
    reporter.attachMetricsJson(std::move(last_metrics));
    return reporter.write() ? 0 : 1;
}
