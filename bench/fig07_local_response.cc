/**
 * @file
 * Figure 7: "V3 and local read and write response time (one
 * outstanding request)" — server cache off, random I/O, request
 * sizes 512 B - 128 KB.
 *
 * Expected shape: V3 within ~3% of local below 64 KB; ~10% slower at
 * 128 KB (extra network transfer; the 128 KB transfer needs three VI
 * packets).
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

void
sweep(util::BenchReporter &reporter, bool is_read, const char *label)
{
    const int iters = reporter.quick() ? 20 : 120;
    std::printf("\n(%s)\n", label);
    util::TextTable table({"size", "V3(ms)", "Local(ms)",
                           "V3 overhead", "V3 p99(ms)",
                           "Local p99(ms)"});

    MicroRig::Config v3_config;
    v3_config.backend = Backend::Kdsa;
    v3_config.cache_bytes = 0; // section 5.3: cache off
    MicroRig v3(v3_config);

    MicroRig::Config local_config;
    local_config.backend = Backend::Local;
    MicroRig local(local_config);

    for (const uint64_t size :
         {512ull, 2048ull, 8192ull, 32768ull, 131072ull}) {
        const auto rv = v3.measureLatency(size, is_read, iters, false);
        const auto rl =
            local.measureLatency(size, is_read, iters, false);
        char overhead[32];
        std::snprintf(overhead, sizeof(overhead), "%+.1f%%",
                      (rv.mean_us / rl.mean_us - 1) * 100);
        table.addRow({util::formatSize(size),
                      util::TextTable::num(rv.mean_us / 1e3, 2),
                      util::TextTable::num(rl.mean_us / 1e3, 2),
                      overhead,
                      util::TextTable::num(rv.p99_us / 1e3, 2),
                      util::TextTable::num(rl.p99_us / 1e3, 2)});
        reporter.beginRow();
        reporter.col("op", std::string(is_read ? "read" : "write"));
        reporter.col("size", static_cast<int64_t>(size));
        reporter.col("v3_ms", rv.mean_us / 1e3);
        reporter.col("local_ms", rl.mean_us / 1e3);
        reporter.col("overhead_pct",
                     (rv.mean_us / rl.mean_us - 1) * 100);
        reporter.col("v3_p50_ms", rv.p50_us / 1e3);
        reporter.col("v3_p95_ms", rv.p95_us / 1e3);
        reporter.col("v3_p99_ms", rv.p99_us / 1e3);
        reporter.col("local_p50_ms", rl.p50_us / 1e3);
        reporter.col("local_p95_ms", rl.p95_us / 1e3);
        reporter.col("local_p99_ms", rl.p99_us / 1e3);
    }
    table.print();
    if (!is_read)
        reporter.attachMetricsJson(v3.sim().metrics().toJson());
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig07", argc, argv);
    std::printf("Figure 7: V3 vs local response time, cache off, "
                "random, 1 outstanding\n");
    sweep(reporter, true, "a: Read");
    sweep(reporter, false, "b: Write");
    std::printf("\npaper anchors: <3%% overhead below 64K; ~10%% at "
                "128K\n");
    reporter.note("anchors",
                  "<3% overhead below 64K; ~10% at 128K");
    return reporter.write() ? 0 : 1;
}
