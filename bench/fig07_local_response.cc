/**
 * @file
 * Figure 7: "V3 and local read and write response time (one
 * outstanding request)" — server cache off, random I/O, request
 * sizes 512 B - 128 KB.
 *
 * Expected shape: V3 within ~3% of local below 64 KB; ~10% slower at
 * 128 KB (extra network transfer; the 128 KB transfer needs three VI
 * packets).
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

void
sweep(bool is_read, const char *label)
{
    std::printf("\n(%s)\n", label);
    util::TextTable table(
        {"size", "V3(ms)", "Local(ms)", "V3 overhead"});

    MicroRig::Config v3_config;
    v3_config.backend = Backend::Kdsa;
    v3_config.cache_bytes = 0; // section 5.3: cache off
    MicroRig v3(v3_config);

    MicroRig::Config local_config;
    local_config.backend = Backend::Local;
    MicroRig local(local_config);

    for (const uint64_t size :
         {512ull, 2048ull, 8192ull, 32768ull, 131072ull}) {
        const auto rv = v3.measureLatency(size, is_read, 120, false);
        const auto rl =
            local.measureLatency(size, is_read, 120, false);
        char overhead[32];
        std::snprintf(overhead, sizeof(overhead), "%+.1f%%",
                      (rv.mean_us / rl.mean_us - 1) * 100);
        table.addRow({util::formatSize(size),
                      util::TextTable::num(rv.mean_us / 1e3, 2),
                      util::TextTable::num(rl.mean_us / 1e3, 2),
                      overhead});
    }
    table.print();
}

} // namespace

int
main()
{
    std::printf("Figure 7: V3 vs local response time, cache off, "
                "random, 1 outstanding\n");
    sweep(true, "a: Read");
    sweep(false, "b: Write");
    std::printf("\npaper anchors: <3%% overhead below 64K; ~10%% at "
                "128K\n");
    return 0;
}
