/**
 * @file
 * Figure 14: "CPU utilization breakdown for TPC-C for the mid-size
 * configuration."
 *
 * Paper anchors: same shape as Figure 11 but with kernel and lock
 * overheads "much less pronounced"; cDSA's database (SQL) share
 * reaches ~60%.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Figure 14: CPU utilization breakdown, TPC-C "
                "mid-size configuration (%% of busy CPU)\n\n");
    util::TextTable table({"backend", "SQL", "OS Kernel", "Lock",
                           "DSA", "VI", "Other", "busy%"});

    for (const Backend backend :
         {Backend::Kdsa, Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = backend;
        const TpccRunResult result = runTpcc(config);
        std::vector<std::string> row = {backendName(backend)};
        for (size_t c = 0; c < osmodel::kCpuCatCount; ++c) {
            row.push_back(util::TextTable::num(
                result.oltp.cpu_breakdown[c] /
                    std::max(result.oltp.cpu_utilization, 1e-9) *
                    100,
                1));
        }
        row.push_back(util::TextTable::num(
            result.oltp.cpu_utilization * 100, 1));
        table.addRow(row);
    }
    table.print();
    std::printf("\npaper anchors: cDSA SQL ~60%%; kernel+lock less "
                "pronounced than the large configuration\n");
    return 0;
}
