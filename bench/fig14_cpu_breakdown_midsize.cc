/**
 * @file
 * Figure 14: "CPU utilization breakdown for TPC-C for the mid-size
 * configuration."
 *
 * Paper anchors: same shape as Figure 11 but with kernel and lock
 * overheads "much less pronounced"; cDSA's database (SQL) share
 * reaches ~60%.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig14", argc, argv);

    std::printf("Figure 14: CPU utilization breakdown, TPC-C "
                "mid-size configuration (%% of busy CPU)\n\n");
    util::TextTable table({"backend", "SQL", "OS Kernel", "Lock",
                           "DSA", "VI", "Other", "busy%"});

    const char *cat_keys[] = {"sql_pct",  "kernel_pct", "lock_pct",
                              "dsa_pct",  "vi_pct",     "other_pct"};

    for (const Backend backend :
         {Backend::Kdsa, Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = backend;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        std::vector<std::string> row = {backendName(backend)};
        reporter.beginRow();
        reporter.col("backend", std::string(backendName(backend)));
        for (size_t c = 0; c < osmodel::kCpuCatCount; ++c) {
            const double share =
                result.oltp.cpu_breakdown[c] /
                std::max(result.oltp.cpu_utilization, 1e-9) * 100;
            row.push_back(util::TextTable::num(share, 1));
            reporter.col(cat_keys[c], share);
        }
        row.push_back(util::TextTable::num(
            result.oltp.cpu_utilization * 100, 1));
        reporter.col("busy_pct", result.oltp.cpu_utilization * 100);
        table.addRow(row);
        if (backend == Backend::Cdsa)
            reporter.attachMetricsJson(result.metrics_json);
    }
    table.print();
    std::printf("\npaper anchors: cDSA SQL ~60%%; kernel+lock less "
                "pronounced than the large configuration\n");
    reporter.note("anchors", "cDSA SQL ~60%; kernel+lock less "
                             "pronounced than the large "
                             "configuration");
    return reporter.write() ? 0 : 1;
}
