/**
 * @file
 * Simulator self-timing: how fast is the event loop itself?
 *
 * Every other bench measures the *modeled* system; this one measures
 * the harness. It times three fixed-seed profiles and reports raw
 * events/sec and wall-seconds per simulated-second, so simulator
 * performance becomes a tracked BENCH_selftime.json trajectory
 * instead of folklore (ROADMAP: "Simulator speed overhaul for
 * million-client runs").
 *
 * Profiles:
 *  - core:  a pure event-queue churn — actors rescheduling
 *    themselves at pseudo-random near-future delays, zero-delay
 *    continuation chains, final-band arbitration events, and a
 *    cancelled-timer slice. No model code: this isolates schedule/
 *    fire/cancel cost.
 *  - fig10: the full-scale large-configuration TPC-C run (cDSA),
 *    the heaviest workload in the figure set.
 *  - fig13: the mid-size TPC-C run (cDSA).
 *
 * Wall-clock use is the whole point here, so the determinism rule is
 * waived file-wide (the *simulated* results of the profiles stay
 * seed-deterministic; only the wall timings vary run to run).
 * Compare two artifacts with tools/bench_diff.
 */

// simlint:allow-file(wall-clock: self-timing bench measures real elapsed time)
// simlint:allow-file(banned-header: chrono is the wall clock this bench exists to read)

#include <chrono>
#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ProfileResult
{
    uint64_t events = 0;
    double sim_s = 0;
    double wall_s = 0;
};

/**
 * Pure event-loop churn at a fixed seed: kActors self-rescheduling
 * actors with near-future delays (the ladder's home turf), each
 * spawning a zero-delay continuation and a final-band arbitration
 * event per firing, plus a cancelled retransmit-style timer every
 * 16th firing — the schedule/fire/cancel mix the model code
 * produces, minus the model.
 */
ProfileResult
runCore(uint64_t target_events)
{
    constexpr int kActors = 64;
    sim::Simulation sim(/*seed=*/42);
    sim::Rng rng = sim.forkRng();
    uint64_t remaining = target_events;

    struct Actor
    {
        sim::Simulation &sim;
        sim::Rng rng;
        uint64_t *remaining;
        uint64_t fires = 0;
        sim::EventQueue::Handle timer;

        void
        step()
        {
            if (*remaining == 0)
                return;
            --*remaining;
            ++fires;
            // Zero-delay continuation (intra-operation chain).
            sim.queue().schedule(0, [] {});
            // Final-band arbitration point, like a disk pick.
            if ((fires & 7) == 0)
                sim.queue().scheduleFinal([] {});
            // Retransmit-style timer: armed, then cancelled by the
            // "response" long before it fires.
            if ((fires & 15) == 0) {
                timer.cancel();
                timer = sim.queue().scheduleCancelable(
                    sim::msecs(100), [] {});
            }
            const sim::Tick d = sim::nsecs(
                100 + static_cast<sim::Tick>(rng.next() % 50000));
            sim.queue().schedule(d, [this] { step(); });
        }
    };

    std::vector<std::unique_ptr<Actor>> actors;
    for (int a = 0; a < kActors; ++a) {
        actors.push_back(std::unique_ptr<Actor>(
            new Actor{sim, rng.fork(), &remaining, 0, {}}));
    }
    const double t0 = wallNow();
    for (auto &actor : actors)
        actor->step();
    sim.run();
    const double t1 = wallNow();

    ProfileResult out;
    out.events = sim.queue().firedCount();
    out.sim_s = sim::toSecs(sim.now());
    out.wall_s = t1 - t0;
    return out;
}

ProfileResult
runTpccProfile(Platform platform, bool quick)
{
    TpccRunConfig config;
    config.platform = platform;
    config.backend = Backend::Cdsa;
    config.seed = 1;
    if (quick) {
        config.warmup = sim::msecs(60);
        config.window = sim::msecs(250);
    }
    const double t0 = wallNow();
    const TpccRunResult result = runTpcc(config);
    const double t1 = wallNow();

    ProfileResult out;
    out.events = result.events_fired;
    out.sim_s = sim::toSecs(result.sim_elapsed);
    out.wall_s = t1 - t0;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("selftime", argc, argv);

    std::printf("Simulator self-timing (events/sec, "
                "wall-seconds per simulated-second)\n\n");
    util::TextTable table({"profile", "events", "sim_s", "wall_s",
                           "events/s", "wall/sim"});

    struct Row
    {
        const char *name;
        ProfileResult r;
    };
    const uint64_t core_events =
        reporter.quick() ? 200 * 1000 : 8 * 1000 * 1000;
    Row rows[] = {
        {"core", runCore(core_events)},
        {"fig10", runTpccProfile(Platform::Large, reporter.quick())},
        {"fig13", runTpccProfile(Platform::MidSize,
                                 reporter.quick())},
    };

    for (const Row &row : rows) {
        const double eps =
            row.r.wall_s > 0
                ? static_cast<double>(row.r.events) / row.r.wall_s
                : 0;
        const double wps =
            row.r.sim_s > 0 ? row.r.wall_s / row.r.sim_s : 0;
        table.addRow({row.name, std::to_string(row.r.events),
                      util::TextTable::num(row.r.sim_s, 3),
                      util::TextTable::num(row.r.wall_s, 3),
                      util::TextTable::num(eps / 1e6, 3) + "M",
                      util::TextTable::num(wps, 3)});
        reporter.beginRow();
        reporter.col("profile", std::string(row.name));
        reporter.col("events", row.r.events);
        reporter.col("sim_s", row.r.sim_s);
        reporter.col("wall_s", row.r.wall_s);
        reporter.col("events_per_sec", eps);
        reporter.col("wall_per_sim_sec", wps);
    }
    table.print();
    reporter.note("workloads",
                  "core=synthetic event churn; fig10/fig13 = "
                  "cDSA TPC-C profiles at seed 1");
    return reporter.write() ? 0 : 1;
}
