/**
 * @file
 * Rival transport, latency: the Figure 3 request-size sweep re-run
 * head-to-head against software iSCSI over TCP (DESIGN.md §11).
 *
 * Single outstanding cached read, 512 B - 16 KB, on identical
 * storage nodes; the only variable is the transport. Two columns per
 * backend: end-to-end latency and host CPU busy per I/O — the
 * paper's core claim is that the second gap (kernel transport
 * overhead: interrupts, socket copies, checksums, syscalls) is what
 * VI removes, and it shows even when wire latency is comparable.
 *
 * Expected shape: iSCSI latency sits above every DSA flavor and
 * grows faster with size (per-segment costs); iSCSI host CPU per I/O
 * is a multiple of kDSA's and an order of magnitude over cDSA's.
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("rival_latency", argc, argv);
    const int iters = reporter.quick() ? 12 : 80;

    std::printf("Rival transport: cached read latency (ms) and host "
                "CPU per I/O (us), VI backends vs iSCSI/TCP\n\n");

    const uint64_t sizes[] = {512, 1024, 2048, 4096, 8192, 16384};
    const Backend backends[] = {Backend::Kdsa, Backend::Wdsa,
                                Backend::Cdsa, Backend::Iscsi};

    struct Column
    {
        std::vector<double> ms;
        std::vector<double> cpu_us;
    };
    Column columns[std::size(backends)];

    for (size_t c = 0; c < std::size(backends); ++c) {
        MicroRig::Config config;
        config.backend = backends[c];
        MicroRig rig(config);
        for (const uint64_t size : sizes) {
            const auto r = rig.measureLatency(size, true, iters, true);
            columns[c].ms.push_back(r.mean_us / 1e3);
            columns[c].cpu_us.push_back(r.cpu_overhead_us);
        }
        // Artifact metrics: the iSCSI rig, whose registry carries the
        // per-layer iscsi.*.cpu.*_ns attribution counters.
        if (backends[c] == Backend::Iscsi)
            reporter.attachMetricsJson(rig.sim().metrics().toJson());
    }

    util::TextTable table({"size", "kDSA ms", "wDSA ms", "cDSA ms",
                           "iSCSI ms", "kDSA cpu", "cDSA cpu",
                           "iSCSI cpu"});
    for (size_t i = 0; i < std::size(sizes); ++i) {
        table.addRow({util::formatSize(sizes[i]),
                      util::TextTable::num(columns[0].ms[i], 3),
                      util::TextTable::num(columns[1].ms[i], 3),
                      util::TextTable::num(columns[2].ms[i], 3),
                      util::TextTable::num(columns[3].ms[i], 3),
                      util::TextTable::num(columns[0].cpu_us[i], 1),
                      util::TextTable::num(columns[2].cpu_us[i], 1),
                      util::TextTable::num(columns[3].cpu_us[i], 1)});
        reporter.beginRow();
        reporter.col("size", static_cast<int64_t>(sizes[i]));
        reporter.col("kdsa_ms", columns[0].ms[i]);
        reporter.col("wdsa_ms", columns[1].ms[i]);
        reporter.col("cdsa_ms", columns[2].ms[i]);
        reporter.col("iscsi_ms", columns[3].ms[i]);
        reporter.col("kdsa_cpu_us", columns[0].cpu_us[i]);
        reporter.col("wdsa_cpu_us", columns[1].cpu_us[i]);
        reporter.col("cdsa_cpu_us", columns[2].cpu_us[i]);
        reporter.col("iscsi_cpu_us", columns[3].cpu_us[i]);
    }
    table.print();

    // The headline check: at every size the kernel transport costs
    // more host CPU than any VI flavor.
    bool cpu_gap = true;
    for (size_t i = 0; i < std::size(sizes); ++i) {
        for (size_t c = 0; c + 1 < std::size(backends); ++c)
            cpu_gap = cpu_gap &&
                      columns[3].cpu_us[i] > columns[c].cpu_us[i];
    }
    std::printf("\ncheck: iSCSI host CPU/IO above every DSA flavor "
                "at every size: %s\n", cpu_gap ? "yes" : "NO");
    std::printf("paper anchors: VI transport removes per-I/O kernel "
                "work; iSCSI pays interrupts + copies + checksums "
                "per segment\n");
    reporter.note("anchors",
                  "iSCSI latency above all DSA flavors, host CPU/IO "
                  "a multiple of kDSA and an order over cDSA");
    const bool wrote = reporter.write();
    return (wrote && cpu_gap) ? 0 : 1;
}
