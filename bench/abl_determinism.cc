/**
 * @file
 * Ablation A9: event-tie shuffle race detection (DESIGN.md §8).
 *
 * The whole BENCH_*.json trajectory rests on the simulator's promise
 * that fault-free runs are bit-identical — and that no result
 * depends on the *unspecified* ordering of events that land on the
 * same tick. This harness turns that promise into a checkable
 * property: it runs a mixed workload — kDSA, wDSA, and a mirrored
 * cDSA testbed under corruption plus a node crash/restart — with
 * sim::EventQueue tie-shuffle mode on, which permutes the ordering
 * of independently scheduled same-tick events by a seed-derived
 * rank (the sim-domain analog of a thread schedule fuzzer).
 *
 * The CI contract (ctest `abl_determinism_diff`): two runs under
 * different `--tie-seed` values must produce byte-identical
 * artifacts, full MetricRegistry snapshots included. Any state
 * whose value leaks the tiebreak — a hash-order iteration, a
 * same-tick arrival race that is not commutative — shows up as a
 * byte diff here instead of silently skewing a future figure.
 *
 * The tie seed is deliberately NOT recorded in the artifact: the
 * artifact describes the simulated system, and the point is that
 * the tiebreak must not be observable in it.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenarios/testbed.hh"
#include "util/bench_reporter.hh"
#include "util/crc32c.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

struct RunTimes
{
    sim::Tick run;   ///< measured closed-loop window
    sim::Tick drain; ///< settle window (retransmits, resync)
};

struct Phase
{
    const char *name;
    Backend backend;
    bool mirrored;
    bool faults; ///< corruption + node crash/restart mid-run
};

struct PhaseResult
{
    uint64_t completions = 0;
    uint64_t failures = 0;
    uint64_t events = 0;
    uint64_t same_tick = 0;
    std::string metrics_json;
};

constexpr uint64_t kIoBytes = 8192;
constexpr int kWorkers = 6;

bool
runPhase(const Phase &phase, const RunTimes &times, uint64_t span,
         uint64_t tie_seed, PhaseResult &out)
{
    dsa::DsaConfig dsa_config;
    dsa_config.retransmit_timeout = sim::msecs(100);
    dsa_config.max_retransmits = 8;
    dsa_config.reconnect_delay = sim::msecs(2);
    dsa_config.max_reconnect_attempts = 3;
    dsa_config.connect_timeout = sim::msecs(8);

    HostParams host_params = HostParams::midSize();
    StorageParams storage_params;
    storage_params.v3_nodes = 2;
    storage_params.disks_per_node = 4;
    storage_params.disk_spec = disk::DiskSpec::scsi10k();
    storage_params.cache_bytes_per_node = 4 * util::kMiB;
    storage_params.mirrored = phase.mirrored;

    Testbed bed(phase.backend, host_params, storage_params,
                dsa_config, /*seed=*/7);
    sim::Simulation &sim = bed.sim();
    // Shuffle from the very first event: connect handshakes and
    // fault-injection schedules race under the tiebreak too.
    sim.queue().setTieShuffle(tie_seed);

    if (!bed.connectAll()) {
        std::fprintf(stderr,
                     "abl_determinism: %s connect failed\n",
                     phase.name);
        return false;
    }
    bed.resetStats();

    sim::MemorySpace &mem = bed.host().memory();
    dsa::BlockDevice &device = bed.device();
    const uint64_t blocks = span / kIoBytes;
    const sim::Tick t_end = sim.now() + times.run;

    if (phase.faults) {
        bed.faults().setCorruptRate(5e-4);
        bed.faults().scheduleNodeOutage(sim.now() + times.run / 4,
                                        sim.now() + times.run / 2,
                                        *bed.servers().front());
    }

    std::vector<sim::Addr> bufs;
    for (int w = 0; w < kWorkers; ++w)
        bufs.push_back(mem.allocate(kIoBytes));

    for (int w = 0; w < kWorkers; ++w) {
        sim::spawn([](sim::Simulation &s, dsa::BlockDevice &dev,
                      sim::Rng rng, sim::Addr buffer,
                      uint64_t nblocks, sim::Tick start_stagger,
                      sim::Tick end,
                      PhaseResult &result) -> sim::Task<> {
            co_await s.sleep(start_stagger);
            while (s.now() < end) {
                const uint64_t offset =
                    rng.uniformInt(0, nblocks - 1) * kIoBytes;
                bool ok;
                if (rng.bernoulli(0.7))
                    ok = co_await dev.read(offset, kIoBytes,
                                           buffer);
                else
                    ok = co_await dev.write(offset, kIoBytes,
                                            buffer);
                (ok ? result.completions : result.failures)++;
            }
        }(sim, device, sim.forkRng(), bufs[w],
          blocks, sim::usecs(17) * (w + 1), t_end, out));
    }

    sim.runUntil(t_end);
    if (phase.faults)
        bed.faults().setCorruptRate(0.0);
    sim.runUntil(t_end + times.drain);

    out.events = sim.queue().firedCount();
    out.same_tick = sim.queue().sameTickFired();
    out.metrics_json = sim.metrics().toJson();
    for (sim::Addr buf : bufs)
        mem.free(buf);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_determinism", argc, argv);

    uint64_t tie_seed = 1;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--tie-seed") == 0)
            tie_seed = std::strtoull(argv[i + 1], nullptr, 0);
    }

    const RunTimes times =
        reporter.quick() ? RunTimes{sim::msecs(300), sim::msecs(150)}
                         : RunTimes{sim::msecs(1200), sim::msecs(300)};
    const uint64_t span =
        reporter.quick() ? 4 * util::kMiB : 8 * util::kMiB;

    const std::vector<Phase> phases = {
        {"kdsa", Backend::Kdsa, /*mirrored=*/false, /*faults=*/false},
        {"wdsa", Backend::Wdsa, /*mirrored=*/false, /*faults=*/false},
        {"cdsa_mirror_faults", Backend::Cdsa, /*mirrored=*/true,
         /*faults=*/true},
    };

    std::printf("Ablation A9: tie-shuffle determinism "
                "(seed %llu, %d workers, 8K mix; artifact must be "
                "byte-identical across seeds)\n",
                static_cast<unsigned long long>(tie_seed), kWorkers);

    util::TextTable table(
        {"phase", "completions", "failed", "events", "same_tick",
         "metrics_crc32c"});
    bool any_io = true;
    uint64_t total_ties = 0;
    for (const Phase &phase : phases) {
        PhaseResult result;
        if (!runPhase(phase, times, span, tie_seed, result))
            return 1;
        const uint32_t digest =
            util::crc32c(result.metrics_json.data(),
                         result.metrics_json.size());
        table.addRow(
            {phase.name,
             util::TextTable::num(
                 static_cast<int64_t>(result.completions)),
             util::TextTable::num(
                 static_cast<int64_t>(result.failures)),
             util::TextTable::num(
                 static_cast<int64_t>(result.events)),
             util::TextTable::num(
                 static_cast<int64_t>(result.same_tick)),
             util::TextTable::num(static_cast<int64_t>(digest))});
        reporter.beginRow();
        reporter.col("phase", std::string(phase.name));
        reporter.col("completions",
                     static_cast<int64_t>(result.completions));
        reporter.col("failed_ios",
                     static_cast<int64_t>(result.failures));
        reporter.col("events_fired",
                     static_cast<int64_t>(result.events));
        // Invariant across shuffle seeds (a function of the multiset
        // of scheduled ticks), and evidence the run had same-tick
        // races for the shuffle to permute.
        reporter.col("same_tick_events",
                     static_cast<int64_t>(result.same_tick));
        reporter.col("metrics_crc32c",
                     static_cast<int64_t>(digest));
        // The full snapshot rides along so the byte-diff covers
        // every metric of every phase, not just the digest.
        reporter.note(std::string("metrics_") + phase.name,
                      result.metrics_json);
        any_io = any_io && result.completions > 0;
        total_ties += result.same_tick;
    }
    table.print();

    reporter.note("shape",
                  "columns and the attached per-phase metrics "
                  "snapshots are invariant under the tie-shuffle "
                  "seed; a diff between two seeds is a determinism "
                  "bug (same-tick ordering race)");

    // A shuffle with nothing to permute would make the diff test
    // vacuous; require that same-tick ties actually occurred.
    std::printf("check: every phase completed I/O: %s; same-tick "
                "ties to permute: %llu\n",
                any_io ? "yes" : "NO",
                static_cast<unsigned long long>(total_ties));
    const bool wrote = reporter.write();
    return (wrote && any_io && total_ties > 0) ? 0 : 1;
}
