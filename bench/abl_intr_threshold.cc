/**
 * @file
 * Ablation A2: kDSA interrupt-batching watermarks.
 *
 * Section 3.2's scheme disables completion interrupts above a high
 * watermark of outstanding I/Os and re-enables them below a low one.
 * This sweep shows interrupts taken and throughput across watermark
 * choices under a moderately loaded mid-size TPC-C run.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_intr_threshold", argc, argv);

    std::printf("Ablation A2: kDSA interrupt-batching watermarks "
                "(mid-size TPC-C)\n\n");
    util::TextTable table(
        {"high/low", "tpmC(norm)", "interrupts/s"});

    double base = 0;
    struct Mark
    {
        uint32_t high;
        uint32_t low;
    };
    std::string last_metrics;
    for (const Mark mark : {Mark{1, 0}, Mark{2, 1}, Mark{4, 2},
                            Mark{8, 4}, Mark{16, 8}, Mark{64, 32}}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Kdsa;
        config.window = sim::msecs(800);
        config.intr_high_watermark = mark.high;
        config.intr_low_watermark = mark.low;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        if (base == 0)
            base = result.oltp.tpmc;
        char label[32];
        std::snprintf(label, sizeof(label), "%u/%u", mark.high,
                      mark.low);
        const double intr_per_sec =
            static_cast<double>(result.host_interrupts) /
            sim::toSecs(config.warmup + config.window);
        table.addRow(
            {label,
             util::TextTable::num(result.oltp.tpmc / base * 100, 1),
             util::TextTable::num(
                 static_cast<int64_t>(intr_per_sec))});
        reporter.beginRow();
        reporter.col("high_watermark",
                     static_cast<int64_t>(mark.high));
        reporter.col("low_watermark",
                     static_cast<int64_t>(mark.low));
        reporter.col("tpmc_norm", result.oltp.tpmc / base * 100);
        reporter.col("intr_per_sec", intr_per_sec);
        last_metrics = result.metrics_json;
    }
    table.print();
    std::printf("\nshape: interrupts collapse once the high "
                "watermark drops below the typical outstanding "
                "count; tpmC is flat-to-rising as batching kicks "
                "in\n");
    reporter.note("shape", "interrupts collapse once the high "
                           "watermark drops below the typical "
                           "outstanding count; tpmC flat-to-rising "
                           "as batching kicks in");
    reporter.attachMetricsJson(std::move(last_metrics));
    return reporter.write() ? 0 : 1;
}
