/**
 * @file
 * Ablation A5: flow-control credit budget.
 *
 * DSA's credits bound the outstanding requests per connection (and
 * size the server's pre-posted receives). Too few credits throttle
 * the pipeline; beyond the concurrency the workload generates they
 * stop mattering.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_flow_credits", argc, argv);

    std::printf("Ablation A5: flow-control credits per connection "
                "(mid-size TPC-C, kDSA)\n\n");
    util::TextTable table(
        {"credits", "tpmC(norm)", "iops", "txn lat(ms)"});

    double base = 0;
    std::string last_metrics;
    for (const uint32_t credits : {2u, 4u, 8u, 16u, 32u, 64u}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Kdsa;
        config.window = sim::msecs(800);
        config.flow_credits = credits;
        if (reporter.quick()) {
            config.warmup = sim::msecs(60);
            config.window = sim::msecs(250);
        }
        const TpccRunResult result = runTpcc(config);
        if (base == 0)
            base = result.oltp.tpmc;
        table.addRow(
            {util::TextTable::num(static_cast<int64_t>(credits)),
             util::TextTable::num(result.oltp.tpmc / base * 100, 1),
             util::TextTable::num(result.oltp.io_per_second, 0),
             util::TextTable::num(
                 result.oltp.mean_txn_latency_us / 1e3, 1)});
        reporter.beginRow();
        reporter.col("credits", static_cast<int64_t>(credits));
        reporter.col("tpmc_norm", result.oltp.tpmc / base * 100);
        reporter.col("iops", result.oltp.io_per_second);
        reporter.col("txn_lat_ms",
                     result.oltp.mean_txn_latency_us / 1e3);
        last_metrics = result.metrics_json;
    }
    table.print();
    std::printf("\nshape: throughput rises with credits until the "
                "worker pool's concurrency is covered, then "
                "flattens\n");
    reporter.note("shape", "throughput rises with credits until the "
                           "worker pool's concurrency is covered, "
                           "then flattens");
    reporter.attachMetricsJson(std::move(last_metrics));
    return reporter.write() ? 0 : 1;
}
