/**
 * @file
 * Ablation A5: flow-control credit budget.
 *
 * DSA's credits bound the outstanding requests per connection (and
 * size the server's pre-posted receives). Too few credits throttle
 * the pipeline; beyond the concurrency the workload generates they
 * stop mattering.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Ablation A5: flow-control credits per connection "
                "(mid-size TPC-C, kDSA)\n\n");
    util::TextTable table(
        {"credits", "tpmC(norm)", "iops", "txn lat(ms)"});

    double base = 0;
    for (const uint32_t credits : {2u, 4u, 8u, 16u, 32u, 64u}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = Backend::Kdsa;
        config.window = sim::msecs(800);
        config.flow_credits = credits;
        const TpccRunResult result = runTpcc(config);
        if (base == 0)
            base = result.oltp.tpmc;
        table.addRow(
            {util::TextTable::num(static_cast<int64_t>(credits)),
             util::TextTable::num(result.oltp.tpmc / base * 100, 1),
             util::TextTable::num(result.oltp.io_per_second, 0),
             util::TextTable::num(
                 result.oltp.mean_txn_latency_us / 1e3, 1)});
    }
    table.print();
    std::printf("\nshape: throughput rises with credits until the "
                "worker pool's concurrency is covered, then "
                "flattens\n");
    return 0;
}
