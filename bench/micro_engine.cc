/**
 * @file
 * Ablation A6: simulator-engine micro-benchmarks (google-benchmark).
 *
 * Wall-clock performance of the hot engine paths: event scheduling,
 * coroutine switches, cache operations, and a full simulated I/O
 * round trip. These guard against regressions that would make the
 * TPC-C benches impractically slow.
 */

#include <benchmark/benchmark.h>

#include "osmodel/node.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "storage/mq_cache.hh"

using namespace v3sim;

namespace
{

void
BM_EventScheduleFire(benchmark::State &state)
{
    sim::EventQueue queue;
    int sink = 0;
    for (auto _ : state) {
        // simlint:allow(ref-capture-escape: run() drains the queue before sink dies)
        queue.schedule(100, [&sink] { ++sink; });
        queue.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventScheduleFire);

void
BM_EventQueueDepth1000(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue queue;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            // simlint:allow(ref-capture-escape: run() drains the queue before sink dies)
            queue.schedule(i * 7 % 997, [&sink] { ++sink; });
        queue.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueDepth1000);

void
BM_CoroutineSleepLoop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim::spawn([](sim::Simulation &s) -> sim::Task<> {
            for (int i = 0; i < 1000; ++i)
                co_await s.sleep(100);
        }(sim));
        sim.run();
    }
}
BENCHMARK(BM_CoroutineSleepLoop);

void
BM_CpuPoolAcquireRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        osmodel::Node node(
            sim, osmodel::NodeConfig{.name = "n", .cpus = 4});
        for (int w = 0; w < 8; ++w) {
            sim::spawn([](osmodel::Node &n) -> sim::Task<> {
                for (int i = 0; i < 100; ++i) {
                    osmodel::CpuLease lease =
                        co_await n.cpus().acquire();
                    co_await lease.run(sim::usecs(1),
                                       osmodel::CpuCat::Sql);
                    n.cpus().release();
                }
            }(node));
        }
        sim.run();
    }
}
BENCHMARK(BM_CpuPoolAcquireRun);

void
BM_MqCacheTouch(benchmark::State &state)
{
    sim::MemorySpace mem;
    storage::MqCache cache(mem, 8192, 4096);
    sim::Rng rng(5);
    for (auto _ : state) {
        const storage::CacheKey key{
            0, rng.uniformInt(0, 16383)};
        if (cache.lookupAndPin(key)) {
            cache.unpin(key);
        } else if (cache.insertAndPin(key)) {
            cache.unpin(key);
        }
    }
}
BENCHMARK(BM_MqCacheTouch);

} // namespace

BENCHMARK_MAIN();
