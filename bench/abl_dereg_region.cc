/**
 * @file
 * Ablation A1: batched-deregistration region size.
 *
 * The paper fixes the region at 1000 entries (4 MB of host memory,
 * section 3.1). This sweep shows the tradeoff the number encodes:
 * tiny regions approach per-I/O deregistration cost; huge regions
 * risk NIC-capacity pressure (forced flushes) because a region only
 * frees when *every* entry in it has completed.
 */

#include <cstdio>

#include "dsa/reg_cache.hh"
#include "sim/random.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"
#include "vi/memory_registry.hh"

using namespace v3sim;

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_dereg_region", argc, argv);
    const int kIos = reporter.quick() ? 100000 : 1000000;

    std::printf("Ablation A1: batched-dereg region size "
                "(%d simulated I/O completions)\n\n", kIos);
    util::TextTable table({"region", "dereg ops", "mean cost/IO(us)",
                           "forced flushes"});

    for (const uint32_t region :
         {1u, 16u, 128u, 1000u, 4096u, 16384u}) {
        vi::ViCosts costs;
        costs.max_registered_bytes = 64ull * util::kMiB;
        costs.max_table_entries = 32768;
        vi::MemoryRegistry registry(costs, region);
        dsa::RegCache cache(registry, /*pre_pinned=*/true,
                            /*batched=*/region > 1);

        sim::Rng rng(7);
        sim::Tick total_cost = 0;
        const int kOutstanding = 64;
        std::vector<vi::MemHandle> inflight;
        uint64_t next_addr = 1 << 20;
        for (int i = 0; i < kIos; ++i) {
            auto reg = cache.acquire(next_addr, 8192);
            next_addr += 16384;
            if (reg) {
                total_cost += reg->cost;
                inflight.push_back(reg->handle);
            }
            if (inflight.size() >= kOutstanding) {
                // Complete a random outstanding I/O.
                const size_t pick = rng.uniformInt(
                    0, inflight.size() - 1);
                total_cost += cache.release(inflight[pick]);
                inflight[pick] = inflight.back();
                inflight.pop_back();
            }
        }
        for (const auto &handle : inflight)
            total_cost += cache.release(handle);

        const int64_t dereg_ops = static_cast<int64_t>(
            registry.deregistrationCount() +
            registry.regionDeregCount());
        table.addRow(
            {util::TextTable::num(static_cast<int64_t>(region)),
             util::TextTable::num(dereg_ops),
             util::TextTable::num(
                 sim::toUsecs(total_cost) / kIos, 3),
             util::TextTable::num(static_cast<int64_t>(
                 cache.forcedFlushCount()))});
        reporter.beginRow();
        reporter.col("region", static_cast<int64_t>(region));
        reporter.col("dereg_ops", dereg_ops);
        reporter.col("mean_cost_per_io_us",
                     sim::toUsecs(total_cost) / kIos);
        reporter.col("forced_flushes", static_cast<int64_t>(
                                           cache.forcedFlushCount()));
    }
    table.print();
    std::printf("\nshape: cost/IO falls steeply then flattens near "
                "the paper's 1000-entry choice; oversized regions "
                "add capacity pressure\n");
    reporter.note("shape", "cost/IO falls steeply then flattens near "
                           "the paper's 1000-entry choice; oversized "
                           "regions add capacity pressure");
    return reporter.write() ? 0 : 1;
}
