/**
 * @file
 * Ablation A11: the clustered volume service under fire
 * (src/cluster; DESIGN.md §7.4).
 *
 * Turns the RAID-10 testbed into the full fault-tolerant volume
 * service — placement-metadata service with a lease-holding primary,
 * heartbeat failure detection, epoch-checked client routing — and
 * crashes whole storage boxes under TPC-C load. Three phases, each
 * on a fresh testbed:
 *
 *  - scripted: one data node fail-stops mid-run and returns; the
 *    goodput-through-crash curve must recover to >= 90% of the
 *    pre-crash rate after resync and readmission;
 *  - meta_primary: the box co-hosting the metadata primary
 *    fail-stops; the lease lapses, a new primary is elected, the
 *    epoch bumps and stale clients are redirected — while its data
 *    leg also fails over and comes back;
 *  - chaos: a seeded random crash/restart campaign over every box
 *    (one down at a time, so every shard keeps a survivor).
 *
 * Every phase wraps the volume in cluster::DurabilityAudit: each
 * write stamps a version through the real data path, and at quiesce
 * every touched block is read back from both replicas. The exit
 * code is the durability oracle — a single lost or foreign block
 * fails the bench. Columns and per-phase metric CRCs must be
 * invariant under --tie-seed (ctest abl_cluster_determinism_diff).
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/write_audit.hh"
#include "db/oltp_engine.hh"
#include "scenarios/testbed.hh"
#include "util/bench_reporter.hh"
#include "util/crc32c.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

enum class PhaseKind
{
    Scripted,
    MetaPrimary,
    Chaos,
};

const char *
phaseName(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::Scripted: return "scripted";
      case PhaseKind::MetaPrimary: return "meta_primary";
      case PhaseKind::Chaos: return "chaos";
    }
    return "?";
}

struct RunTimes
{
    sim::Tick window;
    sim::Tick bucket;
    sim::Tick crash;   ///< scripted/meta_primary outage start
    sim::Tick restart; ///< scripted/meta_primary outage end
};

struct Shape
{
    int nodes;
    int disks_per_node;
    int workers;
    uint32_t warehouses;
};

struct PhaseResult
{
    uint64_t committed = 0;
    std::vector<uint64_t> buckets;
    double pre_rate = 0;  ///< mean commits/bucket before the crash
    double post_rate = 0; ///< mean commits/bucket at the end
    double recovery = 0;  ///< post_rate / pre_rate
    uint64_t failovers = 0;
    uint64_t readmits = 0;
    uint64_t elections = 0;
    uint64_t epoch = 0;
    uint64_t stale_redirects = 0;
    uint64_t driven_failovers = 0;
    uint64_t chaos_outages = 0;
    bool whole = false;       ///< every mirror back to full health
    bool audit_clean = false; ///< the durability oracle
    uint64_t audited_blocks = 0;
    uint32_t metrics_crc = 0;
};

bool
runPhase(PhaseKind kind, const Shape &shape, const RunTimes &times,
         uint64_t tie_seed, PhaseResult &out)
{
    // Failure detection: heartbeats (2 ms probes, 3 misses) drive
    // proactive failover long before the DSA client burns its own
    // ~90 ms retransmit/reconnect budget against the dead box.
    dsa::DsaConfig dsa_config;
    dsa_config.retransmit_timeout = sim::msecs(20);
    dsa_config.max_retransmits = 2;
    dsa_config.reconnect_delay = sim::msecs(2);
    dsa_config.max_reconnect_attempts = 3;
    dsa_config.connect_timeout = sim::msecs(8);

    HostParams host_params = HostParams::midSize();
    StorageParams storage_params;
    storage_params.v3_nodes = shape.nodes;
    storage_params.disks_per_node = shape.disks_per_node;
    storage_params.cache_bytes_per_node = 8 * util::kMiB;
    storage_params.mirrored = true;
    storage_params.mirror.probe_interval = sim::msecs(5);
    storage_params.cluster = true;

    Testbed bed(Backend::Cdsa, host_params, storage_params,
                dsa_config, /*seed=*/7);
    sim::Simulation &sim = bed.sim();
    sim.queue().setTieShuffle(tie_seed);
    if (!bed.connectAll()) {
        std::fprintf(stderr, "abl_cluster: connect failed\n");
        return false;
    }

    // The audit interposes between the database and the directory:
    // every page write is stamped through the real data path.
    cluster::DurabilityAudit audit(sim, bed.host().memory(),
                                   bed.device(), /*block_size=*/8192);

    tpcc::TpccConfig tpcc_config;
    tpcc_config.warehouses = shape.warehouses;
    tpcc_config.bytes_per_warehouse = util::kMiB;
    tpcc::Workload workload(tpcc_config, audit.capacity(),
                            sim.forkRng());
    db::OltpConfig oltp_config;
    oltp_config.workers = shape.workers;
    oltp_config.polling_completion = true; // cDSA
    db::OltpEngine engine(bed.host(), audit, workload, oltp_config);

    // Fault schedule.
    std::vector<vi::NodeFaultTarget *> targets = bed.nodeTargets();
    switch (kind) {
      case PhaseKind::Scripted: {
        // A pure data box: the last node hosts no metadata replica.
        vi::NodeFaultTarget &victim = *targets.back();
        bed.faults().scheduleNodeOutage(times.crash, times.restart,
                                        victim);
        break;
      }
      case PhaseKind::MetaPrimary: {
        // Box 0 co-hosts the genesis metadata primary AND shard 0's
        // leg 0: one crash exercises re-election and failover.
        bed.faults().scheduleNodeOutage(times.crash, times.restart,
                                        *targets.front());
        break;
      }
      case PhaseKind::Chaos: {
        vi::FaultInjector::ChaosConfig chaos;
        chaos.begin = times.crash;
        chaos.end = times.window - sim::msecs(200);
        chaos.mean_gap = sim::msecs(120);
        chaos.min_down = sim::msecs(30);
        chaos.max_down = sim::msecs(80);
        bed.faults().startChaos(chaos, targets);
        break;
      }
    }

    // Drive the engine by hand: OltpEngine::run() ends with a full
    // Simulation::run() drain, which never terminates once the
    // cluster control loops are spawned. runUntil() only, throughout.
    engine.start();
    const size_t nbuckets =
        static_cast<size_t>(times.window / times.bucket);
    out.buckets.assign(nbuckets, 0);
    uint64_t last_committed = 0;
    for (size_t b = 0; b < nbuckets; ++b) {
        sim.runUntil(static_cast<sim::Tick>(b + 1) * times.bucket);
        const uint64_t committed = engine.committedCount();
        out.buckets[b] = committed - last_committed;
        last_committed = committed;
    }
    engine.stop();
    // Workers stop at their next transaction boundary; give the
    // in-flight transactions a fixed drain.
    sim.runUntil(sim.now() + sim::msecs(200));

    // Quiesce: every leg readmitted, every dirty log drained, under
    // a hard cap so a wedged resync cannot stall the harness.
    const sim::Tick quiesce_cap = sim.now() + sim::msecs(5000);
    auto mirrors_whole = [&bed] {
        for (const auto &mirror : bed.mirrors()) {
            if (mirror->degraded() || mirror->dirtyBytes() > 0)
                return false;
        }
        return true;
    };
    while (!mirrors_whole() && sim.now() < quiesce_cap)
        sim.runUntil(sim.now() + sim::msecs(10));
    out.whole = mirrors_whole();

    // Stop the control plane, then run the durability oracle: read
    // every touched block back from both replicas.
    bed.directory()->stopControl();
    bool audit_done = false, audit_clean = false;
    sim::spawn([](cluster::DurabilityAudit &a, bool &done,
                  bool &clean) -> sim::Task<> {
        clean = co_await a.audit(/*replica_count=*/2);
        done = true;
    }(audit, audit_done, audit_clean));
    const sim::Tick audit_cap = sim.now() + sim::msecs(20000);
    while (!audit_done && sim.now() < audit_cap)
        sim.runUntil(sim.now() + sim::msecs(50));
    out.audit_clean = audit_done && audit_clean;
    out.audited_blocks = audit.auditedBlocks();

    // Goodput recovery: mean commits/bucket fully before the crash
    // (skipping the cold-start bucket) vs the final two buckets.
    const size_t crash_bucket =
        static_cast<size_t>(times.crash / times.bucket);
    double pre = 0;
    size_t pre_n = 0;
    for (size_t b = 1; b < crash_bucket && b < nbuckets; ++b) {
        pre += static_cast<double>(out.buckets[b]);
        ++pre_n;
    }
    out.pre_rate = pre_n ? pre / static_cast<double>(pre_n) : 0;
    double post = 0;
    size_t post_n = 0;
    for (size_t b = nbuckets >= 2 ? nbuckets - 2 : 0; b < nbuckets;
         ++b) {
        post += static_cast<double>(out.buckets[b]);
        ++post_n;
    }
    out.post_rate = post_n ? post / static_cast<double>(post_n) : 0;
    out.recovery =
        out.pre_rate > 0 ? out.post_rate / out.pre_rate : 0;

    out.committed = engine.committedCount();
    for (const auto &mirror : bed.mirrors()) {
        out.failovers += mirror->failoverCount();
        out.readmits += mirror->readmitCount();
    }
    out.elections = bed.meta()->electionCount();
    out.epoch = bed.meta()->committedEpoch();
    out.stale_redirects = bed.directory()->staleRedirectCount();
    out.driven_failovers = bed.directory()->drivenFailoverCount();
    out.chaos_outages = bed.faults().chaosOutageCount();
    const std::string metrics = sim.metrics().toJson();
    out.metrics_crc = util::crc32c(metrics.data(), metrics.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("abl_cluster", argc, argv);

    uint64_t tie_seed = 1;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--tie-seed") == 0)
            tie_seed = std::strtoull(argv[i + 1], nullptr, 0);
    }

    const Shape shape = reporter.quick()
                            ? Shape{8, 4, 16, 48}
                            : Shape{16, 6, 32, 96};
    const RunTimes times =
        reporter.quick()
            ? RunTimes{sim::msecs(1200), sim::msecs(100),
                       sim::msecs(300), sim::msecs(600)}
            : RunTimes{sim::msecs(2400), sim::msecs(100),
                       sim::msecs(600), sim::msecs(1200)};

    std::printf("Ablation A11: clustered volume service under "
                "crashes (%d nodes, %d shards, TPC-C x%d workers)\n",
                shape.nodes, shape.nodes / 2, shape.workers);
    std::printf("oracle: every committed write durable on a "
                "surviving replica at quiesce\n\n");

    util::TextTable table({"phase", "committed", "pre/bkt",
                           "post/bkt", "recovery", "failovers",
                           "readmits", "elections", "epoch",
                           "redirects", "audit"});

    const std::vector<PhaseKind> phases = {PhaseKind::Scripted,
                                           PhaseKind::MetaPrimary,
                                           PhaseKind::Chaos};
    bool ok = true;
    for (PhaseKind kind : phases) {
        PhaseResult result;
        if (!runPhase(kind, shape, times, tie_seed, result))
            return 1;
        const char *name = phaseName(kind);
        table.addRow(
            {name,
             util::TextTable::num(
                 static_cast<int64_t>(result.committed)),
             util::TextTable::num(result.pre_rate, 0),
             util::TextTable::num(result.post_rate, 0),
             util::TextTable::num(result.recovery, 2),
             util::TextTable::num(
                 static_cast<int64_t>(result.failovers)),
             util::TextTable::num(
                 static_cast<int64_t>(result.readmits)),
             util::TextTable::num(
                 static_cast<int64_t>(result.elections)),
             util::TextTable::num(static_cast<int64_t>(result.epoch)),
             util::TextTable::num(
                 static_cast<int64_t>(result.stale_redirects)),
             result.audit_clean ? "clean" : "VIOLATED"});

        reporter.beginRow();
        reporter.col("phase", name);
        reporter.col("committed",
                     static_cast<int64_t>(result.committed));
        reporter.col("pre_rate", result.pre_rate);
        reporter.col("post_rate", result.post_rate);
        reporter.col("recovery", result.recovery);
        reporter.col("failovers",
                     static_cast<int64_t>(result.failovers));
        reporter.col("readmits",
                     static_cast<int64_t>(result.readmits));
        reporter.col("elections",
                     static_cast<int64_t>(result.elections));
        reporter.col("epoch", static_cast<int64_t>(result.epoch));
        reporter.col("stale_redirects",
                     static_cast<int64_t>(result.stale_redirects));
        reporter.col("driven_failovers",
                     static_cast<int64_t>(result.driven_failovers));
        reporter.col("chaos_outages",
                     static_cast<int64_t>(result.chaos_outages));
        reporter.col("mirrors_whole",
                     static_cast<int64_t>(result.whole ? 1 : 0));
        reporter.col("audited_blocks",
                     static_cast<int64_t>(result.audited_blocks));
        reporter.col("audit_clean",
                     static_cast<int64_t>(result.audit_clean ? 1 : 0));
        reporter.col("metrics_crc32c",
                     static_cast<int64_t>(result.metrics_crc));
        std::string curve;
        for (size_t b = 0; b < result.buckets.size(); ++b) {
            if (b)
                curve += ",";
            curve += std::to_string(result.buckets[b]);
        }
        reporter.col("goodput_curve", curve);

        // Per-phase oracle.
        bool phase_ok = result.audit_clean && result.whole &&
                        result.committed > 0;
        switch (kind) {
          case PhaseKind::Scripted:
            phase_ok = phase_ok && result.recovery >= 0.90 &&
                       result.driven_failovers >= 1 &&
                       result.readmits >= 1;
            break;
          case PhaseKind::MetaPrimary:
            phase_ok = phase_ok && result.elections >= 1 &&
                       result.stale_redirects >= 1 &&
                       result.readmits >= 1;
            break;
          case PhaseKind::Chaos:
            phase_ok = phase_ok && result.chaos_outages >= 2;
            break;
        }
        std::printf("check[%s]: durable %s, whole %s, recovery "
                    "%.2f, elections %llu, outages %llu: %s\n",
                    name, result.audit_clean ? "yes" : "NO",
                    result.whole ? "yes" : "NO", result.recovery,
                    static_cast<unsigned long long>(result.elections),
                    static_cast<unsigned long long>(
                        result.chaos_outages),
                    phase_ok ? "ok" : "FAIL");
        ok = ok && phase_ok;
    }
    std::printf("\n");
    table.print();

    reporter.note("shape",
                  "goodput dips through each crash and recovers to "
                  ">= 90% after resync; metadata-primary loss costs "
                  "one election and a redirect storm, never "
                  "durability; the chaos campaign ends with every "
                  "block durable on both replicas");
    reporter.note("oracle",
                  "DurabilityAudit: stamp every written block, read "
                  "both replicas back at quiesce; lost or foreign "
                  "stamps fail the bench");

    const bool wrote = reporter.write();
    return (wrote && ok) ? 0 : 1;
}
