/**
 * @file
 * Figure 8: "V3 and local read and write throughput (two outstanding
 * requests)" — server cache off, random I/O.
 *
 * Expected shape: with two outstanding requests pipelining hides the
 * network cost, so V3 matches local read throughput; writes converge
 * with more outstanding requests (the paper quotes eight).
 */

#include <cstdio>

#include "scenarios/microbench.hh"
#include "util/bench_reporter.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

void
sweep(util::BenchReporter &reporter, bool is_read, int outstanding,
      const char *label, bool attach_metrics)
{
    const sim::Tick window =
        reporter.quick() ? sim::msecs(40) : sim::msecs(400);
    std::printf("\n(%s, %d outstanding)\n", label, outstanding);
    util::TextTable table({"size", "V3(MB/s)", "Local(MB/s)"});

    MicroRig::Config v3_config;
    v3_config.backend = Backend::Kdsa;
    v3_config.cache_bytes = 0;
    MicroRig v3(v3_config);

    MicroRig::Config local_config;
    local_config.backend = Backend::Local;
    MicroRig local(local_config);

    for (const uint64_t size :
         {512ull, 2048ull, 8192ull, 32768ull, 131072ull}) {
        const auto rv = v3.measureThroughput(size, is_read,
                                             outstanding, window,
                                             false);
        const auto rl = local.measureThroughput(size, is_read,
                                                outstanding, window,
                                                false);
        table.addRow({util::formatSize(size),
                      util::TextTable::num(rv.mbps, 2),
                      util::TextTable::num(rl.mbps, 2)});
        reporter.beginRow();
        reporter.col("op", std::string(is_read ? "read" : "write"));
        reporter.col("outstanding",
                     static_cast<int64_t>(outstanding));
        reporter.col("size", static_cast<int64_t>(size));
        reporter.col("v3_mbps", rv.mbps);
        reporter.col("local_mbps", rl.mbps);
    }
    table.print();
    if (attach_metrics)
        reporter.attachMetricsJson(v3.sim().metrics().toJson());
}

} // namespace

int
main(int argc, char **argv)
{
    util::BenchReporter reporter("fig08", argc, argv);
    std::printf("Figure 8: V3 vs local throughput, cache off, "
                "random\n");
    sweep(reporter, true, 2, "a: Read", false);
    sweep(reporter, false, 2, "b: Write, two outstanding", false);
    sweep(reporter, false, 8,
          "b': Write, eight outstanding (paper: V3 matches local at "
          "eight)",
          true);
    std::printf("\npaper anchors: V3 read throughput ~= local at two "
                "outstanding; writes match at eight\n");
    reporter.note("anchors", "V3 read throughput ~= local at two "
                             "outstanding; writes match at eight");
    return reporter.write() ? 0 : 1;
}
