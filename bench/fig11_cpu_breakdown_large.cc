/**
 * @file
 * Figure 11: "CPU utilization breakdown for TPC-C for the large
 * configuration" — SQL / OS kernel / Lock / DSA / VI / Other shares
 * for kDSA, wDSA, cDSA.
 *
 * Paper anchors: SQL below 40% for kDSA and wDSA, ~50% for cDSA;
 * cDSA's lock+kernel ~30%, DSA ~15%, ~5% other; VI roughly constant
 * across implementations.
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Figure 11: CPU utilization breakdown, TPC-C large "
                "configuration (%% of busy CPU)\n\n");
    util::TextTable table({"backend", "SQL", "OS Kernel", "Lock",
                           "DSA", "VI", "Other", "busy%"});

    for (const Backend backend :
         {Backend::Kdsa, Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.platform = Platform::Large;
        config.backend = backend;
        const TpccRunResult result = runTpcc(config);
        std::vector<std::string> row = {backendName(backend)};
        for (size_t c = 0; c < osmodel::kCpuCatCount; ++c) {
            row.push_back(util::TextTable::num(
                result.oltp.cpu_breakdown[c] /
                    std::max(result.oltp.cpu_utilization, 1e-9) *
                    100,
                1));
        }
        row.push_back(util::TextTable::num(
            result.oltp.cpu_utilization * 100, 1));
        table.addRow(row);
    }
    table.print();
    std::printf("\npaper anchors: SQL <40%% (kDSA,wDSA), ~50%% "
                "(cDSA); cDSA kernel+lock ~30%%, DSA ~15%%; VI "
                "roughly constant\n");
    return 0;
}
