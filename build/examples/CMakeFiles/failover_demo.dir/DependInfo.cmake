
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/failover_demo.cpp" "examples/CMakeFiles/failover_demo.dir/failover_demo.cpp.o" "gcc" "examples/CMakeFiles/failover_demo.dir/failover_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/v3sim_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/v3sim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/v3sim_tpcc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/v3sim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dsa/CMakeFiles/v3sim_dsa.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/v3sim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/osmodel/CMakeFiles/v3sim_osmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/vi/CMakeFiles/v3sim_vi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v3sim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v3sim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v3sim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
