file(REMOVE_RECURSE
  "CMakeFiles/oltp_demo.dir/oltp_demo.cpp.o"
  "CMakeFiles/oltp_demo.dir/oltp_demo.cpp.o.d"
  "oltp_demo"
  "oltp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
