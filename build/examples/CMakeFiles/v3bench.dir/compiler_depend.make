# Empty compiler generated dependencies file for v3bench.
# This may be replaced when dependencies are built.
