file(REMOVE_RECURSE
  "CMakeFiles/v3bench.dir/v3bench.cpp.o"
  "CMakeFiles/v3bench.dir/v3bench.cpp.o.d"
  "v3bench"
  "v3bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
