file(REMOVE_RECURSE
  "CMakeFiles/fig14_cpu_breakdown_midsize.dir/fig14_cpu_breakdown_midsize.cc.o"
  "CMakeFiles/fig14_cpu_breakdown_midsize.dir/fig14_cpu_breakdown_midsize.cc.o.d"
  "fig14_cpu_breakdown_midsize"
  "fig14_cpu_breakdown_midsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cpu_breakdown_midsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
