# Empty compiler generated dependencies file for fig14_cpu_breakdown_midsize.
# This may be replaced when dependencies are built.
