# Empty dependencies file for fig08_local_throughput.
# This may be replaced when dependencies are built.
