file(REMOVE_RECURSE
  "CMakeFiles/fig08_local_throughput.dir/fig08_local_throughput.cc.o"
  "CMakeFiles/fig08_local_throughput.dir/fig08_local_throughput.cc.o.d"
  "fig08_local_throughput"
  "fig08_local_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_local_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
