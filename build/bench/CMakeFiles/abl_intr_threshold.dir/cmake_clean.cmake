file(REMOVE_RECURSE
  "CMakeFiles/abl_intr_threshold.dir/abl_intr_threshold.cc.o"
  "CMakeFiles/abl_intr_threshold.dir/abl_intr_threshold.cc.o.d"
  "abl_intr_threshold"
  "abl_intr_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_intr_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
