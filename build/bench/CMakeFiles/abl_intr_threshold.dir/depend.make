# Empty dependencies file for abl_intr_threshold.
# This may be replaced when dependencies are built.
