file(REMOVE_RECURSE
  "CMakeFiles/abl_cache_policy.dir/abl_cache_policy.cc.o"
  "CMakeFiles/abl_cache_policy.dir/abl_cache_policy.cc.o.d"
  "abl_cache_policy"
  "abl_cache_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cache_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
