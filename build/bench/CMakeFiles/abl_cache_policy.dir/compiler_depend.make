# Empty compiler generated dependencies file for abl_cache_policy.
# This may be replaced when dependencies are built.
