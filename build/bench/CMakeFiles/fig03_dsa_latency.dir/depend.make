# Empty dependencies file for fig03_dsa_latency.
# This may be replaced when dependencies are built.
