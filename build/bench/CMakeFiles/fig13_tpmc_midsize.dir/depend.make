# Empty dependencies file for fig13_tpmc_midsize.
# This may be replaced when dependencies are built.
