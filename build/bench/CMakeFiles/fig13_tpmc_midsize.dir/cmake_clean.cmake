file(REMOVE_RECURSE
  "CMakeFiles/fig13_tpmc_midsize.dir/fig13_tpmc_midsize.cc.o"
  "CMakeFiles/fig13_tpmc_midsize.dir/fig13_tpmc_midsize.cc.o.d"
  "fig13_tpmc_midsize"
  "fig13_tpmc_midsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tpmc_midsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
