# Empty dependencies file for fig05_cached_response.
# This may be replaced when dependencies are built.
