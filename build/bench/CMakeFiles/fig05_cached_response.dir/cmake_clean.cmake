file(REMOVE_RECURSE
  "CMakeFiles/fig05_cached_response.dir/fig05_cached_response.cc.o"
  "CMakeFiles/fig05_cached_response.dir/fig05_cached_response.cc.o.d"
  "fig05_cached_response"
  "fig05_cached_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cached_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
