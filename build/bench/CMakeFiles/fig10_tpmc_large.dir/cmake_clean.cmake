file(REMOVE_RECURSE
  "CMakeFiles/fig10_tpmc_large.dir/fig10_tpmc_large.cc.o"
  "CMakeFiles/fig10_tpmc_large.dir/fig10_tpmc_large.cc.o.d"
  "fig10_tpmc_large"
  "fig10_tpmc_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpmc_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
