# Empty dependencies file for fig10_tpmc_large.
# This may be replaced when dependencies are built.
