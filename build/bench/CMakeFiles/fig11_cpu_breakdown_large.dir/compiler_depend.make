# Empty compiler generated dependencies file for fig11_cpu_breakdown_large.
# This may be replaced when dependencies are built.
