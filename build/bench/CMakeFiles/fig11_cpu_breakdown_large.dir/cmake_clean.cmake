file(REMOVE_RECURSE
  "CMakeFiles/fig11_cpu_breakdown_large.dir/fig11_cpu_breakdown_large.cc.o"
  "CMakeFiles/fig11_cpu_breakdown_large.dir/fig11_cpu_breakdown_large.cc.o.d"
  "fig11_cpu_breakdown_large"
  "fig11_cpu_breakdown_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cpu_breakdown_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
