# Empty compiler generated dependencies file for fig09_opts_large.
# This may be replaced when dependencies are built.
