file(REMOVE_RECURSE
  "CMakeFiles/fig09_opts_large.dir/fig09_opts_large.cc.o"
  "CMakeFiles/fig09_opts_large.dir/fig09_opts_large.cc.o.d"
  "fig09_opts_large"
  "fig09_opts_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_opts_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
