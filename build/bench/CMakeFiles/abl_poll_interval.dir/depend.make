# Empty dependencies file for abl_poll_interval.
# This may be replaced when dependencies are built.
