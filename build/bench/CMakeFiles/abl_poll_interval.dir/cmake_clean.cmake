file(REMOVE_RECURSE
  "CMakeFiles/abl_poll_interval.dir/abl_poll_interval.cc.o"
  "CMakeFiles/abl_poll_interval.dir/abl_poll_interval.cc.o.d"
  "abl_poll_interval"
  "abl_poll_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_poll_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
