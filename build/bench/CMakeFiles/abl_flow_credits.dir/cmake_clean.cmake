file(REMOVE_RECURSE
  "CMakeFiles/abl_flow_credits.dir/abl_flow_credits.cc.o"
  "CMakeFiles/abl_flow_credits.dir/abl_flow_credits.cc.o.d"
  "abl_flow_credits"
  "abl_flow_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_flow_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
