# Empty compiler generated dependencies file for abl_flow_credits.
# This may be replaced when dependencies are built.
