# Empty compiler generated dependencies file for fig07_local_response.
# This may be replaced when dependencies are built.
