file(REMOVE_RECURSE
  "CMakeFiles/fig07_local_response.dir/fig07_local_response.cc.o"
  "CMakeFiles/fig07_local_response.dir/fig07_local_response.cc.o.d"
  "fig07_local_response"
  "fig07_local_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_local_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
