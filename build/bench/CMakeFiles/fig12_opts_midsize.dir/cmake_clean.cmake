file(REMOVE_RECURSE
  "CMakeFiles/fig12_opts_midsize.dir/fig12_opts_midsize.cc.o"
  "CMakeFiles/fig12_opts_midsize.dir/fig12_opts_midsize.cc.o.d"
  "fig12_opts_midsize"
  "fig12_opts_midsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_opts_midsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
