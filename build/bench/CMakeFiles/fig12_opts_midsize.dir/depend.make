# Empty dependencies file for fig12_opts_midsize.
# This may be replaced when dependencies are built.
