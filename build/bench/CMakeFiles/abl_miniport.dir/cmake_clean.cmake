file(REMOVE_RECURSE
  "CMakeFiles/abl_miniport.dir/abl_miniport.cc.o"
  "CMakeFiles/abl_miniport.dir/abl_miniport.cc.o.d"
  "abl_miniport"
  "abl_miniport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_miniport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
