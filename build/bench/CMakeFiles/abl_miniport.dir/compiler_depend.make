# Empty compiler generated dependencies file for abl_miniport.
# This may be replaced when dependencies are built.
