file(REMOVE_RECURSE
  "CMakeFiles/abl_dereg_region.dir/abl_dereg_region.cc.o"
  "CMakeFiles/abl_dereg_region.dir/abl_dereg_region.cc.o.d"
  "abl_dereg_region"
  "abl_dereg_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dereg_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
