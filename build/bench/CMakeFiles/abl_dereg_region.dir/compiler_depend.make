# Empty compiler generated dependencies file for abl_dereg_region.
# This may be replaced when dependencies are built.
