# Empty compiler generated dependencies file for table1_2_platforms.
# This may be replaced when dependencies are built.
