file(REMOVE_RECURSE
  "CMakeFiles/table1_2_platforms.dir/table1_2_platforms.cc.o"
  "CMakeFiles/table1_2_platforms.dir/table1_2_platforms.cc.o.d"
  "table1_2_platforms"
  "table1_2_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
