file(REMOVE_RECURSE
  "CMakeFiles/v3sim_net.dir/fabric.cc.o"
  "CMakeFiles/v3sim_net.dir/fabric.cc.o.d"
  "libv3sim_net.a"
  "libv3sim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
