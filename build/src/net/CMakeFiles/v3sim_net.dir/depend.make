# Empty dependencies file for v3sim_net.
# This may be replaced when dependencies are built.
