file(REMOVE_RECURSE
  "libv3sim_net.a"
)
