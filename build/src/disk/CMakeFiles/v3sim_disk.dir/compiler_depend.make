# Empty compiler generated dependencies file for v3sim_disk.
# This may be replaced when dependencies are built.
