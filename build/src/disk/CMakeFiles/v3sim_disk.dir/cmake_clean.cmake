file(REMOVE_RECURSE
  "CMakeFiles/v3sim_disk.dir/disk.cc.o"
  "CMakeFiles/v3sim_disk.dir/disk.cc.o.d"
  "CMakeFiles/v3sim_disk.dir/disk_spec.cc.o"
  "CMakeFiles/v3sim_disk.dir/disk_spec.cc.o.d"
  "CMakeFiles/v3sim_disk.dir/volume.cc.o"
  "CMakeFiles/v3sim_disk.dir/volume.cc.o.d"
  "libv3sim_disk.a"
  "libv3sim_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
