file(REMOVE_RECURSE
  "libv3sim_disk.a"
)
