# Empty dependencies file for v3sim_util.
# This may be replaced when dependencies are built.
