file(REMOVE_RECURSE
  "CMakeFiles/v3sim_util.dir/logging.cc.o"
  "CMakeFiles/v3sim_util.dir/logging.cc.o.d"
  "CMakeFiles/v3sim_util.dir/table.cc.o"
  "CMakeFiles/v3sim_util.dir/table.cc.o.d"
  "CMakeFiles/v3sim_util.dir/units.cc.o"
  "CMakeFiles/v3sim_util.dir/units.cc.o.d"
  "libv3sim_util.a"
  "libv3sim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
