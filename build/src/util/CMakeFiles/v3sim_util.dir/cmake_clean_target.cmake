file(REMOVE_RECURSE
  "libv3sim_util.a"
)
