# Empty compiler generated dependencies file for v3sim_db.
# This may be replaced when dependencies are built.
