file(REMOVE_RECURSE
  "libv3sim_db.a"
)
