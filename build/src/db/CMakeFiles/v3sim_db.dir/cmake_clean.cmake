file(REMOVE_RECURSE
  "CMakeFiles/v3sim_db.dir/oltp_engine.cc.o"
  "CMakeFiles/v3sim_db.dir/oltp_engine.cc.o.d"
  "libv3sim_db.a"
  "libv3sim_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
