
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osmodel/cpu_pool.cc" "src/osmodel/CMakeFiles/v3sim_osmodel.dir/cpu_pool.cc.o" "gcc" "src/osmodel/CMakeFiles/v3sim_osmodel.dir/cpu_pool.cc.o.d"
  "/root/repo/src/osmodel/io_manager.cc" "src/osmodel/CMakeFiles/v3sim_osmodel.dir/io_manager.cc.o" "gcc" "src/osmodel/CMakeFiles/v3sim_osmodel.dir/io_manager.cc.o.d"
  "/root/repo/src/osmodel/sim_lock.cc" "src/osmodel/CMakeFiles/v3sim_osmodel.dir/sim_lock.cc.o" "gcc" "src/osmodel/CMakeFiles/v3sim_osmodel.dir/sim_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/v3sim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v3sim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
