file(REMOVE_RECURSE
  "libv3sim_osmodel.a"
)
