# Empty dependencies file for v3sim_osmodel.
# This may be replaced when dependencies are built.
