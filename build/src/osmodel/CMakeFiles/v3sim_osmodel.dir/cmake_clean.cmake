file(REMOVE_RECURSE
  "CMakeFiles/v3sim_osmodel.dir/cpu_pool.cc.o"
  "CMakeFiles/v3sim_osmodel.dir/cpu_pool.cc.o.d"
  "CMakeFiles/v3sim_osmodel.dir/io_manager.cc.o"
  "CMakeFiles/v3sim_osmodel.dir/io_manager.cc.o.d"
  "CMakeFiles/v3sim_osmodel.dir/sim_lock.cc.o"
  "CMakeFiles/v3sim_osmodel.dir/sim_lock.cc.o.d"
  "libv3sim_osmodel.a"
  "libv3sim_osmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_osmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
