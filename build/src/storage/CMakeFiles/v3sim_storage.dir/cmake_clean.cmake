file(REMOVE_RECURSE
  "CMakeFiles/v3sim_storage.dir/block_cache.cc.o"
  "CMakeFiles/v3sim_storage.dir/block_cache.cc.o.d"
  "CMakeFiles/v3sim_storage.dir/mq_cache.cc.o"
  "CMakeFiles/v3sim_storage.dir/mq_cache.cc.o.d"
  "CMakeFiles/v3sim_storage.dir/v3_server.cc.o"
  "CMakeFiles/v3sim_storage.dir/v3_server.cc.o.d"
  "libv3sim_storage.a"
  "libv3sim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
