file(REMOVE_RECURSE
  "libv3sim_storage.a"
)
