# Empty dependencies file for v3sim_storage.
# This may be replaced when dependencies are built.
