file(REMOVE_RECURSE
  "CMakeFiles/v3sim_scenarios.dir/microbench.cc.o"
  "CMakeFiles/v3sim_scenarios.dir/microbench.cc.o.d"
  "CMakeFiles/v3sim_scenarios.dir/testbed.cc.o"
  "CMakeFiles/v3sim_scenarios.dir/testbed.cc.o.d"
  "CMakeFiles/v3sim_scenarios.dir/tpcc_run.cc.o"
  "CMakeFiles/v3sim_scenarios.dir/tpcc_run.cc.o.d"
  "libv3sim_scenarios.a"
  "libv3sim_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
