# Empty compiler generated dependencies file for v3sim_scenarios.
# This may be replaced when dependencies are built.
