file(REMOVE_RECURSE
  "libv3sim_scenarios.a"
)
