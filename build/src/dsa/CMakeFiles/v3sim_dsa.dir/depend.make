# Empty dependencies file for v3sim_dsa.
# This may be replaced when dependencies are built.
