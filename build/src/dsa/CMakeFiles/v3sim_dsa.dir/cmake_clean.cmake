file(REMOVE_RECURSE
  "CMakeFiles/v3sim_dsa.dir/cdsa_api.cc.o"
  "CMakeFiles/v3sim_dsa.dir/cdsa_api.cc.o.d"
  "CMakeFiles/v3sim_dsa.dir/dsa_client.cc.o"
  "CMakeFiles/v3sim_dsa.dir/dsa_client.cc.o.d"
  "CMakeFiles/v3sim_dsa.dir/local_backend.cc.o"
  "CMakeFiles/v3sim_dsa.dir/local_backend.cc.o.d"
  "libv3sim_dsa.a"
  "libv3sim_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
