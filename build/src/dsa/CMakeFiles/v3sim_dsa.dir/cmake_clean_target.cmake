file(REMOVE_RECURSE
  "libv3sim_dsa.a"
)
