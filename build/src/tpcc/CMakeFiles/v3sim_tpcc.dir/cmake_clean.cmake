file(REMOVE_RECURSE
  "CMakeFiles/v3sim_tpcc.dir/workload.cc.o"
  "CMakeFiles/v3sim_tpcc.dir/workload.cc.o.d"
  "libv3sim_tpcc.a"
  "libv3sim_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
