# Empty compiler generated dependencies file for v3sim_tpcc.
# This may be replaced when dependencies are built.
