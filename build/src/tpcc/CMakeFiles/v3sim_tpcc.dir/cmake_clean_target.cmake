file(REMOVE_RECURSE
  "libv3sim_tpcc.a"
)
