# Empty dependencies file for v3sim_vi.
# This may be replaced when dependencies are built.
