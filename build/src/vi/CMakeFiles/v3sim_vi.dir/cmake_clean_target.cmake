file(REMOVE_RECURSE
  "libv3sim_vi.a"
)
