file(REMOVE_RECURSE
  "CMakeFiles/v3sim_vi.dir/fault_injector.cc.o"
  "CMakeFiles/v3sim_vi.dir/fault_injector.cc.o.d"
  "CMakeFiles/v3sim_vi.dir/memory_registry.cc.o"
  "CMakeFiles/v3sim_vi.dir/memory_registry.cc.o.d"
  "CMakeFiles/v3sim_vi.dir/vi_nic.cc.o"
  "CMakeFiles/v3sim_vi.dir/vi_nic.cc.o.d"
  "libv3sim_vi.a"
  "libv3sim_vi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_vi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
