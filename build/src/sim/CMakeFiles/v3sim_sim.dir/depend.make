# Empty dependencies file for v3sim_sim.
# This may be replaced when dependencies are built.
