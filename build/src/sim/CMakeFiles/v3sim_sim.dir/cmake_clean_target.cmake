file(REMOVE_RECURSE
  "libv3sim_sim.a"
)
