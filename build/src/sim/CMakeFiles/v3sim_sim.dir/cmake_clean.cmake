file(REMOVE_RECURSE
  "CMakeFiles/v3sim_sim.dir/event_queue.cc.o"
  "CMakeFiles/v3sim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/v3sim_sim.dir/memory.cc.o"
  "CMakeFiles/v3sim_sim.dir/memory.cc.o.d"
  "CMakeFiles/v3sim_sim.dir/random.cc.o"
  "CMakeFiles/v3sim_sim.dir/random.cc.o.d"
  "CMakeFiles/v3sim_sim.dir/resource.cc.o"
  "CMakeFiles/v3sim_sim.dir/resource.cc.o.d"
  "CMakeFiles/v3sim_sim.dir/simulation.cc.o"
  "CMakeFiles/v3sim_sim.dir/simulation.cc.o.d"
  "CMakeFiles/v3sim_sim.dir/stats.cc.o"
  "CMakeFiles/v3sim_sim.dir/stats.cc.o.d"
  "libv3sim_sim.a"
  "libv3sim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3sim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
