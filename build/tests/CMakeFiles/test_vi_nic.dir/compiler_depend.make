# Empty compiler generated dependencies file for test_vi_nic.
# This may be replaced when dependencies are built.
