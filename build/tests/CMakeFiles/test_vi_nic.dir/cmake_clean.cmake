file(REMOVE_RECURSE
  "CMakeFiles/test_vi_nic.dir/test_vi_nic.cc.o"
  "CMakeFiles/test_vi_nic.dir/test_vi_nic.cc.o.d"
  "test_vi_nic"
  "test_vi_nic.pdb"
  "test_vi_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vi_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
