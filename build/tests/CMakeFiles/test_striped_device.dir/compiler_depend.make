# Empty compiler generated dependencies file for test_striped_device.
# This may be replaced when dependencies are built.
