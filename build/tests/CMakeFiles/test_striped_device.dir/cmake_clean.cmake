file(REMOVE_RECURSE
  "CMakeFiles/test_striped_device.dir/test_striped_device.cc.o"
  "CMakeFiles/test_striped_device.dir/test_striped_device.cc.o.d"
  "test_striped_device"
  "test_striped_device.pdb"
  "test_striped_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_striped_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
