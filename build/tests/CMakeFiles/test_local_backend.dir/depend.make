# Empty dependencies file for test_local_backend.
# This may be replaced when dependencies are built.
