file(REMOVE_RECURSE
  "CMakeFiles/test_local_backend.dir/test_local_backend.cc.o"
  "CMakeFiles/test_local_backend.dir/test_local_backend.cc.o.d"
  "test_local_backend"
  "test_local_backend.pdb"
  "test_local_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
