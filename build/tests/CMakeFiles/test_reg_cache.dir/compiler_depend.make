# Empty compiler generated dependencies file for test_reg_cache.
# This may be replaced when dependencies are built.
