file(REMOVE_RECURSE
  "CMakeFiles/test_reg_cache.dir/test_reg_cache.cc.o"
  "CMakeFiles/test_reg_cache.dir/test_reg_cache.cc.o.d"
  "test_reg_cache"
  "test_reg_cache.pdb"
  "test_reg_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reg_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
