file(REMOVE_RECURSE
  "CMakeFiles/test_sim_lock.dir/test_sim_lock.cc.o"
  "CMakeFiles/test_sim_lock.dir/test_sim_lock.cc.o.d"
  "test_sim_lock"
  "test_sim_lock.pdb"
  "test_sim_lock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
