# Empty dependencies file for test_sim_lock.
# This may be replaced when dependencies are built.
