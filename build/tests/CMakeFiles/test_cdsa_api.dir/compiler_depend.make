# Empty compiler generated dependencies file for test_cdsa_api.
# This may be replaced when dependencies are built.
